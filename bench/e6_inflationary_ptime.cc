// E6 — Section 4: the inflationary semantics is polynomial-time.
//
// Series regenerated:
//   * Θ^∞ evaluation time for transitive closure on paths, cycles and
//     random digraphs as |A| grows — the polynomial curve that contrasts
//     with E1's exponential fixpoint counting;
//   * the toggle and π₁ programs, which stabilize at stage 1 regardless
//     of size (the paper's first two inflationary examples);
//   * ablation: naive stage recomputation vs. the stage-exact semi-naive
//     delta evaluation — same results, asymptotically fewer derivations
//     (counters report both).
// Shape expected: semi-naive wins by a growing factor on deep recursions
// (paths), and the stage count equals the graph diameter.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"

namespace inflog {
namespace {

constexpr char kTc[] = "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).";

void RunInflationaryBench(benchmark::State& state, const Digraph& g,
                          const char* program_text, bool seminaive) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(program_text, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  InflationaryOptions options;
  options.use_seminaive = seminaive;
  double stages = 0, tuples = 0, derivations = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok()) << result.status().ToString();
    stages = static_cast<double>(result->num_stages);
    tuples = static_cast<double>(result->state.TotalTuples());
    derivations = static_cast<double>(result->stats.derivations);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
  state.counters["stages"] = stages;
  state.counters["tuples"] = tuples;
  state.counters["derivations"] = derivations;
}

void BM_TcPathSemiNaive(benchmark::State& state) {
  RunInflationaryBench(state, PathGraph(state.range(0)), kTc, true);
}
BENCHMARK(BM_TcPathSemiNaive)->RangeMultiplier(2)->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

void BM_TcPathNaive(benchmark::State& state) {
  RunInflationaryBench(state, PathGraph(state.range(0)), kTc, false);
}
BENCHMARK(BM_TcPathNaive)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

void BM_TcCycleSemiNaive(benchmark::State& state) {
  RunInflationaryBench(state, CycleGraph(state.range(0)), kTc, true);
}
BENCHMARK(BM_TcCycleSemiNaive)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

void BM_TcRandomSemiNaive(benchmark::State& state) {
  Rng rng(state.range(0));
  RunInflationaryBench(
      state, RandomDigraph(state.range(0), 2.0 / state.range(0), &rng),
      kTc, true);
}
BENCHMARK(BM_TcRandomSemiNaive)->RangeMultiplier(2)->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

void BM_ToggleStabilizesAtStageOne(benchmark::State& state) {
  RunInflationaryBench(state, PathGraph(state.range(0)),
                       "T(X) :- !T(Y).", true);
}
BENCHMARK(BM_ToggleStabilizesAtStageOne)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Pi1StabilizesAtStageOne(benchmark::State& state) {
  RunInflationaryBench(state, PathGraph(state.range(0)),
                       "T(X) :- E(Y,X), !T(Y).", true);
}
BENCHMARK(BM_Pi1StabilizesAtStageOne)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_LfpCoincidenceCheck(benchmark::State& state) {
  // On positive programs, inflationary == least fixpoint (and the bench
  // asserts it on every iteration).
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kTc, symbols);
  Database db = bench::DbFromGraph(CycleGraph(n), symbols);
  for (auto _ : state) {
    auto inf = EvalInflationary(p, db);
    auto lfp = EvalLeastFixpoint(p, db);
    INFLOG_CHECK(inf.ok() && lfp.ok());
    INFLOG_CHECK(inf->state == lfp->state);
    benchmark::DoNotOptimize(inf->state.TotalTuples());
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_LfpCoincidenceCheck)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
