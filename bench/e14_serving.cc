// E14 — serving throughput: epoch snapshots + the delta-invalidated
// query cache.
//
// The serving layer (src/serve/) publishes immutable epoch snapshots so
// any number of reader threads answer `?...` queries lock-free while a
// writer applies updates, and memoizes answers in a cache keyed
// (canonical query, epoch) that update deltas invalidate precisely.
// This bench measures both claims:
//
//   * BM_ServeThroughput runs 1–8 reader threads, each cycling a fixed
//     mix of point/join/ground queries against pinned snapshots, with
//     the cache on and off. `queries_per_sec` is the headline rate; with
//     the cache on every key after the first round is a hit
//     (`cache_hit_rate` ≈ 1), so cache-on must beat cache-off — the
//     cached path skips the join entirely.
//   * BM_ServeUnderUpdates interleaves the same reader mix with a
//     writer applying net-zero single-edge update pairs: every pair
//     republishes two epochs and invalidates the touched component's
//     entries, so the counters expose the steady-state hit rate under
//     churn plus the per-epoch publish cost (`epochs`,
//     `cache_invalidations`).
//
// Correctness guard: at setup every query's answer is computed three
// ways — cache-on, cache-off, and straight EvalServeQuery against a pin
// — and all three renderings must match byte-for-byte. The readers then
// re-check every answer against the rendering recorded for their
// snapshot's epoch. run_all.sh records `serve_threads` and `cache`
// alongside the JSON trajectory via INFLOG_SERVE_THREADS / INFLOG_CACHE.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/serve/query.h"
#include "src/serve/serving.h"

namespace inflog {
namespace {

constexpr char kTc[] =
    "T(X,Y) :- E(X,Y).\n"
    "T(X,Z) :- T(X,Y), E(Y,Z).\n";

constexpr size_t kNodesPerRing = 16;
constexpr size_t kComponents = 64;  // 1024 edges, 16384 closure rows
constexpr size_t kQueriesPerThread = 256;

Value Node(SymbolTable* symbols, size_t c, size_t i) {
  return symbols->Intern("n" + std::to_string(c * kNodesPerRing + i));
}

std::string NodeName(size_t c, size_t i) {
  return "n" + std::to_string(c * kNodesPerRing + i);
}

// Loads kComponents disjoint 16-node rings into the engine.
void LoadRings(Engine* engine) {
  INFLOG_CHECK(engine->LoadProgramText(kTc).ok());
  SymbolTable* symbols = engine->symbols().get();
  Database* db = engine->mutable_database();
  for (size_t c = 0; c < kComponents; ++c) {
    for (size_t i = 0; i < kNodesPerRing; ++i) {
      const Tuple edge{Node(symbols, c, i),
                       Node(symbols, c, (i + 1) % kNodesPerRing)};
      INFLOG_CHECK(db->AddFact("E", edge).ok());
    }
  }
}

// The reader mix: point lookups, a two-atom join, and ground probes,
// spread across components so the cache holds a handful of hot keys.
std::vector<std::string> QueryMix() {
  std::vector<std::string> mix;
  for (size_t c = 0; c < 4; ++c) {
    mix.push_back("?T(" + NodeName(c, 0) + ",X)");
    mix.push_back("?E(" + NodeName(c, 1) + ",X), T(X,Y)");
    mix.push_back("?T(" + NodeName(c, 2) + "," + NodeName(c, 5) + ")");
  }
  return mix;
}

// Answers every query in the mix and checks the rendering matches
// `expected` (empty map = record instead of check).
void VerifyMix(serve::ServingSession* session,
               const std::vector<std::string>& mix,
               std::map<std::string, std::string>* expected) {
  for (const std::string& q : mix) {
    auto outcome = session->Query(q);
    INFLOG_CHECK(outcome.ok()) << outcome.status().ToString();
    auto [it, inserted] =
        expected->emplace(q, outcome->answer.rendered);
    INFLOG_CHECK(inserted || it->second == outcome->answer.rendered)
        << "serving answer diverged for " << q;
  }
}

void BM_ServeThroughput(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool cache = state.range(1) != 0;
  Engine engine;
  LoadRings(&engine);
  EvalOptions options;
  options.serving.cache = cache;
  INFLOG_CHECK(engine.BeginServing(SemanticsKind::kStratified, options).ok());
  auto serving = engine.serving();
  INFLOG_CHECK(serving.ok());
  serve::ServingSession* session = *serving;

  const std::vector<std::string> mix = QueryMix();
  // Built-in verify: record each answer once, then re-derive it with the
  // cache bypassed (straight EvalServeQuery against a pin) and compare.
  std::map<std::string, std::string> expected;
  VerifyMix(session, mix, &expected);
  {
    const serve::SnapshotHandle snap = session->Pin();
    for (const std::string& q : mix) {
      auto parsed = serve::ParseServeQuery(q, snap->symbols());
      INFLOG_CHECK(parsed.ok());
      auto answer = serve::EvalServeQuery(*parsed, session->program(), *snap);
      INFLOG_CHECK(answer.ok());
      INFLOG_CHECK(expected.at(q) == answer->rendered)
          << "cached rendering diverged for " << q;
    }
  }

  size_t total_queries = 0;
  for (auto _ : state) {
    std::vector<std::thread> readers;
    readers.reserve(threads);
    std::atomic<size_t> failures{0};
    for (size_t t = 0; t < threads; ++t) {
      readers.emplace_back([&, t] {
        const serve::SnapshotHandle snap = session->Pin();
        for (size_t q = 0; q < kQueriesPerThread; ++q) {
          const std::string& line = mix[(q + t) % mix.size()];
          auto outcome = session->Query(line, snap);
          if (!outcome.ok() ||
              outcome->answer.rendered != expected.at(line)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : readers) t.join();
    INFLOG_CHECK(failures.load() == 0) << "reader answers diverged";
    total_queries += threads * kQueriesPerThread;
  }

  const EvalStats stats = session->stats();
  state.counters["serve_threads"] = static_cast<double>(threads);
  state.counters["cache"] = cache ? 1 : 0;
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["cache_hit_rate"] =
      stats.serve_queries == 0
          ? 0
          : static_cast<double>(stats.cache_hits) /
                static_cast<double>(stats.serve_queries);
}
BENCHMARK(BM_ServeThroughput)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServeUnderUpdates(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool cache = state.range(1) != 0;
  Engine engine;
  LoadRings(&engine);
  EvalOptions options;
  options.serving.cache = cache;
  INFLOG_CHECK(engine.BeginServing(SemanticsKind::kStratified, options).ok());
  auto serving = engine.serving();
  INFLOG_CHECK(serving.ok());
  serve::ServingSession* session = *serving;
  SymbolTable* symbols = engine.symbols().get();

  const std::vector<std::string> mix = QueryMix();
  // Per-epoch expected answers: epoch numbers are even at the rest state
  // (every delete/insert pair restores the database), so readers verify
  // only when their pin landed on a rest epoch.
  std::map<std::string, std::string> rest;
  VerifyMix(session, mix, &rest);

  // The churn pair: one ring edge in component 0 out and back in. Only
  // component 0's entries (and the shared-key T/E entries) invalidate.
  UpdateBatch del;
  del.deletes.emplace_back("E", Tuple{Node(symbols, 0, 3),
                                      Node(symbols, 0, 4)});
  UpdateBatch ins;
  ins.inserts = del.deletes;

  size_t total_queries = 0;
  size_t epochs = 0;
  for (auto _ : state) {
    std::atomic<bool> done{false};
    std::atomic<size_t> served{0};
    std::atomic<size_t> failures{0};
    std::vector<std::thread> readers;
    readers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      readers.emplace_back([&, t] {
        size_t q = t;
        while (!done.load(std::memory_order_acquire)) {
          const serve::SnapshotHandle snap = session->Pin();
          const std::string& line = mix[q++ % mix.size()];
          auto outcome = session->Query(line, snap);
          if (!outcome.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          } else if (snap->epoch() % 2 == 0 &&
                     outcome->answer.rendered != rest.at(line)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          served.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (size_t pair = 0; pair < 8; ++pair) {
      INFLOG_CHECK(engine.ApplyUpdate(del).ok());
      INFLOG_CHECK(engine.ApplyUpdate(ins).ok());
      epochs += 2;
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    INFLOG_CHECK(failures.load() == 0) << "reader answers diverged";
    total_queries += served.load();
  }

  const EvalStats stats = session->stats();
  state.counters["serve_threads"] = static_cast<double>(threads);
  state.counters["cache"] = cache ? 1 : 0;
  state.counters["epochs"] = static_cast<double>(epochs);
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["cache_invalidations"] =
      static_cast<double>(stats.cache_invalidations);
}
BENCHMARK(BM_ServeUnderUpdates)
    ->ArgsProduct({{1, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace inflog
