// E13 — incremental view maintenance under a mixed update stream.
//
// The incremental maintainer (src/eval/incremental.h) promises that a
// single-tuple EDB update costs O(|delta|) — the tuples whose support
// actually changes — instead of O(|database|), the price of re-running
// the fixpoint from scratch. This bench measures that promise on a
// transitive-closure workload big enough for the gap to matter:
//
//   * The database is `kComponents` disjoint 16-node directed rings, so
//     the materialized closure T holds components × 16² rows (the
//     default 512 × 256 = 131072 ≥ 64k) while any one update's
//     consequences stay inside a single component — exactly the regime
//     where maintenance should win.
//   * BM_UpdateStream applies a pre-generated stream of single-tuple
//     updates through Engine::ApplyUpdate: each step deletes one ring
//     edge (DRed: the component's closure shrinks to the chain closure)
//     and the next step re-inserts it (rederivation grows it back), with
//     every kChordEvery-th pair instead inserting and then deleting a
//     fresh chord edge. Pairs net to the identity, so every benchmark
//     iteration starts from the same database and maintained state.
//     Reported time is per ApplyUpdate call (amortized over the stream).
//   * BM_FullRecompute times one from-scratch stratified evaluation of
//     the same (program, database) — the baseline an update would cost
//     without maintenance. The `speedup_vs_recompute` counter on
//     BM_UpdateStream carries the measured ratio; the acceptance bar is
//     ≥ 10× at this database size.
//
// Correctness guards: after every iteration's stream the maintained
// state must equal the setup-time baseline (the stream nets to zero),
// and with INFLOG_E13_VERIFY=1 the setup additionally replays a slice of
// the stream in a verify_incremental session, cross-checking every
// update against the recompute oracle — the CI incremental-oracle job
// runs exactly that. Counters carry threads, edges, tc_rows, updates per
// iteration, and the cumulative incremental_* tallies into the JSON
// trajectory (run_all.sh records the process-level `updates` and
// `incremental` fields alongside).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"

namespace inflog {
namespace {

constexpr char kTc[] =
    "T(X,Y) :- E(X,Y).\n"
    "T(X,Z) :- T(X,Y), E(Y,Z).\n";

constexpr size_t kNodesPerRing = 16;
constexpr size_t kUpdatesPerIter = 32;  // 16 delete/re-insert pairs
constexpr size_t kChordEvery = 4;       // every 4th pair is insert/delete

struct Workload {
  std::vector<std::pair<std::string, Tuple>> stream_del;  // pair step 1
  std::vector<std::pair<std::string, Tuple>> stream_ins;  // pair step 2
  size_t edges = 0;
};

// Interns node `i` of ring `c` and returns its symbol id.
Value Node(SymbolTable* symbols, size_t c, size_t i) {
  return symbols->Intern("n" + std::to_string(c * kNodesPerRing + i));
}

// Loads `components` disjoint rings into the engine's database and
// pre-generates the update stream (kUpdatesPerIter/2 pairs; each pair is
// applied as two single-tuple ApplyUpdate calls that together restore
// the database).
Workload Setup(Engine* engine, size_t components) {
  INFLOG_CHECK(engine->LoadProgramText(kTc).ok());
  SymbolTable* symbols = engine->symbols().get();
  Database* db = engine->mutable_database();
  for (size_t c = 0; c < components; ++c) {
    for (size_t i = 0; i < kNodesPerRing; ++i) {
      const Tuple edge{Node(symbols, c, i),
                       Node(symbols, c, (i + 1) % kNodesPerRing)};
      INFLOG_CHECK(db->AddFact("E", edge).ok());
    }
  }
  Workload w;
  w.edges = components * kNodesPerRing;
  Rng rng(components * 17 + 3);
  for (size_t u = 0; u < kUpdatesPerIter / 2; ++u) {
    const size_t c = rng.Uniform(components);
    if (u % kChordEvery == kChordEvery - 1) {
      // Chord pair: insert a fresh shortcut edge, then delete it.
      const size_t a = rng.Uniform(kNodesPerRing);
      const size_t b = (a + 2 + rng.Uniform(kNodesPerRing - 3)) %
                       kNodesPerRing;
      const Tuple chord{Node(symbols, c, a), Node(symbols, c, b)};
      w.stream_del.emplace_back("E", chord);  // applied second
      w.stream_ins.emplace_back("E", chord);  // applied first
    } else {
      // Ring pair: delete one ring edge (the component's closure decays
      // to the chain closure), then re-insert it.
      const size_t i = rng.Uniform(kNodesPerRing);
      const Tuple edge{Node(symbols, c, i),
                       Node(symbols, c, (i + 1) % kNodesPerRing)};
      w.stream_del.emplace_back("E", edge);  // applied first
      w.stream_ins.emplace_back("E", edge);  // applied second
    }
  }
  return w;
}

// Applies pair `u` of the stream as two single-tuple updates; chord
// pairs insert first, ring pairs delete first (Setup encoded the order).
void ApplyPair(Engine* engine, const Workload& w, size_t u) {
  const bool chord_pair = u % kChordEvery == kChordEvery - 1;
  const auto& first = chord_pair ? w.stream_ins[u] : w.stream_del[u];
  const auto& second = chord_pair ? w.stream_del[u] : w.stream_ins[u];
  auto r1 = chord_pair ? engine->ApplyUpdate({first}, {})
                       : engine->ApplyUpdate({}, {first});
  INFLOG_CHECK(r1.ok()) << r1.status().ToString();
  auto r2 = chord_pair ? engine->ApplyUpdate({}, {second})
                       : engine->ApplyUpdate({second}, {});
  INFLOG_CHECK(r2.ok()) << r2.status().ToString();
}

void BM_UpdateStream(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t components = static_cast<size_t>(state.range(1));
  Engine engine;
  const Workload w = Setup(&engine, components);

  EvalOptions options;
  options.num_threads = threads;

  // Oracle slice: with INFLOG_E13_VERIFY=1, replay the stream once in a
  // verify session — every ApplyUpdate is cross-checked against a
  // from-scratch evaluation (and the pairs restore the database for the
  // timed sweep below).
  const char* verify_env = std::getenv("INFLOG_E13_VERIFY");
  if (verify_env != nullptr && std::string(verify_env) == "1") {
    EvalOptions verify = options;
    verify.verify_incremental = true;
    INFLOG_CHECK(engine.BeginIncremental(SemanticsKind::kStratified, verify)
                     .ok());
    for (size_t u = 0; u < w.stream_del.size(); ++u) {
      ApplyPair(&engine, w, u);
    }
  }

  // Baseline for the per-iteration equality guard and the speedup
  // counter: one from-scratch evaluation of the loaded database.
  auto full_start = std::chrono::steady_clock::now();
  auto baseline = engine.Evaluate(SemanticsKind::kStratified, options);
  auto full_end = std::chrono::steady_clock::now();
  INFLOG_CHECK(baseline.ok()) << baseline.status().ToString();
  const double full_us =
      std::chrono::duration<double, std::micro>(full_end - full_start)
          .count();

  INFLOG_CHECK(
      engine.BeginIncremental(SemanticsKind::kStratified, options).ok());
  double update_ns = 0;
  size_t updates = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t u = 0; u < w.stream_del.size(); ++u) {
      ApplyPair(&engine, w, u);
    }
    const auto t1 = std::chrono::steady_clock::now();
    update_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    updates += 2 * w.stream_del.size();
    auto st = engine.IncrementalState();
    INFLOG_CHECK(st.ok());
    INFLOG_CHECK((*st)->TotalTuples() == baseline->state().TotalTuples() &&
                 **st == baseline->state())
        << "maintained state diverged after a net-zero update stream";
  }
  const double per_update_us = updates == 0 ? 0 : update_ns / 1e3 / updates;

  auto stats = engine.IncrementalStats();
  INFLOG_CHECK(stats.ok());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["edges"] = static_cast<double>(w.edges);
  state.counters["tc_rows"] =
      static_cast<double>(baseline->state().TotalTuples());
  state.counters["updates_per_iter"] =
      static_cast<double>(2 * w.stream_del.size());
  state.counters["amortized_update_us"] = per_update_us;
  state.counters["full_recompute_us"] = full_us;
  state.counters["speedup_vs_recompute"] =
      per_update_us == 0 ? 0 : full_us / per_update_us;
  state.counters["oracle_runs"] =
      static_cast<double>((*stats)->incremental_oracle_runs);
  state.counters["dred_units"] =
      static_cast<double>((*stats)->incremental_dred_units);
  state.counters["idb_deleted"] =
      static_cast<double>((*stats)->incremental_idb_deleted);
  state.counters["idb_inserted"] =
      static_cast<double>((*stats)->incremental_idb_inserted);
}
BENCHMARK(BM_UpdateStream)
    ->Args({1, 512})  // 8192 edges, 131072 closure rows — the ≥64k point
    ->Args({1, 64})   // small anchor: 1024 edges, 16384 rows
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FullRecompute(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t components = static_cast<size_t>(state.range(1));
  Engine engine;
  const Workload w = Setup(&engine, components);
  EvalOptions options;
  options.num_threads = threads;
  double tuples = 0;
  for (auto _ : state) {
    auto result = engine.Evaluate(SemanticsKind::kStratified, options);
    INFLOG_CHECK(result.ok()) << result.status().ToString();
    tuples = static_cast<double>(result->state().TotalTuples());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["edges"] = static_cast<double>(w.edges);
  state.counters["tc_rows"] = tuples;
}
BENCHMARK(BM_FullRecompute)
    ->Args({1, 512})
    ->Args({1, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace inflog
