// E3 — Theorem 2: unique fixpoints and the class US.
//
// Series regenerated:
//   * the cost of π_SAT-UNIQUE-FIXPOINT (operationally: solve, block the
//     model, solve again — exactly two NP oracle calls) on instances
//     engineered to have a unique / several / no satisfying assignment;
//   * uniqueness checks on the Section 2 graph families, where the
//     answer tracks the 1 / 0 / 2 / 2ᵏ fixpoint counts.
// Shape expected: uniqueness costs about twice the plain existence check
// and inherits SAT hardness — consistent with US sitting between co-NP
// and D^P.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"
#include "src/reductions/sat_db.h"

namespace inflog {
namespace {

/// A CNF with exactly one model: a forced equivalence chain.
sat::Cnf UniqueChain(int num_vars) {
  sat::Cnf cnf;
  for (int i = 0; i < num_vars; ++i) cnf.NewVar();
  cnf.AddClause({sat::Pos(0)});
  for (int i = 0; i + 1 < num_vars; ++i) {
    cnf.AddClause({sat::Neg(i), sat::Pos(i + 1)});
    cnf.AddClause({sat::Pos(i), sat::Neg(i + 1)});
  }
  return cnf;
}

void RunUniqueness(benchmark::State& state, const sat::Cnf& cnf,
                   UniqueStatus expected) {
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    INFLOG_CHECK(analyzer.ok());
    auto unique = analyzer->UniqueFixpoint();
    INFLOG_CHECK(unique.ok());
    INFLOG_CHECK(*unique == expected);
  }
  state.counters["vars"] = cnf.num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
}

void BM_UniqueSat(benchmark::State& state) {
  RunUniqueness(state, UniqueChain(state.range(0)), UniqueStatus::kUnique);
}
BENCHMARK(BM_UniqueSat)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_MultipleSat(benchmark::State& state) {
  sat::Cnf cnf = UniqueChain(state.range(0));
  cnf.NewVar();  // one free variable doubles the model count
  RunUniqueness(state, cnf, UniqueStatus::kMultiple);
}
BENCHMARK(BM_MultipleSat)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_NoSat(benchmark::State& state) {
  sat::Cnf cnf = UniqueChain(state.range(0));
  cnf.AddClause({sat::Neg(cnf.num_vars - 1)});  // contradiction
  RunUniqueness(state, cnf, UniqueStatus::kNoFixpoint);
}
BENCHMARK(BM_NoSat)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_UniquenessVsExistenceOverhead(benchmark::State& state) {
  // Uniqueness ≈ 2 × existence: measure the pair on one random instance.
  Rng rng(state.range(0));
  const sat::Cnf cnf = bench::Random3Sat(state.range(0), 4.3, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
  INFLOG_CHECK(analyzer.ok());
  for (auto _ : state) {
    auto unique = analyzer->UniqueFixpoint();
    INFLOG_CHECK(unique.ok());
    benchmark::DoNotOptimize(*unique);
  }
  state.counters["vars"] = state.range(0);
}
BENCHMARK(BM_UniquenessVsExistenceOverhead)->Arg(8)->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_UniqueOnGraphFamilies(benchmark::State& state) {
  // π₁ on G_k: 2ᵏ fixpoints, so the uniqueness verdict is "multiple";
  // the check stays two SAT calls no matter how many fixpoints exist.
  const size_t k = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = bench::DbFromGraph(DisjointCycles(k, 4), symbols);
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    INFLOG_CHECK(analyzer.ok());
    auto unique = analyzer->UniqueFixpoint();
    INFLOG_CHECK(unique.ok());
    INFLOG_CHECK(*unique == UniqueStatus::kMultiple);
  }
  state.counters["fixpoints"] = static_cast<double>(uint64_t{1} << k);
}
BENCHMARK(BM_UniqueOnGraphFamilies)->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
