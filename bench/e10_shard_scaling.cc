// E10 — shard scaling of the fixpoint stage merge.
//
// PR 2 parallelized the stage *work* but funneled every stage through one
// single-threaded merge per predicate; hash-sharded relations turn both
// merges (task stagings → stage buffers, stage buffers → state) into
// shard-wise ParallelFors with no serial merge on the hot path. This
// bench isolates that effect:
//
//   * BM_ShardedJoinCore — the E7/E9 transitive-closure join core (256
//     vertices) at a fixed thread count, sweeping shards 1/2/4/8. The
//     shards=1 series is the PR 2 layout (parallel tasks, serial merge);
//     the ratio t(1 shard)/t(S shards) at fixed threads is the measured
//     merge-parallelism gain. A serial (1 thread, 1 shard) series anchors
//     the overall speedup.
//   * BM_ShardedMergeHeavy — a two-predicate union program whose stages
//     derive far more tuples than they match (merge-bound by
//     construction), where the serial merge is the bottleneck and shard
//     scaling shows up directly.
//
// Every iteration cross-checks the sharded result against an unsharded
// serial baseline computed once at setup — a wrong shard partition or
// merge order would change the tuple sets or stage sizes, and the bench
// aborts rather than publish a bogus speedup. Counters carry threads,
// shards, tuples, stages, and parallel_tasks into the JSON trajectory
// (bench/run_all.sh records the process-level `shards` field alongside).
//
// Like E9, the sweep only shows gains on a multi-core machine; a
// single-core container shows the fan-out + per-shard probe overhead
// instead, and the `threads`/`shards` counters keep such runs
// distinguishable in the trajectory.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"

namespace inflog {
namespace {

// The join core of E7/E9: transitive closure over one random digraph.
constexpr char kTcCore[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n";

// Merge-heavy: four copies of the closure growing in lockstep, so each
// stage's derivation volume (and therefore the merge) dominates the probe
// work.
constexpr char kMergeHeavy[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
    "S2(X,Y) :- E(X,Y).\n"
    "S2(X,Y) :- S2(X,Z), E(Z,Y).\n"
    "U(X,Y) :- S1(X,Y).\n"
    "U(X,Y) :- S2(Y,X).\n";

void RunShardSweep(benchmark::State& state, const char* program_text,
                   size_t n, double degree) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  Rng rng(n * 13 + 5);  // same seed family as E7/E9's join core
  const Digraph g = RandomDigraph(n, degree / n, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(program_text, symbols);
  Database db = bench::DbFromGraph(g, symbols);

  // Unsharded serial baseline once; every timed iteration must reproduce
  // its tuple sets and stage sizes.
  InflationaryOptions serial;
  serial.context.num_threads = 1;
  serial.context.num_shards = 1;
  auto baseline = EvalInflationary(p, db, serial);
  INFLOG_CHECK(baseline.ok());

  InflationaryOptions options;
  options.context.num_threads = threads;
  options.context.num_shards = shards;
  double tuples = 0, stages = 0, tasks = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state == baseline->state)
        << "sharded state diverged from serial at threads=" << threads
        << " shards=" << shards;
    INFLOG_CHECK(result->stage_sizes == baseline->stage_sizes);
    tuples = static_cast<double>(result->state.TotalTuples());
    stages = static_cast<double>(result->num_stages);
    tasks = static_cast<double>(result->stats.parallel_tasks);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["tuples"] = tuples;
  state.counters["stages"] = stages;
  state.counters["parallel_tasks"] = tasks;
}

void BM_ShardedJoinCore(benchmark::State& state) {
  RunShardSweep(state, kTcCore, /*n=*/256, /*degree=*/4.0);
}
BENCHMARK(BM_ShardedJoinCore)
    ->Args({1, 1})  // serial anchor
    ->Args({4, 1})  // PR 2 layout: parallel tasks, serial merge
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardedMergeHeavy(benchmark::State& state) {
  RunShardSweep(state, kMergeHeavy, /*n=*/160, /*degree=*/3.0);
}
BENCHMARK(BM_ShardedMergeHeavy)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace inflog
