// E1 — Section 2 example: the fixpoint structure of π₁ on the paper's
// graph families.
//
// Regenerates the series:
//   * Lₙ: exactly 1 fixpoint (unique = least);
//   * Cₙ: 0 fixpoints for odd n, 2 for even n;
//   * Gₖ (k disjoint C₄s): exactly 2ᵏ fixpoints, no least one.
// Counters report the enumerated fixpoint count so the 2ᵏ growth in the
// size of the database is visible directly; time tracks the enumeration
// cost (exponential on Gₖ — the paper's point that fixpoint semantics is
// combinatorially wild).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"

namespace inflog {
namespace {

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";

void RunFamily(benchmark::State& state, const Digraph& graph,
               uint64_t expected_fixpoints, bool expected_least) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(graph, symbols);
  uint64_t fixpoints = 0;
  uint64_t sat_calls = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&program, &db);
    INFLOG_CHECK(analyzer.ok());
    auto count = analyzer->CountFixpoints();
    INFLOG_CHECK(count.ok()) << count.status().ToString();
    fixpoints = *count;
    auto least = analyzer->LeastFixpoint();
    INFLOG_CHECK(least.ok());
    INFLOG_CHECK(least->has_least == expected_least);
    sat_calls = least->sat_calls;
  }
  INFLOG_CHECK(fixpoints == expected_fixpoints)
      << "expected " << expected_fixpoints << " got " << fixpoints;
  state.counters["fixpoints"] = static_cast<double>(fixpoints);
  state.counters["least_sat_calls"] = static_cast<double>(sat_calls);
  state.counters["vertices"] = static_cast<double>(graph.num_vertices());
}

void BM_Path(benchmark::State& state) {
  const size_t n = state.range(0);
  RunFamily(state, PathGraph(n), 1, /*expected_least=*/true);
}
BENCHMARK(BM_Path)->DenseRange(4, 16, 4)->Unit(benchmark::kMillisecond);

void BM_OddCycle(benchmark::State& state) {
  const size_t n = state.range(0);
  RunFamily(state, CycleGraph(n), 0, false);
}
BENCHMARK(BM_OddCycle)->Arg(3)->Arg(7)->Arg(11)->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_EvenCycle(benchmark::State& state) {
  const size_t n = state.range(0);
  RunFamily(state, CycleGraph(n), 2, false);
}
BENCHMARK(BM_EvenCycle)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_DisjointCycles(benchmark::State& state) {
  const size_t k = state.range(0);
  RunFamily(state, DisjointCycles(k, 4), uint64_t{1} << k, false);
}
BENCHMARK(BM_DisjointCycles)->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
