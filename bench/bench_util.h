// Shared helpers for the experiment benchmarks (E1..E8).

#ifndef INFLOG_BENCH_BENCH_UTIL_H_
#define INFLOG_BENCH_BENCH_UTIL_H_

#include <memory>

#include "src/ast/parser.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/graphs/digraph.h"
#include "src/relation/database.h"
#include "src/sat/cnf.h"

namespace inflog {
namespace bench {

/// Parses a program or aborts (benchmark setup failure is a bug).
inline Program MustProgram(std::string_view text,
                           std::shared_ptr<SymbolTable> symbols) {
  auto result = ParseProgram(text, std::move(symbols));
  INFLOG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Database {E(u,v)} for a digraph over a shared symbol table.
inline Database DbFromGraph(const Digraph& g,
                            std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  GraphToDatabase(g, "E", &db);
  return db;
}

/// Random 3-CNF at a given clause/variable ratio.
inline sat::Cnf Random3Sat(int num_vars, double ratio, Rng* rng) {
  sat::Cnf cnf;
  for (int i = 0; i < num_vars; ++i) cnf.NewVar();
  const int num_clauses = static_cast<int>(num_vars * ratio);
  for (int c = 0; c < num_clauses; ++c) {
    sat::Clause clause;
    while (clause.size() < 3) {
      const sat::Var v = static_cast<sat::Var>(rng->Uniform(num_vars));
      bool dup = false;
      for (const sat::Lit& l : clause) dup |= l.var() == v;
      if (!dup) clause.push_back(sat::Lit(v, rng->Bernoulli(0.5)));
    }
    cnf.AddClause(clause);
  }
  return cnf;
}

}  // namespace bench
}  // namespace inflog

#endif  // INFLOG_BENCH_BENCH_UTIL_H_
