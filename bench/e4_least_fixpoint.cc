// E4 — Theorem 3: deciding least-fixpoint existence.
//
// Series regenerated:
//   * the FONP-style algorithm (intersection of all fixpoints by
//     iterated SAT refinement, then one Θ-check) on the Section 2
//     families — counters report the number of SAT oracle calls, which
//     stays polynomial (≤ |C₀|+2) even on Gₖ with its 2ᵏ fixpoints;
//   * the naive alternative that enumerates every fixpoint and
//     intersects — exponential on Gₖ.
// Shape expected: the oracle-call curve of the FONP algorithm grows
// linearly with the candidate-atom count while the enumeration baseline
// doubles per extra cycle; the crossover is immediate (k ≈ 3-4).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"

namespace inflog {
namespace {

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";

void BM_LeastViaIntersection(benchmark::State& state) {
  const size_t k = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(DisjointCycles(k, 4), symbols);
  double sat_calls = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    INFLOG_CHECK(analyzer.ok());
    auto least = analyzer->LeastFixpoint();
    INFLOG_CHECK(least.ok());
    INFLOG_CHECK(least->has_fixpoint && !least->has_least);
    sat_calls = static_cast<double>(least->sat_calls);
  }
  state.counters["sat_calls"] = sat_calls;
  state.counters["fixpoints"] = static_cast<double>(uint64_t{1} << k);
}
BENCHMARK(BM_LeastViaIntersection)->DenseRange(1, 9, 1)
    ->Unit(benchmark::kMillisecond);

void BM_LeastViaFullEnumeration(benchmark::State& state) {
  // Baseline: enumerate all fixpoints, intersect, Θ-check. Exponential in
  // the number of disjoint cycles.
  const size_t k = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(DisjointCycles(k, 4), symbols);
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    INFLOG_CHECK(analyzer.ok());
    auto all = analyzer->EnumerateFixpoints();
    INFLOG_CHECK(all.ok());
    INFLOG_CHECK(all->size() == (uint64_t{1} << k));
    IdbState intersection = (*all)[0];
    for (size_t i = 1; i < all->size(); ++i) {
      intersection = IntersectStates(intersection, (*all)[i]);
    }
    auto is_fixpoint = analyzer->VerifyFixpoint(intersection);
    INFLOG_CHECK(is_fixpoint.ok() && !*is_fixpoint);
  }
  state.counters["fixpoints"] = static_cast<double>(uint64_t{1} << k);
}
BENCHMARK(BM_LeastViaFullEnumeration)->DenseRange(1, 9, 1)
    ->Unit(benchmark::kMillisecond);

void BM_LeastExistsOnPaths(benchmark::State& state) {
  // On Lₙ the unique fixpoint is least; the algorithm confirms with a
  // handful of SAT calls.
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(PathGraph(n), symbols);
  double sat_calls = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    INFLOG_CHECK(analyzer.ok());
    auto least = analyzer->LeastFixpoint();
    INFLOG_CHECK(least.ok());
    INFLOG_CHECK(least->has_least);
    sat_calls = static_cast<double>(least->sat_calls);
  }
  state.counters["sat_calls"] = sat_calls;
}
BENCHMARK(BM_LeastExistsOnPaths)->DenseRange(4, 20, 4)
    ->Unit(benchmark::kMillisecond);

void BM_LeastOnSelfSupport(benchmark::State& state) {
  // S(x) ← S(x): 2^|A| fixpoints with ∅ least — the intersection
  // refinement terminates after ~|A| SAT calls, never enumerating 2^|A|.
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram("S(X) :- S(X).", symbols);
  Database db = bench::DbFromGraph(PathGraph(n), symbols);
  double sat_calls = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    INFLOG_CHECK(analyzer.ok());
    auto least = analyzer->LeastFixpoint();
    INFLOG_CHECK(least.ok());
    INFLOG_CHECK(least->has_least);
    INFLOG_CHECK(least->intersection.TotalTuples() == 0);
    sat_calls = static_cast<double>(least->sat_calls);
  }
  state.counters["sat_calls"] = sat_calls;
  state.counters["fixpoints"] = std::pow(2.0, static_cast<double>(n));
}
BENCHMARK(BM_LeastOnSelfSupport)->DenseRange(4, 20, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
