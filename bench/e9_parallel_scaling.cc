// E9 — parallel scaling of the fixpoint stage.
//
// Series:
//   * BM_ParallelJoinCore — the E7 distance-query join core (synchronized
//     transitive closure on a random digraph, 256 vertices) evaluated with
//     the partitioned parallel stage at 1/2/4/8 threads. threads=1 is the
//     exact serial path (no pool is even constructed), so the time ratio
//     t(1)/t(N) is the measured stage-parallelism speedup.
//   * BM_ParallelDistanceFull — the full Proposition 2 distance query at a
//     smaller size, same thread sweep, showing how the enumeration-heavy
//     carrier limits scaling relative to the join core.
//
// Every iteration cross-checks the parallel result against a serial
// baseline computed once at setup — a wrong merge order would change row
// ids and tuple counts, and the bench would abort rather than publish a
// bogus speedup.
//
// Shape expected (on a machine with ≥4 cores): near-linear scaling of the
// join core to 4 threads (the acceptance bar is ≥2.5x at 4 threads),
// tapering as the per-stage merge (serial by design, for determinism)
// grows relative to the join work. On a single-core container the sweep
// degenerates to flat — the `threads` counter in the JSON output keeps
// such runs distinguishable in the trajectory.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"

namespace inflog {
namespace {

// The join core of E7: two synchronized TC copies over one random digraph.
constexpr char kTcCore[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n";

constexpr char kDistance[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
    "S2(X,Y) :- E(X,Y).\n"
    "S2(X,Y) :- E(X,Z), S2(Z,Y).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).\n";

void RunThreadSweep(benchmark::State& state, const char* program_text,
                    size_t n, double degree) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(n * 13 + 5);  // same seed family as E7's join core
  const Digraph g = RandomDigraph(n, degree / n, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(program_text, symbols);
  Database db = bench::DbFromGraph(g, symbols);

  // Serial baseline once; every timed iteration must reproduce it.
  InflationaryOptions serial;
  serial.context.num_threads = 1;
  auto baseline = EvalInflationary(p, db, serial);
  INFLOG_CHECK(baseline.ok());

  InflationaryOptions options;
  options.context.num_threads = threads;
  double tuples = 0, stages = 0, tasks = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state == baseline->state)
        << "parallel state diverged from serial at threads=" << threads;
    INFLOG_CHECK(result->stage_sizes == baseline->stage_sizes);
    tuples = static_cast<double>(result->state.TotalTuples());
    stages = static_cast<double>(result->num_stages);
    tasks = static_cast<double>(result->stats.parallel_tasks);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["tuples"] = tuples;
  state.counters["stages"] = stages;
  state.counters["parallel_tasks"] = tasks;
}

void BM_ParallelJoinCore(benchmark::State& state) {
  RunThreadSweep(state, kTcCore, /*n=*/256, /*degree=*/4.0);
}
BENCHMARK(BM_ParallelJoinCore)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelDistanceFull(benchmark::State& state) {
  RunThreadSweep(state, kDistance, /*n=*/24, /*degree=*/1.8);
}
BENCHMARK(BM_ParallelDistanceFull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace inflog
