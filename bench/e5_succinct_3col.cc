// E5 — Theorem 4 / Lemmas 1-2: explicit and succinct 3-colorability.
//
// Series regenerated:
//   * Lemma 1: π_COL fixpoint decision vs. the backtracking oracle on
//     explicit graphs (3-colorable and not);
//   * Theorem 4: π_SC fixpoint decision on circuit-presented graphs
//     (K_{2ⁿ}, Qₙ, C_{2ⁿ}) with counters for the ground blow-up — the
//     grounding scales with 2²ⁿ per gate although the circuit is tiny;
//   * the succinct→explicit expansion itself, whose 4ⁿ adjacency queries
//     are the exponential wall behind NEXP-completeness.
// Shape expected: explicit π_COL grows with the graph; succinct π_SC
// grows ~4ⁿ per gate regardless of the circuit's size; the expansion
// curve quadruples per +1 bit.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"
#include "src/reductions/succinct.h"
#include "src/reductions/three_coloring.h"

namespace inflog {
namespace {

void BM_ExplicitPiCol(benchmark::State& state) {
  // Random graphs near the 3-colorability boundary.
  const size_t n = state.range(0);
  Rng rng(n * 31 + 1);
  const Digraph g = RandomDigraph(n, 2.3 / n, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_col = PiColProgram(symbols);
  Database db = bench::DbFromGraph(g, symbols);
  const bool oracle = IsThreeColorable(g);
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&pi_col, &db);
    INFLOG_CHECK(analyzer.ok());
    auto has = analyzer->HasFixpoint();
    INFLOG_CHECK(has.ok());
    INFLOG_CHECK(*has == oracle);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["colorable"] = oracle ? 1 : 0;
}
BENCHMARK(BM_ExplicitPiCol)->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMillisecond);

void BM_ExplicitPiColHard(benchmark::State& state) {
  // Odd wheels: provably non-3-colorable; the SAT search must refute.
  const size_t rim = state.range(0);
  Digraph wheel(rim + 1);
  for (size_t i = 0; i < rim; ++i) {
    wheel.AddEdge(i, (i + 1) % rim);
    wheel.AddEdge(rim, i);
  }
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_col = PiColProgram(symbols);
  Database db = bench::DbFromGraph(wheel, symbols);
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&pi_col, &db);
    INFLOG_CHECK(analyzer.ok());
    auto has = analyzer->HasFixpoint();
    INFLOG_CHECK(has.ok());
    INFLOG_CHECK(!*has);
  }
  state.counters["vertices"] = static_cast<double>(rim + 1);
}
BENCHMARK(BM_ExplicitPiColHard)->Arg(5)->Arg(9)->Arg(13)
    ->Unit(benchmark::kMillisecond);

void RunSuccinct(benchmark::State& state, const SuccinctGraph& sg,
                 bool expected) {
  auto symbols = std::make_shared<SymbolTable>();
  auto instance = BuildSuccinct3Col(sg, symbols);
  INFLOG_CHECK(instance.ok());
  AnalyzeOptions options;
  options.grounder.max_ground_rules = 50'000'000;
  double ground_rules = 0, atoms = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&instance->program,
                                             &instance->database, options);
    INFLOG_CHECK(analyzer.ok()) << analyzer.status().ToString();
    ground_rules = static_cast<double>(analyzer->ground().rules.size());
    atoms = static_cast<double>(analyzer->ground().atoms.size());
    auto has = analyzer->HasFixpoint();
    INFLOG_CHECK(has.ok());
    INFLOG_CHECK(*has == expected);
  }
  state.counters["n_bits"] = static_cast<double>(sg.n);
  state.counters["gates"] = static_cast<double>(sg.circuit.num_gates());
  state.counters["program_rules"] =
      static_cast<double>(instance->program.rules().size());
  state.counters["ground_rules"] = ground_rules;
  state.counters["ground_atoms"] = atoms;
}

void BM_SuccinctComplete(benchmark::State& state) {
  const size_t n = state.range(0);
  RunSuccinct(state, SuccinctCompleteGraph(n), /*expected=*/n <= 1);
}
BENCHMARK(BM_SuccinctComplete)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_SuccinctHypercube(benchmark::State& state) {
  const size_t n = state.range(0);
  RunSuccinct(state, SuccinctHypercube(n), /*expected=*/true);
}
BENCHMARK(BM_SuccinctHypercube)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_SuccinctCycle(benchmark::State& state) {
  const size_t n = state.range(0);
  RunSuccinct(state, SuccinctCycle(n), /*expected=*/true);
}
BENCHMARK(BM_SuccinctCycle)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_ExpansionBlowup(benchmark::State& state) {
  // The 2ⁿ-vertex materialization: 4ⁿ circuit evaluations.
  const size_t n = state.range(0);
  const SuccinctGraph sg = SuccinctHypercube(n);
  size_t edges = 0;
  for (auto _ : state) {
    const Digraph g = sg.Expand();
    edges = g.num_edges();
    benchmark::DoNotOptimize(edges);
  }
  INFLOG_CHECK(edges == (size_t{1} << n) * n);
  state.counters["n_bits"] = static_cast<double>(n);
  state.counters["explicit_vertices"] =
      static_cast<double>(size_t{1} << n);
  state.counters["explicit_edges"] = static_cast<double>(edges);
  state.counters["circuit_gates"] =
      static_cast<double>(sg.circuit.num_gates());
}
BENCHMARK(BM_ExpansionBlowup)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
