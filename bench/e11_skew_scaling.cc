// E11 — scheduler scaling on a pathologically skewed stage.
//
// PR 3's static slicer cuts a stage's delta rows into equal-row slices,
// which balances stages whose join work is uniform per row. This bench
// builds the adversarial opposite — the workload ROADMAP's "work-stealing
// slicer for pathologically skewed shard histograms" item calls for:
//
//   * every delta tuple of the hot IDB predicate R hashes into ONE shard
//     (the symbols are pre-filtered by their unary tuple hash), so
//     shard-aligned slicing gets no help from the shard histogram; and
//   * the join fan-out per delta row is extremely skewed: 64 hub rows
//     inside the first 1024 (of 16384) carry ~80% of the stage's
//     derivations, so the equal-row slices covering the hub window hide
//     most of the stage's work while the rest finish instantly.
//
// The static scheduler therefore serializes the stage on the few threads
// that claimed the hot slices; the stealing scheduler
// (--scheduler=stealing, ThreadPool::ParallelForDynamic) splits exactly
// those chunks while the other workers are hungry and keeps everyone
// busy; the auto scheduler (the default) must detect the hub skew from
// its posting-length estimate and flip this stage to stealing by itself
// — the series exists to hold auto within 10% of explicit stealing here
// (its `auto_stealing` counter shows the decision). The acceptance
// target is a ≥1.5× stealing-over-static speedup at 8 threads on this
// workload — on a machine with ≥8 cores; like E9/E10, a single-core
// container shows only the scheduling overhead, and the
// `threads`/`scheduler` counters keep such runs distinguishable in the
// trajectory.
//
// Every timed iteration cross-checks the parallel result against an
// unsharded serial baseline computed once at setup (tuple sets AND stage
// sizes): a wrong chunk projection or fold order would abort the bench
// rather than publish a bogus speedup. Steals, splits, and executed-slice
// counts go into the JSON counters.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"
#include "src/relation/tuple.h"

namespace inflog {
namespace {

// Stage 0 (full pass) fills R with the 16384 hot symbols; stage 1 (the
// measured stage) runs the P rule over R's delta, whose per-row work is
// |Big(x,·)| — 1024 for hubs, 1 otherwise.
constexpr char kSkewProgram[] =
    "R(Y) :- Seed(X), E0(X,Y).\n"
    "P(X,Y) :- R(X), Big(X,Y).\n";

constexpr size_t kHotRows = 16384;   // R tuples, all in shard 0
constexpr size_t kHubWindow = 1024;  // leading R rows holding the hubs
constexpr size_t kHubStride = 16;    // one hub per 16 rows in the window
constexpr size_t kHubFanout = 1024;  // Big rows per hub
constexpr uint32_t kShardBits = 3;   // 8 shards

/// Interns fresh symbols until `count` of them hash into shard 0 of a
/// 2^kShardBits-sharded unary relation; returns their names.
std::vector<std::string> HotSymbols(SymbolTable* symbols, size_t count) {
  std::vector<std::string> hot;
  for (size_t i = 0; hot.size() < count; ++i) {
    std::string name = "h" + std::to_string(i);
    const Value v = symbols->Intern(name);
    const Tuple tuple{v};
    if (ShardOfHash(HashTuple(tuple), kShardBits) == 0) {
      hot.push_back(std::move(name));
    }
  }
  return hot;
}

void BM_SkewedStageSchedulers(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const StageScheduler scheduler =
      state.range(1) == 0   ? StageScheduler::kStatic
      : state.range(1) == 1 ? StageScheduler::kStealing
                            : StageScheduler::kAuto;
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kSkewProgram, symbols);
  Database db(symbols);

  const std::vector<std::string> hot = HotSymbols(symbols.get(), kHotRows);
  INFLOG_CHECK(db.AddFactNamed("Seed", {"s"}).ok());
  for (const std::string& name : hot) {
    // E0 row order fixes R's derivation (= shard-0 row) order.
    INFLOG_CHECK(db.AddFactNamed("E0", {"s", name}).ok());
  }
  // Hub rows sit in the leading window, one per kHubStride rows, so all
  // of the hub work lands inside the first two 512-row static slices.
  size_t big_rows = 0;
  for (size_t i = 0; i < hot.size(); ++i) {
    const bool hub = i < kHubWindow && i % kHubStride == 0;
    const size_t fanout = hub ? kHubFanout : 1;
    for (size_t j = 0; j < fanout; ++j) {
      INFLOG_CHECK(
          db.AddFactNamed("Big", {hot[i], "t" + std::to_string(j)}).ok());
      ++big_rows;
    }
  }

  // Serial unsharded baseline once; every timed iteration must reproduce
  // its tuple sets and stage sizes.
  InflationaryOptions serial;
  serial.context.num_threads = 1;
  serial.context.num_shards = 1;
  auto baseline = EvalInflationary(p, db, serial);
  INFLOG_CHECK(baseline.ok());

  // Insurance on the adversarial claim: at 8 shards, R is entirely hot.
  {
    InflationaryOptions sharded = serial;
    sharded.context.num_shards = 8;
    auto check = EvalInflationary(p, db, sharded);
    INFLOG_CHECK(check.ok());
    const Relation& r = check->state.relations[0];
    INFLOG_CHECK(r.size() == kHotRows);
    for (size_t s = 1; s < r.num_shards(); ++s) {
      INFLOG_CHECK(r.ShardSize(s) == 0) << "R leaked into shard " << s;
    }
  }

  InflationaryOptions options;
  options.context.num_threads = threads;
  options.context.num_shards = 8;
  options.context.scheduler = scheduler;
  double tuples = 0, tasks = 0, steals = 0, splits = 0, slices = 0;
  double parks = 0, auto_static = 0, auto_stealing = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state == baseline->state)
        << "skewed stage diverged from serial at threads=" << threads
        << " scheduler=" << StageSchedulerName(scheduler);
    INFLOG_CHECK(result->stage_sizes == baseline->stage_sizes);
    tuples = static_cast<double>(result->state.TotalTuples());
    tasks = static_cast<double>(result->stats.parallel_tasks);
    steals = static_cast<double>(result->stats.steals);
    splits = static_cast<double>(result->stats.splits);
    slices = static_cast<double>(result->stats.slices);
    parks = static_cast<double>(result->stats.parks);
    auto_static = static_cast<double>(result->stats.auto_static_stages);
    auto_stealing = static_cast<double>(result->stats.auto_stealing_stages);
  }
  // The whole point of auto on this workload: it must have flipped the
  // skewed stage to stealing, not merely matched its time by accident.
  if (scheduler == StageScheduler::kAuto && threads > 1) {
    INFLOG_CHECK(auto_stealing >= 1)
        << "auto scheduler failed to detect the hub skew";
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["scheduler"] = static_cast<double>(state.range(1));
  state.counters["hot_rows"] = static_cast<double>(kHotRows);
  state.counters["big_rows"] = static_cast<double>(big_rows);
  state.counters["tuples"] = tuples;
  state.counters["parallel_tasks"] = tasks;
  state.counters["steals"] = steals;
  state.counters["splits"] = splits;
  state.counters["slices"] = slices;
  state.counters["parks"] = parks;
  state.counters["auto_static"] = auto_static;
  state.counters["auto_stealing"] = auto_stealing;
}

BENCHMARK(BM_SkewedStageSchedulers)
    ->Args({1, 0})  // serial anchor
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({8, 0})  // static: hot slices serialize on few threads
    ->Args({8, 1})  // stealing: hot chunks split across all workers
    ->Args({8, 2})  // auto: must flip to stealing by itself (within 10%)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace inflog
