// E2 — Theorem 1 / Example 1: fixpoint existence as an NP normal form.
//
// Series regenerated:
//   * π_SAT fixpoint decision time on random 3-CNF instances D(I), across
//     variable counts and clause/variable ratios (through the ~4.26 phase
//     transition);
//   * the direct CDCL decision on the same CNF as the baseline — the gap
//     is the grounding + completion overhead of going through DATALOG¬;
//   * the generic Theorem-1 compiler applied to the Example 1 ∃SO
//     sentence, as a second implementation of the same reduction.
// Shape expected: both curves grow with instance size; hard instances
// cluster at the phase transition; who wins is always the direct CDCL
// (the reduction costs a polynomial grounding overhead), by roughly the
// ground-rules / clauses ratio.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"
#include "src/logic/thm1.h"
#include "src/reductions/sat_db.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace inflog {
namespace {

using logic::And;
using logic::Atom;
using logic::EsoSentence;
using logic::Exists;
using logic::Forall;
using logic::FoTerm;
using logic::Not;
using logic::Or;
using logic::RelVar;

FoTerm V(const char* name) { return FoTerm::Var(name); }

void BM_PiSatFixpoint(benchmark::State& state) {
  const int num_vars = state.range(0);
  const double ratio = state.range(1) / 10.0;
  Rng rng(num_vars * 1000 + state.range(1));
  const sat::Cnf cnf = bench::Random3Sat(num_vars, ratio, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  bool has = false;
  double ground_rules = 0, atoms = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    INFLOG_CHECK(analyzer.ok());
    auto result = analyzer->HasFixpoint();
    INFLOG_CHECK(result.ok());
    has = *result;
    ground_rules = static_cast<double>(analyzer->ground().rules.size());
    atoms = static_cast<double>(analyzer->ground().atoms.size());
  }
  // Cross-check against the direct CDCL oracle.
  sat::Solver oracle;
  oracle.AddCnf(cnf);
  INFLOG_CHECK(has == (oracle.Solve() == sat::SolveResult::kSat));
  state.counters["vars"] = num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
  state.counters["ground_rules"] = ground_rules;
  state.counters["ground_atoms"] = atoms;
  state.counters["satisfiable"] = has ? 1 : 0;
}
BENCHMARK(BM_PiSatFixpoint)
    ->Args({8, 30})
    ->Args({8, 43})
    ->Args({8, 55})
    ->Args({12, 43})
    ->Args({16, 43})
    ->Args({16, 55})
    ->Unit(benchmark::kMillisecond);

void BM_DirectCdclBaseline(benchmark::State& state) {
  const int num_vars = state.range(0);
  const double ratio = state.range(1) / 10.0;
  Rng rng(num_vars * 1000 + state.range(1));
  const sat::Cnf cnf = bench::Random3Sat(num_vars, ratio, &rng);
  for (auto _ : state) {
    sat::Solver solver;
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.counters["vars"] = num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
}
BENCHMARK(BM_DirectCdclBaseline)
    ->Args({8, 43})
    ->Args({12, 43})
    ->Args({16, 43})
    ->Unit(benchmark::kMillisecond);

/// The Example 1 sentence compiled by the generic Theorem-1 pipeline.
EsoSentence SatSentence() {
  EsoSentence psi;
  psi.so_vars = {RelVar{"S", 1}};
  psi.matrix = Forall(
      {"x"},
      Exists({"y"},
             Or({Atom("V", {V("x")}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("P", {V("x"), V("y")}), Atom("S", {V("y")})}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("N", {V("x"), V("y")}),
                      Not(Atom("S", {V("y")}))})})));
  return psi;
}

void BM_Thm1CompiledSat(benchmark::State& state) {
  const int num_vars = state.range(0);
  Rng rng(num_vars * 77 + 5);
  const sat::Cnf cnf = bench::Random3Sat(num_vars, 4.3, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Database db = SatToDatabase(cnf, symbols);
  auto compiled = logic::CompileEsoToDatalog(SatSentence(), symbols);
  INFLOG_CHECK(compiled.ok());
  bool has = false;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&compiled->program, &db);
    INFLOG_CHECK(analyzer.ok());
    auto result = analyzer->HasFixpoint();
    INFLOG_CHECK(result.ok());
    has = *result;
  }
  sat::Solver oracle;
  oracle.AddCnf(cnf);
  INFLOG_CHECK(has == (oracle.Solve() == sat::SolveResult::kSat));
  state.counters["vars"] = num_vars;
  state.counters["program_rules"] =
      static_cast<double>(compiled->program.rules().size());
}
BENCHMARK(BM_Thm1CompiledSat)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// --- CDCL core ablation: the modern-solver features, toggled one at a
// time over the same instances. Config 0 reproduces the seed solver
// (no preprocessing, no learnt deletion, single instance); config 4 is
// the full modern core. Every iteration cross-checks its verdict against
// the seed configuration's, so a speedup can never come from a changed
// answer. Wall-clock (UseRealTime) so portfolio racing is measured
// honestly rather than as the calling thread's CPU share. ---

struct SatConfig {
  const char* name;
  bool preprocess;
  bool reduce_db;
  size_t portfolio;
};

constexpr SatConfig kSatConfigs[] = {
    {"seed", false, false, 1},
    {"deletion", false, true, 1},
    {"preprocess", true, false, 1},
    {"modern", true, true, 1},
    {"modern_portfolio4", true, true, 4},
};

/// A random 3-CNF core extended with definitional variables: each original
/// clause (a ∨ b ∨ c) is split through a fresh d with d ↔ (a ∨ b) and
/// (d ∨ c). The extension preserves satisfiability, doubles the variable
/// count with NiVER-eliminable definitions, and models the Tseitin-style
/// encodings the completion pipeline emits.
sat::Cnf DefinitionalExtension(const sat::Cnf& core) {
  sat::Cnf out;
  out.num_vars = core.num_vars;
  for (const sat::Clause& clause : core.clauses) {
    if (clause.size() != 3) {
      out.AddClause(clause);
      continue;
    }
    const sat::Var d = out.NewVar();
    const sat::Lit a = clause[0], b = clause[1], c = clause[2];
    out.AddClause({sat::Neg(d), a, b});         // d → (a ∨ b)
    out.AddClause({~a, sat::Pos(d)});           // a → d
    out.AddClause({~b, sat::Pos(d)});           // b → d
    out.AddClause({sat::Pos(d), c});            // d ∨ c
  }
  return out;
}

void BM_CdclAblation(benchmark::State& state) {
  const int num_vars = state.range(0);
  const SatConfig& cfg = kSatConfigs[state.range(1)];
  Rng rng(num_vars * 2027 + 11);
  const sat::Cnf cnf =
      DefinitionalExtension(bench::Random3Sat(num_vars, 4.3, &rng));
  // The reference verdict, from the seed configuration.
  sat::SolveResult expected;
  {
    sat::SolverOptions opts;
    opts.reduce_db = false;
    sat::Solver s(opts);
    s.AddCnf(cnf);
    expected = s.Solve();
  }
  sat::SolverStats stats;
  for (auto _ : state) {
    sat::SolverOptions opts;
    opts.preprocess = cfg.preprocess;
    opts.reduce_db = cfg.reduce_db;
    opts.portfolio_threads = cfg.portfolio;
    sat::PortfolioSolver solver(opts);
    solver.AddCnf(cnf);
    const sat::SolveResult got = solver.Solve();
    INFLOG_CHECK(got == expected) << cfg.name;  // ablation cross-check
    stats = solver.stats();
  }
  state.SetLabel(cfg.name);
  state.counters["vars"] = num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
  state.counters["preprocess"] = cfg.preprocess ? 1 : 0;
  state.counters["deletion"] = cfg.reduce_db ? 1 : 0;
  state.counters["portfolio"] = static_cast<double>(cfg.portfolio);
  state.counters["conflicts"] = static_cast<double>(stats.conflicts);
  state.counters["learned"] = static_cast<double>(stats.learned_clauses);
  state.counters["deleted"] = static_cast<double>(stats.deleted_clauses);
  state.counters["pre_vars_eliminated"] =
      static_cast<double>(stats.preprocess_vars_eliminated);
  state.counters["satisfiable"] =
      expected == sat::SolveResult::kSat ? 1 : 0;
}
BENCHMARK(BM_CdclAblation)
    ->ArgsProduct({{60, 90, 120}, {0, 1, 2, 3, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
