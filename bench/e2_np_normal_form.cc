// E2 — Theorem 1 / Example 1: fixpoint existence as an NP normal form.
//
// Series regenerated:
//   * π_SAT fixpoint decision time on random 3-CNF instances D(I), across
//     variable counts and clause/variable ratios (through the ~4.26 phase
//     transition);
//   * the direct CDCL decision on the same CNF as the baseline — the gap
//     is the grounding + completion overhead of going through DATALOG¬;
//   * the generic Theorem-1 compiler applied to the Example 1 ∃SO
//     sentence, as a second implementation of the same reduction.
// Shape expected: both curves grow with instance size; hard instances
// cluster at the phase transition; who wins is always the direct CDCL
// (the reduction costs a polynomial grounding overhead), by roughly the
// ground-rules / clauses ratio.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/fixpoint/analysis.h"
#include "src/logic/thm1.h"
#include "src/reductions/sat_db.h"
#include "src/sat/solver.h"

namespace inflog {
namespace {

using logic::And;
using logic::Atom;
using logic::EsoSentence;
using logic::Exists;
using logic::Forall;
using logic::FoTerm;
using logic::Not;
using logic::Or;
using logic::RelVar;

FoTerm V(const char* name) { return FoTerm::Var(name); }

void BM_PiSatFixpoint(benchmark::State& state) {
  const int num_vars = state.range(0);
  const double ratio = state.range(1) / 10.0;
  Rng rng(num_vars * 1000 + state.range(1));
  const sat::Cnf cnf = bench::Random3Sat(num_vars, ratio, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  bool has = false;
  double ground_rules = 0, atoms = 0;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    INFLOG_CHECK(analyzer.ok());
    auto result = analyzer->HasFixpoint();
    INFLOG_CHECK(result.ok());
    has = *result;
    ground_rules = static_cast<double>(analyzer->ground().rules.size());
    atoms = static_cast<double>(analyzer->ground().atoms.size());
  }
  // Cross-check against the direct CDCL oracle.
  sat::Solver oracle;
  oracle.AddCnf(cnf);
  INFLOG_CHECK(has == (oracle.Solve() == sat::SolveResult::kSat));
  state.counters["vars"] = num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
  state.counters["ground_rules"] = ground_rules;
  state.counters["ground_atoms"] = atoms;
  state.counters["satisfiable"] = has ? 1 : 0;
}
BENCHMARK(BM_PiSatFixpoint)
    ->Args({8, 30})
    ->Args({8, 43})
    ->Args({8, 55})
    ->Args({12, 43})
    ->Args({16, 43})
    ->Args({16, 55})
    ->Unit(benchmark::kMillisecond);

void BM_DirectCdclBaseline(benchmark::State& state) {
  const int num_vars = state.range(0);
  const double ratio = state.range(1) / 10.0;
  Rng rng(num_vars * 1000 + state.range(1));
  const sat::Cnf cnf = bench::Random3Sat(num_vars, ratio, &rng);
  for (auto _ : state) {
    sat::Solver solver;
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.counters["vars"] = num_vars;
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
}
BENCHMARK(BM_DirectCdclBaseline)
    ->Args({8, 43})
    ->Args({12, 43})
    ->Args({16, 43})
    ->Unit(benchmark::kMillisecond);

/// The Example 1 sentence compiled by the generic Theorem-1 pipeline.
EsoSentence SatSentence() {
  EsoSentence psi;
  psi.so_vars = {RelVar{"S", 1}};
  psi.matrix = Forall(
      {"x"},
      Exists({"y"},
             Or({Atom("V", {V("x")}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("P", {V("x"), V("y")}), Atom("S", {V("y")})}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("N", {V("x"), V("y")}),
                      Not(Atom("S", {V("y")}))})})));
  return psi;
}

void BM_Thm1CompiledSat(benchmark::State& state) {
  const int num_vars = state.range(0);
  Rng rng(num_vars * 77 + 5);
  const sat::Cnf cnf = bench::Random3Sat(num_vars, 4.3, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Database db = SatToDatabase(cnf, symbols);
  auto compiled = logic::CompileEsoToDatalog(SatSentence(), symbols);
  INFLOG_CHECK(compiled.ok());
  bool has = false;
  for (auto _ : state) {
    auto analyzer = FixpointAnalyzer::Create(&compiled->program, &db);
    INFLOG_CHECK(analyzer.ok());
    auto result = analyzer->HasFixpoint();
    INFLOG_CHECK(result.ok());
    has = *result;
  }
  sat::Solver oracle;
  oracle.AddCnf(cnf);
  INFLOG_CHECK(has == (oracle.Solve() == sat::SolveResult::kSat));
  state.counters["vars"] = num_vars;
  state.counters["program_rules"] =
      static_cast<double>(compiled->program.rules().size());
}
BENCHMARK(BM_Thm1CompiledSat)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
