// E7 — Proposition 2: the distance query.
//
// Series regenerated:
//   * inflationary evaluation of the distance program (two synchronized
//     TC copies + the stage-reading carrier) across graph sizes, verified
//     against the BFS oracle on every iteration;
//   * the stratified evaluation of the *same rules*, which computes
//     TC(x,y) ∧ ¬TC(x*,y*) instead — counters report both carrier sizes
//     so the semantic divergence is visible in the output;
//   * the BFS oracle as the baseline cost of the query outside logic.
// Shape expected: both logic evaluations are polynomial with the
// inflationary one dominated by the quartic carrier; the divergence
// counter (tuples in exactly one of the two answers) is nonzero on any
// graph with two reachable pairs at different distances.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"
#include "src/eval/stratified.h"

namespace inflog {
namespace {

constexpr char kDistance[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
    "S2(X,Y) :- E(X,Y).\n"
    "S2(X,Y) :- E(X,Z), S2(Z,Y).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).\n";

Digraph BenchGraph(size_t n) {
  Rng rng(n * 7 + 3);
  return RandomDigraph(n, 1.8 / n, &rng);
}

/// Oracle count of {(x,y,x*,y*) : d(x,y) ≤ d(x*,y*), d(x,y) < ∞}.
size_t OracleCount(const Digraph& g) {
  const auto dist = BfsAllPairs(g);
  const size_t n = g.num_vertices();
  auto d = [&](size_t u, size_t v) -> int {
    if (u != v) return dist[u][v];
    int best = -1;
    for (uint32_t w : g.Successors(u)) {
      if (dist[w][u] >= 0 && (best < 0 || 1 + dist[w][u] < best)) {
        best = 1 + dist[w][u];
      }
    }
    return best;
  };
  size_t count = 0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      const int dxy = d(x, y);
      if (dxy < 0) continue;
      for (size_t xs = 0; xs < n; ++xs) {
        for (size_t ys = 0; ys < n; ++ys) {
          const int dst = d(xs, ys);
          if (dst < 0 || dxy <= dst) ++count;
        }
      }
    }
  }
  return count;
}

void BM_DistanceInflationary(benchmark::State& state) {
  const size_t n = state.range(0);
  const Digraph g = BenchGraph(n);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kDistance, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  const size_t expected = OracleCount(g);
  double carrier = 0, stages = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db);
    INFLOG_CHECK(result.ok());
    const Relation& s3 = result->state.relations[2];
    INFLOG_CHECK(s3.size() == expected)
        << "carrier " << s3.size() << " vs oracle " << expected;
    carrier = static_cast<double>(s3.size());
    stages = static_cast<double>(result->num_stages);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["carrier_tuples"] = carrier;
  state.counters["stages"] = stages;
}
BENCHMARK(BM_DistanceInflationary)->Arg(6)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

// Ablation: the same evaluation with the built-in column indexes switched
// off, so every kMatch scans its relation. The indexed/scan ratio is the
// measured payoff of the indexed join path on a join-heavy program.
void BM_DistanceInflationaryScanOnly(benchmark::State& state) {
  const size_t n = state.range(0);
  const Digraph g = BenchGraph(n);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kDistance, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  const size_t expected = OracleCount(g);
  InflationaryOptions options;
  options.context.use_join_indexes = false;
  double rows_matched = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state.relations[2].size() == expected);
    rows_matched = static_cast<double>(result->stats.rows_matched);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["rows_matched"] = rows_matched;
}
BENCHMARK(BM_DistanceInflationaryScanOnly)->Arg(6)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_DistanceStratifiedReading(benchmark::State& state) {
  const size_t n = state.range(0);
  const Digraph g = BenchGraph(n);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kDistance, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  double carrier = 0, divergence = 0;
  for (auto _ : state) {
    auto strat = EvalStratified(p, db);
    INFLOG_CHECK(strat.ok());
    auto inf = EvalInflationary(p, db);
    INFLOG_CHECK(inf.ok());
    const Relation& s = strat->state.relations[2];
    const Relation& i = inf->state.relations[2];
    carrier = static_cast<double>(s.size());
    // Tuples on which the two semantics disagree.
    size_t diff = 0;
    for (size_t r = 0; r < s.size(); ++r) {
      if (!i.Contains(s.Row(r))) ++diff;
    }
    for (size_t r = 0; r < i.size(); ++r) {
      if (!s.Contains(i.Row(r))) ++diff;
    }
    divergence = static_cast<double>(diff);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["stratified_tuples"] = carrier;
  state.counters["divergent_tuples"] = divergence;
}
BENCHMARK(BM_DistanceStratifiedReading)->Arg(6)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

// The join core of the distance query in isolation: the synchronized TC
// copies are where the indexed join path earns its keep, while the full
// query's quartic carrier is enumeration-bound and hides it. Run at sizes
// where the join input is large enough that scan cost dominates.
constexpr char kTcCore[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n";

void RunTcCore(benchmark::State& state, bool use_indexes,
               OptimizerPasses optimizer = OptimizerPasses::All()) {
  const size_t n = state.range(0);
  Rng rng(n * 13 + 5);
  const Digraph g = RandomDigraph(n, 4.0 / n, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kTcCore, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  InflationaryOptions options;
  options.context.use_join_indexes = use_indexes;
  options.context.optimizer_passes = optimizer;
  double rows_matched = 0, tuples = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    rows_matched = static_cast<double>(result->stats.rows_matched);
    tuples = static_cast<double>(result->state.relations[0].size());
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["tc_tuples"] = tuples;
  state.counters["rows_matched"] = rows_matched;
}

void BM_DistanceJoinCoreIndexed(benchmark::State& state) {
  RunTcCore(state, /*use_indexes=*/true);
}
BENCHMARK(BM_DistanceJoinCoreIndexed)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_DistanceJoinCoreScanOnly(benchmark::State& state) {
  RunTcCore(state, /*use_indexes=*/false);
}
BENCHMARK(BM_DistanceJoinCoreScanOnly)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Ablation for the CI optimizer smoke job: the same join core compiled
// from the raw greedy plans (--optimize=none). The optimized default must
// stay within 0.9x of this baseline — on the TC core the optimizer's job
// is mostly to stay out of the way (the greedy order is already the
// cost-based one), so the pair bounds the pipeline's overhead.
void BM_DistanceJoinCoreNoOpt(benchmark::State& state) {
  RunTcCore(state, /*use_indexes=*/true, OptimizerPasses::None());
}
BENCHMARK(BM_DistanceJoinCoreNoOpt)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_DistanceBfsOracle(benchmark::State& state) {
  const size_t n = state.range(0);
  const Digraph g = BenchGraph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OracleCount(g));
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_DistanceBfsOracle)->Arg(6)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
