// E12 — goal-directed evaluation: the plan-optimizer ablation.
//
// Series regenerated, each as an --optimize=none / --optimize=all pair
// with the none-result cross-checked against the optimized one every
// iteration:
//   * GoalDirectedReorder: a point query whose greedy plan (bound-column
//     heuristic, body-order tie-break) scans the big relation first and
//     probes the selective one, while the cost-based order scans the
//     few-row relation and probes the big one — the join-reordering win.
//   * SharedPrefix: two rules opening with the same expensive join
//     prefix; subplan sharing computes it once per stage instead of once
//     per rule.
//   * DeadRuleQuery: a cheap queried predicate next to an expensive
//     unqueried transitive closure; with output_predicates declared,
//     dead-rule elimination skips the closure entirely.
// Shape expected: the all/none ratio grows with the big relation for
// reorder (O(k) probes vs O(N) scans per stage), sits between 1.3x and
// the 2x ceiling on the shared prefix (the prefix is the bulk but not
// all of each rule's work), and tracks the dropped closure's cost for
// DCE. The
// opt_* counters on each series certify which pass fired.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/eval/inflationary.h"

namespace inflog {
namespace {

/// Asserts two states agree as sets on every relation (the serial
/// cross-check: the optimizer must never change the answer).
void CheckSameSets(const IdbState& a, const IdbState& b) {
  INFLOG_CHECK(a.relations.size() == b.relations.size());
  for (size_t i = 0; i < a.relations.size(); ++i) {
    INFLOG_CHECK(a.relations[i].SortedTuples() ==
                 b.relations[i].SortedTuples())
        << "optimizer changed relation " << i;
  }
}

// --- Series 1: cost-based join reordering on a point query. ---
//
// All three body atoms are binary, so the greedy planner's bound-column
// heuristic ties and keeps body order: scan the N-row BigA, probe BigB
// with fan-out F (N*F intermediate rows), and only then filter against
// the handful of Pt markers. Row counts and sampled posting lists say Pt
// should lead, turning both big relations into near-unit probes: the
// greedy plan does O(N*F) join work per run, the reordered one O(N) (the
// index builds).
constexpr char kPointQuery[] =
    "Q(X,Z) :- BigA(X,Y), BigB(Y,Z), Pt(X,P).\n";

constexpr size_t kFanout = 8;

Database PointQueryDb(size_t big_rows, size_t pt_rows,
                      std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  auto sym = [](size_t i) { return std::to_string(i); };
  const size_t groups = big_rows / kFanout;
  for (size_t i = 0; i < big_rows; ++i) {
    INFLOG_CHECK(db.AddFactNamed("BigA", {sym(i), sym(i % groups)}).ok());
    // Group i % groups fans out to kFanout successors.
    INFLOG_CHECK(
        db.AddFactNamed("BigB", {sym(i % groups), sym(i)}).ok());
  }
  for (size_t i = 0; i < pt_rows; ++i) {
    INFLOG_CHECK(db.AddFactNamed("Pt", {sym(i * 97 % big_rows), sym(i)}).ok());
  }
  return db;
}

void RunPointQuery(benchmark::State& state, const OptimizerPasses& passes) {
  const size_t big_rows = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPointQuery, symbols);
  Database db = PointQueryDb(big_rows, 8, symbols);

  InflationaryOptions baseline_opts;
  baseline_opts.context.optimizer_passes = OptimizerPasses::None();
  auto baseline = EvalInflationary(p, db, baseline_opts);
  INFLOG_CHECK(baseline.ok());

  InflationaryOptions options;
  options.context.optimizer_passes = passes;
  double reordered = 0, rows_matched = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    CheckSameSets(baseline->state, result->state);
    reordered = static_cast<double>(result->stats.opt_plans_reordered);
    rows_matched = static_cast<double>(result->stats.rows_matched);
  }
  state.counters["big_rows"] = static_cast<double>(big_rows);
  state.counters["plans_reordered"] = reordered;
  state.counters["rows_matched"] = rows_matched;
}

void BM_GoalDirectedReorderNone(benchmark::State& state) {
  RunPointQuery(state, OptimizerPasses::None());
}
BENCHMARK(BM_GoalDirectedReorderNone)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_GoalDirectedReorderAll(benchmark::State& state) {
  RunPointQuery(state, OptimizerPasses::All());
}
BENCHMARK(BM_GoalDirectedReorderAll)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// --- Series 2: common-subplan sharing. ---
//
// Both rules open with the same R join S prefix: n probes of the tiny S
// relation producing a handful of rows, so the prefix is expensive to
// compute and cheap to rescan. Sharing computes it once per stage and
// both rules scan the cached intermediate — the n probes are paid once
// instead of once per rule.
constexpr char kSharedPrefix[] =
    "A(X,Z) :- R(X,Y), S(Y,Z).\n"
    "B(X,W) :- R(X,Y), S(Y,Z), T(Z,W).\n";

void RunSharedPrefix(benchmark::State& state, const OptimizerPasses& passes) {
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kSharedPrefix, symbols);
  Database db(symbols);
  auto sym = [](size_t i) { return std::to_string(i); };
  // R's join column is distinct per row while S holds 16 rows, so the
  // shared prefix costs n probes to yield 16 rows.
  for (size_t i = 0; i < n; ++i) {
    INFLOG_CHECK(db.AddFactNamed("R", {sym(i), sym(i)}).ok());
  }
  for (size_t i = 0; i < 16; ++i) {
    INFLOG_CHECK(db.AddFactNamed("S", {sym(i), sym(i + 1)}).ok());
    INFLOG_CHECK(db.AddFactNamed("T", {sym(i + 1), sym(i)}).ok());
  }

  InflationaryOptions baseline_opts;
  baseline_opts.context.optimizer_passes = OptimizerPasses::None();
  auto baseline = EvalInflationary(p, db, baseline_opts);
  INFLOG_CHECK(baseline.ok());

  InflationaryOptions options;
  options.context.optimizer_passes = passes;
  double shared = 0, shared_rows = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    CheckSameSets(baseline->state, result->state);
    shared = static_cast<double>(result->stats.opt_subplans_shared);
    shared_rows = static_cast<double>(result->stats.opt_shared_rows);
  }
  state.counters["rel_rows"] = static_cast<double>(n);
  state.counters["subplans_shared"] = shared;
  state.counters["shared_rows"] = shared_rows;
}

void BM_SharedPrefixNone(benchmark::State& state) {
  RunSharedPrefix(state, OptimizerPasses::None());
}
BENCHMARK(BM_SharedPrefixNone)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_SharedPrefixAll(benchmark::State& state) {
  // Reordering is disabled on this pair so both members keep the
  // identical greedy prefix — the sharing win in isolation.
  auto passes = OptimizerPasses::None();
  passes.share_subplans = true;
  RunSharedPrefix(state, passes);
}
BENCHMARK(BM_SharedPrefixAll)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

// --- Series 3: dead-rule elimination under a declared query. ---
//
// Q reaches a handful of vertices from the source; Waste is the full
// transitive closure of the same graph. Both runs declare
// output_predicates = {Q}; only the dce run may skip Waste.
constexpr char kDeadRuleQuery[] =
    "Q(X) :- Src(X).\n"
    "Q(Y) :- Q(X), E(X,Y).\n"
    "Waste(X,Y) :- E(X,Y).\n"
    "Waste(X,Z) :- Waste(X,Y), E(Y,Z).\n";

void RunDeadRuleQuery(benchmark::State& state,
                      const OptimizerPasses& passes) {
  const size_t n = state.range(0);
  Rng rng(n * 31 + 7);
  const Digraph g = RandomDigraph(n, 3.0 / n, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kDeadRuleQuery, symbols);
  Database db = bench::DbFromGraph(g, symbols);
  INFLOG_CHECK(db.AddFactNamed("Src", {"0"}).ok());

  InflationaryOptions baseline_opts;
  baseline_opts.context.optimizer_passes = OptimizerPasses::None();
  baseline_opts.context.output_predicates = {"Q"};
  auto baseline = EvalInflationary(p, db, baseline_opts);
  INFLOG_CHECK(baseline.ok());
  const int q_idb = p.predicate(*p.FindPredicate("Q")).idb_index;

  InflationaryOptions options;
  options.context.optimizer_passes = passes;
  options.context.output_predicates = {"Q"};
  double eliminated = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    // Only the queried predicate is specified once rules are dropped.
    INFLOG_CHECK(result->state.relations[q_idb].SortedTuples() ==
                 baseline->state.relations[q_idb].SortedTuples());
    eliminated = static_cast<double>(result->stats.opt_rules_eliminated);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["rules_eliminated"] = eliminated;
}

void BM_DeadRuleQueryNone(benchmark::State& state) {
  RunDeadRuleQuery(state, OptimizerPasses::None());
}
BENCHMARK(BM_DeadRuleQueryNone)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DeadRuleQueryAll(benchmark::State& state) {
  RunDeadRuleQuery(state, OptimizerPasses::All());
}
BENCHMARK(BM_DeadRuleQueryAll)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
