// E15 — goal-directed point queries: the magic-sets ablation.
//
// Two recursive workloads, each as a --optimize=dce,reorder /
// --optimize=dce,reorder,magic pair with the queried predicate
// cross-checked against an --optimize=none evaluation every iteration:
//   * MagicChainTC: transitive closure over many disjoint 64-edge
//     chains with the query TC(c0, Y) anchored in one chain. The plan
//     passes still materialize every chain's closure (~L²/2 tuples per
//     chain); the magic rewrite derives only the demanded chain's
//     suffixes — the classic bound-argument win.
//   * MagicSameGeneration: the textbook same-generation program over a
//     complete binary tree, queried from one leaf. Unoptimized, every
//     same-level pair is derived (quadratic in the level width); the
//     magic cone only touches the query leaf's ancestors and their
//     levels.
// Shape expected: the magic/plan-passes ratio grows with the number of
// chains (resp. the tree depth) since the demanded fraction shrinks;
// opt_magic_rules_generated on the magic series certifies the rewrite
// fired and not just a plan pass.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/eval/inflationary.h"

namespace inflog {
namespace {

/// dce,reorder — the strongest selection without program rewrites.
OptimizerPasses PlanPasses() {
  OptimizerPasses passes = OptimizerPasses::None();
  passes.eliminate_dead_rules = true;
  passes.reorder_joins = true;
  return passes;
}

/// dce,reorder,magic.
OptimizerPasses PlanPassesPlusMagic() {
  OptimizerPasses passes = PlanPasses();
  passes.magic_sets = true;
  return passes;
}

// --- Series 1: chain transitive closure, one bound source. ---

constexpr char kChainTc[] =
    "TC(X,Y) :- E(X,Y).\n"
    "TC(X,Z) :- TC(X,Y), E(Y,Z).\n"
    "Q(Y) :- TC(c0,Y).\n";

constexpr size_t kChainLength = 64;

/// `num_chains` disjoint chains of kChainLength edges; the query
/// constant c0 heads chain 0.
Database ChainDb(size_t num_chains, std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  auto vertex = [](size_t chain, size_t pos) {
    if (chain == 0 && pos == 0) return std::string("c0");
    return "v" + std::to_string(chain) + "_" + std::to_string(pos);
  };
  for (size_t c = 0; c < num_chains; ++c) {
    for (size_t p = 0; p < kChainLength; ++p) {
      INFLOG_CHECK(
          db.AddFactNamed("E", {vertex(c, p), vertex(c, p + 1)}).ok());
    }
  }
  return db;
}

void RunChainTc(benchmark::State& state, const OptimizerPasses& passes) {
  const size_t num_chains = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kChainTc, symbols);
  Database db = ChainDb(num_chains, symbols);

  InflationaryOptions baseline_opts;
  baseline_opts.context.optimizer_passes = OptimizerPasses::None();
  auto baseline = EvalInflationary(p, db, baseline_opts);
  INFLOG_CHECK(baseline.ok());
  const int q_idb = p.predicate(*p.FindPredicate("Q")).idb_index;
  const auto expected = baseline->state.relations[q_idb].SortedTuples();
  INFLOG_CHECK(expected.size() == kChainLength);

  InflationaryOptions options;
  options.context.optimizer_passes = passes;
  options.context.output_predicates = {"Q"};
  double magic_rules = 0, derived = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state.relations[q_idb].SortedTuples() == expected)
        << "magic changed the query answer";
    magic_rules =
        static_cast<double>(result->stats.opt_magic_rules_generated);
    derived = static_cast<double>(result->stats.derivations);
  }
  state.counters["edb_rows"] = static_cast<double>(num_chains * kChainLength);
  state.counters["magic_rules"] = magic_rules;
  state.counters["derivations"] = derived;
}

void BM_MagicChainTcPlanPasses(benchmark::State& state) {
  RunChainTc(state, PlanPasses());
}
BENCHMARK(BM_MagicChainTcPlanPasses)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_MagicChainTcMagic(benchmark::State& state) {
  RunChainTc(state, PlanPassesPlusMagic());
}
BENCHMARK(BM_MagicChainTcMagic)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// --- Series 2: same generation over a complete binary tree. ---

constexpr char kSameGeneration[] =
    "SG(X,Y) :- Flat(X,Y).\n"
    "SG(X,Z) :- Up(X,U), SG(U,V), Dn(V,Z).\n"
    "Q(Y) :- SG(c0,Y).\n";

/// Complete binary tree of `depth` levels below the root: Up = child to
/// parent, Dn = parent to child, Flat = sibling pairs (both orders).
/// The query constant c0 is the leftmost leaf. Nodes are numbered
/// heap-style (root 1, children 2i and 2i+1).
Database TreeDb(size_t depth, std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  const size_t leftmost_leaf = size_t(1) << depth;
  auto node = [&](size_t i) {
    if (i == leftmost_leaf) return std::string("c0");
    return "n" + std::to_string(i);
  };
  for (size_t i = 2; i < (size_t(1) << (depth + 1)); ++i) {
    INFLOG_CHECK(db.AddFactNamed("Up", {node(i), node(i / 2)}).ok());
    INFLOG_CHECK(db.AddFactNamed("Dn", {node(i / 2), node(i)}).ok());
    if ((i & 1) == 0) {
      INFLOG_CHECK(db.AddFactNamed("Flat", {node(i), node(i + 1)}).ok());
      INFLOG_CHECK(db.AddFactNamed("Flat", {node(i + 1), node(i)}).ok());
    }
  }
  return db;
}

void RunSameGeneration(benchmark::State& state,
                       const OptimizerPasses& passes) {
  const size_t depth = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kSameGeneration, symbols);
  Database db = TreeDb(depth, symbols);

  InflationaryOptions baseline_opts;
  baseline_opts.context.optimizer_passes = OptimizerPasses::None();
  auto baseline = EvalInflationary(p, db, baseline_opts);
  INFLOG_CHECK(baseline.ok());
  const int q_idb = p.predicate(*p.FindPredicate("Q")).idb_index;
  const auto expected = baseline->state.relations[q_idb].SortedTuples();
  // Every other leaf is same-generation with c0.
  INFLOG_CHECK(expected.size() == (size_t(1) << depth) - 1);

  InflationaryOptions options;
  options.context.optimizer_passes = passes;
  options.context.output_predicates = {"Q"};
  double magic_rules = 0, derived = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db, options);
    INFLOG_CHECK(result.ok());
    INFLOG_CHECK(result->state.relations[q_idb].SortedTuples() == expected)
        << "magic changed the query answer";
    magic_rules =
        static_cast<double>(result->stats.opt_magic_rules_generated);
    derived = static_cast<double>(result->stats.derivations);
  }
  state.counters["tree_depth"] = static_cast<double>(depth);
  state.counters["magic_rules"] = magic_rules;
  state.counters["derivations"] = derived;
}

void BM_MagicSameGenerationPlanPasses(benchmark::State& state) {
  RunSameGeneration(state, PlanPasses());
}
BENCHMARK(BM_MagicSameGenerationPlanPasses)->Arg(6)->Arg(8)->Arg(9)
    ->Unit(benchmark::kMillisecond);

void BM_MagicSameGenerationMagic(benchmark::State& state) {
  RunSameGeneration(state, PlanPassesPlusMagic());
}
BENCHMARK(BM_MagicSameGenerationMagic)->Arg(6)->Arg(8)->Arg(9)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
