#!/usr/bin/env bash
# Runs every experiment bench (E1..E10) and emits ONE JSON line per bench
# binary on stdout, ready to append to a BENCH_*.json trajectory file:
#
#   {"bench":"e7_distance_query","threads":8,"shards":1,"context":{...},
#    "benchmarks":[...]}
#
# `threads` and `shards` record the evaluation thread and relation-shard
# counts the bench binaries were run with. The benches default to
# num_threads=1 / num_shards=1 (E1..E8 are serial and unsharded; E9
# sweeps thread counts and E10 sweeps (threads, shards) per series,
# carried in their *counters*), so both fields default to 1 — set
# INFLOG_THREADS=N / INFLOG_SHARDS=S only when actually running a
# build/flag combination that evaluates with those values.
#
# Usage:
#   bench/run_all.sh [BUILD_DIR] [EXTRA_BENCHMARK_ARGS...]
#
# Examples:
#   bench/run_all.sh                           # default build dir ./build
#   bench/run_all.sh build --benchmark_min_time=0.05   # quicker sweep
#   bench/run_all.sh build --benchmark_filter=JoinCore # one series
#
# (benchmark 1.7 parses --benchmark_min_time as a plain double; newer
# releases also accept a "0.05s" suffix.)
#
# Requires jq (used only to compact the benchmark JSON onto one line).

set -euo pipefail

build_dir="${1:-build}"
if [ $# -gt 0 ]; then shift; fi

if [ ! -d "$build_dir" ]; then
  echo "error: build dir '$build_dir' not found (run cmake first)" >&2
  exit 1
fi

threads="${INFLOG_THREADS:-1}"
case "$threads" in
  ''|*[!0-9]*)
    echo "error: INFLOG_THREADS must be a non-negative integer," \
      "got '$threads'" >&2
    exit 1
    ;;
esac

shards="${INFLOG_SHARDS:-1}"
case "$shards" in
  ''|*[!0-9]*)
    echo "error: INFLOG_SHARDS must be a non-negative integer," \
      "got '$shards'" >&2
    exit 1
    ;;
esac

found=0
status=0
for bin in "$build_dir"/e[0-9]_* "$build_dir"/e[0-9][0-9]_*; do
  [ -x "$bin" ] || continue
  found=1
  name="$(basename "$bin")"
  if ! out="$("$bin" --benchmark_format=json "$@" 2>/dev/null)"; then
    echo "error: $name failed (bad flags or crashed)" >&2
    status=1
    continue
  fi
  if [ -z "$out" ]; then
    # A filter that matches nothing leaves the binary silent; keep one
    # line per bench anyway so trajectories stay aligned.
    printf \
      '{"bench":"%s","threads":%s,"shards":%s,"context":null,"benchmarks":[]}\n' \
      "$name" "$threads" "$shards"
    continue
  fi
  jq -c --arg bench "$name" --argjson threads "$threads" \
    --argjson shards "$shards" \
    '{bench: $bench, threads: $threads, shards: $shards,
      context: .context, benchmarks: .benchmarks}' <<<"$out"
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench binaries in '$build_dir' (build the project first)" >&2
  exit 1
fi
exit "$status"
