#!/usr/bin/env bash
# Runs every experiment bench (E1..E15) and emits ONE JSON line per bench
# binary on stdout, ready to append to a BENCH_*.json trajectory file:
#
#   {"bench":"e7_distance_query","threads":8,"shards":1,
#    "scheduler":"auto","steal_variance":1,"optimize":"all",
#    "updates":0,"incremental":1,
#    "context":{...},"benchmarks":[...]}
#
# `threads`, `shards`, `scheduler`, `steal_variance`, and `optimize`
# record the evaluation thread count, relation-shard count, stage
# scheduler, auto-scheduler flip threshold, and plan-optimizer pass
# selection the bench binaries were run with. The benches default to
# num_threads=1 / num_shards=1 / the auto scheduler (the library
# default, which at CV threshold 1.0 picks static or stealing per
# stage; E1..E8 are serial and unsharded; E9 sweeps thread counts, E10
# sweeps (threads, shards), E11 sweeps (threads, scheduler incl. auto),
# and E12 sweeps the optimizer pass selection per series, carried in
# their *counters*), so the fields default to 1/1/auto/1/all — set
# INFLOG_THREADS=N / INFLOG_SHARDS=S /
# INFLOG_SCHEDULER=static|stealing|auto / INFLOG_STEAL_VARIANCE=V /
# INFLOG_OPTIMIZE=all|none|<comma list of pass tokens> only when
# actually running a build/flag combination that evaluates with those
# values. The valid pass tokens are whatever the library exports —
# asked of the build via `inflog_cli --list-optimize-passes` rather
# than hardcoded here, so new passes (magic, inline, ...) validate
# without touching this script.
#
# Usage:
#   bench/run_all.sh [--smoke] [BUILD_DIR] [EXTRA_BENCHMARK_ARGS...]
#
# --smoke runs every series for a single short repetition
# (--benchmark_min_time=0.01): a cheap CI-sized sweep whose only job is
# to prove each bench binary still builds, runs, and passes its built-in
# serial cross-checks — including E11's check that --scheduler=auto (the
# library default) flips its skewed stage to stealing. Timing numbers
# from a smoke run are NOT trajectory material.
#
# Examples:
#   bench/run_all.sh                           # default build dir ./build
#   bench/run_all.sh --smoke build             # CI smoke sweep
#   bench/run_all.sh build --benchmark_min_time=0.05   # quicker sweep
#   bench/run_all.sh build --benchmark_filter=JoinCore # one series
#
# (benchmark 1.7 parses --benchmark_min_time as a plain double; newer
# releases also accept a "0.05s" suffix.)
#
# Requires jq (used only to compact the benchmark JSON onto one line).

set -euo pipefail

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi

build_dir="${1:-build}"
if [ $# -gt 0 ]; then shift; fi

if [ ! -d "$build_dir" ]; then
  echo "error: build dir '$build_dir' not found (run cmake first)" >&2
  exit 1
fi

threads="${INFLOG_THREADS:-1}"
case "$threads" in
  ''|*[!0-9]*)
    echo "error: INFLOG_THREADS must be a non-negative integer," \
      "got '$threads'" >&2
    exit 1
    ;;
esac

shards="${INFLOG_SHARDS:-1}"
case "$shards" in
  ''|*[!0-9]*)
    echo "error: INFLOG_SHARDS must be a non-negative integer," \
      "got '$shards'" >&2
    exit 1
    ;;
esac

scheduler="${INFLOG_SCHEDULER:-auto}"
case "$scheduler" in
  auto|static|stealing) ;;
  *)
    echo "error: INFLOG_SCHEDULER must be 'auto', 'static' or" \
      "'stealing', got '$scheduler'" >&2
    exit 1
    ;;
esac

# The auto scheduler's CV flip threshold (the library default is 1.0).
# Must be a JSON-valid number (jq --argjson below), so a bare leading or
# trailing dot is rejected too.
steal_variance="${INFLOG_STEAL_VARIANCE:-1}"
case "$steal_variance" in
  ''|*[!0-9.]*|*.*.*|.*|*.)
    echo "error: INFLOG_STEAL_VARIANCE must be a non-negative number," \
      "got '$steal_variance'" >&2
    exit 1
    ;;
esac

# E13's update-stream configuration: `updates` records the stream length
# per iteration the run was driven with (0 = the bench's built-in
# default), `incremental` whether maintenance ran incrementally (1, the
# default) or every update was forced through the recompute oracle (0).
# Both are trajectory metadata only — the bench binaries read their own
# INFLOG_E13_* environment; these fields keep the sweep configuration
# visible next to threads/shards/scheduler.
updates="${INFLOG_UPDATES:-0}"
case "$updates" in
  ''|*[!0-9]*)
    echo "error: INFLOG_UPDATES must be a non-negative integer," \
      "got '$updates'" >&2
    exit 1
    ;;
esac

incremental="${INFLOG_INCREMENTAL:-1}"
case "$incremental" in
  0|1) ;;
  *)
    echo "error: INFLOG_INCREMENTAL must be 0 or 1, got '$incremental'" >&2
    exit 1
    ;;
esac

# The CDCL core configuration the run was driven with: `sat_preprocess`
# records whether the SAT preprocessing front-end was on (0, the solver
# default, or 1) and `sat_portfolio` the portfolio width (1 = the plain
# single solver). Like updates/incremental these are trajectory metadata
# mirroring the CLI's --sat-preprocess/--sat-portfolio flags; E2's
# built-in CdclAblation series sweeps the configurations itself and
# carries them in its counters.
sat_preprocess="${INFLOG_SAT_PREPROCESS:-0}"
case "$sat_preprocess" in
  0|1) ;;
  *)
    echo "error: INFLOG_SAT_PREPROCESS must be 0 or 1," \
      "got '$sat_preprocess'" >&2
    exit 1
    ;;
esac

sat_portfolio="${INFLOG_SAT_PORTFOLIO:-1}"
case "$sat_portfolio" in
  ''|0|*[!0-9]*)
    echo "error: INFLOG_SAT_PORTFOLIO must be a positive integer," \
      "got '$sat_portfolio'" >&2
    exit 1
    ;;
esac

# The serving configuration the run was driven with: `serve_threads`
# records the reader thread count (mirrors the CLI's --serve-threads;
# E14 sweeps 1..8 itself and carries the count in its counters) and
# `cache` whether the epoch-keyed query cache was on (1, the serving
# default) or off (0, --serve-cache=0). Trajectory metadata like
# updates/incremental above.
serve_threads="${INFLOG_SERVE_THREADS:-1}"
case "$serve_threads" in
  ''|0|*[!0-9]*)
    echo "error: INFLOG_SERVE_THREADS must be a positive integer," \
      "got '$serve_threads'" >&2
    exit 1
    ;;
esac

cache="${INFLOG_CACHE:-1}"
case "$cache" in
  0|1) ;;
  *)
    echo "error: INFLOG_CACHE must be 0 or 1, got '$cache'" >&2
    exit 1
    ;;
esac

# The optimizer pass selection ("all", "none", or a comma list of pass
# tokens — mirrors the library's --optimize flag). The token set comes
# from the built CLI so it tracks the library: `--list-optimize-passes`
# prints one token per line (dce, reorder, share, magic, inline today).
optimize="${INFLOG_OPTIMIZE:-all}"
case "$optimize" in
  all|none) ;;
  *)
    if [ -x "$build_dir/inflog_cli" ] &&
        pass_tokens="$("$build_dir/inflog_cli" --list-optimize-passes)"; then
      :
    else
      echo "warning: $build_dir/inflog_cli --list-optimize-passes" \
        "unavailable; falling back to the built-in token list" >&2
      pass_tokens=$'dce\nreorder\nshare\nmagic\ninline'
    fi
    IFS=',' read -ra opt_parts <<<"$optimize"
    for part in "${opt_parts[@]}"; do
      if ! grep -Fxq -- "$part" <<<"$pass_tokens"; then
        echo "error: INFLOG_OPTIMIZE must be 'all', 'none' or a comma" \
          "list of: $(tr '\n' ' ' <<<"$pass_tokens")— got '$optimize'" >&2
        exit 1
      fi
    done
    ;;
esac

smoke_args=()
if [ "$smoke" -eq 1 ]; then
  smoke_args=(--benchmark_min_time=0.01)
fi

found=0
status=0
for bin in "$build_dir"/e[0-9]_* "$build_dir"/e[0-9][0-9]_*; do
  [ -x "$bin" ] || continue
  found=1
  name="$(basename "$bin")"
  if ! out="$("$bin" --benchmark_format=json ${smoke_args[@]+"${smoke_args[@]}"} "$@" 2>/dev/null)"; then
    echo "error: $name failed (bad flags or crashed)" >&2
    status=1
    continue
  fi
  if [ -z "$out" ]; then
    # A filter that matches nothing leaves the binary silent; keep one
    # line per bench anyway so trajectories stay aligned.
    printf \
      '{"bench":"%s","threads":%s,"shards":%s,"scheduler":"%s","steal_variance":%s,"optimize":"%s","updates":%s,"incremental":%s,"sat_preprocess":%s,"sat_portfolio":%s,"serve_threads":%s,"cache":%s,"context":null,"benchmarks":[]}\n' \
      "$name" "$threads" "$shards" "$scheduler" "$steal_variance" \
      "$optimize" "$updates" "$incremental" "$sat_preprocess" \
      "$sat_portfolio" "$serve_threads" "$cache"
    continue
  fi
  jq -c --arg bench "$name" --argjson threads "$threads" \
    --argjson shards "$shards" --arg scheduler "$scheduler" \
    --argjson steal_variance "$steal_variance" --arg optimize "$optimize" \
    --argjson updates "$updates" --argjson incremental "$incremental" \
    --argjson sat_preprocess "$sat_preprocess" \
    --argjson sat_portfolio "$sat_portfolio" \
    --argjson serve_threads "$serve_threads" --argjson cache "$cache" \
    '{bench: $bench, threads: $threads, shards: $shards,
      scheduler: $scheduler, steal_variance: $steal_variance,
      optimize: $optimize, updates: $updates, incremental: $incremental,
      sat_preprocess: $sat_preprocess, sat_portfolio: $sat_portfolio,
      serve_threads: $serve_threads, cache: $cache,
      context: .context, benchmarks: .benchmarks}' <<<"$out"
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench binaries in '$build_dir' (build the project first)" >&2
  exit 1
fi
exit "$status"
