// E8 — Section 5 / Proposition 1: the expressiveness picture
//   DATALOG ⊂ Stratified ⊂ Inflationary DATALOG = FP = FO+IFP.
//
// Series regenerated:
//   * Proposition 1 both ways: the FO+IFP evaluation of a program's
//     operator formula vs. the engine's inflationary evaluation of the
//     same program (identical answers; the engine's join machinery wins
//     by a growing factor over tuple-at-a-time model checking);
//   * the monotonicity separation: counters report a concrete
//     monotonicity violation for the distance query (add an edge, lose a
//     tuple), the reason it cannot be DATALOG;
//   * semantics whose complexity stays polynomial (inflationary,
//     well-founded, stratified) vs. stable-model enumeration, which
//     explodes on Gₖ with its 2ᵏ models — the modern echo of the paper's
//     intractability results.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/eval/inflationary.h"
#include "src/eval/stable.h"
#include "src/eval/stratified.h"
#include "src/eval/wellfounded.h"
#include "src/logic/ifp.h"

namespace inflog {
namespace {

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";
constexpr char kTc[] = "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).";

void BM_Prop1FormulaIfp(benchmark::State& state) {
  // FO+IFP side: iterate the operator formula extracted from the TC
  // program (tuple-at-a-time model checking).
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kTc, symbols);
  Database db = bench::DbFromGraph(CycleGraph(n), symbols);
  auto op = logic::ProgramToIfpOperator(p);
  INFLOG_CHECK(op.ok());
  logic::FoModel model{&db, {}};
  size_t tuples = 0;
  for (auto _ : state) {
    auto ifp = logic::InflationaryFixpointOfFormula(model, *op);
    INFLOG_CHECK(ifp.ok());
    tuples = ifp->relation.size();
  }
  INFLOG_CHECK(tuples == n * n);  // TC of a cycle is total
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_Prop1FormulaIfp)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Prop1EngineSide(benchmark::State& state) {
  // Inflationary DATALOG side of the same query.
  const size_t n = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kTc, symbols);
  Database db = bench::DbFromGraph(CycleGraph(n), symbols);
  size_t tuples = 0;
  for (auto _ : state) {
    auto result = EvalInflationary(p, db);
    INFLOG_CHECK(result.ok());
    tuples = result->state.relations[0].size();
  }
  INFLOG_CHECK(tuples == n * n);
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_Prop1EngineSide)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_MonotonicityViolation(benchmark::State& state) {
  // DATALOG queries are monotone; the distance query is not. Count
  // carrier tuples lost when an edge is ADDED — any positive count
  // certifies the separation (Proposition 2's argument, measured).
  const size_t n = state.range(0);
  constexpr char kDistance[] =
      "S1(X,Y) :- E(X,Y).\n"
      "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
      "S2(X,Y) :- E(X,Y).\n"
      "S2(X,Y) :- E(X,Z), S2(Z,Y).\n"
      "S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).\n"
      "S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).\n";
  double lost = 0;
  for (auto _ : state) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = bench::MustProgram(kDistance, symbols);
    Database small = bench::DbFromGraph(PathGraph(n), symbols);
    Digraph bigger = PathGraph(n);
    bigger.AddEdge(0, n - 1);  // shortcut shortens d(0, n-1) to 1
    Database big = bench::DbFromGraph(bigger, symbols);
    auto on_small = EvalInflationary(p, small);
    auto on_big = EvalInflationary(p, big);
    INFLOG_CHECK(on_small.ok() && on_big.ok());
    const Relation& s = on_small->state.relations[2];
    const Relation& b = on_big->state.relations[2];
    size_t diff = 0;
    for (size_t r = 0; r < s.size(); ++r) {
      if (!b.Contains(s.Row(r))) ++diff;
    }
    INFLOG_CHECK(diff > 0) << "monotonicity violation must be visible";
    lost = static_cast<double>(diff);
  }
  state.counters["tuples_lost_on_edge_add"] = lost;
}
BENCHMARK(BM_MonotonicityViolation)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PolySemanticsOnGk(benchmark::State& state) {
  // Inflationary and well-founded stay polynomial on Gₖ...
  const size_t k = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(DisjointCycles(k, 4), symbols);
  for (auto _ : state) {
    auto inf = EvalInflationary(p, db);
    INFLOG_CHECK(inf.ok());
    auto wf = EvalWellFounded(p, db);
    INFLOG_CHECK(wf.ok());
    INFLOG_CHECK(!wf->total);  // the cycles stay undefined
    benchmark::DoNotOptimize(inf->state.TotalTuples());
  }
  state.counters["cycles_k"] = static_cast<double>(k);
}
BENCHMARK(BM_PolySemanticsOnGk)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_StableEnumerationOnGk(benchmark::State& state) {
  // ...while stable-model enumeration pays for all 2ᵏ models.
  const size_t k = state.range(0);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kPi1, symbols);
  Database db = bench::DbFromGraph(DisjointCycles(k, 4), symbols);
  double models = 0;
  for (auto _ : state) {
    auto stable = EnumerateStableModels(p, db);
    INFLOG_CHECK(stable.ok());
    INFLOG_CHECK(stable->models.size() == (uint64_t{1} << k));
    models = static_cast<double>(stable->models.size());
  }
  state.counters["stable_models"] = models;
}
BENCHMARK(BM_StableEnumerationOnGk)->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedVsInflationaryOnStratified(benchmark::State& state) {
  // On stratified programs the inflationary semantics subsumes the
  // stratified one in availability; here both run on the TC∧¬TC query.
  const size_t n = state.range(0);
  constexpr char kLayered[] =
      "R(X,Y) :- E(X,Y).\n"
      "R(X,Y) :- E(X,Z), R(Z,Y).\n"
      "Un(X,Y) :- E(Y,X), !R(X,Y).\n";
  Rng rng(n);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = bench::MustProgram(kLayered, symbols);
  Database db =
      bench::DbFromGraph(RandomDigraph(n, 2.0 / n, &rng), symbols);
  for (auto _ : state) {
    auto strat = EvalStratified(p, db);
    INFLOG_CHECK(strat.ok());
    benchmark::DoNotOptimize(strat->state.TotalTuples());
  }
  state.counters["vertices"] = static_cast<double>(n);
}
BENCHMARK(BM_StratifiedVsInflationaryOnStratified)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace inflog
