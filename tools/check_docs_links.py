#!/usr/bin/env python3
"""Fails when any tracked Markdown file contains a dead relative link.

Scans every *.md file in the repository (skipping build trees and hidden
directories), extracts inline Markdown links [text](target), and checks
that each *relative* target resolves to an existing file or directory.
External targets (http/https/mailto), pure in-page anchors (#...), and
absolute paths are skipped — the job of this checker is only to keep the
docs/ tree and the READMEs pointing at files that exist, wherever the
repository is checked out.

Usage:  tools/check_docs_links.py [repo_root]
Exit:   0 when every relative link resolves, 1 otherwise (each dead link
        is printed as file:line: target).
"""

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first ')' or whitespace, which is enough
# for the plain-path links the docs use (no nested parentheses, no
# titles).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {"build", "build-release", "build-tsan", ".git"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        parts = set(path.relative_to(root).parts[:-1])
        if parts & SKIP_DIRS:
            continue
        if any(p.startswith(".") for p in path.relative_to(root).parts[:-1]):
            continue
        yield path


def check_file(path: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            if target.startswith("#") or target.startswith("/"):
                continue  # in-page anchor / absolute path
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    errors = []
    count = 0
    for path in iter_markdown(root):
        count += 1
        errors.extend(check_file(path))
    if errors:
        print("dead relative links:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"checked {count} Markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
