#include "src/eval/stable.h"

#include "src/eval/reduct.h"

namespace inflog {

Result<StableResult> EnumerateStableModels(const Program& program,
                                           const Database& database,
                                           const StableOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(
      FixpointAnalyzer analyzer,
      FixpointAnalyzer::Create(&program, &database, options.analyze));
  const GroundProgram& ground = analyzer.ground();
  const CompletionEncoding& encoding = analyzer.encoding();

  // Enumerate supported models directly at the SAT level so we can apply
  // the stability filter on atom vectors.
  INFLOG_ASSIGN_OR_RETURN(sat::Solver solver, [&]() -> Result<sat::Solver> {
    sat::Solver s(options.analyze.solver);
    s.AddCnf(encoding.cnf);
    return s;
  }());

  StableResult out;
  while (out.supported_examined < options.max_supported) {
    const sat::SolveResult res = solver.Solve();
    if (res == sat::SolveResult::kUnknown) {
      return Status::ResourceExhausted("SAT conflict budget exhausted");
    }
    if (res == sat::SolveResult::kUnsat) return out;
    ++out.supported_examined;
    const std::vector<bool> atoms = encoding.DecodeAtoms(solver.Model());
    // Gelfond–Lifschitz check: S is stable iff S = LM(P^S).
    if (LeastModelOfReduct(ground, atoms) == atoms) {
      out.models.push_back(ground.DecodeState(program, atoms));
    }
    // Block this supported model and continue.
    sat::Clause block;
    for (size_t a = 0; a < encoding.atom_vars.size(); ++a) {
      const int32_t var = encoding.atom_vars[a];
      if (var < 0) continue;
      block.push_back(atoms[a] ? sat::Neg(var) : sat::Pos(var));
    }
    if (block.empty() || !solver.AddClause(block)) return out;
  }
  return Status::ResourceExhausted("supported-model budget exhausted");
}

}  // namespace inflog
