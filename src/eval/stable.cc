#include "src/eval/stable.h"

#include <algorithm>

#include "src/eval/reduct.h"

namespace inflog {

namespace {

// Copies a portfolio's aggregated CDCL counters into the sat_* block of
// the engine-level stats.
void FillSatStats(const sat::SolverStats& s, EvalStats* stats) {
  stats->sat_conflicts = s.conflicts;
  stats->sat_decisions = s.decisions;
  stats->sat_propagations = s.propagations;
  stats->sat_restarts = s.restarts;
  stats->sat_learned = s.learned_clauses;
  stats->sat_deleted = s.deleted_clauses;
  stats->sat_preprocess_vars_eliminated = s.preprocess_vars_eliminated;
  stats->sat_preprocess_clauses_removed = s.preprocess_clauses_removed;
}

}  // namespace

Result<StableResult> EnumerateStableModels(const Program& program,
                                           const Database& database,
                                           const StableOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(
      FixpointAnalyzer analyzer,
      FixpointAnalyzer::Create(&program, &database, options.analyze));
  const GroundProgram& ground = analyzer.ground();
  const CompletionEncoding& encoding = analyzer.encoding();

  // Enumerate supported models directly at the SAT level so we can apply
  // the stability filter on atom vectors. Atom variables are frozen: the
  // blocking clauses below reference them after the first Solve, and
  // freezing keeps preprocessing an exact projection onto them.
  sat::PortfolioSolver solver(options.analyze.solver);
  solver.AddCnf(encoding.cnf);
  for (const int32_t var : encoding.atom_vars) {
    if (var >= 0) solver.FreezeVar(var);
  }

  StableResult out;
  std::vector<std::vector<bool>> stable_atoms;
  bool enumeration_complete = false;
  while (out.supported_examined < options.max_supported) {
    const sat::SolveResult res = solver.Solve();
    if (res == sat::SolveResult::kUnknown) {
      return Status::ResourceExhausted("SAT conflict budget exhausted");
    }
    if (res == sat::SolveResult::kUnsat) {
      enumeration_complete = true;
      break;
    }
    ++out.supported_examined;
    const std::vector<bool> atoms = encoding.DecodeAtoms(solver.Model());
    // Gelfond–Lifschitz check: S is stable iff S = LM(P^S).
    if (LeastModelOfReduct(ground, atoms) == atoms) {
      stable_atoms.push_back(atoms);
    }
    // Block this supported model and continue.
    sat::Clause block;
    for (size_t a = 0; a < encoding.atom_vars.size(); ++a) {
      const int32_t var = encoding.atom_vars[a];
      if (var < 0) continue;
      block.push_back(atoms[a] ? sat::Neg(var) : sat::Pos(var));
    }
    if (block.empty() || !solver.AddClause(block)) {
      enumeration_complete = true;
      break;
    }
  }
  if (!enumeration_complete) {
    return Status::ResourceExhausted("supported-model budget exhausted");
  }
  // Canonical order: the model list is then identical whatever order the
  // solver configuration produced the supported models in.
  std::sort(stable_atoms.begin(), stable_atoms.end());
  out.models.reserve(stable_atoms.size());
  for (const std::vector<bool>& atoms : stable_atoms) {
    out.models.push_back(ground.DecodeState(program, atoms));
  }
  FillSatStats(solver.stats(), &out.stats);
  return out;
}

}  // namespace inflog
