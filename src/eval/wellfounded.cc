#include "src/eval/wellfounded.h"

#include "src/eval/fixpoint_driver.h"
#include "src/eval/reduct.h"

namespace inflog {

Result<WellFoundedResult> EvalWellFounded(const Program& program,
                                          const Database& database,
                                          const GrounderOptions& options) {
  WellFoundedResult out;
  INFLOG_ASSIGN_OR_RETURN(out.ground,
                          GroundProgramFor(program, database, options));
  const size_t num_atoms = out.ground.atoms.size();

  // Van Gelder's alternating iteration U_{k+1} = S(S(U_k)) through the
  // shared driver; each step reports how many atoms U gained (U is
  // ⊆-increasing, so 0 new atoms means the alternation has converged).
  std::vector<bool> under(num_atoms, false);  // U: definitely true
  std::vector<bool> over;                     // V: possibly true
  FixpointDriver::Iterate({}, [&](size_t) -> size_t {
    ++out.rounds;
    over = LeastModelOfReduct(out.ground, under);
    std::vector<bool> next_under = LeastModelOfReduct(out.ground, over);
    size_t gained = 0;
    for (size_t a = 0; a < num_atoms; ++a) {
      if (next_under[a] != under[a]) ++gained;
    }
    under = std::move(next_under);
    return gained;
  });

  out.truth.assign(num_atoms, 0);
  out.true_state = out.ground.DecodeState(program, under);
  std::vector<bool> undefined(num_atoms, false);
  out.total = true;
  for (size_t a = 0; a < num_atoms; ++a) {
    if (under[a]) {
      out.truth[a] = 1;
    } else if (over[a]) {
      out.truth[a] = -1;
      undefined[a] = true;
      out.total = false;
    }
  }
  out.undefined_state = out.ground.DecodeState(program, undefined);
  return out;
}

}  // namespace inflog
