#include "src/eval/wellfounded.h"

#include "src/eval/reduct.h"

namespace inflog {

Result<WellFoundedResult> EvalWellFounded(const Program& program,
                                          const Database& database,
                                          const GrounderOptions& options) {
  WellFoundedResult out;
  INFLOG_ASSIGN_OR_RETURN(out.ground,
                          GroundProgramFor(program, database, options));
  const size_t num_atoms = out.ground.atoms.size();

  std::vector<bool> under(num_atoms, false);  // U: definitely true
  std::vector<bool> over;                     // V: possibly true
  while (true) {
    ++out.rounds;
    over = LeastModelOfReduct(out.ground, under);
    std::vector<bool> next_under = LeastModelOfReduct(out.ground, over);
    if (next_under == under) break;
    under = std::move(next_under);
  }

  out.truth.assign(num_atoms, 0);
  out.true_state = out.ground.DecodeState(program, under);
  std::vector<bool> undefined(num_atoms, false);
  out.total = true;
  for (size_t a = 0; a < num_atoms; ++a) {
    if (under[a]) {
      out.truth[a] = 1;
    } else if (over[a]) {
      out.truth[a] = -1;
      undefined[a] = true;
      out.total = false;
    }
  }
  out.undefined_state = out.ground.DecodeState(program, undefined);
  return out;
}

}  // namespace inflog
