// Rule planning: compiles one DATALOG¬ rule into an operator sequence the
// executor interprets.
//
// The planner orders positive atoms greedily (most bound argument columns
// first), turns equalities into variable bindings as soon as one side is
// known, applies inequality and negated-atom filters the moment all their
// variables are bound, and enumerates any residual variables (unsafe-rule
// head variables, variables appearing only under negation) over the
// evaluation universe — the paper's active-domain semantics.
//
// For semi-naive evaluation the planner can be asked to pin one positive
// body literal on a dynamic IDB predicate as the "delta" literal: it is
// scanned first, restricted at runtime to the rows added in the previous
// stage.

#ifndef INFLOG_EVAL_PLAN_H_
#define INFLOG_EVAL_PLAN_H_

#include <string>
#include <vector>

#include "src/ast/program.h"

namespace inflog {

class EvalContext;

/// One step of a compiled rule plan.
struct PlanOp {
  enum class Kind {
    kMatch,          ///< Join with a positive atom (scan or index lookup).
    kBindEq,         ///< Bind a variable from an equality literal.
    kFilterEq,       ///< Check an equality with both sides bound.
    kFilterNeq,      ///< Check an inequality with both sides bound.
    kFilterNegAtom,  ///< Check a fully bound tuple is absent (¬Q(t̄)).
    kEnumerate,      ///< Bind a variable to each universe element in turn.
  };

  Kind kind;

  // kMatch / kFilterNegAtom:
  uint32_t predicate = kNoPredicate;
  std::vector<Term> args;
  /// Argument positions whose value is known when the op runs (constants
  /// or already-bound variables); used as the index key. Empty => scan.
  std::vector<size_t> key_cols;
  /// kMatch only: scan the previous stage's delta rows of this dynamic
  /// predicate instead of the whole relation.
  bool is_delta_scan = false;
  /// kMatch only: when >= 0, scan the stage's shared-intermediate
  /// relation with this index (subplan sharing, src/opt/subplan_share.h)
  /// instead of resolving `predicate` — which is kNoPredicate then. The
  /// executor receives the intermediates alongside the plan.
  int shared_source = -1;

  // kBindEq: bind `target_var` to the value of `source`.
  // kFilterEq / kFilterNeq: compare `lhs` and `rhs`.
  uint32_t target_var = 0;
  Term source = Term::Const(0);
  Term lhs = Term::Const(0);
  Term rhs = Term::Const(0);

  // kEnumerate:
  uint32_t enum_var = 0;
};

/// A compiled rule.
struct RulePlan {
  /// Index of the rule within the program.
  size_t rule_index = 0;
  /// Ops in execution order; after the last op all head variables are bound
  /// and the executor emits the head tuple.
  std::vector<PlanOp> ops;
  /// True when plan-time constant folding proved the body unsatisfiable
  /// (e.g. a literal `c = d` on distinct constants).
  bool never_fires = false;
  /// The body literal pinned as delta, or -1 for a full evaluation plan.
  int delta_literal = -1;
  /// Body indices of the non-delta positive atoms in placement order —
  /// the order the planner joined them (greedy or explicit). The join
  /// reordering pass compares and replaces this.
  std::vector<size_t> atom_order;
  /// When true the executor emits `projection` instead of the rule head —
  /// shared subplans use this to stage their projected prefix bindings
  /// into an intermediate relation (arity projection.size(), possibly 0).
  bool has_projection = false;
  std::vector<Term> projection;

  /// Debug rendering of the op sequence.
  std::string ToString(const Program& program) const;
};

/// Compiles rule `rule_index` of `program`. `dynamic_idb` (by idb_index)
/// says which IDB predicates evolve (affects delta eligibility only).
/// `delta_literal` is -1 for a full plan, or the index of a positive body
/// literal on a dynamic IDB predicate to pin as the delta.
RulePlan PlanRule(const Program& program, size_t rule_index,
                  const std::vector<bool>& dynamic_idb, int delta_literal);

/// Like PlanRule, but joins the non-delta positive atoms in exactly
/// `atom_order` (body indices; must be a permutation of the rule's
/// non-delta positive atoms) instead of the greedy order. Filter
/// placement, residual enumeration, and the delta pin are unchanged —
/// the cost-based join reordering pass replans through this.
RulePlan PlanRuleWithOrder(const Program& program, size_t rule_index,
                           const std::vector<bool>& dynamic_idb,
                           int delta_literal,
                           const std::vector<size_t>& atom_order);

/// Indices of body literals eligible as delta literals (positive atoms on
/// dynamic IDB predicates).
std::vector<int> DeltaCandidates(const Program& program, const Rule& rule,
                                 const std::vector<bool>& dynamic_idb);

}  // namespace inflog

#endif  // INFLOG_EVAL_PLAN_H_
