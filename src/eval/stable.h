// Stable model semantics (Gelfond–Lifschitz), as a filter over the
// paper's fixpoints.
//
// Every stable model is a fixpoint of Θ (a supported model), but not
// conversely: S(x) ← S(x) supports any subset of A while only ∅ is
// stable. The enumerator therefore runs the supported-model pipeline
// (ground → completion → CDCL with blocking clauses) and keeps the models
// that equal the least model of their own reduct. This is the modern
// answer-set view of the negation problem the paper posed; the
// experiments use it to situate the fixpoint/inflationary semantics
// against the XSB/DLV/clingo lineage.

#ifndef INFLOG_EVAL_STABLE_H_
#define INFLOG_EVAL_STABLE_H_

#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/executor.h"
#include "src/eval/idb_state.h"
#include "src/fixpoint/analysis.h"
#include "src/relation/database.h"

namespace inflog {

/// Options for stable-model enumeration.
struct StableOptions {
  /// Cap on the number of *supported* models examined.
  size_t max_supported = 100'000;
  AnalyzeOptions analyze;
};

/// Result of stable-model enumeration.
struct StableResult {
  /// The stable models, sorted canonically (by ground-atom assignment) so
  /// the result is bit-identical whatever order the solver configuration
  /// (preprocessing, deletion, portfolio width) finds them in.
  std::vector<IdbState> models;
  /// Supported models (fixpoints) examined — ≥ models.size(); the gap is
  /// the supported-but-not-stable count (e.g. self-supported loops).
  size_t supported_examined = 0;
  /// Run counters; the sat_* block carries the CDCL statistics of the
  /// supported-model enumeration.
  EvalStats stats;
};

/// Enumerates the stable models of (π, D).
Result<StableResult> EnumerateStableModels(const Program& program,
                                           const Database& database,
                                           const StableOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_EVAL_STABLE_H_
