// Inflationary DATALOG — the paper's proposed semantics (Section 4).
//
// The inflationary semantics of π on D is Θ^∞ = ⋃ₙ Θⁿ where Θ¹ = Θ(∅) and
// Θⁿ⁺¹ = Θⁿ ∪ Θ(Θⁿ): the inductive fixpoint of the inflationary operator
// Θ̂(S) = S ∪ Θ(S). It is total (every DATALOG¬ program gets a meaning),
// agrees with the least fixpoint on negation-free DATALOG, and is
// computable in polynomial time — the sequence is increasing and stabilizes
// after at most |A|^k · m stages.

#ifndef INFLOG_EVAL_INFLATIONARY_H_
#define INFLOG_EVAL_INFLATIONARY_H_

#include <string>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/context.h"
#include "src/eval/seminaive.h"
#include "src/relation/database.h"

namespace inflog {

/// Options for the inflationary evaluator.
struct InflationaryOptions {
  /// Semi-naive (delta-restricted) stages; switch off for the naive
  /// re-derive-everything driver used as an oracle and ablation baseline.
  bool use_seminaive = true;
  /// Stop after this many stages (0 = run to the inductive fixpoint).
  size_t max_stages = 0;
  EvalContextOptions context;
};

/// The inflationary semantics of (π, D) with per-stage bookkeeping.
struct InflationaryResult {
  IdbState state;  ///< Θ^∞ (or Θ^max_stages if capped).
  /// Number of productive stages n₀ (Sⁿ⁰ = Sⁿ⁰⁺¹).
  size_t num_stages = 0;
  bool converged = false;
  /// stage_sizes[idb_index][k] = relation size after stage k+1.
  std::vector<std::vector<size_t>> stage_sizes;
  /// Per-shard breakdown of stage_sizes (see SemiNaiveOutcome); the
  /// bookkeeping TupleStage reads row addresses against.
  std::vector<std::vector<std::vector<size_t>>> stage_shard_sizes;
  EvalStats stats;

  /// The 1-based stage at which `tuple` entered relation `idb_index`, or 0
  /// if the tuple is not in Θ^∞. Proposition 2's distance program encodes
  /// path lengths in exactly these stages.
  size_t TupleStage(size_t idb_index, TupleView tuple) const;
};

/// Evaluates the inflationary semantics of `program` on `database`.
Result<InflationaryResult> EvalInflationary(
    const Program& program, const Database& database,
    const InflationaryOptions& options = {});

/// Least-fixpoint semantics for (positive) DATALOG programs. Fails with
/// FailedPrecondition if `program` is not positive; on positive programs
/// the operator is monotone, so this equals the inflationary semantics
/// (and the paper's standard DATALOG semantics).
Result<InflationaryResult> EvalLeastFixpoint(
    const Program& program, const Database& database,
    const InflationaryOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_EVAL_INFLATIONARY_H_
