#include "src/eval/idb_state.h"

#include "src/base/strings.h"

namespace inflog {

IdbState MakeEmptyIdbState(const Program& program, size_t num_shards) {
  IdbState state;
  state.relations.reserve(program.idb_predicates().size());
  for (uint32_t pred : program.idb_predicates()) {
    state.relations.emplace_back(program.predicate(pred).arity, num_shards);
  }
  return state;
}

IdbState IntersectStates(const IdbState& a, const IdbState& b) {
  INFLOG_CHECK(a.relations.size() == b.relations.size());
  IdbState out;
  out.relations.reserve(a.relations.size());
  for (size_t i = 0; i < a.relations.size(); ++i) {
    INFLOG_CHECK(a.relations[i].arity() == b.relations[i].arity());
    Relation r(a.relations[i].arity());
    for (size_t row = 0; row < a.relations[i].size(); ++row) {
      TupleView t = a.relations[i].Row(row);
      if (b.relations[i].Contains(t)) r.Insert(t);
    }
    out.relations.push_back(std::move(r));
  }
  return out;
}

std::string IdbStateToString(const Program& program, const IdbState& state) {
  std::string out;
  const auto& idb = program.idb_predicates();
  INFLOG_CHECK(idb.size() == state.relations.size());
  for (size_t i = 0; i < idb.size(); ++i) {
    out += StrCat(program.predicate(idb[i]).name, " = ",
                  state.relations[i].ToString(program.symbols()), "\n");
  }
  return out;
}

}  // namespace inflog
