#include "src/eval/seminaive.h"

#include <numeric>

#include "src/base/logging.h"

namespace inflog {

SemiNaiveOutcome RunSemiNaive(const EvalContext& ctx,
                              const SemiNaiveOptions& options,
                              IdbState* state) {
  const Program& program = ctx.program();
  const size_t num_idb = program.idb_predicates().size();
  INFLOG_CHECK(state->relations.size() == num_idb);

  std::vector<size_t> rules = options.rule_subset;
  if (rules.empty()) {
    rules.resize(program.rules().size());
    std::iota(rules.begin(), rules.end(), 0);
  }

  // Dynamic mask mirrors the context's classification.
  std::vector<bool> dynamic(num_idb, false);
  for (size_t i = 0; i < num_idb; ++i) {
    dynamic[i] = ctx.IsDynamic(program.idb_predicates()[i]);
  }

  // Compile plans: a full plan per rule (stage 1), and one delta plan per
  // (rule, dynamic positive literal) for later stages.
  struct CompiledRule {
    size_t rule_index;
    int head_idb;
    RulePlan full;
    std::vector<RulePlan> deltas;
  };
  std::vector<CompiledRule> compiled;
  compiled.reserve(rules.size());
  for (size_t r : rules) {
    const Rule& rule = program.rules()[r];
    const int idb = program.predicate(rule.head.predicate).idb_index;
    INFLOG_CHECK(idb >= 0 && dynamic[idb])
        << "semi-naive rule subset must have dynamic head predicates";
    CompiledRule c{r, idb, PlanRule(program, r, dynamic, -1), {}};
    if (options.use_deltas) {
      for (int lit : DeltaCandidates(program, rule, dynamic)) {
        c.deltas.push_back(PlanRule(program, r, dynamic, lit));
      }
    }
    compiled.push_back(std::move(c));
  }

  SemiNaiveOutcome out;
  out.stage_sizes.resize(num_idb);

  // Derivations are buffered per stage and merged afterwards, so every
  // stage reads a consistent Sⁿ (and so relations are never mutated while
  // scanned).
  auto make_buffers = [&]() {
    std::vector<Relation> buffers;
    buffers.reserve(num_idb);
    for (uint32_t pred : program.idb_predicates()) {
      buffers.emplace_back(program.predicate(pred).arity);
    }
    return buffers;
  };

  DeltaRanges deltas(num_idb, {0, 0});
  bool first_stage = true;
  while (true) {
    if (options.max_stages != 0 && out.num_stages >= options.max_stages) {
      return out;  // converged stays false
    }
    std::vector<Relation> buffers = make_buffers();
    if (first_stage || !options.use_deltas) {
      for (const CompiledRule& c : compiled) {
        ExecutePlan(ctx, c.full, *state, nullptr, &buffers[c.head_idb],
                    &out.stats);
      }
    } else {
      for (const CompiledRule& c : compiled) {
        for (const RulePlan& plan : c.deltas) {
          ExecutePlan(ctx, plan, *state, &deltas, &buffers[c.head_idb],
                      &out.stats);
        }
      }
    }
    first_stage = false;
    // Merge the stage's derivations; the appended row ranges become the
    // next deltas.
    size_t added = 0;
    for (size_t i = 0; i < num_idb; ++i) {
      const size_t before = state->relations[i].size();
      added += state->relations[i].InsertAll(buffers[i]);
      deltas[i] = {before, state->relations[i].size()};
    }
    if (added == 0) {
      out.converged = true;
      return out;
    }
    ++out.num_stages;
    ++out.stats.stages;
    for (size_t i = 0; i < num_idb; ++i) {
      out.stage_sizes[i].push_back(state->relations[i].size());
    }
  }
}

}  // namespace inflog
