#include "src/eval/seminaive.h"

#include "src/eval/fixpoint_driver.h"

namespace inflog {

SemiNaiveOutcome RunSemiNaive(const EvalContext& ctx,
                              const SemiNaiveOptions& options,
                              IdbState* state) {
  RelationalConsequence::Options theta_options;
  theta_options.rule_subset = options.rule_subset;
  theta_options.use_deltas = options.use_deltas;
  theta_options.pool_cache = options.pool_cache;
  theta_options.initial_deltas = options.initial_deltas;
  RelationalConsequence theta(ctx, theta_options, state);

  FixpointDriver::Options driver_options;
  driver_options.max_stages = options.max_stages;
  const FixpointDriver::Outcome outcome = FixpointDriver::Iterate(
      driver_options, [&](size_t stage) { return theta.Step(stage); });

  SemiNaiveOutcome out;
  out.num_stages = outcome.num_stages;
  out.converged = outcome.converged;
  out.stage_sizes = theta.stage_sizes();
  out.stage_shard_sizes = theta.stage_shard_sizes();
  out.stats = theta.stats();
  return out;
}

}  // namespace inflog
