// FixpointDriver: the single operator-iteration core behind every
// semantics in the library.
//
// The paper's semantics all arise by iterating an immediate-consequence
// operator to a fixpoint — inflationary DATALOG¬ iterates Θ̂(S) = S ∪ Θ(S)
// over IDB relations, the stratified semantics runs the same iteration
// stratum by stratum, the well-founded semantics alternates the reduct
// operator, and the stable-model check closes a positive ground residue
// under immediate consequence. This file factors that shared shape into
// one driver plus the two concrete consequence operators:
//
//   * FixpointDriver::Iterate — the stage loop: call a step function until
//     it reports no growth (or a stage cap is hit), counting productive
//     stages. Every fixpoint computation in the library runs through it.
//   * RelationalConsequence — Θ̂ over an IdbState: compiled rule plans
//     (full plans for stage 1, one delta plan per dynamic positive literal
//     for later stages), per-stage derivation buffers, buffer merge, and
//     the delta row ranges handed to the executor.
//   * GroundConsequence — the immediate-consequence operator of a positive
//     ground program (a Gelfond–Lifschitz reduct), propagated with
//     rule-body counters so total work stays linear in program size.
//
// Per-semantics files (inflationary.cc, stratified.cc, wellfounded.cc,
// stable.cc) parameterize these; none of them owns a stage/delta loop.

#ifndef INFLOG_EVAL_FIXPOINT_DRIVER_H_
#define INFLOG_EVAL_FIXPOINT_DRIVER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/eval/context.h"
#include "src/eval/executor.h"
#include "src/ground/ground_program.h"
#include "src/opt/plan_ir.h"

namespace inflog {

/// The shared stage loop.
class FixpointDriver {
 public:
  struct Options {
    /// Stop after this many productive stages (0 = run to the fixpoint).
    size_t max_stages = 0;
  };

  struct Outcome {
    /// Number of productive stages (stages that added at least one fact);
    /// the n₀ with S^{n₀} = S^{n₀+1} of Section 4.
    size_t num_stages = 0;
    /// True iff the run reached the fixpoint (false only when max_stages
    /// cut it short).
    bool converged = false;
  };

  /// One application of the inflationary step: grow the state in place and
  /// return the number of new facts. `stage` is the 0-based index of the
  /// stage about to run.
  using StepFn = std::function<size_t(size_t stage)>;

  /// Iterates `step` until it returns 0 (converged) or `max_stages`
  /// productive stages have run.
  static Outcome Iterate(const Options& options, const StepFn& step);
};

/// Θ̂ over an IdbState: the relational immediate-consequence operator with
/// semi-naive (delta) stages and per-stage buffering. Grows `*state` in
/// place (append-only); one instance drives one fixpoint run. The state's
/// relations may be hash-sharded (EvalContextOptions::num_shards); all of
/// them must share one shard count, and staging relations are created
/// with the same count so the shard partitions agree everywhere.
///
/// Parallel stages (EvalContextOptions::num_threads > 1): every stage is a
/// pure join over the frozen previous state Sⁿ, so the stage's work is
/// split into (rule plan × delta slice) tasks that run on a
/// base::ThreadPool, each writing into its own sharded staging Relation.
/// Before either scheduler runs, the stage's delta plans are partitioned
/// into units: plans whose delta is at least min_slice_rows rows stand
/// alone (and get sliced or stolen), while consecutive smaller plans are
/// batched into one unit sharing a single task — rule-heavy programs no
/// longer pay one staging relation per nearly empty plan
/// (EvalStats::batched_plans counts them). Two schedulers then cut the
/// work, with a third mode choosing between them per stage
/// (EvalContextOptions::scheduler):
///
///   * kStatic slices each delta predicate's per-shard ranges up front
///     (about four slices per thread, none below min_slice_rows) and
///     claims them from a shared counter;
///   * kStealing hands one chunk per delta plan to per-worker deques
///     (ThreadPool::ParallelForDynamic); idle workers steal, and
///     oversized chunks split in half while anyone is hungry, so a slice
///     hiding most of the stage's join work cannot serialize the stage;
///   * kAuto (the default) estimates each static task's work up front —
///     delta rows weighted by the posting-list lengths the plan's first
///     index probe would walk (EstimateDeltaWork, sampled) — and flips
///     the stage to kStealing only when the estimates' coefficient of
///     variation exceeds EvalContextOptions::steal_variance, so skewed
///     stages get the stealing machinery and uniform ones skip its
///     overhead (EvalStats::auto_{static,stealing}_stages record the
///     decisions).
///
/// Both merges — task stagings into the stage buffers, stage buffers into
/// the state — are shard-wise ParallelFors: each worker owns one shard
/// across all relations and folds the task outputs in serial task order
/// (for the stealing scheduler, chunk outputs sorted by their
/// deterministic (plan, first delta row) key — stealing reorders
/// *execution*, never the fold), so no two workers ever write the same
/// shard and no serial merge runs on the hot path. The fold order being
/// the serial execution order, relations (per-shard row ids included),
/// stage_sizes(), and stats (apart from the partition bookkeeping:
/// parallel_tasks, steals, splits, slices, slice_hist) are bit-identical
/// to the num_threads == 1 run at every shard count under either
/// scheduler. Before fan-out, the stage finalizes every column index its
/// plans will probe (Relation::EnsureIndexed), making all reads during
/// the stage lock-free.
class RelationalConsequence {
 public:
  struct Options {
    /// Rules to evaluate (indices into program.rules()); empty = all.
    std::vector<size_t> rule_subset;
    /// If false, recompute full Θ every stage (the naive driver; used as a
    /// cross-check oracle and as the ablation baseline in bench E6).
    bool use_deltas = true;
    /// Optional caller-owned pool slot shared across several consequence
    /// operators (the stratified evaluator reuses one pool across strata
    /// instead of spawning threads per stratum). The slot is filled lazily
    /// by the first stage that fans out; when null the operator keeps its
    /// own private slot. Must outlive the operator.
    std::unique_ptr<ThreadPool>* pool_cache = nullptr;
    /// Externally seeded initial deltas: when non-null (and use_deltas is
    /// on), stage 0 runs *delta* plans over these per-shard ranges instead
    /// of the full pass. The incremental maintainer records the
    /// [pre-insert, post-insert) shard ranges of the tuples it appended to
    /// the state and seeds the closure run with them, so resuming a
    /// fixpoint after a small insertion costs O(delta), not O(state).
    /// Copied at construction; sized num_idb × num_shards.
    const DeltaRanges* initial_deltas = nullptr;
  };

  /// Compiles the rule plans through the optimizer pass pipeline selected
  /// by ctx.optimizer_passes() (src/opt/pass_manager.h). Rules whose head
  /// predicate is not dynamic in `ctx` must not be part of the subset.
  /// `ctx` and `state` must outlive the operator.
  RelationalConsequence(const EvalContext& ctx, const Options& options,
                        IdbState* state);

  /// Runs one stage: executes the plans (full plans at stage 0 — unless
  /// Options::initial_deltas seeded the run — or when deltas are off,
  /// delta plans otherwise) into fresh buffers, merges the buffers into
  /// the state, and exposes the appended row ranges as the next stage's
  /// deltas. Returns the number of new tuples.
  size_t Step(size_t stage);

  /// stage_sizes[idb_index][k] = relation size after productive stage k+1.
  const std::vector<std::vector<size_t>>& stage_sizes() const {
    return stage_sizes_;
  }

  /// stage_shard_sizes[idb_index][k][s] = rows in shard s after productive
  /// stage k+1. The stage of a tuple at RowRef (s, r) is the first k with
  /// r < stage_shard_sizes[idb][k][s] — the sharded form of the old
  /// global-row-id rule.
  const std::vector<std::vector<std::vector<size_t>>>& stage_shard_sizes()
      const {
    return stage_shard_sizes_;
  }

  const EvalStats& stats() const { return stats_; }

 private:
  /// One plan of a batched delta unit.
  struct BatchEntry {
    const RulePlan* plan;
    int head_idb;
    size_t rows;  ///< The plan's delta rows (0 for plans with no delta).
  };

  /// One schedulable unit of a delta stage, shared by both parallel
  /// schedulers: either a single plan whose delta is big enough to slice
  /// or steal (batch empty), or a contiguous run of tiny plans executed
  /// back to back inside one task. Units appear in serial execution
  /// order (rules in program order, then plan order), which the ordered
  /// fold relies on.
  struct DeltaUnit {
    const RulePlan* plan = nullptr;  ///< Single-plan unit iff batch empty.
    int head_idb = -1;
    int delta_idb = -1;
    size_t rows = 0;
    std::vector<BatchEntry> batch;
    /// Distinct head_idbs this unit stages into, in first-appearance
    /// order — one staging relation and stats block per entry, so a
    /// batch never interleaves two heads in one relation.
    std::vector<int> heads;
  };

  /// Executes the stage's plans serially, straight into `buffers` (the
  /// exact num_threads == 1 path). Allocates no task scaffolding — no
  /// staging relations, no pool, no slices; Step dispatches here directly
  /// when num_threads == 1.
  void RunStageSerial(bool full_pass, std::vector<Relation>* buffers);

  /// Estimates the stage's work, takes the serial path under the
  /// min_slice_rows cutoff, and otherwise partitions the delta plans
  /// into units, resolves kAuto from the estimated static-task imbalance,
  /// and dispatches to RunStageStatic / RunStageStealing after finalizing
  /// the stage's indexes.
  void RunStageParallel(bool full_pass, std::vector<Relation>* buffers);

  /// Cuts the stage's delta plans into DeltaUnits: plans with at least
  /// min_slice_rows delta rows stand alone; consecutive smaller plans
  /// accumulate into batches that flush once they hold min_slice_rows
  /// rows. Records the batching bookkeeping (batched_plans, slices for
  /// the batched plans) into stats_.
  std::vector<DeltaUnit> PartitionDeltaUnits();

  /// The kAuto signal: coefficient of variation of the estimated work of
  /// the tasks the static partition would create (batches whole; big
  /// plans cut into their up-front slices, each weighted by the sampled
  /// posting-list lengths of the plan's first index probe). Deterministic
  /// in (units, state, thread count); reads no EvalStats.
  double EstimateStaticImbalance(const std::vector<DeltaUnit>& units) const;

  /// The kStatic partition: cuts the big units' delta ranges into slices
  /// up front, runs the (unit × slice) tasks with ThreadPool::ParallelFor,
  /// and folds the per-task stagings into `buffers` shard-wise in task
  /// order. `units` is ignored on full passes (one task per rule plan).
  void RunStageStatic(bool full_pass, const std::vector<DeltaUnit>& units,
                      std::vector<Relation>* buffers, ThreadPool& pool);

  /// The kStealing partition: one splittable chunk per big unit (batches
  /// and full plans are atomic) on ThreadPool::ParallelForDynamic; each
  /// executed chunk stages into its own relation(s), and the chunk
  /// outputs are folded shard-wise sorted by (unit, first delta row) —
  /// the serial execution order — so results are bit-identical to the
  /// serial and static paths.
  void RunStageStealing(bool full_pass, const std::vector<DeltaUnit>& units,
                        std::vector<Relation>* buffers, ThreadPool& pool);

  /// One staging relation awaiting its ordered fold into the stage
  /// buffers, with the stats block whose new_tuples the fold rewrites.
  struct StagedOutput {
    int head_idb;
    Relation* out;
    EvalStats* stats;
  };

  /// The determinism-critical fold shared by both schedulers: merges
  /// `ordered` into `buffers` shard-wise (each worker owns one shard,
  /// folding in the given order — which callers must make the serial
  /// execution order), rewrites each stats block's new_tuples from the
  /// merge counts (a tuple derived by two stagings is new in both but
  /// was counted once serially), and accumulates everything — including
  /// the fan-out count — into stats_.
  void FoldStagedOutputs(const std::vector<StagedOutput>& ordered,
                         std::vector<Relation>* buffers, ThreadPool& pool);

  /// Merges the stage buffers into the state and refreshes the per-shard
  /// delta ranges; shard-parallel when a pool is running and the batch is
  /// big enough, serial otherwise — identical output either way. Returns
  /// the number of new tuples.
  size_t MergeStageBuffers(const std::vector<Relation>& buffers);

  /// Brings every column index the stage's plans will probe up to date,
  /// so all relation reads during the parallel stage are lock-free.
  void FinalizeStageIndexes(bool full_pass) const;

  /// Recomputes the stage's shared intermediates (subplan sharing): runs
  /// every SharedSubplan of the pass kind into a fresh shared_rels_ slot
  /// before the stage fans out. Subplans write disjoint outputs, so when
  /// several are pending (and the estimated work clears the serial
  /// cutoff) they run as one ParallelFor task each — after finalizing the
  /// indexes their plans probe — with per-task stats folded in subplan
  /// index order. Each slot's contents are produced by exactly one task
  /// executing the same plan over the same frozen state as the serial
  /// path, so the intermediates — and every consumer read — stay
  /// bit-identical across thread counts and schedulers.
  void ComputeSharedIntermediates(bool full_pass);

  const EvalContext& ctx_;
  IdbState* state_;
  bool use_deltas_;
  /// True iff Options::initial_deltas seeded delta_ranges_, making stage 0
  /// a delta pass.
  bool seeded_ = false;
  /// The optimized plan set (src/opt/pass_manager.h).
  StagePlans plans_;
  /// The stage's shared intermediates, indexed by PlanOp::shared_source;
  /// rebuilt by ComputeSharedIntermediates every stage.
  std::vector<Relation> shared_rels_;
  DeltaRanges delta_ranges_;
  std::vector<std::vector<size_t>> stage_sizes_;
  std::vector<std::vector<std::vector<size_t>>> stage_shard_sizes_;
  EvalStats stats_;
  size_t num_threads_ = 1;
  size_t num_shards_ = 1;
  StageScheduler scheduler_ = StageScheduler::kAuto;
  /// The serial-cutoff / slicing granularity (EvalContext::min_slice_rows).
  size_t min_slice_rows_ = EvalContextOptions::kDefaultMinSliceRows;
  /// kAuto's flip threshold (EvalContext::steal_variance).
  double steal_variance_ = EvalContextOptions::kDefaultStealVariance;
  /// Points at Options::pool_cache when provided, else at own_pool_. The
  /// slot is filled lazily by the first stage that actually fans out; it
  /// stays null when num_threads_ == 1 or every stage is under the serial
  /// cutoff.
  std::unique_ptr<ThreadPool>* pool_slot_ = nullptr;
  std::unique_ptr<ThreadPool> own_pool_;
};

/// The immediate-consequence operator of a positive ground program — the
/// residue of a Gelfond–Lifschitz reduct P^I. Construction discards the
/// rules killed by `assumed_true` and fires the body-less rules; each Step
/// propagates the previous stage's newly derived atoms through per-rule
/// prerequisite counters, so a whole fixpoint run costs O(program size).
class GroundConsequence {
 public:
  GroundConsequence(const GroundProgram& ground,
                    const std::vector<bool>& assumed_true);

  /// Fires every rule whose last prerequisite was derived in the previous
  /// stage; returns the number of newly true atoms.
  size_t Step(size_t stage);

  /// Truth by atom id (the least model once Iterate has converged).
  const std::vector<bool>& model() const { return model_; }
  std::vector<bool> TakeModel() && { return std::move(model_); }

 private:
  const GroundProgram& ground_;
  // Per surviving rule: number of positive prerequisites not yet derived.
  std::vector<uint32_t> missing_;
  // For each atom, the surviving rules in whose positive body it appears.
  std::vector<std::vector<uint32_t>> watchers_;
  std::vector<bool> model_;
  std::vector<uint32_t> frontier_;  // atoms derived in the previous stage
};

}  // namespace inflog

#endif  // INFLOG_EVAL_FIXPOINT_DRIVER_H_
