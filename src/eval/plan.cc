#include "src/eval/plan.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace inflog {

std::vector<int> DeltaCandidates(const Program& program, const Rule& rule,
                                 const std::vector<bool>& dynamic_idb) {
  std::vector<int> out;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    if (!lit.IsPositiveAtom()) continue;
    const PredicateInfo& info = program.predicate(lit.predicate);
    if (info.is_idb && dynamic_idb[info.idb_index]) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

namespace {

/// Incremental plan construction state.
class Planner {
 public:
  Planner(const Program& program, size_t rule_index, int delta_literal,
          const std::vector<size_t>* atom_order = nullptr)
      : program_(program),
        rule_(program.rules()[rule_index]),
        plan_(),
        atom_order_(atom_order) {
    plan_.rule_index = rule_index;
    plan_.delta_literal = delta_literal;
    bound_.assign(rule_.num_vars, false);
  }

  RulePlan Build() {
    // Partition the body.
    std::vector<size_t> atoms;    // positive atoms not yet placed
    std::vector<size_t> filters;  // eq / neq / negated atoms not yet placed
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      if (static_cast<int>(i) == plan_.delta_literal) continue;
      if (rule_.body[i].IsPositiveAtom()) {
        atoms.push_back(i);
      } else {
        filters.push_back(i);
      }
    }
    if (atom_order_ != nullptr) {
      // An explicit order must cover exactly the greedy candidates.
      INFLOG_CHECK(atom_order_->size() == atoms.size())
          << "explicit atom order must be a permutation of the rule's "
             "non-delta positive atoms";
      for (size_t i : *atom_order_) {
        INFLOG_CHECK(std::find(atoms.begin(), atoms.end(), i) != atoms.end())
            << "explicit atom order names literal " << i
            << " which is not an orderable atom";
      }
    }

    // The delta literal, when present, runs first: it is the smallest
    // input and every derivation must touch it.
    if (plan_.delta_literal >= 0) {
      EmitMatch(rule_.body[plan_.delta_literal], /*delta=*/true);
    }

    FlushFilters(&filters);
    size_t placed = 0;
    while (!plan_.never_fires && !atoms.empty()) {
      size_t best;
      if (atom_order_ != nullptr) {
        best = (*atom_order_)[placed++];
        atoms.erase(std::find(atoms.begin(), atoms.end(), best));
      } else {
        best = PopBestAtom(&atoms);
      }
      plan_.atom_order.push_back(best);
      EmitMatch(rule_.body[best], /*delta=*/false);
      FlushFilters(&filters);
    }

    // Residual phase: bind whatever the joins left unbound — head
    // variables and variables appearing only in filters — by enumerating
    // the universe, flushing filters as they become checkable.
    while (!plan_.never_fires) {
      FlushFilters(&filters);
      const int var = PickResidualVar(filters);
      if (var < 0) break;
      PlanOp op;
      op.kind = PlanOp::Kind::kEnumerate;
      op.enum_var = static_cast<uint32_t>(var);
      plan_.ops.push_back(op);
      bound_[var] = true;
    }
    if (!plan_.never_fires) {
      INFLOG_CHECK(filters.empty())
          << "planner left filters unplaced in rule "
          << plan_.rule_index;
      for (const Term& t : rule_.head.args) {
        INFLOG_CHECK(!t.IsVariable() || bound_[t.id])
            << "planner left a head variable unbound";
      }
    }
    return std::move(plan_);
  }

 private:
  bool TermKnown(const Term& t) const {
    return t.IsConstant() || bound_[t.id];
  }

  /// Emits a kMatch op for a positive atom and marks its variables bound.
  void EmitMatch(const Literal& lit, bool delta) {
    PlanOp op;
    op.kind = PlanOp::Kind::kMatch;
    op.predicate = lit.predicate;
    op.args = lit.args;
    op.is_delta_scan = delta;
    if (!delta) {
      for (size_t col = 0; col < lit.args.size(); ++col) {
        if (TermKnown(lit.args[col])) op.key_cols.push_back(col);
      }
    }
    plan_.ops.push_back(op);
    for (const Term& t : lit.args) {
      if (t.IsVariable()) bound_[t.id] = true;
    }
  }

  /// Places every filter that is currently checkable or bindable, looping
  /// until none changes state. Detects plan-time contradictions.
  void FlushFilters(std::vector<size_t>* filters) {
    bool changed = true;
    while (changed && !plan_.never_fires) {
      changed = false;
      for (auto it = filters->begin(); it != filters->end();) {
        const Literal& lit = rule_.body[*it];
        bool placed = false;
        switch (lit.kind) {
          case Literal::Kind::kEq:
            placed = TryPlaceEq(lit);
            break;
          case Literal::Kind::kNeq:
            placed = TryPlaceCheck(lit, PlanOp::Kind::kFilterNeq);
            break;
          case Literal::Kind::kNegAtom:
            placed = TryPlaceNegAtom(lit);
            break;
          case Literal::Kind::kAtom:
            INFLOG_CHECK(false) << "positive atom in filter list";
        }
        if (placed) {
          it = filters->erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  bool TryPlaceEq(const Literal& lit) {
    const Term& a = lit.args[0];
    const Term& b = lit.args[1];
    if (a.IsConstant() && b.IsConstant()) {
      if (a.id != b.id) plan_.never_fires = true;
      return true;  // either contradiction or tautology; no op needed
    }
    if (TermKnown(a) && TermKnown(b)) {
      PlanOp op;
      op.kind = PlanOp::Kind::kFilterEq;
      op.lhs = a;
      op.rhs = b;
      plan_.ops.push_back(op);
      return true;
    }
    if (TermKnown(a) && b.IsVariable()) {
      EmitBind(b.id, a);
      return true;
    }
    if (TermKnown(b) && a.IsVariable()) {
      EmitBind(a.id, b);
      return true;
    }
    return false;  // neither side known yet
  }

  void EmitBind(uint32_t var, const Term& source) {
    PlanOp op;
    op.kind = PlanOp::Kind::kBindEq;
    op.target_var = var;
    op.source = source;
    plan_.ops.push_back(op);
    bound_[var] = true;
  }

  bool TryPlaceCheck(const Literal& lit, PlanOp::Kind kind) {
    const Term& a = lit.args[0];
    const Term& b = lit.args[1];
    if (a.IsConstant() && b.IsConstant()) {
      // `c != d` is a plan-time constant.
      const bool holds = (kind == PlanOp::Kind::kFilterNeq) ? (a.id != b.id)
                                                            : (a.id == b.id);
      if (!holds) plan_.never_fires = true;
      return true;
    }
    if (!TermKnown(a) || !TermKnown(b)) return false;
    PlanOp op;
    op.kind = kind;
    op.lhs = a;
    op.rhs = b;
    plan_.ops.push_back(op);
    return true;
  }

  bool TryPlaceNegAtom(const Literal& lit) {
    for (const Term& t : lit.args) {
      if (!TermKnown(t)) return false;
    }
    PlanOp op;
    op.kind = PlanOp::Kind::kFilterNegAtom;
    op.predicate = lit.predicate;
    op.args = lit.args;
    plan_.ops.push_back(op);
    return true;
  }

  /// Picks the most constrained remaining positive atom: maximal number of
  /// known argument columns, then fewest distinct unbound variables, then
  /// body order. Removes and returns its body index.
  size_t PopBestAtom(std::vector<size_t>* atoms) {
    size_t best_pos = 0;
    int best_known = -1;
    int best_unbound = 1 << 30;
    for (size_t pos = 0; pos < atoms->size(); ++pos) {
      const Literal& lit = rule_.body[(*atoms)[pos]];
      int known = 0;
      int unbound = 0;
      std::vector<uint32_t> seen;
      for (const Term& t : lit.args) {
        if (TermKnown(t)) {
          ++known;
        } else if (std::find(seen.begin(), seen.end(), t.id) == seen.end()) {
          seen.push_back(t.id);
          ++unbound;
        }
      }
      if (known > best_known ||
          (known == best_known && unbound < best_unbound)) {
        best_known = known;
        best_unbound = unbound;
        best_pos = pos;
      }
    }
    const size_t body_index = (*atoms)[best_pos];
    atoms->erase(atoms->begin() + best_pos);
    return body_index;
  }

  /// Chooses the next variable to enumerate over the universe: prefer
  /// variables occurring in unplaced filters (so filters unlock soonest),
  /// then unbound head variables. Returns -1 when nothing remains.
  int PickResidualVar(const std::vector<size_t>& filters) const {
    for (size_t f : filters) {
      for (const Term& t : rule_.body[f].args) {
        if (t.IsVariable() && !bound_[t.id]) return static_cast<int>(t.id);
      }
    }
    for (const Term& t : rule_.head.args) {
      if (t.IsVariable() && !bound_[t.id]) return static_cast<int>(t.id);
    }
    return -1;
  }

  const Program& program_;
  const Rule& rule_;
  RulePlan plan_;
  /// Explicit join order (body indices), or null for the greedy policy.
  const std::vector<size_t>* atom_order_;
  std::vector<bool> bound_;
};

/// Shared argument validation for the PlanRule entry points.
void CheckPlanArgs(const Program& program, size_t rule_index,
                   const std::vector<bool>& dynamic_idb, int delta_literal) {
  INFLOG_CHECK(rule_index < program.rules().size());
  if (delta_literal >= 0) {
    const Rule& rule = program.rules()[rule_index];
    INFLOG_CHECK(static_cast<size_t>(delta_literal) < rule.body.size());
    const Literal& lit = rule.body[delta_literal];
    INFLOG_CHECK(lit.IsPositiveAtom());
    const PredicateInfo& info = program.predicate(lit.predicate);
    INFLOG_CHECK(info.is_idb && dynamic_idb[info.idb_index])
        << "delta literal must be a dynamic IDB atom";
  }
}

}  // namespace

RulePlan PlanRule(const Program& program, size_t rule_index,
                  const std::vector<bool>& dynamic_idb, int delta_literal) {
  CheckPlanArgs(program, rule_index, dynamic_idb, delta_literal);
  return Planner(program, rule_index, delta_literal).Build();
}

RulePlan PlanRuleWithOrder(const Program& program, size_t rule_index,
                           const std::vector<bool>& dynamic_idb,
                           int delta_literal,
                           const std::vector<size_t>& atom_order) {
  CheckPlanArgs(program, rule_index, dynamic_idb, delta_literal);
  return Planner(program, rule_index, delta_literal, &atom_order).Build();
}

std::string RulePlan::ToString(const Program& program) const {
  std::string out = StrCat("plan[rule ", rule_index, ", delta ",
                           delta_literal, "]");
  if (never_fires) return out + " never-fires";
  for (const PlanOp& op : ops) {
    out += "\n  ";
    switch (op.kind) {
      case PlanOp::Kind::kMatch:
        if (op.shared_source >= 0) {
          out += StrCat("shared-scan #", op.shared_source, "/",
                        op.args.size());
          break;
        }
        out += StrCat(op.is_delta_scan ? "delta-scan " : "match ",
                      program.predicate(op.predicate).name, "/",
                      op.args.size(), " keycols=", op.key_cols.size());
        break;
      case PlanOp::Kind::kBindEq:
        out += StrCat("bind v", op.target_var);
        break;
      case PlanOp::Kind::kFilterEq:
        out += "filter-eq";
        break;
      case PlanOp::Kind::kFilterNeq:
        out += "filter-neq";
        break;
      case PlanOp::Kind::kFilterNegAtom:
        out += StrCat("filter-neg ", program.predicate(op.predicate).name);
        break;
      case PlanOp::Kind::kEnumerate:
        out += StrCat("enumerate v", op.enum_var);
        break;
    }
  }
  if (has_projection) out += StrCat("\n  project/", projection.size());
  return out;
}

}  // namespace inflog
