// Well-founded semantics via Van Gelder's alternating fixpoint.
//
// The paper's closing line of work: after showing that plain fixpoints
// are intractable, the field split between the inflationary semantics
// (this library's core) and three-valued/stable refinements of negation
// as failure. The well-founded model is the ⊆-least three-valued model:
// iterate the antimonotone operator S(I) = least model of the reduct P^I:
//
//   U₀ = ∅,  V₀ = S(U₀),  U_{k+1} = S(V_k),  V_{k+1} = S(U_{k+1});
//
// U ↑ converges to the well-founded true atoms, V ↓ to the complement of
// the false atoms; V* \ U* are the undefined atoms. On stratified
// programs the model is total and equals the stratified semantics
// (property-tested); on π₁ over cycles, the alternating atoms come out
// undefined — exactly where plain fixpoint semantics fragments into 0, 2,
// or 2ᵏ incomparable fixpoints.

#ifndef INFLOG_EVAL_WELLFOUNDED_H_
#define INFLOG_EVAL_WELLFOUNDED_H_

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/ground/grounder.h"
#include "src/relation/database.h"

namespace inflog {

/// The three-valued well-founded model.
struct WellFoundedResult {
  /// Truth per ground atom id: 1 true, 0 false, -1 undefined.
  std::vector<int8_t> truth;
  /// Atoms true in the well-founded model.
  IdbState true_state;
  /// Atoms undefined in the well-founded model.
  IdbState undefined_state;
  /// Number of alternating-fixpoint rounds until convergence.
  size_t rounds = 0;
  /// True iff no atom is undefined (the model is total / two-valued).
  bool total = false;
  /// The grounding the model was computed on.
  GroundProgram ground;
};

/// Computes the well-founded model of (π, D).
Result<WellFoundedResult> EvalWellFounded(
    const Program& program, const Database& database,
    const GrounderOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_EVAL_WELLFOUNDED_H_
