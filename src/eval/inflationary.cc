#include "src/eval/inflationary.h"

#include "src/opt/program_rewrite.h"

namespace inflog {

size_t InflationaryResult::TupleStage(size_t idb_index,
                                      TupleView tuple) const {
  INFLOG_CHECK(idb_index < state.relations.size());
  Relation::RowRef ref;
  if (!state.relations[idb_index].FindRef(tuple, &ref)) return 0;
  // Shards are append-only, so the tuple entered at the first stage whose
  // recorded shard size covers its local row id.
  const auto& by_stage = stage_shard_sizes[idb_index];
  for (size_t k = 0; k < by_stage.size(); ++k) {
    if (ref.row < by_stage[k][ref.shard]) return k + 1;
  }
  INFLOG_CHECK(false) << "row beyond recorded stages";
  return 0;
}

namespace {

/// The rewrite-free evaluator: used directly when no program rewrite is
/// active, and on the rewritten program otherwise.
Result<InflationaryResult> EvalInflationaryCore(
    const Program& program, const Database& database,
    const InflationaryOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(
      EvalContext ctx, EvalContext::Create(program, database,
                                           options.context));
  InflationaryResult result;
  result.state = MakeEmptyIdbState(program, ctx.num_shards());
  SemiNaiveOptions sn;
  sn.max_stages = options.max_stages;
  sn.use_deltas = options.use_seminaive;
  SemiNaiveOutcome outcome = RunSemiNaive(ctx, sn, &result.state);
  result.num_stages = outcome.num_stages;
  result.converged = outcome.converged;
  result.stage_sizes = std::move(outcome.stage_sizes);
  result.stage_shard_sizes = std::move(outcome.stage_shard_sizes);
  result.stats = outcome.stats;
  return result;
}

/// Moves a rewritten run's per-predicate state and stage bookkeeping
/// back into the original program's idb_index layout. Predicates the
/// rewrite dropped get empty relations and all-zero stage rows (their
/// contents are unspecified under declared outputs, matching the
/// dead-rule contract; TupleStage reports 0 for them).
void RemapToOriginalLayout(const Program& original, const Program& rewritten,
                           InflationaryResult* result) {
  const std::vector<int> map = MapIdbIndices(original, rewritten);
  const size_t num_shards = result->state.relations.empty()
                                ? 1
                                : result->state.relations[0].num_shards();
  const size_t num_stage_rows =
      result->stage_sizes.empty() ? 0 : result->stage_sizes[0].size();
  IdbState remapped = MakeEmptyIdbState(original, num_shards);
  std::vector<std::vector<size_t>> sizes(map.size());
  std::vector<std::vector<std::vector<size_t>>> shard_sizes(map.size());
  for (size_t i = 0; i < map.size(); ++i) {
    if (map[i] >= 0) {
      remapped.relations[i] = std::move(result->state.relations[map[i]]);
      sizes[i] = std::move(result->stage_sizes[map[i]]);
      shard_sizes[i] = std::move(result->stage_shard_sizes[map[i]]);
    } else {
      sizes[i].assign(num_stage_rows, 0);
      shard_sizes[i].assign(num_stage_rows,
                            std::vector<size_t>(num_shards, 0));
    }
  }
  result->state = std::move(remapped);
  result->stage_sizes = std::move(sizes);
  result->stage_shard_sizes = std::move(shard_sizes);
}

}  // namespace

Result<InflationaryResult> EvalInflationary(
    const Program& program, const Database& database,
    const InflationaryOptions& options) {
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, options.context.output_predicates,
      options.context.optimizer_passes, RewriteSemantics::kInflationary);
  if (!rewrite.active) {
    return EvalInflationaryCore(program, database, options);
  }
  INFLOG_ASSIGN_OR_RETURN(
      InflationaryResult result,
      EvalInflationaryCore(*rewrite.program, database, options));
  result.stats.opt_magic_rules_generated = rewrite.magic_rules_generated;
  result.stats.opt_rules_inlined = rewrite.rules_inlined;
  RemapToOriginalLayout(program, *rewrite.program, &result);
  return result;
}

Result<InflationaryResult> EvalLeastFixpoint(
    const Program& program, const Database& database,
    const InflationaryOptions& options) {
  if (!program.IsPositive()) {
    return Status::FailedPrecondition(
        "least-fixpoint semantics requires a positive DATALOG program; "
        "use EvalInflationary for DATALOG¬");
  }
  return EvalInflationary(program, database, options);
}

}  // namespace inflog
