#include "src/eval/inflationary.h"

namespace inflog {

size_t InflationaryResult::TupleStage(size_t idb_index,
                                      TupleView tuple) const {
  INFLOG_CHECK(idb_index < state.relations.size());
  Relation::RowRef ref;
  if (!state.relations[idb_index].FindRef(tuple, &ref)) return 0;
  // Shards are append-only, so the tuple entered at the first stage whose
  // recorded shard size covers its local row id.
  const auto& by_stage = stage_shard_sizes[idb_index];
  for (size_t k = 0; k < by_stage.size(); ++k) {
    if (ref.row < by_stage[k][ref.shard]) return k + 1;
  }
  INFLOG_CHECK(false) << "row beyond recorded stages";
  return 0;
}

Result<InflationaryResult> EvalInflationary(
    const Program& program, const Database& database,
    const InflationaryOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(
      EvalContext ctx, EvalContext::Create(program, database,
                                           options.context));
  InflationaryResult result;
  result.state = MakeEmptyIdbState(program, ctx.num_shards());
  SemiNaiveOptions sn;
  sn.max_stages = options.max_stages;
  sn.use_deltas = options.use_seminaive;
  SemiNaiveOutcome outcome = RunSemiNaive(ctx, sn, &result.state);
  result.num_stages = outcome.num_stages;
  result.converged = outcome.converged;
  result.stage_sizes = std::move(outcome.stage_sizes);
  result.stage_shard_sizes = std::move(outcome.stage_shard_sizes);
  result.stats = outcome.stats;
  return result;
}

Result<InflationaryResult> EvalLeastFixpoint(
    const Program& program, const Database& database,
    const InflationaryOptions& options) {
  if (!program.IsPositive()) {
    return Status::FailedPrecondition(
        "least-fixpoint semantics requires a positive DATALOG program; "
        "use EvalInflationary for DATALOG¬");
  }
  return EvalInflationary(program, database, options);
}

}  // namespace inflog
