// ThetaOperator: the paper's immediate consequence operator Θ (Section 2).
//
// Given IDB values S = (S₁, ..., S_m), Θ(S) is the state whose i-th
// relation is { ā : D ⊨ ⋁ᵣ θᵣ(ā, S) }, the heads derivable in one step by
// the rules with head Sᵢ, variables ranging over the evaluation universe.
// S is a fixpoint of (π, D) iff Θ(S) = S.

#ifndef INFLOG_EVAL_THETA_H_
#define INFLOG_EVAL_THETA_H_

#include <vector>

#include "src/eval/context.h"
#include "src/eval/executor.h"
#include "src/eval/plan.h"

namespace inflog {

/// Compiled form of Θ for one (program, database) pair.
class ThetaOperator {
 public:
  /// `ctx` must treat every IDB predicate as dynamic and must outlive the
  /// operator.
  explicit ThetaOperator(const EvalContext* ctx);

  /// Computes Θ(state) from scratch (not unioned with `state`).
  IdbState Apply(const IdbState& state, EvalStats* stats = nullptr) const;

  /// True iff Θ(state) = state — the paper's fixpoint condition.
  bool IsFixpoint(const IdbState& state, EvalStats* stats = nullptr) const;

  const EvalContext& context() const { return *ctx_; }

 private:
  const EvalContext* ctx_;
  std::vector<RulePlan> plans_;
};

}  // namespace inflog

#endif  // INFLOG_EVAL_THETA_H_
