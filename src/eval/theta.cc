#include "src/eval/theta.h"

namespace inflog {

ThetaOperator::ThetaOperator(const EvalContext* ctx) : ctx_(ctx) {
  const Program& program = ctx_->program();
  const std::vector<bool> all_dynamic(program.idb_predicates().size(), true);
  plans_.reserve(program.rules().size());
  for (size_t r = 0; r < program.rules().size(); ++r) {
    plans_.push_back(PlanRule(program, r, all_dynamic, /*delta_literal=*/-1));
  }
}

IdbState ThetaOperator::Apply(const IdbState& state, EvalStats* stats) const {
  const Program& program = ctx_->program();
  IdbState out = MakeEmptyIdbState(program);
  EvalStats local;
  for (const RulePlan& plan : plans_) {
    const Rule& rule = program.rules()[plan.rule_index];
    const int idb = program.predicate(rule.head.predicate).idb_index;
    INFLOG_CHECK(idb >= 0);
    ExecutePlan(*ctx_, plan, state, /*deltas=*/nullptr,
                &out.relations[idb], &local);
  }
  if (stats != nullptr) stats->Add(local);
  return out;
}

bool ThetaOperator::IsFixpoint(const IdbState& state, EvalStats* stats) const {
  return Apply(state, stats) == state;
}

}  // namespace inflog
