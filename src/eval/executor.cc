#include "src/eval/executor.h"

#include <algorithm>
#include <iterator>

#include "src/base/logging.h"

namespace inflog {
namespace {

/// Recursive interpreter. Bindings are a flat Value array indexed by the
/// rule's variable ids, with kNoValue marking unbound; each recursion level
/// undoes exactly the bindings it introduced.
class Interpreter {
 public:
  Interpreter(const EvalContext& ctx, const RulePlan& plan,
              const IdbState& state, const DeltaRanges* deltas,
              Relation* out, TupleCountMap* counts, EvalStats* stats,
              const std::vector<Relation>* shared)
      : ctx_(ctx),
        plan_(plan),
        rule_(ctx.program().rules()[plan.rule_index]),
        head_(plan.has_projection ? plan.projection : rule_.head.args),
        state_(state),
        deltas_(deltas),
        shared_(shared),
        out_(out),
        counts_(counts),
        stats_(stats) {
    bindings_.assign(rule_.num_vars, kNoValue);
    head_tuple_.resize(head_.size());
    // One scratch slot per op depth: a kMatch at depth d recurses only
    // into depths > d, so slot d is never reused while a row of d is
    // being expanded — the buffers live for the whole run instead of
    // being heap-allocated per row match.
    match_scratch_.resize(plan.ops.size());
  }

  void Run() {
    if (plan_.never_fires) return;
    Step(0);
  }

 private:
  Value TermValue(const Term& t) const {
    if (t.IsConstant()) return t.id;
    INFLOG_DCHECK(bindings_[t.id] != kNoValue) << "unbound term at runtime";
    return bindings_[t.id];
  }

  void Step(size_t op_index) {
    if (op_index == plan_.ops.size()) {
      Emit();
      return;
    }
    const PlanOp& op = plan_.ops[op_index];
    switch (op.kind) {
      case PlanOp::Kind::kMatch:
        StepMatch(op, op_index);
        return;
      case PlanOp::Kind::kBindEq: {
        const Value v = TermValue(op.source);
        INFLOG_DCHECK(bindings_[op.target_var] == kNoValue);
        bindings_[op.target_var] = v;
        Step(op_index + 1);
        bindings_[op.target_var] = kNoValue;
        return;
      }
      case PlanOp::Kind::kFilterEq:
        if (TermValue(op.lhs) == TermValue(op.rhs)) Step(op_index + 1);
        return;
      case PlanOp::Kind::kFilterNeq:
        if (TermValue(op.lhs) != TermValue(op.rhs)) Step(op_index + 1);
        return;
      case PlanOp::Kind::kFilterNegAtom: {
        scratch_.clear();
        for (const Term& t : op.args) scratch_.push_back(TermValue(t));
        const Relation& rel = ctx_.Resolve(op.predicate, state_);
        if (!rel.Contains(scratch_)) Step(op_index + 1);
        return;
      }
      case PlanOp::Kind::kEnumerate: {
        INFLOG_DCHECK(bindings_[op.enum_var] == kNoValue);
        for (Value v : ctx_.universe()) {
          ++stats_->enumerations;
          bindings_[op.enum_var] = v;
          Step(op_index + 1);
        }
        bindings_[op.enum_var] = kNoValue;
        return;
      }
    }
  }

  /// Matches `op.args` against `row`; binds previously unbound variables,
  /// recording them in `trail` for the caller to undo. Returns false (with
  /// a clean trail) on mismatch.
  bool MatchRow(const PlanOp& op, TupleView row,
                std::vector<uint32_t>* trail) {
    ++stats_->rows_matched;
    for (size_t i = 0; i < op.args.size(); ++i) {
      const Term& t = op.args[i];
      if (t.IsConstant()) {
        if (row[i] != t.id) return Undo(trail);
      } else if (bindings_[t.id] != kNoValue) {
        if (row[i] != bindings_[t.id]) return Undo(trail);
      } else {
        bindings_[t.id] = row[i];
        trail->push_back(t.id);
      }
    }
    return true;
  }

  bool Undo(std::vector<uint32_t>* trail) {
    for (uint32_t v : *trail) bindings_[v] = kNoValue;
    trail->clear();
    return false;
  }

  void StepMatch(const PlanOp& op, size_t op_index) {
    INFLOG_DCHECK(op.shared_source < 0 ||
                  (shared_ != nullptr &&
                   static_cast<size_t>(op.shared_source) < shared_->size()))
        << "shared-scan op without its intermediate";
    const Relation& rel = op.shared_source >= 0
                              ? (*shared_)[op.shared_source]
                              : ctx_.Resolve(op.predicate, state_);
    const size_t num_shards = rel.num_shards();
    MatchScratch& scratch = match_scratch_[op_index];
    std::vector<uint32_t>& trail = scratch.trail;
    trail.clear();
    auto try_row = [&](TupleView row) {
      if (MatchRow(op, row, &trail)) {
        Step(op_index + 1);
        Undo(&trail);
      }
    };
    if (op.is_delta_scan) {
      INFLOG_DCHECK(deltas_ != nullptr) << "delta plan without delta ranges";
      const PredicateInfo& info = ctx_.program().predicate(op.predicate);
      const std::vector<ShardRange>& ranges = (*deltas_)[info.idb_index];
      INFLOG_DCHECK(ranges.size() == num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        const Relation::ShardView view = rel.shard(s);
        for (size_t r = ranges[s].first; r < ranges[s].second; ++r) {
          try_row(view.Row(r));
        }
      }
      return;
    }
    if (!op.key_cols.empty() && ctx_.use_join_indexes()) {
      // Probe the relation's built-in index on each bound column and keep
      // the two shortest posting lists. With a single bound column the
      // shortest list is iterated directly; with ≥2 the two shortest are
      // intersected first, so several low-cardinality columns no longer
      // degrade toward a scan of the shortest list. MatchRow re-checks any
      // remaining columns. The best/second choice and the skew cutoff use
      // counts summed over shards, so which columns drive the probe — and
      // every stat below — is independent of the shard count; only the
      // per-shard walk order reflects the sharding.
      ++stats_->index_lookups;
      scratch.spans.resize(op.key_cols.size() * num_shards);
      size_t best_total = 0, second_total = 0;
      size_t best_off = 0, second_off = 0;
      bool have_best = false, have_second = false;
      for (size_t ci = 0; ci < op.key_cols.size(); ++ci) {
        const size_t col = op.key_cols[ci];
        const size_t off = ci * num_shards;
        const size_t total = rel.EqualRowsPerShard(
            col, TermValue(op.args[col]), &scratch.spans[off]);
        if (!have_best || total < best_total) {
          second_total = best_total;
          second_off = best_off;
          have_second = have_best;
          best_total = total;
          best_off = off;
          have_best = true;
        } else if (!have_second || total < second_total) {
          second_total = total;
          second_off = off;
          have_second = true;
        }
        if (best_total == 0) break;
      }
      // The merge walk costs O(|best| + |second|); only pay it when the
      // lists are comparable — against a much longer second list, probing
      // the short list row by row is cheaper than walking both.
      constexpr size_t kMaxIntersectionSkew = 16;
      if (have_second && best_total > 0 &&
          second_total <= best_total * kMaxIntersectionSkew) {
        ++stats_->intersections;
        std::vector<uint32_t>& rows = scratch.rows;
        for (size_t s = 0; s < num_shards; ++s) {
          // Both lists are in ascending local-row order within the shard;
          // the shard partitions agree, so the per-shard intersections
          // union to exactly the global one.
          const std::span<const uint32_t> a = scratch.spans[best_off + s];
          const std::span<const uint32_t> b = scratch.spans[second_off + s];
          if (a.empty() || b.empty()) continue;
          rows.clear();
          std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(rows));
          const Relation::ShardView view = rel.shard(s);
          for (uint32_t r : rows) try_row(view.Row(r));
        }
      } else if (have_best && best_total > 0) {
        for (size_t s = 0; s < num_shards; ++s) {
          const Relation::ShardView view = rel.shard(s);
          for (uint32_t r : scratch.spans[best_off + s]) {
            try_row(view.Row(r));
          }
        }
      }
      return;
    }
    for (size_t s = 0; s < num_shards; ++s) {
      // Full scans walk physical rows and must skip tombstones; the delta
      // and indexed paths above never name a dead row (delta ranges only
      // cover freshly appended rows, postings drop erased ones).
      const Relation::ShardView view = rel.shard(s);
      for (size_t r = 0; r < view.size(); ++r) {
        if (view.IsLive(r)) try_row(view.Row(r));
      }
    }
  }

  void Emit() {
    ++stats_->derivations;
    for (size_t i = 0; i < head_.size(); ++i) {
      head_tuple_[i] = TermValue(head_[i]);
    }
    if (counts_ != nullptr) {
      // Counting mode keeps every derivation (multiplicity), not the set:
      // the incremental recount pass diffs these against stored counts.
      ++(*counts_)[head_tuple_];
      return;
    }
    if (out_->Insert(head_tuple_)) ++stats_->new_tuples;
  }

  const EvalContext& ctx_;
  const RulePlan& plan_;
  const Rule& rule_;
  /// Terms emitted per derivation: the rule head, or the plan's
  /// projection when it stages a shared intermediate.
  const std::vector<Term>& head_;
  const IdbState& state_;
  const DeltaRanges* deltas_;
  const std::vector<Relation>* shared_;
  Relation* out_;
  TupleCountMap* counts_;
  EvalStats* stats_;
  std::vector<Value> bindings_;
  Tuple head_tuple_;
  Tuple scratch_;
  /// Per-op-depth reusable buffers for kMatch: the binding-undo trail,
  /// the posting-list intersection output, and the per-(key column,
  /// shard) posting spans of the current probe.
  struct MatchScratch {
    std::vector<uint32_t> trail;
    std::vector<uint32_t> rows;
    std::vector<std::span<const uint32_t>> spans;
  };
  std::vector<MatchScratch> match_scratch_;
};

}  // namespace

void ExecutePlan(const EvalContext& ctx, const RulePlan& plan,
                 const IdbState& state, const DeltaRanges* deltas,
                 Relation* out, EvalStats* stats,
                 const std::vector<Relation>* shared) {
  Interpreter(ctx, plan, state, deltas, out, /*counts=*/nullptr, stats,
              shared)
      .Run();
}

void ExecutePlanCounted(const EvalContext& ctx, const RulePlan& plan,
                        const IdbState& state, const DeltaRanges* deltas,
                        TupleCountMap* out, EvalStats* stats,
                        const std::vector<Relation>* shared) {
  Interpreter(ctx, plan, state, deltas, /*out=*/nullptr, out, stats, shared)
      .Run();
}

DeltaWorkEstimate EstimateDeltaWork(
    const EvalContext& ctx, const RulePlan& plan, const IdbState& state,
    const std::vector<ShardRange>& delta_ranges, size_t max_samples) {
  DeltaWorkEstimate est;
  for (const auto& [begin, end] : delta_ranges) est.rows += end - begin;
  if (est.rows == 0 || plan.never_fires || max_samples == 0) return est;

  // Locate the delta scan (whose row values seed the key) and the first
  // subsequent index probe with at least one key column resolvable from
  // the delta row alone — the probe whose fan-out dominates the row's
  // cost. Variables bound between the two (kBindEq, deeper matches)
  // are ignored: the estimate only needs the dominant, cheap-to-read
  // signal, not the exact cost. Shared-intermediate scans (subplan
  // sharing) have no resolvable predicate and never probe, so they are
  // skipped. When no probe qualifies — the first match is a full scan or
  // indexes are disabled — every row costs the same, and that uniform
  // cost is the first joined relation's full cardinality (the rows each
  // scan walks), not 1: a scan-heavy plan's rows are few but expensive.
  const Rule& rule = ctx.program().rules()[plan.rule_index];
  std::vector<int> delta_col(rule.num_vars, -1);  // var id -> delta column
  const PlanOp* delta_op = nullptr;
  const PlanOp* probe_op = nullptr;
  const PlanOp* first_match = nullptr;
  for (const PlanOp& op : plan.ops) {
    if (op.kind != PlanOp::Kind::kMatch || op.shared_source >= 0) continue;
    if (op.is_delta_scan) {
      delta_op = &op;
      for (size_t i = 0; i < op.args.size(); ++i) {
        const Term& t = op.args[i];
        if (!t.IsConstant() && delta_col[t.id] < 0) {
          delta_col[t.id] = static_cast<int>(i);
        }
      }
      continue;
    }
    if (delta_op == nullptr) continue;
    if (first_match == nullptr) first_match = &op;
    if (op.key_cols.empty() || !ctx.use_join_indexes()) continue;
    for (size_t col : op.key_cols) {
      const Term& t = op.args[col];
      if (t.IsConstant() || delta_col[t.id] >= 0) {
        probe_op = &op;
        break;
      }
    }
    if (probe_op != nullptr) break;
  }
  if (delta_op == nullptr) return est;
  if (probe_op == nullptr) {
    if (first_match != nullptr &&
        (first_match->key_cols.empty() || !ctx.use_join_indexes())) {
      est.uniform_cost =
          1 + ctx.Resolve(first_match->predicate, state).size();
    }
    return est;
  }

  const Relation& delta_rel = ctx.Resolve(delta_op->predicate, state);
  const Relation& probe_rel = ctx.Resolve(probe_op->predicate, state);
  std::vector<std::span<const uint32_t>> spans(probe_rel.num_shards());
  // Ceiling divide: the documented budget is at most max_samples probes.
  est.stride = (est.rows + max_samples - 1) / max_samples;
  est.sample_cost.reserve(est.rows / est.stride + 1);
  size_t linear = 0;
  for (size_t s = 0; s < delta_ranges.size(); ++s) {
    const auto [begin, end] = delta_ranges[s];
    if (begin == end) continue;
    const Relation::ShardView view = delta_rel.shard(s);
    for (size_t r = begin; r < end; ++r, ++linear) {
      if (linear % est.stride != 0) continue;
      const TupleView row = view.Row(r);
      // The executor iterates the shortest posting list of the bound key
      // columns; mirror that with the resolvable ones.
      uint64_t best = ~uint64_t{0};
      for (size_t col : probe_op->key_cols) {
        const Term& t = probe_op->args[col];
        Value v;
        if (t.IsConstant()) {
          v = t.id;
        } else if (delta_col[t.id] >= 0) {
          v = row[delta_col[t.id]];
        } else {
          continue;
        }
        const size_t total =
            probe_rel.EqualRowsPerShard(col, v, spans.data());
        best = std::min<uint64_t>(best, total);
        if (best == 0) break;
      }
      est.sample_cost.push_back(1 + (best == ~uint64_t{0} ? 0 : best));
    }
  }
  return est;
}

}  // namespace inflog
