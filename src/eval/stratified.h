// Stratified semantics (Chandra–Harel [CH85], Apt–Blair–Walker [ABW86]) —
// the baseline semantics the paper contrasts Inflationary DATALOG with.
//
// The predicates are layered so that negation only reaches strictly lower
// layers; each stratum is then a positive program in its own predicates
// and is evaluated to its least fixpoint with all lower strata frozen.
// Only stratifiable programs have this semantics — the toggle rule and
// π_SAT do not — whereas the inflationary semantics is total. On programs
// that are stratified, the two semantics may still differ: Proposition 2's
// distance program is the paper's example, reproduced in bench E7.

#ifndef INFLOG_EVAL_STRATIFIED_H_
#define INFLOG_EVAL_STRATIFIED_H_

#include "src/ast/analysis.h"
#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/context.h"
#include "src/eval/executor.h"
#include "src/relation/database.h"

namespace inflog {

/// Options for the stratified evaluator.
struct StratifiedOptions {
  bool use_seminaive = true;
  EvalContextOptions context;
};

/// The stratified model of (π, D).
struct StratifiedResult {
  IdbState state;
  int num_strata = 0;
  EvalStats stats;
};

/// Evaluates the stratified semantics. Fails with FailedPrecondition if
/// the program is not stratifiable.
Result<StratifiedResult> EvalStratified(
    const Program& program, const Database& database,
    const StratifiedOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_EVAL_STRATIFIED_H_
