// Incremental view maintenance: counting + DRed, so an update costs
// O(delta) instead of O(database).
//
// An IncrementalSession pins one (program, database, semantics) triple,
// evaluates it once from scratch, and then maintains the materialized IDB
// state under batches of EDB inserts and deletes (ApplyUpdate). The
// program's IDB predicates are decomposed into *units* — strongly
// connected components of the predicate dependency graph, processed in
// topological (dependency-first) order, which refines the stratification —
// and each unit is maintained by the algorithm its shape admits:
//
//   * Non-recursive units (singleton SCCs without self-loops) keep a
//     per-tuple derivation count (TupleCountMap). An update derives a
//     superset of the tuples whose support may have changed (trigger
//     passes scanning the small delta relations first), recounts exactly
//     those candidates against the new state (ExecutePlanCounted), and
//     inserts / erases tuples whose count crossed zero. No mixed
//     old/new-state joins: candidate generation over-approximates (the
//     recount is exact), so old-state views reduce to splitting changed
//     body literals over {current relation, net-deleted delta}.
//
//   * Recursive units run DRed (delete-and-rederive): (1) overcount —
//     propagate deletions through the unit's rules over the frozen old
//     unit state, as a seeded semi-naive fixpoint over synthesized "P~del"
//     companion predicates; (2) prune the candidates from the state
//     (Relation::Erase tombstones); (3) rederive — re-prove pruned tuples
//     from the surviving state, again a seeded fixpoint; (4) insert — seed
//     the unit's own rules with the inserted-input triggers and close
//     under the original rules. Every phase reuses the parallel stage
//     dispatch of RelationalConsequence via SemiNaiveOptions::
//     initial_deltas, so phase cost is O(delta), not O(state).
//
// Companion predicates ("P~del", "P~rm", "P~cand", net-delta views) exist
// only in per-phase synthesized programs; they are bound to small
// temporary relations through EvalContext::CreateWithOverrides — the
// database never owns a copy, and the session state's relations are
// std::move()d between the real program's idb_index space and a phase
// program's without copying rows.
//
// Semantics gating: the stratified semantics is maintained incrementally;
// the inflationary semantics is maintained incrementally iff the program
// is positive (where it coincides with the least fixpoint — on
// non-positive programs the inflationary result is stage-sensitive, and
// deletion can change stage structure non-locally). The well-founded and
// stable semantics, and updates that grow the universe under unsafe
// (enumerating) rules, fall back to a full recompute — counted in
// EvalStats::incremental_oracle_runs. The from-scratch recompute also
// serves as a cross-check oracle (IncrementalOptions::verify /
// EvalOptions::verify_incremental): after every maintained update the
// state is compared against a fresh evaluation and any mismatch is an
// Internal error.

#ifndef INFLOG_EVAL_INCREMENTAL_H_
#define INFLOG_EVAL_INCREMENTAL_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/ast/analysis.h"
#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/base/thread_pool.h"
#include "src/eval/context.h"
#include "src/eval/executor.h"
#include "src/eval/idb_state.h"
#include "src/eval/stable.h"
#include "src/eval/wellfounded.h"
#include "src/relation/database.h"

namespace inflog {

/// One batch of external (EDB) changes, applied atomically: deletes are
/// netted against inserts first (a tuple both deleted and re-inserted is
/// a no-op), so the maintained state only ever sees net deltas.
struct UpdateBatch {
  std::vector<std::pair<std::string, Tuple>> inserts;
  std::vector<std::pair<std::string, Tuple>> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// What one ApplyUpdate did.
struct UpdateResult {
  /// True when the update was served by a full recompute (grounded
  /// semantics, non-positive inflationary program, or universe growth
  /// under unsafe rules) instead of incremental maintenance.
  bool used_oracle = false;
  /// Names of the relations whose contents this update actually changed:
  /// the EDB relations with a non-empty net delta plus the IDB
  /// predicates whose maintained state moved. The oracle path reports
  /// conservatively (every updated EDB name plus every IDB predicate).
  /// Sorted, deduplicated. The serving layer keys snapshot copy-reuse
  /// and cache invalidation off this list.
  std::vector<std::string> changed_relations;
  /// The update's counters: the incremental_* block plus the executor
  /// work the maintenance phases ran.
  EvalStats stats;
};

/// Parses one whitespace-separated update line into a batch: tokens are
/// `+Rel(c1,c2,...)` (insert) or `-Rel(c1)` (delete); constants are
/// interned into `symbols`. `#` starts a comment; a blank line is an
/// empty batch. The CLI's --apply-updates mode and bench E13 share this.
Result<UpdateBatch> ParseUpdateLine(std::string_view line,
                                    SymbolTable* symbols);

/// Which semantics an IncrementalSession maintains (mirrors the engine's
/// SemanticsKind without depending on src/core/).
enum class MaintainedSemantics {
  kInflationary,
  kStratified,
  kWellFounded,
  kStable,
};

/// Options for an incremental session.
struct IncrementalOptions {
  MaintainedSemantics semantics = MaintainedSemantics::kStratified;
  /// Semi-naive stages for the full evaluations (initial run, oracle
  /// recomputes). Maintenance phases always run semi-naive.
  bool use_seminaive = true;
  /// Cross-check every maintained update against a from-scratch
  /// evaluation; mismatches fail ApplyUpdate with an Internal error.
  bool verify = false;
  /// Threads / shards / scheduler / slicing for every evaluation and
  /// maintenance phase of the session.
  EvalContextOptions context;
  /// Grounded-pipeline options, consulted for those semantics only.
  GrounderOptions wellfounded;
  StableOptions stable;
};

/// A materialized evaluation kept consistent under EDB updates.
class IncrementalSession {
 public:
  /// Evaluates (program, *database) under the requested semantics and
  /// prepares the maintenance machinery (unit decomposition, derivation
  /// counts for the counting-maintained predicates). `program` and
  /// `database` must outlive the session; the session mutates *database*
  /// in ApplyUpdate and nothing else may (a concurrent mutation leaves
  /// the maintained state stale).
  static Result<std::unique_ptr<IncrementalSession>> Create(
      const Program& program, Database* database,
      const IncrementalOptions& options = {});

  /// Applies one batch: nets and applies the EDB changes (inserts run
  /// through Database::AddFact so new constants join the universe;
  /// deletes through Relation::Erase), then maintains every affected IDB
  /// unit in dependency order. Update tuples must name EDB relations
  /// known to the program or present in the database — unknown relation
  /// names are NotFound, updating an IDB relation or mismatching an
  /// arity is InvalidArgument, and the batch is rejected before any
  /// mutation. After a non-OK ApplyUpdate the session may be
  /// inconsistent; discard it.
  Result<UpdateResult> ApplyUpdate(const UpdateBatch& batch);

  /// The maintained IDB state (valid until the next ApplyUpdate).
  const IdbState& state() const { return state_; }

  /// Compacts every EDB and maintained IDB relation whose dead-row share
  /// exceeds `threshold` (dead / (dead + live), relations with at least
  /// `min_rows` physical rows only). Returns the number of relations
  /// compacted. Valid between updates (no delta ranges outstanding);
  /// the serving layer calls this on its periodic compaction schedule.
  size_t CompactDeadRelations(double threshold, size_t min_rows = 64);

  /// Counters accumulated across every ApplyUpdate of the session.
  const EvalStats& cumulative_stats() const { return cumulative_; }

  /// True when updates are maintained incrementally rather than by full
  /// recompute (stratified, or inflationary on a positive program).
  bool incremental_capable() const { return capable_; }

  const Program& program() const { return *program_; }

 private:
  /// One maintenance unit: an SCC of the IDB dependency graph, with the
  /// rules whose heads it owns. Units are stored in dependency-first
  /// topological order.
  struct Unit {
    std::vector<uint32_t> preds;  ///< Predicate ids (real program).
    std::vector<size_t> rules;    ///< Indices into program.rules().
    bool recursive = false;       ///< SCC size > 1 or a self-loop.
  };

  /// Net EDB/IDB delta of one predicate within one update: the tuples
  /// that left (`del`), the tuples that arrived (`ins`), and their union
  /// (`chg`), each a small unsharded relation the phase programs bind as
  /// companion predicates.
  struct PredDelta {
    explicit PredDelta(size_t arity)
        : del(arity), ins(arity), chg(arity) {}
    Relation del;
    Relation ins;
    Relation chg;
    bool any() const { return del.size() + ins.size() > 0; }
  };

  IncrementalSession(const Program& program, Database* database,
                     const IncrementalOptions& options);

  Status Init();
  Status InitCounts();
  void BuildUnits();
  Result<IdbState> ComputeFullState(EvalStats* stats);
  Status FullRecompute(EvalStats* stats);
  EvalContextOptions PhaseOptions() const;

  Status MaintainCounting(const Unit& unit,
                          std::map<uint32_t, PredDelta>* changed,
                          EvalStats* stats);
  Status MaintainDRed(const Unit& unit,
                      std::map<uint32_t, PredDelta>* changed,
                      EvalStats* stats);

  const Program* program_;
  Database* database_;
  IncrementalOptions options_;
  ProgramAnalysis analysis_;
  bool capable_ = false;
  bool all_safe_ = false;
  size_t num_shards_ = 1;
  std::vector<Unit> units_;
  /// Unit index per IDB predicate id (dense by idb_index).
  std::vector<size_t> unit_of_idb_;
  IdbState state_;
  IdbCounts counts_;
  EvalStats cumulative_;
  /// Pool shared by every maintenance phase and full evaluation of the
  /// session (RelationalConsequence::Options::pool_cache).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace inflog

#endif  // INFLOG_EVAL_INCREMENTAL_H_
