#include "src/eval/stratified.h"

#include "src/eval/seminaive.h"
#include "src/opt/program_rewrite.h"

namespace inflog {

namespace {

/// The rewrite-free evaluator: used directly when no program rewrite is
/// active, and on the rewritten program otherwise.
Result<StratifiedResult> EvalStratifiedCore(const Program& program,
                                            const Database& database,
                                            const StratifiedOptions& options) {
  const ProgramAnalysis analysis = AnalyzeProgram(program);
  if (!analysis.stratifiable) {
    return Status::FailedPrecondition(
        "program is not stratifiable (a cycle passes through negation); "
        "the stratified semantics is undefined — use EvalInflationary");
  }
  StratifiedResult result;
  result.num_strata = analysis.num_strata;
  // The state outlives the per-stratum contexts, so its shard layout is
  // resolved from the options up front (every stratum's context resolves
  // to the same count).
  result.state =
      MakeEmptyIdbState(program, ResolvedNumShards(options.context));

  const size_t num_idb = program.idb_predicates().size();
  // One pool shared across strata (filled lazily by the first stratum
  // whose stages fan out), so threads are spawned at most once per run.
  std::unique_ptr<ThreadPool> pool;
  for (int stratum = 0; stratum < analysis.num_strata; ++stratum) {
    // Rules whose head lives in this stratum.
    SemiNaiveOptions sn;
    sn.use_deltas = options.use_seminaive;
    sn.pool_cache = &pool;
    for (size_t r = 0; r < program.rules().size(); ++r) {
      if (analysis.stratum[program.rules()[r].head.predicate] == stratum) {
        sn.rule_subset.push_back(r);
      }
    }
    if (sn.rule_subset.empty()) continue;
    // This stratum's predicates are dynamic; lower strata are frozen at
    // their already-computed values inside `result.state`.
    std::vector<bool> dynamic(num_idb, false);
    for (size_t i = 0; i < num_idb; ++i) {
      dynamic[i] =
          analysis.stratum[program.idb_predicates()[i]] == stratum;
    }
    INFLOG_ASSIGN_OR_RETURN(
        EvalContext ctx,
        EvalContext::CreateWithFixed(program, database, dynamic,
                                     &result.state, options.context));
    SemiNaiveOutcome outcome = RunSemiNaive(ctx, sn, &result.state);
    INFLOG_CHECK(outcome.converged);
    result.stats.Add(outcome.stats);
  }
  return result;
}

/// Moves a rewritten run's state back into the original program's
/// idb_index layout; predicates the rewrite dropped get empty relations
/// (unspecified under declared outputs, matching the dead-rule
/// contract).
void RemapToOriginalLayout(const Program& original, const Program& rewritten,
                           StratifiedResult* result) {
  const std::vector<int> map = MapIdbIndices(original, rewritten);
  const size_t num_shards = result->state.relations.empty()
                                ? 1
                                : result->state.relations[0].num_shards();
  IdbState remapped = MakeEmptyIdbState(original, num_shards);
  for (size_t i = 0; i < map.size(); ++i) {
    if (map[i] >= 0) {
      remapped.relations[i] = std::move(result->state.relations[map[i]]);
    }
  }
  result->state = std::move(remapped);
}

}  // namespace

Result<StratifiedResult> EvalStratified(const Program& program,
                                        const Database& database,
                                        const StratifiedOptions& options) {
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, options.context.output_predicates,
      options.context.optimizer_passes, RewriteSemantics::kStratified);
  if (!rewrite.active) {
    return EvalStratifiedCore(program, database, options);
  }
  // A rewrite only replaces a stratifiable program with a stratifiable
  // one, so Core's stratifiability error still fires exactly when the
  // ORIGINAL program is not stratifiable. num_strata reports the
  // rewritten program's stratification.
  INFLOG_ASSIGN_OR_RETURN(
      StratifiedResult result,
      EvalStratifiedCore(*rewrite.program, database, options));
  result.stats.opt_magic_rules_generated = rewrite.magic_rules_generated;
  result.stats.opt_rules_inlined = rewrite.rules_inlined;
  RemapToOriginalLayout(program, *rewrite.program, &result);
  return result;
}

}  // namespace inflog
