#include "src/eval/stratified.h"

#include "src/eval/seminaive.h"

namespace inflog {

Result<StratifiedResult> EvalStratified(const Program& program,
                                        const Database& database,
                                        const StratifiedOptions& options) {
  const ProgramAnalysis analysis = AnalyzeProgram(program);
  if (!analysis.stratifiable) {
    return Status::FailedPrecondition(
        "program is not stratifiable (a cycle passes through negation); "
        "the stratified semantics is undefined — use EvalInflationary");
  }
  StratifiedResult result;
  result.num_strata = analysis.num_strata;
  // The state outlives the per-stratum contexts, so its shard layout is
  // resolved from the options up front (every stratum's context resolves
  // to the same count).
  result.state =
      MakeEmptyIdbState(program, ResolvedNumShards(options.context));

  const size_t num_idb = program.idb_predicates().size();
  // One pool shared across strata (filled lazily by the first stratum
  // whose stages fan out), so threads are spawned at most once per run.
  std::unique_ptr<ThreadPool> pool;
  for (int stratum = 0; stratum < analysis.num_strata; ++stratum) {
    // Rules whose head lives in this stratum.
    SemiNaiveOptions sn;
    sn.use_deltas = options.use_seminaive;
    sn.pool_cache = &pool;
    for (size_t r = 0; r < program.rules().size(); ++r) {
      if (analysis.stratum[program.rules()[r].head.predicate] == stratum) {
        sn.rule_subset.push_back(r);
      }
    }
    if (sn.rule_subset.empty()) continue;
    // This stratum's predicates are dynamic; lower strata are frozen at
    // their already-computed values inside `result.state`.
    std::vector<bool> dynamic(num_idb, false);
    for (size_t i = 0; i < num_idb; ++i) {
      dynamic[i] =
          analysis.stratum[program.idb_predicates()[i]] == stratum;
    }
    INFLOG_ASSIGN_OR_RETURN(
        EvalContext ctx,
        EvalContext::CreateWithFixed(program, database, dynamic,
                                     &result.state, options.context));
    SemiNaiveOutcome outcome = RunSemiNaive(ctx, sn, &result.state);
    INFLOG_CHECK(outcome.converged);
    result.stats.Add(outcome.stats);
  }
  return result;
}

}  // namespace inflog
