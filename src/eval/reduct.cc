#include "src/eval/reduct.h"

#include "src/eval/fixpoint_driver.h"

namespace inflog {

std::vector<bool> LeastModelOfReduct(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true) {
  GroundConsequence consequence(ground, assumed_true);
  FixpointDriver::Iterate(
      {}, [&](size_t stage) { return consequence.Step(stage); });
  return std::move(consequence).TakeModel();
}

}  // namespace inflog
