#include "src/eval/reduct.h"

#include <deque>

#include "src/base/logging.h"

namespace inflog {

std::vector<bool> LeastModelOfReduct(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true) {
  const size_t num_atoms = ground.atoms.size();
  INFLOG_CHECK(assumed_true.size() == num_atoms);

  // Per surviving rule: number of unsatisfied positive prerequisites.
  // Rules killed by the reduct get a sentinel count.
  constexpr uint32_t kDead = static_cast<uint32_t>(-1);
  std::vector<uint32_t> missing(ground.rules.size());
  // For each atom, the surviving rules in whose positive body it appears.
  std::vector<std::vector<uint32_t>> watchers(num_atoms);
  std::vector<bool> model(num_atoms, false);
  std::deque<uint32_t> queue;

  auto fire = [&](uint32_t atom) {
    if (!model[atom]) {
      model[atom] = true;
      queue.push_back(atom);
    }
  };

  for (uint32_t r = 0; r < ground.rules.size(); ++r) {
    const GroundRule& rule = ground.rules[r];
    const GroundBody& body = ground.RuleBody(rule);
    bool dead = false;
    for (uint32_t n : body.neg) {
      if (assumed_true[n]) {
        dead = true;
        break;
      }
    }
    if (dead) {
      missing[r] = kDead;
      continue;
    }
    missing[r] = static_cast<uint32_t>(body.pos.size());
    for (uint32_t p : body.pos) watchers[p].push_back(r);
    if (body.pos.empty()) fire(rule.head);
  }

  while (!queue.empty()) {
    const uint32_t atom = queue.front();
    queue.pop_front();
    for (uint32_t r : watchers[atom]) {
      INFLOG_DCHECK(missing[r] != kDead && missing[r] > 0);
      if (--missing[r] == 0) fire(ground.rules[r].head);
    }
  }
  return model;
}

}  // namespace inflog
