// IdbState: a value assignment for a program's nondatabase (IDB) relations.
//
// This is the object the paper's operator Θ maps: "a sequence S = (S₁,...,
// S_m) of relations on A whose arities match those of the nondatabase
// relations of π". Relations are ordered by the program's dense idb_index.

#ifndef INFLOG_EVAL_IDB_STATE_H_
#define INFLOG_EVAL_IDB_STATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/program.h"
#include "src/relation/relation.h"
#include "src/relation/tuple.h"

namespace inflog {

/// Derivation multiplicities of one relation's tuples: how many distinct
/// (rule, body match) derivations currently support each tuple. The
/// counting-based incremental maintainer stores these for non-recursive
/// predicates — a tuple belongs to the relation iff its count is > 0, so
/// a delete only removes it when the last derivation dies.
using TupleCountMap = std::unordered_map<Tuple, uint64_t, TupleHash, TupleEq>;

/// Per-predicate derivation counts riding alongside an IdbState, indexed
/// by the same dense idb_index. Predicates maintained by DRed (recursive)
/// keep an empty map — DRed tracks support by rederivation, not counting.
struct IdbCounts {
  std::vector<TupleCountMap> counts;
};

/// The IDB relation values, indexed by Program idb_index.
struct IdbState {
  std::vector<Relation> relations;

  /// Coordinatewise set equality — the paper's fixpoint condition compares
  /// states with this.
  bool operator==(const IdbState& other) const {
    return relations == other.relations;
  }
  bool operator!=(const IdbState& other) const { return !(*this == other); }

  /// Coordinatewise subset test (the partial order under which least
  /// fixpoints are defined).
  bool IsSubsetOf(const IdbState& other) const {
    if (relations.size() != other.relations.size()) return false;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (!relations[i].IsSubsetOf(other.relations[i])) return false;
    }
    return true;
  }

  /// Total number of tuples across all relations.
  size_t TotalTuples() const {
    size_t n = 0;
    for (const Relation& r : relations) n += r.size();
    return n;
  }
};

/// An empty state with one relation per IDB predicate of `program`, with
/// matching arities, each hash-sharded `num_shards` ways (1 = the
/// unsharded layout; pass EvalContext::num_shards() to match the context
/// a fixpoint run will evaluate under).
IdbState MakeEmptyIdbState(const Program& program, size_t num_shards = 1);

/// Coordinatewise intersection of two states (used by the least-fixpoint
/// test of Theorem 3).
IdbState IntersectStates(const IdbState& a, const IdbState& b);

/// Renders "Pred = {tuples}" lines in idb_index order.
std::string IdbStateToString(const Program& program, const IdbState& state);

}  // namespace inflog

#endif  // INFLOG_EVAL_IDB_STATE_H_
