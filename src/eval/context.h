// EvalContext: binds a program's predicates to concrete relations for one
// evaluation run. Join lookups are served by the relations' own built-in
// per-column indexes (see Relation::EqualRows); the context only decides
// whether the executor may use them (use_join_indexes).
//
// Resolution per predicate:
//   * EDB predicates read the database relation of the same name (error at
//     creation if it is missing or has the wrong arity, unless
//     allow_missing_edb is set, in which case it reads an empty relation);
//   * "fixed" IDB predicates read from a caller-supplied state that does
//     not evolve during the run (used by the stratified evaluator for
//     lower strata, and by Θ when checking a candidate fixpoint);
//   * "dynamic" IDB predicates read from the evolving IdbState passed to
//     each execution and participate in semi-naive deltas.
//
// The evaluation universe is the database's active domain plus all
// constants mentioned by the program (Section 2 of the paper lets
// variables range over the elements appearing in the database; program
// constants are added so rules like G(Z,1) ← . are meaningful even when 1
// appears in no fact).

#ifndef INFLOG_EVAL_CONTEXT_H_
#define INFLOG_EVAL_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/opt/passes.h"
#include "src/relation/database.h"

namespace inflog {

/// How a parallel fixpoint stage partitions its delta rows across the
/// thread pool. All schedulers produce bit-identical relations, stage
/// sizes, and executor stats (tests/parallel_determinism_test.cc).
enum class StageScheduler {
  /// Cut the per-shard delta ranges into equal-row slices up front (about
  /// four per thread) and claim them from a shared counter. Cheap and
  /// predictable, but a slice whose rows hide most of the stage's join
  /// work serializes the stage on one thread.
  kStatic,
  /// Work stealing: one chunk per delta plan, dealt to per-worker deques;
  /// idle workers steal, and oversized chunks split in half while anyone
  /// is hungry (down to 2 × min_slice_rows), so pathologically skewed
  /// stages keep every worker busy (ThreadPool::ParallelForDynamic).
  kStealing,
  /// Per-stage choice between the two (the default): before fan-out the
  /// stage estimates each static task's join work (delta rows weighted by
  /// the probed posting-list lengths, sampled) and flips to kStealing
  /// only when the estimates' coefficient of variation exceeds
  /// EvalContextOptions::steal_variance — skewed stages get the stealing
  /// machinery, uniform ones skip its overhead. The decisions are
  /// surfaced as EvalStats::auto_{static,stealing}_stages.
  kAuto,
};

/// Canonical lowercase name ("auto" / "static" / "stealing"), for CLIs
/// and logs.
std::string_view StageSchedulerName(StageScheduler scheduler);

/// Parses a StageSchedulerName back; InvalidArgument on unknown names.
Result<StageScheduler> ParseStageScheduler(std::string_view name);

/// Options controlling predicate binding.
struct EvalContextOptions {
  /// If true, EDB predicates missing from the database are bound to empty
  /// relations instead of failing.
  bool allow_missing_edb = false;
  /// If true, kMatch ops with bound columns are served by the relations'
  /// built-in per-column indexes; if false, every match is a scan. The
  /// scan path is kept as the ablation baseline (bench E7) and as the
  /// oracle for index-correctness tests.
  bool use_join_indexes = true;
  /// Worker threads for relational fixpoint stages. 1 (the default) runs
  /// the exact serial path; 0 means hardware concurrency; N > 1 partitions
  /// each stage into (rule plan × delta slice) tasks over a
  /// base::ThreadPool with a worker-ordered merge, so results, stage
  /// sizes, and stats are bit-identical to the serial run
  /// (tests/parallel_determinism_test.cc holds this).
  size_t num_threads = 1;
  /// Hash shards per dynamic IDB relation (rounded up to a power of two,
  /// clamped to kMaxShards). 1 (the default) is the unsharded layout; 0
  /// picks the smallest power of two ≥ the resolved thread count, so the
  /// shard-parallel stage merge has one shard per worker. Results, stage
  /// sizes, and stats are identical for every (threads, shards)
  /// combination.
  size_t num_shards = 1;
  /// How parallel stages partition their delta rows (inert when
  /// num_threads == 1). kAuto (the default) picks per stage between the
  /// static slicer and work stealing from the estimated slice-work
  /// variance; the explicit kinds pin one machinery. Results are
  /// identical under every choice.
  StageScheduler scheduler = StageScheduler::kAuto;
  /// Minimum delta rows worth a stage task of their own: stages with
  /// fewer total input rows run serially, static slices never go below
  /// it, the stealing scheduler stops splitting chunks at twice this
  /// size, and delta plans with fewer rows are batched together into one
  /// task. 0 picks kDefaultMinSliceRows. Results are identical for every
  /// value; this only moves the parallelism/overhead tradeoff.
  size_t min_slice_rows = 0;
  /// kAuto's flip threshold: a stage switches to work stealing when the
  /// coefficient of variation (stddev / mean) of its estimated per-task
  /// work exceeds this. Lower values steal more eagerly; raise it if the
  /// estimates misfire on a workload whose skew the static slicer
  /// handles fine. 0 picks kDefaultStealVariance; inert for the explicit
  /// schedulers. Results are identical for every value.
  double steal_variance = 0;
  /// If true, binding fails (InvalidArgument) when any rule carries a
  /// negated literal over a variable bound by no positive body literal
  /// (CheckNegationSafety in src/ast/analysis.h). Off by default: the
  /// paper's own programs use such rules under the active-domain
  /// reading, where every free variable ranges over the universe.
  bool reject_unsafe_negation = false;
  /// Which plan-optimizer passes run between rule lowering and fixpoint
  /// dispatch (src/opt/pass_manager.h). OptimizerPasses::None()
  /// reproduces the greedy plans exactly; every selection yields the same
  /// relations, stage count, stage sizes, and tuple stages.
  OptimizerPasses optimizer_passes;
  /// IDB predicate names the caller will actually read ("queried"
  /// predicates). Empty (the default) means all of them. When non-empty,
  /// dead-rule elimination may drop rules that cannot contribute to any
  /// listed predicate — so the relations of *unlisted* predicates are
  /// then unspecified. Binding fails on names that are unknown or not
  /// IDB.
  std::vector<std::string> output_predicates;

  /// Upper bound on the shard count (keeps per-probe shard loops cheap).
  static constexpr size_t kMaxShards = 64;
  /// Default for min_slice_rows (the pre-tunable hard constant).
  static constexpr size_t kDefaultMinSliceRows = 64;
  /// Default for steal_variance: at CV 1.0 the work hidden in the
  /// outlier tasks rivals the whole rest of the stage, the point where
  /// stealing's chunk staging pays for itself (bench E11 sits far above,
  /// uniform stages far below).
  static constexpr double kDefaultStealVariance = 1.0;
};

/// `options.num_threads` with 0 resolved to the hardware concurrency.
size_t ResolvedNumThreads(const EvalContextOptions& options);

/// `options.num_shards` resolved: 0 becomes the smallest power of two ≥
/// ResolvedNumThreads(options); any value is rounded up to a power of two
/// and clamped to kMaxShards. Callers that build IdbStates before an
/// EvalContext exists (the stratified evaluator) use this to match the
/// context's layout.
size_t ResolvedNumShards(const EvalContextOptions& options);

/// `options.min_slice_rows` with 0 resolved to kDefaultMinSliceRows.
size_t ResolvedMinSliceRows(const EvalContextOptions& options);

/// `options.steal_variance` with 0 resolved to kDefaultStealVariance.
double ResolvedStealVariance(const EvalContextOptions& options);

/// Per-run binding of predicates to relations plus the index cache.
class EvalContext {
 public:
  /// Creates a context in which every IDB predicate is dynamic.
  static Result<EvalContext> Create(const Program& program,
                                    const Database& database,
                                    const EvalContextOptions& options = {});

  /// Creates a context where only the IDB predicates with
  /// `dynamic_idb[idb_index]` set evolve; the rest read `fixed_state`.
  /// `fixed_state` must outlive the context.
  static Result<EvalContext> CreateWithFixed(
      const Program& program, const Database& database,
      std::vector<bool> dynamic_idb, const IdbState* fixed_state,
      const EvalContextOptions& options = {});

  /// Creates a context for a synthesized program (the incremental
  /// maintainer's per-phase rule sets) in which individual predicates are
  /// bound to caller-supplied relations: `overrides[pred]`, when non-null,
  /// becomes predicate `pred`'s relation regardless of its EDB/IDB
  /// classification — which is how a body-only companion predicate (a
  /// delta set, a frozen original) reads a temp or maintained relation
  /// without the database ever owning a copy. Overridden EDB predicates
  /// need not exist in the database; non-overridden predicates bind as in
  /// Create (every IDB predicate dynamic). `overrides` is indexed by
  /// predicate id and may be shorter than num_predicates(); the pointed-to
  /// relations must outlive the context.
  static Result<EvalContext> CreateWithOverrides(
      const Program& program, const Database& database,
      std::vector<const Relation*> overrides,
      const EvalContextOptions& options = {});

  /// The relation predicate `pred` reads from, given the evolving state.
  const Relation& Resolve(uint32_t pred, const IdbState& state) const;

  /// True iff `pred` is a dynamic IDB predicate in this run.
  bool IsDynamic(uint32_t pred) const;

  /// The evaluation universe (active domain ∪ program constants).
  const std::vector<Value>& universe() const { return universe_; }

  const Program& program() const { return *program_; }
  const Database& database() const { return *database_; }

  /// True iff kMatch ops should use the relations' built-in column
  /// indexes (EvalContextOptions::use_join_indexes).
  bool use_join_indexes() const { return use_join_indexes_; }

  /// Resolved thread count for fixpoint stages (≥ 1; an option of 0 has
  /// already been replaced by the hardware concurrency).
  size_t num_threads() const { return num_threads_; }

  /// Resolved shard count for dynamic IDB relations (a power of two ≥ 1);
  /// states evaluated under this context must be built with it
  /// (MakeEmptyIdbState(program, num_shards())).
  size_t num_shards() const { return num_shards_; }

  /// The stage scheduler for parallel fixpoint stages.
  StageScheduler scheduler() const { return scheduler_; }

  /// Resolved minimum slice size (≥ 1; an option of 0 has already been
  /// replaced by EvalContextOptions::kDefaultMinSliceRows).
  size_t min_slice_rows() const { return min_slice_rows_; }

  /// Resolved auto-scheduler flip threshold (> 0; an option of 0 has
  /// already been replaced by EvalContextOptions::kDefaultStealVariance).
  double steal_variance() const { return steal_variance_; }

  /// The plan-optimizer pass selection for this run.
  const OptimizerPasses& optimizer_passes() const { return optimizer_passes_; }

  /// Resolved EvalContextOptions::output_predicates as predicate ids,
  /// in option order. Empty means every IDB predicate is an output.
  const std::vector<uint32_t>& output_preds() const { return output_preds_; }

 private:
  EvalContext(const Program& program, const Database& database)
      : program_(&program), database_(&database) {}

  Status Bind(const EvalContextOptions& options);

  struct PredBinding {
    enum class Kind { kEdb, kFixedIdb, kDynamicIdb };
    Kind kind = Kind::kEdb;
    const Relation* fixed = nullptr;  // kEdb / kFixedIdb
    int dyn_index = -1;               // kDynamicIdb
  };

  const Program* program_;
  const Database* database_;
  std::vector<PredBinding> bindings_;   // by predicate id
  std::vector<bool> dynamic_idb_;       // by idb_index
  std::vector<const Relation*> overrides_;  // by predicate id; may be short
  const IdbState* fixed_state_ = nullptr;
  std::vector<Value> universe_;
  bool use_join_indexes_ = true;
  size_t num_threads_ = 1;
  size_t num_shards_ = 1;
  StageScheduler scheduler_ = StageScheduler::kAuto;
  size_t min_slice_rows_ = EvalContextOptions::kDefaultMinSliceRows;
  double steal_variance_ = EvalContextOptions::kDefaultStealVariance;
  OptimizerPasses optimizer_passes_;
  std::vector<uint32_t> output_preds_;
  // Relations for EDB predicates bound as empty (allow_missing_edb).
  std::vector<std::unique_ptr<Relation>> empties_;
};

}  // namespace inflog

#endif  // INFLOG_EVAL_CONTEXT_H_
