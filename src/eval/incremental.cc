#include "src/eval/incremental.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <unordered_set>
#include <utility>

#include "src/ast/ast.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/eval/inflationary.h"
#include "src/eval/plan.h"
#include "src/eval/seminaive.h"
#include "src/eval/stratified.h"
#include "src/opt/passes.h"
#include "src/relation/relation.h"

namespace inflog {
namespace {

using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;

Tuple ToTuple(TupleView view) { return Tuple(view.begin(), view.end()); }

/// Iterates the live rows of `rel` in shard / physical-row order — the
/// deterministic walk every maintenance membership decision uses (never
/// an unordered map), so ApplyUpdate commits tuples in the same order on
/// every thread/shard/scheduler configuration.
template <typename Fn>
void ForEachRow(const Relation& rel, Fn&& fn) {
  for (size_t s = 0; s < rel.num_shards(); ++s) {
    const Relation::ShardView view = rel.shard(s);
    for (size_t r = 0; r < view.size(); ++r) {
      if (view.IsLive(r)) fn(view.Row(r));
    }
  }
}

/// Ascending body indices of the rule's positive atoms. Synthesized
/// trigger / recount / seed rules place their small delta or candidate
/// literal at body index 0, so this order scans it first. The greedy
/// planner must not be trusted here: among atoms with no bound columns it
/// prefers the one with the fewest unbound variables, which can demote a
/// wide delta literal behind a full-relation scan and turn an O(delta)
/// pass into an O(database) one.
std::vector<size_t> AscendingAtomOrder(const Rule& rule) {
  std::vector<size_t> order;
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (rule.body[j].IsPositiveAtom()) order.push_back(j);
  }
  return order;
}

/// A per-phase synthesized program: companion predicates live here (the
/// real program is never touched), real predicates keep their names so
/// EDB atoms bind to the same database relations, and `overrides` routes
/// any predicate — companion or real IDB — to a caller-owned relation
/// through EvalContext::CreateWithOverrides.
class SynthBuilder {
 public:
  explicit SynthBuilder(const Program& real)
      : real_(real),
        prog_(real.shared_symbols()),
        real2synth_(real.num_predicates(), kNoPredicate) {}

  Program& prog() { return prog_; }
  const Program& prog() const { return prog_; }

  /// Synth id of real predicate `pred` (same name and arity).
  Result<uint32_t> Map(uint32_t pred) {
    if (real2synth_[pred] != kNoPredicate) return real2synth_[pred];
    const PredicateInfo& info = real_.predicate(pred);
    INFLOG_ASSIGN_OR_RETURN(
        const uint32_t id, prog_.GetOrAddPredicate(info.name, info.arity));
    real2synth_[pred] = id;
    return id;
  }

  /// Synth id of companion `<name><suffix>` of real predicate `pred`,
  /// same arity. Suffixes contain '~', which the surface parser rejects
  /// in identifiers, so companions can never collide with user
  /// predicates.
  Result<uint32_t> Companion(uint32_t pred, std::string_view suffix) {
    const PredicateInfo& info = real_.predicate(pred);
    return prog_.GetOrAddPredicate(StrCat(info.name, suffix), info.arity);
  }

  /// Routes synth predicate `synth_pred` to `rel` (must outlive the
  /// contexts created from this builder).
  void Bind(uint32_t synth_pred, const Relation* rel) {
    if (overrides_.size() <= synth_pred) {
      overrides_.resize(synth_pred + 1, nullptr);
    }
    overrides_[synth_pred] = rel;
  }

  /// `lit` with its predicate remapped into this program's id space.
  Result<Literal> MapLiteral(const Literal& lit) {
    Literal out = lit;
    if (lit.IsPositiveAtom() || lit.IsNegatedAtom()) {
      INFLOG_ASSIGN_OR_RETURN(out.predicate, Map(lit.predicate));
    }
    return out;
  }

  /// Binds every real IDB predicate this builder mapped — except those in
  /// `skip` (the phase's dynamic heads) — to the maintained state, so
  /// lower-unit predicates read their final values.
  void BindMappedIdb(IdbState* state,
                     const std::unordered_set<uint32_t>& skip) {
    for (uint32_t p = 0; p < real2synth_.size(); ++p) {
      if (real2synth_[p] == kNoPredicate || skip.count(p) != 0) continue;
      const PredicateInfo& info = real_.predicate(p);
      if (info.is_idb) {
        Bind(real2synth_[p], &state->relations[info.idb_index]);
      }
    }
  }

  const std::vector<const Relation*>& overrides() const { return overrides_; }

 private:
  const Program& real_;
  Program prog_;
  std::vector<uint32_t> real2synth_;
  std::vector<const Relation*> overrides_;
};

/// Per-literal replacement choices when expanding a rule into trigger
/// variants; nullopt drops the literal from that variant.
struct LitAlternatives {
  std::vector<std::optional<Literal>> choices;
};

/// Appends to `sb` one rule per combination of per-literal choices
/// (cartesian product, odometer order — deterministic), head unchanged
/// across variants. Rule indices are collected into `out_rules`.
Status AddVariants(SynthBuilder* sb, const HeadAtom& head, uint32_t num_vars,
                   const std::vector<LitAlternatives>& lits,
                   std::vector<size_t>* out_rules) {
  std::vector<size_t> pick(lits.size(), 0);
  while (true) {
    Rule rule;
    rule.head = head;
    rule.num_vars = num_vars;
    for (size_t j = 0; j < lits.size(); ++j) {
      const std::optional<Literal>& choice = lits[j].choices[pick[j]];
      if (choice.has_value()) rule.body.push_back(*choice);
    }
    out_rules->push_back(sb->prog().rules().size());
    INFLOG_RETURN_IF_ERROR(sb->prog().AddRule(std::move(rule)));
    size_t j = 0;
    for (; j < lits.size(); ++j) {
      if (++pick[j] < lits[j].choices.size()) break;
      pick[j] = 0;
    }
    if (j == lits.size()) break;
  }
  return Status::OK();
}

/// Merges per-IDB staging buffers into `state` shard-by-shard, recording
/// the appended physical ranges — the DeltaRanges a seeded semi-naive run
/// resumes from. Returns true iff anything was appended.
bool MergeRecordingRanges(const std::vector<Relation>& buffers,
                          IdbState* state, DeltaRanges* ranges) {
  bool any = false;
  for (size_t i = 0; i < buffers.size(); ++i) {
    Relation& target = state->relations[i];
    for (size_t s = 0; s < target.num_shards(); ++s) {
      const size_t before = target.ShardSize(s);
      target.MergeShardFrom(buffers[i], s);
      (*ranges)[i][s] = {before, target.ShardSize(s)};
      any |= target.ShardSize(s) != before;
    }
  }
  return any;
}

/// Compacts tombstone-heavy relations between updates (valid only while
/// no delta ranges are outstanding). The threshold keeps compaction
/// amortized: a relation is rebuilt only when at least half its physical
/// rows are dead.
void MaybeCompact(Relation* rel) {
  const size_t dead = rel->dead_rows();
  if (dead >= 1024 && dead >= rel->size()) rel->CompactDead();
}

}  // namespace

Result<UpdateBatch> ParseUpdateLine(std::string_view line,
                                    SymbolTable* symbols) {
  UpdateBatch batch;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
  };
  skip_ws();
  while (i < line.size() && line[i] != '#') {
    const char sign = line[i];
    if (sign != '+' && sign != '-') {
      return Status::InvalidArgument(
          StrCat("expected '+' or '-' at column ", i + 1, " of update line: ",
                 std::string(line)));
    }
    ++i;
    const size_t name_start = i;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) != 0 ||
            line[i] == '_')) {
      ++i;
    }
    if (i == name_start) {
      return Status::InvalidArgument(
          StrCat("missing relation name in update line: ", std::string(line)));
    }
    std::string name(line.substr(name_start, i - name_start));
    if (i >= line.size() || line[i] != '(') {
      return Status::InvalidArgument(
          StrCat("expected '(' after relation name ", name));
    }
    ++i;
    Tuple tuple;
    skip_ws();
    if (i < line.size() && line[i] == ')') {
      ++i;
    } else {
      while (true) {
        skip_ws();
        const size_t const_start = i;
        while (i < line.size() && line[i] != ',' && line[i] != ')' &&
               std::isspace(static_cast<unsigned char>(line[i])) == 0) {
          ++i;
        }
        if (i == const_start) {
          return Status::InvalidArgument(
              StrCat("empty constant in update of ", name));
        }
        tuple.push_back(
            symbols->Intern(line.substr(const_start, i - const_start)));
        skip_ws();
        if (i < line.size() && line[i] == ',') {
          ++i;
          continue;
        }
        if (i < line.size() && line[i] == ')') {
          ++i;
          break;
        }
        return Status::InvalidArgument(
            StrCat("unterminated tuple in update line: ", std::string(line)));
      }
    }
    auto& side = sign == '+' ? batch.inserts : batch.deletes;
    side.emplace_back(std::move(name), std::move(tuple));
    skip_ws();
  }
  return batch;
}

IncrementalSession::IncrementalSession(const Program& program,
                                       Database* database,
                                       const IncrementalOptions& options)
    : program_(&program),
      database_(database),
      options_(options),
      analysis_(AnalyzeProgram(program)) {}

Result<std::unique_ptr<IncrementalSession>> IncrementalSession::Create(
    const Program& program, Database* database,
    const IncrementalOptions& options) {
  std::unique_ptr<IncrementalSession> session(
      new IncrementalSession(program, database, options));
  INFLOG_RETURN_IF_ERROR(session->Init());
  return session;
}

Status IncrementalSession::Init() {
  all_safe_ = analysis_.AllSafe();
  switch (options_.semantics) {
    case MaintainedSemantics::kStratified:
      capable_ = analysis_.stratifiable;
      break;
    case MaintainedSemantics::kInflationary:
      // The inflationary fixpoint of a positive program is the least
      // fixpoint, which counting/DRed maintain exactly. Non-positive
      // inflationary results are stage-sensitive: a deletion can change
      // which stage a negated literal was consulted at, with non-local
      // effects no delta algorithm bounds — recompute instead.
      capable_ = program_->IsPositive();
      break;
    case MaintainedSemantics::kWellFounded:
    case MaintainedSemantics::kStable:
      capable_ = false;
      break;
  }
  EvalStats scratch;
  INFLOG_ASSIGN_OR_RETURN(state_, ComputeFullState(&scratch));
  num_shards_ = state_.relations.empty()
                    ? ResolvedNumShards(options_.context)
                    : state_.relations[0].num_shards();
  BuildUnits();
  if (capable_) INFLOG_RETURN_IF_ERROR(InitCounts());
  return Status::OK();
}

void IncrementalSession::BuildUnits() {
  const std::vector<uint32_t>& idb_preds = program_->idb_predicates();
  const size_t n = idb_preds.size();
  units_.clear();
  unit_of_idb_.assign(n, 0);
  if (n == 0) return;

  // Dependency edges head → body over idb_index space, plus the rules
  // each head owns. All edges participate: under the semantics the
  // session maintains incrementally, negative edges never close a cycle
  // (stratifiable / positive), so they only constrain the topological
  // order — which they must, deletions on a negated input propagate too.
  std::vector<std::vector<uint32_t>> adj(n);
  std::vector<bool> self_loop(n, false);
  std::vector<std::vector<size_t>> rules_of(n);
  const std::vector<Rule>& rules = program_->rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const uint32_t h =
        static_cast<uint32_t>(program_->predicate(rules[r].head.predicate)
                                  .idb_index);
    rules_of[h].push_back(r);
    for (const Literal& lit : rules[r].body) {
      if (!lit.IsPositiveAtom() && !lit.IsNegatedAtom()) continue;
      const PredicateInfo& info = program_->predicate(lit.predicate);
      if (!info.is_idb) continue;
      const uint32_t b = static_cast<uint32_t>(info.idb_index);
      adj[h].push_back(b);
      if (b == h) self_loop[h] = true;
    }
  }

  // Iterative Tarjan. With head → dependency edges, components pop in
  // dependency-first order — exactly the unit processing order.
  std::vector<int64_t> index(n, -1);
  std::vector<int64_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  int64_t counter = 0;
  struct Frame {
    uint32_t v;
    size_t edge;
  };
  std::vector<Frame> dfs;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      if (frame.edge < adj[frame.v].size()) {
        const uint32_t w = adj[frame.v][frame.edge++];
        if (index[w] == -1) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          low[frame.v] = std::min(low[frame.v], index[w]);
        }
        continue;
      }
      const uint32_t v = frame.v;
      if (index[v] == low[v]) {
        Unit unit;
        std::vector<uint32_t> members;
        uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          members.push_back(w);
        } while (w != v);
        std::sort(members.begin(), members.end());
        unit.recursive = members.size() > 1 || self_loop[members[0]];
        for (const uint32_t m : members) {
          unit_of_idb_[m] = units_.size();
          unit.preds.push_back(idb_preds[m]);
          unit.rules.insert(unit.rules.end(), rules_of[m].begin(),
                            rules_of[m].end());
        }
        std::sort(unit.rules.begin(), unit.rules.end());
        units_.push_back(std::move(unit));
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        low[dfs.back().v] = std::min(low[dfs.back().v], low[v]);
      }
    }
  }
}

Result<IdbState> IncrementalSession::ComputeFullState(EvalStats* stats) {
  switch (options_.semantics) {
    case MaintainedSemantics::kStratified: {
      StratifiedOptions opts;
      opts.use_seminaive = options_.use_seminaive;
      opts.context = options_.context;
      INFLOG_ASSIGN_OR_RETURN(StratifiedResult result,
                              EvalStratified(*program_, *database_, opts));
      stats->Add(result.stats);
      return std::move(result.state);
    }
    case MaintainedSemantics::kInflationary: {
      InflationaryOptions opts;
      opts.use_seminaive = options_.use_seminaive;
      opts.context = options_.context;
      INFLOG_ASSIGN_OR_RETURN(InflationaryResult result,
                              EvalInflationary(*program_, *database_, opts));
      stats->Add(result.stats);
      return std::move(result.state);
    }
    case MaintainedSemantics::kWellFounded: {
      INFLOG_ASSIGN_OR_RETURN(
          WellFoundedResult result,
          EvalWellFounded(*program_, *database_, options_.wellfounded));
      return std::move(result.true_state);
    }
    case MaintainedSemantics::kStable: {
      INFLOG_ASSIGN_OR_RETURN(
          StableResult result,
          EnumerateStableModels(*program_, *database_, options_.stable));
      if (result.models.empty()) return MakeEmptyIdbState(*program_, 1);
      return std::move(result.models.front());
    }
  }
  return Status::Internal("unknown maintained semantics");
}

Status IncrementalSession::FullRecompute(EvalStats* stats) {
  INFLOG_ASSIGN_OR_RETURN(state_, ComputeFullState(stats));
  if (!state_.relations.empty()) {
    num_shards_ = state_.relations[0].num_shards();
  }
  if (capable_) INFLOG_RETURN_IF_ERROR(InitCounts());
  return Status::OK();
}

EvalContextOptions IncrementalSession::PhaseOptions() const {
  EvalContextOptions opts = options_.context;
  opts.allow_missing_edb = true;  // absent companions read as empty
  opts.reject_unsafe_negation = false;
  // Maintenance plans are ordered explicitly (delta literal first) or by
  // the greedy planner after a delta binding; the cost-model passes would
  // reorder against stale statistics and sharing would complicate the
  // seeded delta bookkeeping.
  opts.optimizer_passes = OptimizerPasses::None();
  opts.output_predicates.clear();
  opts.num_shards = num_shards_;
  return opts;
}

Status IncrementalSession::InitCounts() {
  const size_t num_idb = program_->idb_predicates().size();
  counts_.counts.assign(num_idb, TupleCountMap{});
  INFLOG_ASSIGN_OR_RETURN(
      const EvalContext ctx,
      EvalContext::CreateWithOverrides(*program_, *database_, {},
                                       PhaseOptions()));
  const std::vector<bool> dyn(num_idb, false);
  EvalStats scratch;
  for (const Unit& unit : units_) {
    if (unit.recursive) continue;
    const size_t idb = program_->predicate(unit.preds[0]).idb_index;
    for (const size_t r : unit.rules) {
      const RulePlan plan = PlanRule(*program_, r, dyn, -1);
      ExecutePlanCounted(ctx, plan, state_, nullptr, &counts_.counts[idb],
                         &scratch);
    }
  }
  return Status::OK();
}

Result<UpdateResult> IncrementalSession::ApplyUpdate(
    const UpdateBatch& batch) {
  UpdateResult result;
  EvalStats& st = result.stats;
  const SymbolTable& symbols = *program_->shared_symbols();

  // --- Validate the batch and net the EDB changes; no mutation yet, so a
  // rejected batch leaves the session consistent. ---
  struct EdbChange {
    size_t arity = 0;
    const Relation* old_rel = nullptr;  // pre-update relation, if loaded
    std::vector<Tuple> del, ins;        // net lists, batch order
    TupleSet raw_ins, del_seen, ins_seen;
  };
  std::map<std::string, EdbChange, std::less<>> edb;
  const auto resolve = [&](const std::string& name,
                           const Tuple& tuple) -> Result<EdbChange*> {
    auto it = edb.find(name);
    if (it == edb.end()) {
      EdbChange change;
      const Result<uint32_t> pred = program_->FindPredicate(name);
      if (pred.ok()) {
        const PredicateInfo& info = program_->predicate(pred.value());
        if (info.is_idb) {
          return Status::InvalidArgument(
              StrCat("cannot update derived relation ", name));
        }
        change.arity = info.arity;
      }
      const Result<const Relation*> rel = database_->GetRelation(name);
      if (rel.ok()) {
        change.old_rel = rel.value();
        if (!pred.ok()) change.arity = rel.value()->arity();
      } else if (!pred.ok()) {
        return Status::NotFound(
            StrCat("unknown relation in update: ", name));
      }
      it = edb.emplace(name, std::move(change)).first;
    }
    if (tuple.size() != it->second.arity) {
      return Status::InvalidArgument(
          StrCat("update tuple for ", name, " has ", tuple.size(),
                 " values, expected ", it->second.arity));
    }
    for (const Value v : tuple) {
      if (v >= symbols.size()) {
        return Status::InvalidArgument(
            StrCat("update tuple for ", name, " holds uninterned value id ",
                   v));
      }
    }
    return &it->second;
  };
  for (const auto& [name, tuple] : batch.inserts) {
    INFLOG_ASSIGN_OR_RETURN(EdbChange * change, resolve(name, tuple));
    change->raw_ins.insert(tuple);
  }
  // net_del = {t in deletes : t not re-inserted, t in the old relation};
  // net_ins = {t in inserts : t not in the old relation}. A tuple both
  // deleted and inserted lands where the old state had it: deletes apply
  // first, inserts win.
  for (const auto& [name, tuple] : batch.deletes) {
    INFLOG_ASSIGN_OR_RETURN(EdbChange * change, resolve(name, tuple));
    if (change->raw_ins.count(tuple) != 0) continue;
    if (change->old_rel == nullptr || !change->old_rel->Contains(tuple)) {
      continue;
    }
    if (change->del_seen.insert(tuple).second) change->del.push_back(tuple);
  }
  for (const auto& [name, tuple] : batch.inserts) {
    EdbChange& change = edb.find(name)->second;
    if (change.old_rel != nullptr && change.old_rel->Contains(tuple)) {
      continue;
    }
    if (change.ins_seen.insert(tuple).second) change.ins.push_back(tuple);
  }

  // --- Apply the net changes to the database. ---
  bool universe_grew = false;
  for (auto& [name, change] : edb) {
    if (!change.del.empty()) {
      INFLOG_ASSIGN_OR_RETURN(Relation * rel,
                              database_->MutableRelation(name));
      for (const Tuple& t : change.del) rel->Erase(t);
    }
    for (const Tuple& t : change.ins) {
      for (const Value v : t) universe_grew |= !database_->InUniverse(v);
      INFLOG_RETURN_IF_ERROR(database_->AddFact(name, t));
    }
    st.incremental_edb_deleted += change.del.size();
    st.incremental_edb_inserted += change.ins.size();
  }

  // --- Route: incremental maintenance or the recompute oracle. ---
  // Universe growth matters only to enumerating (unsafe) rules, whose
  // candidate space is the universe itself — no delta bounds that.
  if (!capable_ || (universe_grew && !all_safe_)) {
    INFLOG_RETURN_IF_ERROR(FullRecompute(&st));
    st.incremental_oracle_runs++;
    result.used_oracle = true;
    // A full recompute may move any IDB relation: report every one plus
    // the EDB relations the batch actually changed.
    for (const auto& [name, change] : edb) {
      if (!change.del.empty() || !change.ins.empty()) {
        result.changed_relations.push_back(name);
      }
    }
    for (const uint32_t pred : program_->idb_predicates()) {
      result.changed_relations.push_back(program_->predicate(pred).name);
    }
    std::sort(result.changed_relations.begin(),
              result.changed_relations.end());
    cumulative_.Add(st);
    return result;
  }
  st.incremental_updates++;

  // --- Maintain affected units in dependency order, threading net
  // deltas downstream through `changed`. ---
  std::map<uint32_t, PredDelta> changed;
  for (const auto& [name, change] : edb) {
    if (change.del.empty() && change.ins.empty()) continue;
    const Result<uint32_t> pred = program_->FindPredicate(name);
    if (!pred.ok()) continue;  // no rule can read it
    PredDelta delta(change.arity);
    for (const Tuple& t : change.del) {
      delta.del.Insert(t);
      delta.chg.Insert(t);
    }
    for (const Tuple& t : change.ins) {
      delta.ins.Insert(t);
      delta.chg.Insert(t);
    }
    changed.emplace(pred.value(), std::move(delta));
  }

  if (!changed.empty()) {
    for (const Unit& unit : units_) {
      bool affected = false;
      for (const size_t r : unit.rules) {
        for (const Literal& lit : program_->rules()[r].body) {
          if ((lit.IsPositiveAtom() || lit.IsNegatedAtom()) &&
              changed.count(lit.predicate) != 0) {
            affected = true;
            break;
          }
        }
        if (affected) break;
      }
      if (!affected) continue;
      if (unit.recursive) {
        st.incremental_dred_units++;
        INFLOG_RETURN_IF_ERROR(MaintainDRed(unit, &changed, &st));
      } else {
        st.incremental_counting_units++;
        INFLOG_RETURN_IF_ERROR(MaintainCounting(unit, &changed, &st));
      }
    }
  }

  // Report exactly what moved: EDB relations with a non-empty net delta
  // and the predicates whose maintained delta is non-empty (`changed`
  // holds the EDB seeds too, so dedupe after merging).
  for (const auto& [name, change] : edb) {
    if (!change.del.empty() || !change.ins.empty()) {
      result.changed_relations.push_back(name);
    }
  }
  for (const auto& [pred, delta] : changed) {
    if (delta.any()) {
      result.changed_relations.push_back(program_->predicate(pred).name);
    }
  }
  std::sort(result.changed_relations.begin(), result.changed_relations.end());
  result.changed_relations.erase(std::unique(result.changed_relations.begin(),
                                             result.changed_relations.end()),
                                 result.changed_relations.end());

  // Reclaim tombstone-heavy relations now that no delta ranges are live.
  for (auto& [name, change] : edb) {
    if (change.del.empty()) continue;
    INFLOG_ASSIGN_OR_RETURN(Relation * rel, database_->MutableRelation(name));
    MaybeCompact(rel);
  }
  for (Relation& rel : state_.relations) MaybeCompact(&rel);

  if (options_.verify) {
    EvalStats verify_stats;
    INFLOG_ASSIGN_OR_RETURN(const IdbState fresh,
                            ComputeFullState(&verify_stats));
    st.incremental_oracle_runs++;
    if (!(state_ == fresh)) {
      return Status::Internal(
          "incremental maintenance diverged from the from-scratch "
          "evaluation (verify_incremental)");
    }
  }
  cumulative_.Add(st);
  return result;
}

size_t IncrementalSession::CompactDeadRelations(double threshold,
                                                size_t min_rows) {
  size_t compacted = 0;
  const auto consider = [&](Relation* rel) {
    const size_t dead = rel->dead_rows();
    const size_t total = dead + rel->size();
    if (total < min_rows || dead == 0) return;
    if (static_cast<double>(dead) < threshold * static_cast<double>(total)) {
      return;
    }
    rel->CompactDead();
    ++compacted;
  };
  for (const std::string& name : database_->RelationNames()) {
    const Result<Relation*> rel = database_->MutableRelation(name);
    if (rel.ok()) consider(*rel);
  }
  for (Relation& rel : state_.relations) consider(&rel);
  return compacted;
}

Status IncrementalSession::MaintainCounting(
    const Unit& unit, std::map<uint32_t, PredDelta>* changed,
    EvalStats* st) {
  INFLOG_CHECK(unit.preds.size() == 1);
  const uint32_t head_pred = unit.preds[0];
  const PredicateInfo& head_info = program_->predicate(head_pred);
  const size_t head_idb = head_info.idb_index;
  Relation& target = state_.relations[head_idb];
  TupleCountMap& counts = counts_.counts[head_idb];

  SynthBuilder sb(*program_);
  INFLOG_ASSIGN_OR_RETURN(const uint32_t synth_head, sb.Map(head_pred));
  INFLOG_ASSIGN_OR_RETURN(const uint32_t cand_id,
                          sb.Companion(head_pred, "~cand"));
  std::vector<size_t> trigger_rules, recount_rules;

  for (const size_t r : unit.rules) {
    const Rule& orig = program_->rules()[r];
    // One trigger family per changed body literal: the changed
    // predicate's full delta (del ∪ ins) is scanned first, the remaining
    // literals cover old ∪ new — positive changed literals split over
    // {current, net-deleted}, negated changed literals are dropped (their
    // old truth is not recoverable from the new state; the recount below
    // is exact, so candidates only need to over-approximate).
    for (size_t j = 0; j < orig.body.size(); ++j) {
      const Literal& lj = orig.body[j];
      if (!lj.IsPositiveAtom() && !lj.IsNegatedAtom()) continue;
      const auto cit = changed->find(lj.predicate);
      if (cit == changed->end() || !cit->second.any()) continue;
      INFLOG_ASSIGN_OR_RETURN(const uint32_t trig,
                              sb.Companion(lj.predicate, "~chg"));
      sb.Bind(trig, &cit->second.chg);
      std::vector<LitAlternatives> alts;
      alts.push_back({{Literal::Pos(trig, lj.args)}});
      for (size_t k = 0; k < orig.body.size(); ++k) {
        if (k == j) continue;
        const Literal& lk = orig.body[k];
        LitAlternatives alt;
        const bool is_atom = lk.IsPositiveAtom() || lk.IsNegatedAtom();
        const auto kit = is_atom ? changed->find(lk.predicate)
                                 : changed->end();
        const bool k_changed = kit != changed->end() && kit->second.any();
        if (lk.IsPositiveAtom() && k_changed) {
          INFLOG_ASSIGN_OR_RETURN(const Literal cur, sb.MapLiteral(lk));
          INFLOG_ASSIGN_OR_RETURN(const uint32_t dn,
                                  sb.Companion(lk.predicate, "~dn"));
          sb.Bind(dn, &kit->second.del);
          alt.choices.push_back(cur);
          alt.choices.push_back(Literal::Pos(dn, lk.args));
        } else if (lk.IsNegatedAtom() && k_changed) {
          alt.choices.push_back(std::nullopt);
        } else {
          INFLOG_ASSIGN_OR_RETURN(const Literal cur, sb.MapLiteral(lk));
          alt.choices.push_back(cur);
        }
        alts.push_back(std::move(alt));
      }
      INFLOG_RETURN_IF_ERROR(AddVariants(&sb,
                                         HeadAtom{synth_head, orig.head.args},
                                         orig.num_vars, alts,
                                         &trigger_rules));
    }
    // Exact recount: H :- H~cand(head args), <original body> — candidates
    // first, counted over the *new* state only.
    Rule recount;
    recount.head = HeadAtom{synth_head, orig.head.args};
    recount.num_vars = orig.num_vars;
    recount.body.push_back(Literal::Pos(cand_id, orig.head.args));
    for (const Literal& lk : orig.body) {
      INFLOG_ASSIGN_OR_RETURN(Literal mapped, sb.MapLiteral(lk));
      recount.body.push_back(std::move(mapped));
    }
    recount_rules.push_back(sb.prog().rules().size());
    INFLOG_RETURN_IF_ERROR(sb.prog().AddRule(std::move(recount)));
  }
  if (trigger_rules.empty()) return Status::OK();

  Relation cand(head_info.arity, 1);
  sb.Bind(cand_id, &cand);
  sb.BindMappedIdb(&state_, {head_pred});

  INFLOG_ASSIGN_OR_RETURN(
      const EvalContext ctx,
      EvalContext::CreateWithOverrides(sb.prog(), *database_, sb.overrides(),
                                       PhaseOptions()));
  const IdbState dummy = MakeEmptyIdbState(sb.prog(), num_shards_);
  const std::vector<bool> dyn(sb.prog().idb_predicates().size(), false);

  for (const size_t tr : trigger_rules) {
    const RulePlan plan = PlanRuleWithOrder(
        sb.prog(), tr, dyn, -1, AscendingAtomOrder(sb.prog().rules()[tr]));
    ExecutePlan(ctx, plan, dummy, nullptr, &cand, st);
  }
  if (cand.empty()) return Status::OK();

  TupleCountMap fresh;
  for (const size_t rr : recount_rules) {
    const RulePlan plan = PlanRuleWithOrder(
        sb.prog(), rr, dyn, -1, AscendingAtomOrder(sb.prog().rules()[rr]));
    ExecutePlanCounted(ctx, plan, dummy, nullptr, &fresh, st);
  }

  // Commit: membership is (derivation count > 0); candidates whose count
  // did not cross zero fall through both branches untouched.
  PredDelta out(head_info.arity);
  ForEachRow(cand, [&](TupleView row) {
    st->incremental_recounted++;
    const Tuple t = ToTuple(row);
    const auto fit = fresh.find(t);
    const uint64_t now = fit == fresh.end() ? 0 : fit->second;
    if (now == 0) {
      counts.erase(t);
      if (target.Erase(t)) {
        out.del.Insert(t);
        out.chg.Insert(t);
      }
    } else {
      counts[t] = now;
      if (target.Insert(t)) {
        out.ins.Insert(t);
        out.chg.Insert(t);
      }
    }
  });
  st->incremental_idb_inserted += out.ins.size();
  st->incremental_idb_deleted += out.del.size();
  if (out.any()) changed->emplace(head_pred, std::move(out));
  return Status::OK();
}

Status IncrementalSession::MaintainDRed(const Unit& unit,
                                        std::map<uint32_t, PredDelta>* changed,
                                        EvalStats* st) {
  const std::unordered_set<uint32_t> in_unit(unit.preds.begin(),
                                             unit.preds.end());
  const std::vector<Rule>& rules = program_->rules();
  const auto input_delta = [&](const Literal& lit) -> PredDelta* {
    if (!lit.IsPositiveAtom() && !lit.IsNegatedAtom()) return nullptr;
    if (in_unit.count(lit.predicate) != 0) return nullptr;
    const auto it = changed->find(lit.predicate);
    return it != changed->end() && it->second.any() ? &it->second : nullptr;
  };

  // ---- Phase 1: overcount — close the deleted set over the unit's rules
  // against the frozen old unit state. Input literals are rewritten to
  // over-approximate their old value from the new one: old B ⊆ B ∪ B~dn
  // for positive literals, old ¬B ⊆ ¬B ∪ B~in for negated ones. The
  // over-approximation is sound because phase 3 rederives anything
  // deleted too eagerly. ----
  SynthBuilder del_sb(*program_);
  std::vector<size_t> del_seed_rules, del_prop_rules;
  std::map<uint32_t, uint32_t> del_head;  // real pred → P~del synth id
  const auto old_view = [&](const Literal& lk) -> Result<LitAlternatives> {
    LitAlternatives alt;
    const PredDelta* delta = input_delta(lk);
    if (delta != nullptr && lk.IsPositiveAtom()) {
      INFLOG_ASSIGN_OR_RETURN(const Literal cur, del_sb.MapLiteral(lk));
      INFLOG_ASSIGN_OR_RETURN(const uint32_t dn,
                              del_sb.Companion(lk.predicate, "~dn"));
      del_sb.Bind(dn, &delta->del);
      alt.choices.push_back(cur);
      alt.choices.push_back(Literal::Pos(dn, lk.args));
    } else if (delta != nullptr && lk.IsNegatedAtom()) {
      INFLOG_ASSIGN_OR_RETURN(const Literal cur, del_sb.MapLiteral(lk));
      INFLOG_ASSIGN_OR_RETURN(const uint32_t in,
                              del_sb.Companion(lk.predicate, "~in"));
      del_sb.Bind(in, &delta->ins);
      alt.choices.push_back(cur);
      alt.choices.push_back(Literal::Pos(in, lk.args));
    } else {
      // In-unit literals read the frozen old unit state (the session
      // relations, pruned only in phase 2); unchanged inputs and
      // (in)equalities are identical in both states.
      INFLOG_ASSIGN_OR_RETURN(const Literal cur, del_sb.MapLiteral(lk));
      alt.choices.push_back(cur);
    }
    return alt;
  };
  for (const size_t r : unit.rules) {
    const Rule& orig = rules[r];
    INFLOG_ASSIGN_OR_RETURN(const uint32_t dhead,
                            del_sb.Companion(orig.head.predicate, "~del"));
    del_head[orig.head.predicate] = dhead;
    for (size_t j = 0; j < orig.body.size(); ++j) {
      const Literal& lj = orig.body[j];
      std::optional<Literal> trigger;
      std::vector<size_t>* sink = nullptr;
      if (lj.IsPositiveAtom() && in_unit.count(lj.predicate) != 0) {
        // Propagation: a deleted in-unit tuple may kill this match.
        INFLOG_ASSIGN_OR_RETURN(const uint32_t qdel,
                                del_sb.Companion(lj.predicate, "~del"));
        trigger = Literal::Pos(qdel, lj.args);
        sink = &del_prop_rules;
      } else if (const PredDelta* delta = input_delta(lj)) {
        // Seed: a net-deleted input tuple (or net-inserted one under a
        // negated literal) kills matches directly.
        const bool positive = lj.IsPositiveAtom();
        INFLOG_ASSIGN_OR_RETURN(
            const uint32_t trig,
            del_sb.Companion(lj.predicate, positive ? "~dn" : "~in"));
        del_sb.Bind(trig, positive ? &delta->del : &delta->ins);
        trigger = Literal::Pos(trig, lj.args);
        sink = &del_seed_rules;
      } else {
        continue;
      }
      std::vector<LitAlternatives> alts;
      alts.push_back({{*trigger}});
      for (size_t k = 0; k < orig.body.size(); ++k) {
        if (k == j) continue;
        INFLOG_ASSIGN_OR_RETURN(LitAlternatives alt, old_view(orig.body[k]));
        alts.push_back(std::move(alt));
      }
      INFLOG_RETURN_IF_ERROR(AddVariants(&del_sb,
                                         HeadAtom{dhead, orig.head.args},
                                         orig.num_vars, alts, sink));
    }
  }

  std::map<uint32_t, Relation> removed;  // real pred → pruned tuples
  for (const uint32_t p : unit.preds) {
    removed.emplace(p, Relation(program_->predicate(p).arity, 1));
  }

  if (!del_seed_rules.empty()) {
    // Unit predicates read the frozen pre-update state; lower IDB
    // predicates read their (already final) maintained values.
    del_sb.BindMappedIdb(&state_, {});
    INFLOG_ASSIGN_OR_RETURN(
        const EvalContext del_ctx,
        EvalContext::CreateWithOverrides(del_sb.prog(), *database_,
                                         del_sb.overrides(), PhaseOptions()));
    const size_t num_del_idb = del_sb.prog().idb_predicates().size();
    IdbState del_state = MakeEmptyIdbState(del_sb.prog(), num_shards_);
    const std::vector<bool> dyn(num_del_idb, false);
    std::vector<Relation> buffers;
    buffers.reserve(num_del_idb);
    for (const uint32_t sp : del_sb.prog().idb_predicates()) {
      buffers.emplace_back(del_sb.prog().predicate(sp).arity, num_shards_);
    }
    for (const size_t sr : del_seed_rules) {
      const Rule& rule = del_sb.prog().rules()[sr];
      const RulePlan plan = PlanRuleWithOrder(del_sb.prog(), sr, dyn, -1,
                                              AscendingAtomOrder(rule));
      const size_t idb =
          del_sb.prog().predicate(rule.head.predicate).idb_index;
      ExecutePlan(del_ctx, plan, del_state, nullptr, &buffers[idb], st);
    }
    DeltaRanges seeds(num_del_idb,
                      std::vector<ShardRange>(num_shards_, {0, 0}));
    if (MergeRecordingRanges(buffers, &del_state, &seeds)) {
      if (!del_prop_rules.empty()) {
        SemiNaiveOptions sn;
        sn.rule_subset = del_prop_rules;
        sn.pool_cache = &pool_;
        sn.initial_deltas = &seeds;
        const SemiNaiveOutcome outcome =
            RunSemiNaive(del_ctx, sn, &del_state);
        st->Add(outcome.stats);
      }
      // ---- Phase 2: prune the candidates that are actually present. ----
      for (size_t i = 0; i < num_del_idb; ++i) {
        const uint32_t sp = del_sb.prog().idb_predicates()[i];
        // Invert the companion mapping deterministically.
        uint32_t real = kNoPredicate;
        for (const auto& [rp, dh] : del_head) {
          if (dh == sp) {
            real = rp;
            break;
          }
        }
        INFLOG_CHECK(real != kNoPredicate);
        Relation& target =
            state_.relations[program_->predicate(real).idb_index];
        Relation& rm = removed.at(real);
        ForEachRow(del_state.relations[i], [&](TupleView row) {
          st->incremental_del_candidates++;
          if (target.Erase(row)) rm.Insert(row);
        });
      }
    }
  }

  // ---- Phases 3 + 4 share one synthesized program: the unit predicates
  // are its dynamic IDB (the session relations are moved in and out, not
  // copied), rederivation rules re-prove pruned tuples (P~rm first), and
  // insertion seeds trigger the original rules on net-inserted inputs. ----
  SynthBuilder ins_sb(*program_);
  std::vector<size_t> reder_rules, ins_seed_rules, closure_rules;
  std::map<uint32_t, uint32_t> rm_id;  // real pred → P~rm synth id
  for (const size_t r : unit.rules) {
    const Rule& orig = rules[r];
    INFLOG_ASSIGN_OR_RETURN(const uint32_t h2, ins_sb.Map(orig.head.predicate));
    INFLOG_ASSIGN_OR_RETURN(const uint32_t rm,
                            ins_sb.Companion(orig.head.predicate, "~rm"));
    rm_id[orig.head.predicate] = rm;
    // (a) Rederive: H :- H~rm(head args), <body over the current state>.
    // Doubles as its own seed (explicit rm-first plan) and as a closure
    // rule (delta plans pin the in-unit body literals).
    Rule reder;
    reder.head = HeadAtom{h2, orig.head.args};
    reder.num_vars = orig.num_vars;
    reder.body.push_back(Literal::Pos(rm, orig.head.args));
    for (const Literal& lk : orig.body) {
      INFLOG_ASSIGN_OR_RETURN(Literal mapped, ins_sb.MapLiteral(lk));
      reder.body.push_back(std::move(mapped));
    }
    reder_rules.push_back(ins_sb.prog().rules().size());
    INFLOG_RETURN_IF_ERROR(ins_sb.prog().AddRule(std::move(reder)));
    // (b) Insertion seeds: one per changed-input literal, trigger first,
    // the rest of the body over the current state — for pure insertions
    // the other literals' new values already include their deltas, so no
    // old/new splitting is needed.
    for (size_t j = 0; j < orig.body.size(); ++j) {
      const Literal& lj = orig.body[j];
      const PredDelta* delta = input_delta(lj);
      if (delta == nullptr) continue;
      const bool positive = lj.IsPositiveAtom();
      // A positive literal gains matches from net-inserted tuples; a
      // negated one from net-deleted tuples (¬B newly true).
      INFLOG_ASSIGN_OR_RETURN(
          const uint32_t trig,
          ins_sb.Companion(lj.predicate, positive ? "~in" : "~dn"));
      ins_sb.Bind(trig, positive ? &delta->ins : &delta->del);
      Rule seed;
      seed.head = HeadAtom{h2, orig.head.args};
      seed.num_vars = orig.num_vars;
      seed.body.push_back(Literal::Pos(trig, lj.args));
      for (size_t k = 0; k < orig.body.size(); ++k) {
        if (k == j) continue;
        INFLOG_ASSIGN_OR_RETURN(Literal mapped,
                                ins_sb.MapLiteral(orig.body[k]));
        seed.body.push_back(std::move(mapped));
      }
      ins_seed_rules.push_back(ins_sb.prog().rules().size());
      INFLOG_RETURN_IF_ERROR(ins_sb.prog().AddRule(std::move(seed)));
    }
    // (c) Closure: the original rule verbatim, driven by seeded deltas.
    Rule closure;
    closure.head = HeadAtom{h2, orig.head.args};
    closure.num_vars = orig.num_vars;
    for (const Literal& lk : orig.body) {
      INFLOG_ASSIGN_OR_RETURN(Literal mapped, ins_sb.MapLiteral(lk));
      closure.body.push_back(std::move(mapped));
    }
    closure_rules.push_back(ins_sb.prog().rules().size());
    INFLOG_RETURN_IF_ERROR(ins_sb.prog().AddRule(std::move(closure)));
  }
  for (const auto& [real, rm] : rm_id) ins_sb.Bind(rm, &removed.at(real));
  ins_sb.BindMappedIdb(&state_, in_unit);

  INFLOG_ASSIGN_OR_RETURN(
      const EvalContext ins_ctx,
      EvalContext::CreateWithOverrides(ins_sb.prog(), *database_,
                                       ins_sb.overrides(), PhaseOptions()));
  const size_t num_unit_idb = ins_sb.prog().idb_predicates().size();
  std::vector<size_t> real_idb_of(num_unit_idb);
  for (size_t si = 0; si < num_unit_idb; ++si) {
    const uint32_t sp = ins_sb.prog().idb_predicates()[si];
    INFLOG_ASSIGN_OR_RETURN(
        const uint32_t real,
        program_->FindPredicate(ins_sb.prog().predicate(sp).name));
    real_idb_of[si] = program_->predicate(real).idb_index;
  }

  // Baseline physical sizes: every row appended past these during phases
  // 3–4 is a net addition candidate (Erase tombstones in place, so the
  // pruning above did not move anything).
  std::vector<std::vector<size_t>> base(num_unit_idb,
                                        std::vector<size_t>(num_shards_));
  IdbState phase = MakeEmptyIdbState(ins_sb.prog(), num_shards_);
  for (size_t si = 0; si < num_unit_idb; ++si) {
    phase.relations[si] = std::move(state_.relations[real_idb_of[si]]);
    for (size_t s = 0; s < num_shards_; ++s) {
      base[si][s] = phase.relations[si].ShardSize(s);
    }
  }
  const std::vector<bool> dyn(num_unit_idb, false);

  // ---- Phase 3: rederive. ----
  bool any_removed = false;
  for (const auto& [p, rm] : removed) any_removed |= !rm.empty();
  if (any_removed) {
    std::vector<Relation> buffers;
    buffers.reserve(num_unit_idb);
    for (size_t si = 0; si < num_unit_idb; ++si) {
      buffers.emplace_back(phase.relations[si].arity(), num_shards_);
    }
    for (const size_t rr : reder_rules) {
      const Rule& rule = ins_sb.prog().rules()[rr];
      const RulePlan plan = PlanRuleWithOrder(ins_sb.prog(), rr, dyn, -1,
                                              AscendingAtomOrder(rule));
      const size_t idb =
          ins_sb.prog().predicate(rule.head.predicate).idb_index;
      ExecutePlan(ins_ctx, plan, phase, nullptr, &buffers[idb], st);
    }
    DeltaRanges seeds(num_unit_idb,
                      std::vector<ShardRange>(num_shards_, {0, 0}));
    if (MergeRecordingRanges(buffers, &phase, &seeds)) {
      SemiNaiveOptions sn;
      sn.rule_subset = reder_rules;
      sn.pool_cache = &pool_;
      sn.initial_deltas = &seeds;
      const SemiNaiveOutcome outcome = RunSemiNaive(ins_ctx, sn, &phase);
      st->Add(outcome.stats);
    }
    for (size_t si = 0; si < num_unit_idb; ++si) {
      const uint32_t sp = ins_sb.prog().idb_predicates()[si];
      INFLOG_ASSIGN_OR_RETURN(
          const uint32_t real,
          program_->FindPredicate(ins_sb.prog().predicate(sp).name));
      ForEachRow(removed.at(real), [&](TupleView row) {
        if (phase.relations[si].Contains(row)) st->incremental_rederived++;
      });
    }
  }

  // ---- Phase 4: insert. ----
  if (!ins_seed_rules.empty()) {
    std::vector<Relation> buffers;
    buffers.reserve(num_unit_idb);
    for (size_t si = 0; si < num_unit_idb; ++si) {
      buffers.emplace_back(phase.relations[si].arity(), num_shards_);
    }
    for (const size_t sr : ins_seed_rules) {
      const Rule& rule = ins_sb.prog().rules()[sr];
      const RulePlan plan = PlanRuleWithOrder(ins_sb.prog(), sr, dyn, -1,
                                              AscendingAtomOrder(rule));
      const size_t idb =
          ins_sb.prog().predicate(rule.head.predicate).idb_index;
      ExecutePlan(ins_ctx, plan, phase, nullptr, &buffers[idb], st);
    }
    DeltaRanges seeds(num_unit_idb,
                      std::vector<ShardRange>(num_shards_, {0, 0}));
    if (MergeRecordingRanges(buffers, &phase, &seeds)) {
      SemiNaiveOptions sn;
      sn.rule_subset = closure_rules;
      sn.pool_cache = &pool_;
      sn.initial_deltas = &seeds;
      const SemiNaiveOutcome outcome = RunSemiNaive(ins_ctx, sn, &phase);
      st->Add(outcome.stats);
    }
  }

  // Move the unit relations home and net out the update's effect:
  // removed-and-not-back is a deletion, appended-and-not-removed is an
  // insertion (a tuple both removed and re-appended cancels).
  for (size_t si = 0; si < num_unit_idb; ++si) {
    state_.relations[real_idb_of[si]] = std::move(phase.relations[si]);
  }
  for (size_t si = 0; si < num_unit_idb; ++si) {
    const uint32_t sp = ins_sb.prog().idb_predicates()[si];
    INFLOG_ASSIGN_OR_RETURN(
        const uint32_t real,
        program_->FindPredicate(ins_sb.prog().predicate(sp).name));
    Relation& target = state_.relations[real_idb_of[si]];
    const Relation& rm = removed.at(real);
    PredDelta out(target.arity());
    ForEachRow(rm, [&](TupleView row) {
      if (!target.Contains(row)) {
        out.del.Insert(row);
        out.chg.Insert(row);
      }
    });
    for (size_t s = 0; s < num_shards_; ++s) {
      const Relation::ShardView view = target.shard(s);
      for (size_t row = base[si][s]; row < view.size(); ++row) {
        if (!view.IsLive(row)) continue;
        const TupleView t = view.Row(row);
        if (!rm.Contains(t)) {
          out.ins.Insert(t);
          out.chg.Insert(t);
        }
      }
    }
    st->incremental_idb_inserted += out.ins.size();
    st->incremental_idb_deleted += out.del.size();
    if (out.any()) changed->emplace(real, std::move(out));
  }
  return Status::OK();
}

}  // namespace inflog
