// The semi-naive entry point: a thin wrapper over the shared fixpoint
// core (FixpointDriver + RelationalConsequence in fixpoint_driver.h).
//
// Drives the inflationary iteration S⁰ = ∅, Sⁿ⁺¹ = Sⁿ ∪ Θ(Sⁿ) for a subset
// of rules, with a subset of the IDB predicates designated dynamic. Used by
// the inflationary evaluator (all rules, all predicates dynamic) and the
// stratified evaluator (one stratum at a time).
//
// Stage-exactness of the delta optimization: a rule body is a conjunction
// of positive IDB literals (monotone non-decreasing along the stages),
// EDB / equality literals (constant), and negated IDB literals (monotone
// non-increasing). If a body instance is true at Sⁿ and all its positive
// dynamic literals already held at Sⁿ⁻¹, then the whole body held at Sⁿ⁻¹
// (negated literals true at Sⁿ were true at every earlier stage), so its
// head entered at stage n at the latest. Hence the tuples that are new at
// stage n+1 all have a positive dynamic literal matched in Δⁿ, and
// restricting one positive dynamic literal to Δⁿ (iterating over the
// choices) reproduces the naive stage sets exactly. This matters because
// Proposition 2's distance program reads its meaning off the stage at
// which tuples enter. The property is cross-checked against the naive
// driver in tests/eval_inflationary_test.cc.

#ifndef INFLOG_EVAL_SEMINAIVE_H_
#define INFLOG_EVAL_SEMINAIVE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/eval/context.h"
#include "src/eval/executor.h"

namespace inflog {

/// Options for one semi-naive run.
struct SemiNaiveOptions {
  /// Rules to evaluate (indices into program.rules()); empty = all rules.
  std::vector<size_t> rule_subset;
  /// Stop after this many stages (0 = run to the inductive fixpoint).
  size_t max_stages = 0;
  /// If false, recompute full Θ every stage (the naive driver; used as a
  /// cross-check oracle and as the ablation baseline in bench E6).
  bool use_deltas = true;
  /// Optional caller-owned pool slot shared across runs (see
  /// RelationalConsequence::Options::pool_cache).
  std::unique_ptr<ThreadPool>* pool_cache = nullptr;
  /// Externally seeded initial deltas (see
  /// RelationalConsequence::Options::initial_deltas): when non-null,
  /// stage 0 is a delta pass over these per-shard ranges instead of a
  /// full pass. Used by the incremental maintainer to resume a fixpoint
  /// after appending a small set of tuples to `state`.
  const DeltaRanges* initial_deltas = nullptr;
};

/// Output of a semi-naive run.
struct SemiNaiveOutcome {
  /// Number of productive stages (stages that added at least one tuple);
  /// this is the n₀ with S^{n₀} = S^{n₀+1} of Section 4.
  size_t num_stages = 0;
  /// True iff the run reached the inductive fixpoint (false only when
  /// max_stages cut it short).
  bool converged = false;
  /// stage_sizes[idb_index][k] = relation size after stage k+1.
  std::vector<std::vector<size_t>> stage_sizes;
  /// stage_shard_sizes[idb_index][k][s] = rows in shard s after stage
  /// k+1. The stage of a tuple at Relation::RowRef (s, r) is the first k
  /// with r < stage_shard_sizes[idb][k][s]; for unsharded relations shard
  /// 0's entry is the old global rule.
  std::vector<std::vector<std::vector<size_t>>> stage_shard_sizes;
  EvalStats stats;
};

/// Runs the loop, growing `state` in place (append-only). `ctx` decides
/// which predicates are dynamic; rules whose head predicate is not dynamic
/// in `ctx` must not be part of the subset.
SemiNaiveOutcome RunSemiNaive(const EvalContext& ctx,
                              const SemiNaiveOptions& options,
                              IdbState* state);

}  // namespace inflog

#endif  // INFLOG_EVAL_SEMINAIVE_H_
