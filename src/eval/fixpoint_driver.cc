#include "src/eval/fixpoint_driver.h"

#include <numeric>

#include "src/base/logging.h"

namespace inflog {

FixpointDriver::Outcome FixpointDriver::Iterate(const Options& options,
                                                const StepFn& step) {
  Outcome out;
  while (true) {
    if (options.max_stages != 0 && out.num_stages >= options.max_stages) {
      return out;  // converged stays false
    }
    if (step(out.num_stages) == 0) {
      out.converged = true;
      return out;
    }
    ++out.num_stages;
  }
}

RelationalConsequence::RelationalConsequence(const EvalContext& ctx,
                                             const Options& options,
                                             IdbState* state)
    : ctx_(ctx), state_(state), use_deltas_(options.use_deltas) {
  const Program& program = ctx.program();
  const size_t num_idb = program.idb_predicates().size();
  INFLOG_CHECK(state->relations.size() == num_idb);

  std::vector<size_t> rules = options.rule_subset;
  if (rules.empty()) {
    rules.resize(program.rules().size());
    std::iota(rules.begin(), rules.end(), 0);
  }

  // Dynamic mask mirrors the context's classification.
  std::vector<bool> dynamic(num_idb, false);
  for (size_t i = 0; i < num_idb; ++i) {
    dynamic[i] = ctx.IsDynamic(program.idb_predicates()[i]);
  }

  // Compile plans: a full plan per rule (stage 1), and one delta plan per
  // (rule, dynamic positive literal) for later stages.
  compiled_.reserve(rules.size());
  for (size_t r : rules) {
    const Rule& rule = program.rules()[r];
    const int idb = program.predicate(rule.head.predicate).idb_index;
    INFLOG_CHECK(idb >= 0 && dynamic[idb])
        << "fixpoint rule subset must have dynamic head predicates";
    CompiledRule c{r, idb, PlanRule(program, r, dynamic, -1), {}};
    if (use_deltas_) {
      for (int lit : DeltaCandidates(program, rule, dynamic)) {
        c.deltas.push_back(PlanRule(program, r, dynamic, lit));
      }
    }
    compiled_.push_back(std::move(c));
  }

  delta_ranges_.assign(num_idb, {0, 0});
  stage_sizes_.resize(num_idb);
}

size_t RelationalConsequence::Step(size_t stage) {
  const Program& program = ctx_.program();
  const size_t num_idb = program.idb_predicates().size();

  // Derivations are buffered per stage and merged afterwards, so every
  // stage reads a consistent Sⁿ (and so relations are never mutated while
  // scanned).
  std::vector<Relation> buffers;
  buffers.reserve(num_idb);
  for (uint32_t pred : program.idb_predicates()) {
    buffers.emplace_back(program.predicate(pred).arity);
  }

  if (stage == 0 || !use_deltas_) {
    for (const CompiledRule& c : compiled_) {
      ExecutePlan(ctx_, c.full, *state_, nullptr, &buffers[c.head_idb],
                  &stats_);
    }
  } else {
    for (const CompiledRule& c : compiled_) {
      for (const RulePlan& plan : c.deltas) {
        ExecutePlan(ctx_, plan, *state_, &delta_ranges_,
                    &buffers[c.head_idb], &stats_);
      }
    }
  }

  // Merge the stage's derivations; the appended row ranges become the next
  // deltas.
  size_t added = 0;
  for (size_t i = 0; i < num_idb; ++i) {
    const size_t before = state_->relations[i].size();
    added += state_->relations[i].InsertAll(buffers[i]);
    delta_ranges_[i] = {before, state_->relations[i].size()};
  }
  if (added > 0) {
    ++stats_.stages;
    for (size_t i = 0; i < num_idb; ++i) {
      stage_sizes_[i].push_back(state_->relations[i].size());
    }
  }
  return added;
}

GroundConsequence::GroundConsequence(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true)
    : ground_(ground) {
  const size_t num_atoms = ground.atoms.size();
  INFLOG_CHECK(assumed_true.size() == num_atoms);
  constexpr uint32_t kDead = static_cast<uint32_t>(-1);

  missing_.resize(ground.rules.size());
  watchers_.resize(num_atoms);
  model_.assign(num_atoms, false);

  for (uint32_t r = 0; r < ground.rules.size(); ++r) {
    const GroundRule& rule = ground.rules[r];
    const GroundBody& body = ground.RuleBody(rule);
    bool dead = false;
    for (uint32_t n : body.neg) {
      if (assumed_true[n]) {
        dead = true;
        break;
      }
    }
    if (dead) {
      missing_[r] = kDead;
      continue;
    }
    missing_[r] = static_cast<uint32_t>(body.pos.size());
    for (uint32_t p : body.pos) watchers_[p].push_back(r);
    if (body.pos.empty() && !model_[rule.head]) {
      model_[rule.head] = true;
      frontier_.push_back(rule.head);
    }
  }
}

size_t GroundConsequence::Step(size_t /*stage*/) {
  std::vector<uint32_t> next;
  for (uint32_t atom : frontier_) {
    for (uint32_t r : watchers_[atom]) {
      INFLOG_DCHECK(missing_[r] != static_cast<uint32_t>(-1) &&
                    missing_[r] > 0);
      if (--missing_[r] == 0) {
        const uint32_t head = ground_.rules[r].head;
        if (!model_[head]) {
          model_[head] = true;
          next.push_back(head);
        }
      }
    }
  }
  frontier_ = std::move(next);
  return frontier_.size();
}

}  // namespace inflog
