#include "src/eval/fixpoint_driver.h"

#include <algorithm>
#include <numeric>

#include "src/base/logging.h"

namespace inflog {

FixpointDriver::Outcome FixpointDriver::Iterate(const Options& options,
                                                const StepFn& step) {
  Outcome out;
  while (true) {
    if (options.max_stages != 0 && out.num_stages >= options.max_stages) {
      return out;  // converged stays false
    }
    if (step(out.num_stages) == 0) {
      out.converged = true;
      return out;
    }
    ++out.num_stages;
  }
}

namespace {

/// The idb_index of the predicate a delta plan's delta-scan op reads.
int DeltaScanIdb(const Program& program, const RulePlan& plan) {
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kMatch && op.is_delta_scan) {
      return program.predicate(op.predicate).idb_index;
    }
  }
  // A never_fires plan may have no ops; slicing then degenerates to one
  // empty task.
  return -1;
}

/// Cuts one predicate's per-shard delta ranges into about `desired`
/// slices, each itself a per-shard range vector. Slices align to shard
/// boundaries — whole shards are grouped until a slice holds ~1/desired
/// of the rows — except that a shard holding more than two targets'
/// worth of rows is split by rows, so a skewed hash cannot starve the
/// fan-out. Deterministic in (ranges, desired) only.
std::vector<std::vector<ShardRange>> SliceDeltaRanges(
    const std::vector<ShardRange>& ranges, size_t desired) {
  const size_t num_shards = ranges.size();
  size_t rows = 0;
  for (const auto& [b, e] : ranges) rows += e - b;
  std::vector<std::vector<ShardRange>> out;
  if (rows == 0 || desired <= 1) {
    out.push_back(ranges);
    return out;
  }
  const size_t target = (rows + desired - 1) / desired;
  std::vector<ShardRange> cur(num_shards, {0, 0});
  size_t acc = 0;
  auto flush = [&] {
    if (acc == 0) return;
    out.push_back(cur);
    cur.assign(num_shards, {0, 0});
    acc = 0;
  };
  for (size_t s = 0; s < num_shards; ++s) {
    const auto [b, e] = ranges[s];
    const size_t n = e - b;
    if (n == 0) continue;
    if (n > 2 * target) {
      flush();
      const size_t pieces = (n + target - 1) / target;
      for (size_t k = 0; k < pieces; ++k) {
        cur[s] = {b + n * k / pieces, b + n * (k + 1) / pieces};
        acc = cur[s].second - cur[s].first;
        flush();
      }
      continue;
    }
    cur[s] = ranges[s];
    acc += n;
    if (acc >= target) flush();
  }
  flush();
  return out;
}

/// Projects the linearized row window [begin, end) — shards concatenated
/// in shard order, the delta-scan walk order — back onto per-shard
/// ranges. Pure function of (base, begin, end): however the stealing
/// scheduler happened to cut a delta chunk, the rows it covers are
/// determined by its window alone.
std::vector<ShardRange> ProjectDeltaWindow(
    const std::vector<ShardRange>& base, size_t begin, size_t end) {
  std::vector<ShardRange> out(base.size(), {0, 0});
  size_t offset = 0;
  for (size_t s = 0; s < base.size(); ++s) {
    const auto [b, e] = base[s];
    const size_t n = e - b;
    const size_t lo = std::min(n, begin > offset ? begin - offset : 0);
    const size_t hi = std::min(n, end > offset ? end - offset : 0);
    if (hi > lo) out[s] = {b + lo, b + hi};
    offset += n;
  }
  return out;
}

}  // namespace

RelationalConsequence::RelationalConsequence(const EvalContext& ctx,
                                             const Options& options,
                                             IdbState* state)
    : ctx_(ctx),
      state_(state),
      use_deltas_(options.use_deltas),
      num_threads_(ctx.num_threads()),
      scheduler_(ctx.scheduler()),
      min_slice_rows_(ctx.min_slice_rows()),
      pool_slot_(options.pool_cache != nullptr ? options.pool_cache
                                               : &own_pool_) {
  const Program& program = ctx.program();
  const size_t num_idb = program.idb_predicates().size();
  INFLOG_CHECK(state->relations.size() == num_idb);

  std::vector<size_t> rules = options.rule_subset;
  if (rules.empty()) {
    rules.resize(program.rules().size());
    std::iota(rules.begin(), rules.end(), 0);
  }

  // Dynamic mask mirrors the context's classification.
  std::vector<bool> dynamic(num_idb, false);
  for (size_t i = 0; i < num_idb; ++i) {
    dynamic[i] = ctx.IsDynamic(program.idb_predicates()[i]);
  }

  // Compile plans: a full plan per rule (stage 1), and one delta plan per
  // (rule, dynamic positive literal) for later stages.
  compiled_.reserve(rules.size());
  for (size_t r : rules) {
    const Rule& rule = program.rules()[r];
    const int idb = program.predicate(rule.head.predicate).idb_index;
    INFLOG_CHECK(idb >= 0 && dynamic[idb])
        << "fixpoint rule subset must have dynamic head predicates";
    CompiledRule c{r, idb, PlanRule(program, r, dynamic, -1), {}};
    if (use_deltas_) {
      for (int lit : DeltaCandidates(program, rule, dynamic)) {
        RulePlan plan = PlanRule(program, r, dynamic, lit);
        const int delta_idb = DeltaScanIdb(program, plan);
        c.deltas.push_back(DeltaPlan{std::move(plan), delta_idb});
      }
    }
    compiled_.push_back(std::move(c));
  }

  // All dynamic relations must agree on one shard count so staging
  // relations and the state partition every tuple set identically.
  num_shards_ = num_idb > 0 ? state->relations[0].num_shards() : 1;
  for (const Relation& rel : state->relations) {
    INFLOG_CHECK(rel.num_shards() == num_shards_)
        << "IDB relations must share one shard count";
  }
  delta_ranges_.assign(num_idb,
                       std::vector<ShardRange>(num_shards_, {0, 0}));
  stage_sizes_.resize(num_idb);
  stage_shard_sizes_.resize(num_idb);
}

void RelationalConsequence::RunStageSerial(bool full_pass,
                                           std::vector<Relation>* buffers) {
  if (full_pass) {
    for (const CompiledRule& c : compiled_) {
      ExecutePlan(ctx_, c.full, *state_, nullptr, &(*buffers)[c.head_idb],
                  &stats_);
    }
  } else {
    for (const CompiledRule& c : compiled_) {
      for (const DeltaPlan& d : c.deltas) {
        ExecutePlan(ctx_, d.plan, *state_, &delta_ranges_,
                    &(*buffers)[c.head_idb], &stats_);
      }
    }
  }
}

void RelationalConsequence::FinalizeStageIndexes(bool full_pass) const {
  auto touch = [&](const RulePlan& plan) {
    for (const PlanOp& op : plan.ops) {
      if (op.kind != PlanOp::Kind::kMatch || op.is_delta_scan ||
          op.key_cols.empty()) {
        continue;
      }
      const Relation& rel = ctx_.Resolve(op.predicate, *state_);
      for (size_t col : op.key_cols) rel.EnsureIndexed(col);
    }
  };
  for (const CompiledRule& c : compiled_) {
    if (full_pass) {
      touch(c.full);
    } else {
      for (const DeltaPlan& d : c.deltas) touch(d.plan);
    }
  }
}

void RelationalConsequence::RunStageParallel(bool full_pass,
                                             std::vector<Relation>* buffers) {
  // Small stages aren't worth the fan-out (staging relations + pool
  // wakeups): below one slice's worth of input rows, take the serial path
  // — it computes the identical result, so the cutoff is invisible to
  // callers. The work proxy is deterministic and independent of the
  // thread count, shard count, and scheduler.
  size_t work = 0;
  if (full_pass) {
    for (const CompiledRule& c : compiled_) {
      for (const PlanOp& op : c.full.ops) {
        if (op.kind == PlanOp::Kind::kMatch) {
          work += ctx_.Resolve(op.predicate, *state_).size();
        }
      }
    }
  } else {
    for (const auto& ranges : delta_ranges_) {
      for (const auto& [begin, end] : ranges) work += end - begin;
    }
  }
  if (work < min_slice_rows_) {
    RunStageSerial(full_pass, buffers);
    return;
  }
  if (*pool_slot_ == nullptr) {
    // Spawned lazily so runs whose stages all fall under the cutoff (e.g.
    // many small strata) never pay thread creation. The calling thread
    // participates in the pool's loops, so N threads total means N-1
    // workers.
    *pool_slot_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
  ThreadPool& pool = **pool_slot_;

  // During the fan-out every worker reads the frozen Sⁿ concurrently, so
  // first finalize each column index the plans can probe; after this no
  // relation read mutates anything (Relation::EnsureIndexed contract).
  if (ctx_.use_join_indexes()) FinalizeStageIndexes(full_pass);

  if (scheduler_ == StageScheduler::kStealing) {
    RunStageStealing(full_pass, buffers, pool);
  } else {
    RunStageStatic(full_pass, buffers, pool);
  }
}

void RelationalConsequence::RunStageStatic(bool full_pass,
                                           std::vector<Relation>* buffers,
                                           ThreadPool& pool) {
  // Partition the stage: full passes split per rule plan, delta passes
  // per (delta plan × delta slice), the slices cut from the per-shard
  // delta ranges so the fan-out partitions along shard boundaries. Task
  // order — rules in program order, then plan order, then ascending
  // slices — is exactly the serial execution order; the ordered
  // shard-wise merge below relies on that.
  std::vector<StageTask> tasks;
  // Per-sliced-task delta ranges, precomputed here (serially) so the
  // workers read them in place instead of deep-copying DeltaRanges on
  // the hot fan-out path.
  std::vector<DeltaRanges> sliced_ranges;
  if (full_pass) {
    for (const CompiledRule& c : compiled_) {
      tasks.push_back(StageTask{&c.full, c.head_idb, -1});
    }
  } else {
    for (const CompiledRule& c : compiled_) {
      for (const DeltaPlan& d : c.deltas) {
        if (d.delta_idb < 0) {
          tasks.push_back(StageTask{&d.plan, c.head_idb, -1});
          continue;
        }
        const std::vector<ShardRange>& ranges = delta_ranges_[d.delta_idb];
        size_t rows = 0;
        for (const auto& [begin, end] : ranges) rows += end - begin;
        // Aim for a few slices per thread so claim-order load imbalance
        // evens out, but never slices smaller than min_slice_rows_.
        const size_t desired =
            std::min(num_threads_ * 4, rows / min_slice_rows_);
        for (std::vector<ShardRange>& slice :
             SliceDeltaRanges(ranges, desired)) {
          size_t slice_rows = 0;
          for (const auto& [begin, end] : slice) slice_rows += end - begin;
          stats_.RecordSlice(slice_rows);
          DeltaRanges local = delta_ranges_;
          local[d.delta_idb] = std::move(slice);
          tasks.push_back(StageTask{&d.plan, c.head_idb,
                                    static_cast<int>(sliced_ranges.size())});
          sliced_ranges.push_back(std::move(local));
        }
      }
    }
  }

  // Per-task staging: each task owns one sharded output relation and one
  // stats block, so workers never share a mutable object.
  std::vector<Relation> outs;
  outs.reserve(tasks.size());
  for (const StageTask& t : tasks) {
    const Relation& buffer = (*buffers)[t.head_idb];
    outs.emplace_back(buffer.arity(), buffer.num_shards());
  }
  std::vector<EvalStats> task_stats(tasks.size());

  pool.ParallelFor(tasks.size(), [&](size_t i) {
    const StageTask& t = tasks[i];
    const DeltaRanges* deltas =
        full_pass ? nullptr
                  : (t.sliced >= 0 ? &sliced_ranges[t.sliced]
                                   : &delta_ranges_);
    ExecutePlan(ctx_, *t.plan, *state_, deltas, &outs[i], &task_stats[i]);
  });

  // Fold the per-task stagings in task order — the serial execution
  // order, which the ordered shard-wise merge relies on.
  std::vector<StagedOutput> ordered;
  ordered.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    ordered.push_back(StagedOutput{tasks[i].head_idb, &outs[i],
                                   &task_stats[i]});
  }
  FoldStagedOutputs(ordered, buffers, pool);
}

void RelationalConsequence::RunStageStealing(
    bool full_pass, std::vector<Relation>* buffers, ThreadPool& pool) {
  // One splittable item per plan, in serial execution order: rules in
  // program order, then plan order. Delta plans carry their predicate's
  // whole delta range (ParallelForDynamic splits it on demand); full
  // plans and delta plans with no delta scan are atomic (0 rows).
  struct StealItem {
    const RulePlan* plan;
    int head_idb;
    int delta_idb;  ///< < 0: atomic — execute the whole plan.
  };
  std::vector<StealItem> items;
  std::vector<size_t> item_rows;
  if (full_pass) {
    for (const CompiledRule& c : compiled_) {
      items.push_back(StealItem{&c.full, c.head_idb, -1});
      item_rows.push_back(0);
    }
  } else {
    for (const CompiledRule& c : compiled_) {
      for (const DeltaPlan& d : c.deltas) {
        if (d.delta_idb < 0) {
          items.push_back(StealItem{&d.plan, c.head_idb, -1});
          item_rows.push_back(0);
          continue;
        }
        size_t rows = 0;
        for (const auto& [begin, end] : delta_ranges_[d.delta_idb]) {
          rows += end - begin;
        }
        items.push_back(StealItem{&d.plan, c.head_idb, d.delta_idb});
        item_rows.push_back(rows);
      }
    }
  }

  // Each executed chunk stages into its own sharded relation. The set of
  // chunks depends on steal timing, but a chunk's (item, begin) key fully
  // determines the delta rows it covered, so sorting the records by that
  // key reconstructs the serial execution order whatever the partition
  // was. Records are per-participant, so workers never share a vector.
  struct ChunkRecord {
    size_t item;
    size_t begin;
    size_t rows;
    Relation out;
    EvalStats stats;
  };
  std::vector<std::vector<ChunkRecord>> records(pool.num_workers() + 1);
  // Chunks are cut dynamically, so their restricted DeltaRanges cannot
  // be precomputed serially as on the static path. Instead each worker
  // keeps one scratch copy of the full ranges (made on its first chunk)
  // and per chunk overwrites — then restores — only the sliced
  // predicate's entry, so the hot fan-out path never deep-copies the
  // whole DeltaRanges per chunk.
  std::vector<DeltaRanges> scratch(pool.num_workers() + 1);

  const ThreadPool::DynamicLoopStats dyn = pool.ParallelForDynamic(
      item_rows, min_slice_rows_,
      [&](size_t i, size_t begin, size_t end, size_t worker) {
        const StealItem& item = items[i];
        ChunkRecord rec{i, begin, end - begin,
                        Relation((*buffers)[item.head_idb].arity(),
                                 num_shards_),
                        EvalStats()};
        const DeltaRanges* deltas = nullptr;
        if (!full_pass) {
          if (item.delta_idb >= 0) {
            DeltaRanges& local = scratch[worker];
            if (local.empty()) local = delta_ranges_;
            local[item.delta_idb] = ProjectDeltaWindow(
                delta_ranges_[item.delta_idb], begin, end);
            deltas = &local;
          } else {
            deltas = &delta_ranges_;
          }
        }
        ExecutePlan(ctx_, *item.plan, *state_, deltas, &rec.out,
                    &rec.stats);
        if (!full_pass && item.delta_idb >= 0) {
          // Restore the invariant scratch[worker] == delta_ranges_.
          scratch[worker][item.delta_idb] = delta_ranges_[item.delta_idb];
        }
        records[worker].push_back(std::move(rec));
      });

  // Deterministic fold order: ascending (plan, first delta row). Stealing
  // reordered which worker ran which rows, never which rows exist or how
  // they fold.
  std::vector<ChunkRecord*> chunks;
  for (std::vector<ChunkRecord>& worker_records : records) {
    for (ChunkRecord& rec : worker_records) chunks.push_back(&rec);
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkRecord* a, const ChunkRecord* b) {
              return a->item != b->item ? a->item < b->item
                                        : a->begin < b->begin;
            });
  std::vector<StagedOutput> ordered;
  ordered.reserve(chunks.size());
  for (ChunkRecord* rec : chunks) {
    if (items[rec->item].delta_idb >= 0) rec->stats.RecordSlice(rec->rows);
    ordered.push_back(StagedOutput{items[rec->item].head_idb, &rec->out,
                                   &rec->stats});
  }
  FoldStagedOutputs(ordered, buffers, pool);
  stats_.steals += dyn.steals;
  stats_.splits += dyn.splits;
}

void RelationalConsequence::FoldStagedOutputs(
    const std::vector<StagedOutput>& ordered, std::vector<Relation>* buffers,
    ThreadPool& pool) {
  // Shard-wise ordered merge: each worker owns one shard of every buffer
  // and folds the staged outputs in the given order — the serial
  // execution order — so the per-shard sequence of first appearances in
  // `buffers` (and therefore row ids, stage sizes, and every downstream
  // stage) is identical to the serial run, while no two workers ever
  // write the same shard and no serial merge runs.
  std::vector<size_t> merged(ordered.size() * num_shards_, 0);
  auto merge_shard = [&](size_t s) {
    for (size_t i = 0; i < ordered.size(); ++i) {
      merged[i * num_shards_ + s] =
          (*buffers)[ordered[i].head_idb].MergeShardFrom(*ordered[i].out, s);
    }
  };
  if (num_shards_ > 1) {
    pool.ParallelFor(num_shards_, merge_shard);
  } else {
    merge_shard(0);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    size_t merged_new = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      merged_new += merged[i * num_shards_ + s];
    }
    // A tuple derived by two stagings is new in both but was counted once
    // serially; the merge count restores the serial new_tuples.
    ordered[i].stats->new_tuples = merged_new;
    stats_.Add(*ordered[i].stats);
  }
  stats_.parallel_tasks += ordered.size();
}

size_t RelationalConsequence::MergeStageBuffers(
    const std::vector<Relation>& buffers) {
  size_t batch = 0;
  for (const Relation& buffer : buffers) batch += buffer.size();
  std::vector<size_t> added(num_shards_, 0);
  auto merge_shard = [&](size_t s) {
    size_t add = 0;
    for (size_t i = 0; i < buffers.size(); ++i) {
      Relation& rel = state_->relations[i];
      const size_t before = rel.ShardSize(s);
      add += rel.MergeShardFrom(buffers[i], s);
      delta_ranges_[i][s] = {before, rel.ShardSize(s)};
    }
    added[s] = add;
  };
  // Shard-parallel whenever a pool is already running and the batch is
  // worth a wakeup; the serial fallback runs the same per-shard merges in
  // shard order, so the state (per-shard insertion order included) is
  // identical either way.
  if (num_threads_ > 1 && num_shards_ > 1 && *pool_slot_ != nullptr &&
      batch >= min_slice_rows_) {
    (*pool_slot_)->ParallelFor(num_shards_, merge_shard);
  } else {
    for (size_t s = 0; s < num_shards_; ++s) merge_shard(s);
  }
  size_t total = 0;
  for (size_t a : added) total += a;
  return total;
}

size_t RelationalConsequence::Step(size_t stage) {
  const Program& program = ctx_.program();
  const size_t num_idb = program.idb_predicates().size();

  // Derivations are buffered per stage and merged afterwards, so every
  // stage reads a consistent Sⁿ (and so relations are never mutated while
  // scanned). Buffers share the state's shard count so the merge can go
  // shard by shard.
  std::vector<Relation> buffers;
  buffers.reserve(num_idb);
  for (uint32_t pred : program.idb_predicates()) {
    buffers.emplace_back(program.predicate(pred).arity, num_shards_);
  }

  const bool full_pass = stage == 0 || !use_deltas_;
  if (num_threads_ <= 1) {
    RunStageSerial(full_pass, &buffers);
  } else {
    RunStageParallel(full_pass, &buffers);
  }

  // Merge the stage's derivations; the appended per-shard row ranges
  // become the next deltas.
  const size_t added = MergeStageBuffers(buffers);
  if (added > 0) {
    ++stats_.stages;
    for (size_t i = 0; i < num_idb; ++i) {
      const Relation& rel = state_->relations[i];
      stage_sizes_[i].push_back(rel.size());
      std::vector<size_t> per_shard(num_shards_);
      for (size_t s = 0; s < num_shards_; ++s) {
        per_shard[s] = rel.ShardSize(s);
      }
      stage_shard_sizes_[i].push_back(std::move(per_shard));
    }
  }
  return added;
}

GroundConsequence::GroundConsequence(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true)
    : ground_(ground) {
  const size_t num_atoms = ground.atoms.size();
  INFLOG_CHECK(assumed_true.size() == num_atoms);
  constexpr uint32_t kDead = static_cast<uint32_t>(-1);

  missing_.resize(ground.rules.size());
  watchers_.resize(num_atoms);
  model_.assign(num_atoms, false);

  for (uint32_t r = 0; r < ground.rules.size(); ++r) {
    const GroundRule& rule = ground.rules[r];
    const GroundBody& body = ground.RuleBody(rule);
    bool dead = false;
    for (uint32_t n : body.neg) {
      if (assumed_true[n]) {
        dead = true;
        break;
      }
    }
    if (dead) {
      missing_[r] = kDead;
      continue;
    }
    missing_[r] = static_cast<uint32_t>(body.pos.size());
    for (uint32_t p : body.pos) watchers_[p].push_back(r);
    if (body.pos.empty() && !model_[rule.head]) {
      model_[rule.head] = true;
      frontier_.push_back(rule.head);
    }
  }
}

size_t GroundConsequence::Step(size_t /*stage*/) {
  std::vector<uint32_t> next;
  for (uint32_t atom : frontier_) {
    for (uint32_t r : watchers_[atom]) {
      INFLOG_DCHECK(missing_[r] != static_cast<uint32_t>(-1) &&
                    missing_[r] > 0);
      if (--missing_[r] == 0) {
        const uint32_t head = ground_.rules[r].head;
        if (!model_[head]) {
          model_[head] = true;
          next.push_back(head);
        }
      }
    }
  }
  frontier_ = std::move(next);
  return frontier_.size();
}

}  // namespace inflog
