#include "src/eval/fixpoint_driver.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/base/logging.h"
#include "src/opt/pass_manager.h"

namespace inflog {

FixpointDriver::Outcome FixpointDriver::Iterate(const Options& options,
                                                const StepFn& step) {
  Outcome out;
  while (true) {
    if (options.max_stages != 0 && out.num_stages >= options.max_stages) {
      return out;  // converged stays false
    }
    if (step(out.num_stages) == 0) {
      out.converged = true;
      return out;
    }
    ++out.num_stages;
  }
}

namespace {

/// Cuts one predicate's per-shard delta ranges into about `desired`
/// slices, each itself a per-shard range vector. Slices align to shard
/// boundaries — whole shards are grouped until a slice holds ~1/desired
/// of the rows — except that a shard holding more than two targets'
/// worth of rows is split by rows, so a skewed hash cannot starve the
/// fan-out. Deterministic in (ranges, desired) only.
std::vector<std::vector<ShardRange>> SliceDeltaRanges(
    const std::vector<ShardRange>& ranges, size_t desired) {
  const size_t num_shards = ranges.size();
  size_t rows = 0;
  for (const auto& [b, e] : ranges) rows += e - b;
  std::vector<std::vector<ShardRange>> out;
  if (rows == 0 || desired <= 1) {
    out.push_back(ranges);
    return out;
  }
  const size_t target = (rows + desired - 1) / desired;
  std::vector<ShardRange> cur(num_shards, {0, 0});
  size_t acc = 0;
  auto flush = [&] {
    if (acc == 0) return;
    out.push_back(cur);
    cur.assign(num_shards, {0, 0});
    acc = 0;
  };
  for (size_t s = 0; s < num_shards; ++s) {
    const auto [b, e] = ranges[s];
    const size_t n = e - b;
    if (n == 0) continue;
    if (n > 2 * target) {
      flush();
      const size_t pieces = (n + target - 1) / target;
      for (size_t k = 0; k < pieces; ++k) {
        cur[s] = {b + n * k / pieces, b + n * (k + 1) / pieces};
        acc = cur[s].second - cur[s].first;
        flush();
      }
      continue;
    }
    cur[s] = ranges[s];
    acc += n;
    if (acc >= target) flush();
  }
  flush();
  return out;
}

/// Projects the linearized row window [begin, end) — shards concatenated
/// in shard order, the delta-scan walk order — back onto per-shard
/// ranges. Pure function of (base, begin, end): however the stealing
/// scheduler happened to cut a delta chunk, the rows it covers are
/// determined by its window alone.
std::vector<ShardRange> ProjectDeltaWindow(
    const std::vector<ShardRange>& base, size_t begin, size_t end) {
  std::vector<ShardRange> out(base.size(), {0, 0});
  size_t offset = 0;
  for (size_t s = 0; s < base.size(); ++s) {
    const auto [b, e] = base[s];
    const size_t n = e - b;
    const size_t lo = std::min(n, begin > offset ? begin - offset : 0);
    const size_t hi = std::min(n, end > offset ? end - offset : 0);
    if (hi > lo) out[s] = {b + lo, b + hi};
    offset += n;
  }
  return out;
}

}  // namespace

RelationalConsequence::RelationalConsequence(const EvalContext& ctx,
                                             const Options& options,
                                             IdbState* state)
    : ctx_(ctx),
      state_(state),
      use_deltas_(options.use_deltas),
      num_threads_(ctx.num_threads()),
      scheduler_(ctx.scheduler()),
      min_slice_rows_(ctx.min_slice_rows()),
      steal_variance_(ctx.steal_variance()),
      pool_slot_(options.pool_cache != nullptr ? options.pool_cache
                                               : &own_pool_) {
  const Program& program = ctx.program();
  const size_t num_idb = program.idb_predicates().size();
  INFLOG_CHECK(state->relations.size() == num_idb);

  // Lower the rules through the optimizer pass pipeline (greedy plans,
  // then the passes ctx.optimizer_passes() enables). The counters are
  // pure functions of (program, database, pass selection), so copying
  // them into the determinism-checked stats block is sweep-safe.
  OptCounters counters;
  plans_ = CompileStagePlans(ctx, *state, options.rule_subset, use_deltas_,
                             &counters);
  stats_.opt_rules_eliminated = counters.rules_eliminated;
  stats_.opt_plans_reordered = counters.plans_reordered;
  stats_.opt_subplans_shared = counters.subplans_shared;
  stats_.opt_shared_prefixes = counters.shared_prefixes;

  // All dynamic relations must agree on one shard count so staging
  // relations and the state partition every tuple set identically.
  num_shards_ = num_idb > 0 ? state->relations[0].num_shards() : 1;
  for (const Relation& rel : state->relations) {
    INFLOG_CHECK(rel.num_shards() == num_shards_)
        << "IDB relations must share one shard count";
  }
  shared_rels_.reserve(plans_.shared.size());
  for (const SharedSubplan& sp : plans_.shared) {
    shared_rels_.emplace_back(sp.arity, num_shards_);
  }
  if (options.initial_deltas != nullptr && use_deltas_) {
    // Seeded run: stage 0 is a delta pass over the caller's appended row
    // ranges (the incremental maintainer's trigger-pass insertions).
    INFLOG_CHECK(options.initial_deltas->size() == num_idb);
    for (const auto& ranges : *options.initial_deltas) {
      INFLOG_CHECK(ranges.size() == num_shards_);
    }
    delta_ranges_ = *options.initial_deltas;
    seeded_ = true;
  } else {
    delta_ranges_.assign(num_idb,
                         std::vector<ShardRange>(num_shards_, {0, 0}));
  }
  stage_sizes_.resize(num_idb);
  stage_shard_sizes_.resize(num_idb);
}

void RelationalConsequence::ComputeSharedIntermediates(bool full_pass) {
  // Subplans of the other pass kind keep last stage's contents; only the
  // matching ones are rebuilt this stage.
  std::vector<size_t> pending;
  for (size_t k = 0; k < plans_.shared.size(); ++k) {
    if (plans_.shared[k].delta_pass != full_pass) pending.push_back(k);
  }
  if (pending.empty()) return;

  auto run_one = [&](size_t k, EvalStats* stats) {
    const SharedSubplan& sp = plans_.shared[k];
    shared_rels_[k] = Relation(sp.arity, num_shards_);
    ExecutePlan(ctx_, sp.plan, *state_,
                sp.delta_pass ? &delta_ranges_ : nullptr, &shared_rels_[k],
                stats);
  };

  // Each subplan writes only its own shared_rels_ slot, so with several
  // pending the rebuilds fan out one task apiece. The estimate mirrors
  // RunStageParallel's: input rows the plans will touch, a deterministic
  // proxy independent of threads/shards/scheduler, so the serial-vs-
  // parallel choice is a pure function of the stage.
  size_t work = 0;
  if (num_threads_ > 1 && pending.size() >= 2) {
    for (size_t k : pending) {
      const SharedSubplan& sp = plans_.shared[k];
      for (const PlanOp& op : sp.plan.ops) {
        if (op.kind != PlanOp::Kind::kMatch || op.shared_source >= 0) {
          continue;
        }
        if (op.is_delta_scan) {
          const PredicateInfo& info = ctx_.program().predicate(op.predicate);
          for (const auto& [begin, end] : delta_ranges_[info.idb_index]) {
            work += end - begin;
          }
        } else {
          work += ctx_.Resolve(op.predicate, *state_).size();
        }
      }
    }
  }
  if (num_threads_ <= 1 || pending.size() < 2 || work < min_slice_rows_) {
    for (size_t k : pending) {
      run_one(k, &stats_);
      stats_.opt_shared_rows += shared_rels_[k].size();
    }
    return;
  }
  if (*pool_slot_ == nullptr) {
    *pool_slot_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
  // Workers read the frozen state concurrently: finalize the column
  // indexes the subplans probe before the fan-out, as RunStageParallel
  // does for the rule plans.
  if (ctx_.use_join_indexes()) {
    for (size_t k : pending) {
      for (const PlanOp& op : plans_.shared[k].plan.ops) {
        if (op.kind != PlanOp::Kind::kMatch || op.is_delta_scan ||
            op.key_cols.empty()) {
          continue;
        }
        const Relation& rel = ctx_.Resolve(op.predicate, *state_);
        for (size_t col : op.key_cols) rel.EnsureIndexed(col);
      }
    }
  }
  std::vector<EvalStats> task_stats(pending.size());
  (*pool_slot_)->ParallelFor(pending.size(), [&](size_t i) {
    run_one(pending[i], &task_stats[i]);
  });
  // Fold in subplan index order — the serial accumulation order — so the
  // stats block is bit-identical to the serial rebuild.
  for (size_t i = 0; i < pending.size(); ++i) {
    stats_.Add(task_stats[i]);
    stats_.opt_shared_rows += shared_rels_[pending[i]].size();
  }
}

void RelationalConsequence::RunStageSerial(bool full_pass,
                                           std::vector<Relation>* buffers) {
  if (full_pass) {
    for (const CompiledRulePlans& c : plans_.rules) {
      ExecutePlan(ctx_, c.full, *state_, nullptr, &(*buffers)[c.head_idb],
                  &stats_, &shared_rels_);
    }
  } else {
    for (const CompiledRulePlans& c : plans_.rules) {
      for (const CompiledDeltaPlan& d : c.deltas) {
        ExecutePlan(ctx_, d.plan, *state_, &delta_ranges_,
                    &(*buffers)[c.head_idb], &stats_, &shared_rels_);
      }
    }
  }
}

void RelationalConsequence::FinalizeStageIndexes(bool full_pass) const {
  auto touch = [&](const RulePlan& plan) {
    for (const PlanOp& op : plan.ops) {
      if (op.kind != PlanOp::Kind::kMatch || op.is_delta_scan ||
          op.key_cols.empty()) {
        continue;
      }
      const Relation& rel = ctx_.Resolve(op.predicate, *state_);
      for (size_t col : op.key_cols) rel.EnsureIndexed(col);
    }
  };
  for (const CompiledRulePlans& c : plans_.rules) {
    if (full_pass) {
      touch(c.full);
    } else {
      for (const CompiledDeltaPlan& d : c.deltas) touch(d.plan);
    }
  }
}

void RelationalConsequence::RunStageParallel(bool full_pass,
                                             std::vector<Relation>* buffers) {
  // Small stages aren't worth the fan-out (staging relations + pool
  // wakeups): below one slice's worth of input rows, take the serial path
  // — it computes the identical result, so the cutoff is invisible to
  // callers. The work proxy is deterministic and independent of the
  // thread count, shard count, and scheduler.
  size_t work = 0;
  if (full_pass) {
    for (const CompiledRulePlans& c : plans_.rules) {
      for (const PlanOp& op : c.full.ops) {
        if (op.kind == PlanOp::Kind::kMatch) {
          work += op.shared_source >= 0
                      ? shared_rels_[op.shared_source].size()
                      : ctx_.Resolve(op.predicate, *state_).size();
        }
      }
    }
  } else {
    for (const auto& ranges : delta_ranges_) {
      for (const auto& [begin, end] : ranges) work += end - begin;
    }
  }
  if (work < min_slice_rows_) {
    RunStageSerial(full_pass, buffers);
    return;
  }
  if (*pool_slot_ == nullptr) {
    // Spawned lazily so runs whose stages all fall under the cutoff (e.g.
    // many small strata) never pay thread creation. The calling thread
    // participates in the pool's loops, so N threads total means N-1
    // workers.
    *pool_slot_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
  ThreadPool& pool = **pool_slot_;

  // During the fan-out every worker reads the frozen Sⁿ concurrently, so
  // first finalize each column index the plans can probe; after this no
  // relation read mutates anything (Relation::EnsureIndexed contract).
  if (ctx_.use_join_indexes()) FinalizeStageIndexes(full_pass);

  std::vector<DeltaUnit> units;
  if (!full_pass) units = PartitionDeltaUnits();

  StageScheduler scheduler = scheduler_;
  if (scheduler == StageScheduler::kAuto) {
    // Full passes run one atomic task per rule — there is no slice for
    // stealing to re-cut — so only delta stages consult the imbalance
    // estimate. Either way both machineries fold by the same
    // deterministic key, so the choice is invisible outside the
    // bookkeeping counters.
    scheduler =
        (!full_pass && EstimateStaticImbalance(units) > steal_variance_)
            ? StageScheduler::kStealing
            : StageScheduler::kStatic;
    if (scheduler == StageScheduler::kStealing) {
      ++stats_.auto_stealing_stages;
    } else {
      ++stats_.auto_static_stages;
    }
  }
  if (scheduler == StageScheduler::kStealing) {
    RunStageStealing(full_pass, units, buffers, pool);
  } else {
    RunStageStatic(full_pass, units, buffers, pool);
  }
}

std::vector<RelationalConsequence::DeltaUnit>
RelationalConsequence::PartitionDeltaUnits() {
  std::vector<DeltaUnit> units;
  DeltaUnit pending;  // batch being accumulated
  size_t pending_rows = 0;
  auto flush = [&] {
    if (pending.batch.empty()) return;
    if (pending.batch.size() >= 2) {
      stats_.batched_plans += pending.batch.size();
    }
    units.push_back(std::move(pending));
    pending = DeltaUnit();
    pending_rows = 0;
  };
  for (const CompiledRulePlans& c : plans_.rules) {
    for (const CompiledDeltaPlan& d : c.deltas) {
      size_t rows = 0;
      if (d.delta_idb >= 0) {
        for (const auto& [begin, end] : delta_ranges_[d.delta_idb]) {
          rows += end - begin;
        }
      }
      if (d.delta_idb >= 0 && rows >= min_slice_rows_) {
        flush();
        DeltaUnit u;
        u.plan = &d.plan;
        u.head_idb = c.head_idb;
        u.delta_idb = d.delta_idb;
        u.rows = rows;
        u.heads.push_back(c.head_idb);
        units.push_back(std::move(u));
        continue;
      }
      // Tiny (or delta-less) plan: share a task with its neighbours so
      // rule-heavy programs don't pay one staging relation per nearly
      // empty plan. Batches stay contiguous in plan order — the ordered
      // fold depends on it.
      pending.batch.push_back(BatchEntry{&d.plan, c.head_idb, rows});
      bool seen = false;
      for (int h : pending.heads) seen = seen || h == c.head_idb;
      if (!seen) pending.heads.push_back(c.head_idb);
      if (d.delta_idb >= 0) stats_.RecordSlice(rows);
      pending_rows += rows;
      if (pending_rows >= min_slice_rows_) flush();
    }
  }
  flush();
  return units;
}

double RelationalConsequence::EstimateStaticImbalance(
    const std::vector<DeltaUnit>& units) const {
  // Number of delta rows EstimateDeltaWork may probe per plan. The whole
  // estimate costs at most one posting-length lookup per sampled row —
  // a fraction of the join that follows — and a stride this dense still
  // catches hub windows much smaller than a slice.
  constexpr size_t kMaxWorkSamples = 2048;

  // Stealing can only re-cut sliceable units; a stage made purely of
  // atomic batches runs the same tasks under either machinery, so
  // report it balanced and skip the estimation entirely.
  bool sliceable = false;
  for (const DeltaUnit& u : units) sliceable = sliceable || u.batch.empty();
  if (!sliceable) return 0.0;

  // Pool the estimated work of every task the static partition would
  // create: one value per batch, one per up-front slice of each big
  // plan. The per-row signal is the posting-list length of the plan's
  // first index probe; plans giving no such signal fall back to row
  // counts — exactly the proxy the static slicer itself balances, so
  // they report a perfectly balanced contribution. Zero-work batches
  // (runs of never-fires / empty-delta plans) are skipped: they are
  // near-free tasks under either scheduler, and counting them would
  // only drag the mean down and inflate the CV.
  std::vector<double> work;
  for (const DeltaUnit& u : units) {
    if (!u.batch.empty()) {
      double rows = 0;
      for (const BatchEntry& e : u.batch) rows += static_cast<double>(e.rows);
      if (rows > 0) work.push_back(rows);
      continue;
    }
    const size_t desired = std::max<size_t>(
        1, std::min(num_threads_ * 4, u.rows / min_slice_rows_));
    const DeltaWorkEstimate est = EstimateDeltaWork(
        ctx_, *u.plan, *state_, delta_ranges_[u.delta_idb], kMaxWorkSamples);
    std::vector<double> slice(desired, 0.0);
    if (est.sample_cost.empty()) {
      // Uniform plans weigh each row by the estimate's scan-aware
      // per-row cost (the first joined relation's cardinality when the
      // plan probes nothing), so scan-heavy plans aren't under-counted
      // against probed ones.
      for (size_t w = 0; w < desired; ++w) {
        slice[w] = static_cast<double>(u.rows * (w + 1) / desired -
                                       u.rows * w / desired) *
                   static_cast<double>(est.uniform_cost);
      }
    } else {
      for (size_t i = 0; i < est.sample_cost.size(); ++i) {
        const size_t row = i * est.stride;
        slice[row * desired / u.rows] +=
            static_cast<double>(est.sample_cost[i] * est.stride);
      }
    }
    for (double v : slice) work.push_back(v);
  }
  if (work.size() < 2) return 0.0;
  double sum = 0;
  for (double v : work) sum += v;
  const double mean = sum / static_cast<double>(work.size());
  if (mean <= 0) return 0.0;
  double var = 0;
  for (double v : work) var += (v - mean) * (v - mean);
  return std::sqrt(var / static_cast<double>(work.size())) / mean;
}

void RelationalConsequence::RunStageStatic(
    bool full_pass, const std::vector<DeltaUnit>& units,
    std::vector<Relation>* buffers, ThreadPool& pool) {
  // Partition the stage: full passes split per rule plan; delta passes
  // take the shared units — one task per batch, and per (big plan ×
  // delta slice) with the slices cut from the per-shard delta ranges so
  // the fan-out partitions along shard boundaries. Task order — units in
  // program order, then ascending slices — is exactly the serial
  // execution order; the ordered shard-wise merge below relies on that.
  struct StageTask {
    const RulePlan* plan = nullptr;    ///< Single-plan task.
    int head_idb = -1;
    int sliced = -1;                   ///< Index into sliced ranges, or -1.
    const DeltaUnit* batch = nullptr;  ///< Batch task (overrides plan).
  };
  std::vector<StageTask> tasks;
  // Per-sliced-task delta ranges, precomputed here (serially) so the
  // workers read them in place instead of deep-copying DeltaRanges on
  // the hot fan-out path.
  std::vector<DeltaRanges> sliced_ranges;
  if (full_pass) {
    for (const CompiledRulePlans& c : plans_.rules) {
      tasks.push_back(StageTask{&c.full, c.head_idb, -1, nullptr});
    }
  } else {
    for (const DeltaUnit& u : units) {
      if (!u.batch.empty()) {
        tasks.push_back(StageTask{nullptr, -1, -1, &u});
        continue;
      }
      const std::vector<ShardRange>& ranges = delta_ranges_[u.delta_idb];
      // Aim for a few slices per thread so claim-order load imbalance
      // evens out, but never slices smaller than min_slice_rows_.
      const size_t desired =
          std::min(num_threads_ * 4, u.rows / min_slice_rows_);
      for (std::vector<ShardRange>& slice :
           SliceDeltaRanges(ranges, desired)) {
        size_t slice_rows = 0;
        for (const auto& [begin, end] : slice) slice_rows += end - begin;
        stats_.RecordSlice(slice_rows);
        DeltaRanges local = delta_ranges_;
        local[u.delta_idb] = std::move(slice);
        tasks.push_back(StageTask{u.plan, u.head_idb,
                                  static_cast<int>(sliced_ranges.size()),
                                  nullptr});
        sliced_ranges.push_back(std::move(local));
      }
    }
  }

  // Per-task staging: one sharded output relation and stats block per
  // head the task stages into (single-plan tasks exactly one, batch
  // tasks one per distinct head), so workers never share a mutable
  // object and a batch never interleaves two heads in one relation.
  std::vector<std::vector<Relation>> outs(tasks.size());
  std::vector<std::vector<EvalStats>> task_stats(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const StageTask& t = tasks[i];
    const size_t num_heads = t.batch != nullptr ? t.batch->heads.size() : 1;
    outs[i].reserve(num_heads);
    for (size_t slot = 0; slot < num_heads; ++slot) {
      const int head = t.batch != nullptr ? t.batch->heads[slot] : t.head_idb;
      const Relation& buffer = (*buffers)[head];
      outs[i].emplace_back(buffer.arity(), buffer.num_shards());
    }
    task_stats[i].resize(num_heads);
  }

  pool.ParallelFor(tasks.size(), [&](size_t i) {
    const StageTask& t = tasks[i];
    if (t.batch != nullptr) {
      // Batched tiny plans run back to back over their full (small)
      // delta ranges, each staging into its head's slot.
      for (const BatchEntry& e : t.batch->batch) {
        size_t slot = 0;
        while (t.batch->heads[slot] != e.head_idb) ++slot;
        ExecutePlan(ctx_, *e.plan, *state_, &delta_ranges_, &outs[i][slot],
                    &task_stats[i][slot], &shared_rels_);
      }
      return;
    }
    const DeltaRanges* deltas =
        full_pass ? nullptr
                  : (t.sliced >= 0 ? &sliced_ranges[t.sliced]
                                   : &delta_ranges_);
    ExecutePlan(ctx_, *t.plan, *state_, deltas, &outs[i][0],
                &task_stats[i][0], &shared_rels_);
  });

  // Fold the per-task stagings in task order — the serial execution
  // order, which the ordered shard-wise merge relies on. A batch's heads
  // fold in first-appearance order; per buffer that is still the serial
  // insertion order, because each head's staging received its batch
  // plans' rows in plan order.
  std::vector<StagedOutput> ordered;
  ordered.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const StageTask& t = tasks[i];
    const size_t num_heads = t.batch != nullptr ? t.batch->heads.size() : 1;
    for (size_t slot = 0; slot < num_heads; ++slot) {
      const int head = t.batch != nullptr ? t.batch->heads[slot] : t.head_idb;
      ordered.push_back(StagedOutput{head, &outs[i][slot],
                                     &task_stats[i][slot]});
    }
  }
  FoldStagedOutputs(ordered, buffers, pool);
}

void RelationalConsequence::RunStageStealing(
    bool full_pass, const std::vector<DeltaUnit>& units,
    std::vector<Relation>* buffers, ThreadPool& pool) {
  // One item per unit, in serial execution order. Big delta plans carry
  // their predicate's whole delta range (ParallelForDynamic splits it on
  // demand); batches and full plans are atomic (0 rows — exactly one
  // body call).
  struct StealItem {
    const RulePlan* plan = nullptr;
    int head_idb = -1;
    int delta_idb = -1;                ///< < 0: atomic.
    const DeltaUnit* batch = nullptr;  ///< Batch item (overrides plan).
  };
  std::vector<StealItem> items;
  std::vector<size_t> item_rows;
  if (full_pass) {
    for (const CompiledRulePlans& c : plans_.rules) {
      items.push_back(StealItem{&c.full, c.head_idb, -1, nullptr});
      item_rows.push_back(0);
    }
  } else {
    for (const DeltaUnit& u : units) {
      if (!u.batch.empty()) {
        items.push_back(StealItem{nullptr, -1, -1, &u});
        item_rows.push_back(0);
      } else {
        items.push_back(StealItem{u.plan, u.head_idb, u.delta_idb, nullptr});
        item_rows.push_back(u.rows);
      }
    }
  }

  // Per-item work estimates steer the initial deal (LPT instead of
  // round-robin), so the stealing machinery starts balanced and steals
  // only to correct estimation error. Batches weigh their summed delta
  // rows; big plans reuse EstimateDeltaWork's posting-length signal
  // (the same proxy the auto scheduler's imbalance estimate pools), so
  // a hub-heavy plan outweighs an equal-row uniform one. Full passes
  // have no delta signal and keep the round-robin deal.
  std::vector<uint64_t> item_weights;
  if (!full_pass && items.size() > 1) {
    constexpr size_t kMaxWorkSamples = 2048;
    item_weights.reserve(items.size());
    for (const DeltaUnit& u : units) {
      if (!u.batch.empty()) {
        uint64_t rows = 0;
        for (const BatchEntry& e : u.batch) rows += e.rows;
        item_weights.push_back(std::max<uint64_t>(rows, 1));
        continue;
      }
      const DeltaWorkEstimate est = EstimateDeltaWork(
          ctx_, *u.plan, *state_, delta_ranges_[u.delta_idb],
          kMaxWorkSamples);
      uint64_t cost = 0;
      if (est.sample_cost.empty()) {
        cost = static_cast<uint64_t>(u.rows) * est.uniform_cost;
      } else {
        for (const uint64_t c : est.sample_cost) cost += c * est.stride;
      }
      item_weights.push_back(std::max<uint64_t>(cost, 1));
    }
  }

  // Each executed chunk stages into its own sharded relation(s) — one
  // per head for batch items. The set of chunks depends on steal timing,
  // but a chunk's (item, begin) key fully determines the delta rows it
  // covered, so sorting the records by that key reconstructs the serial
  // execution order whatever the partition was. Records are
  // per-participant, so workers never share a vector.
  struct ChunkRecord {
    size_t item;
    size_t begin;
    size_t rows;
    std::vector<Relation> outs;    // parallel to the item's heads
    std::vector<EvalStats> stats;
  };
  std::vector<std::vector<ChunkRecord>> records(pool.num_workers() + 1);
  // Chunks are cut dynamically, so their restricted DeltaRanges cannot
  // be precomputed serially as on the static path. Instead each worker
  // keeps one scratch copy of the full ranges (made on its first chunk)
  // and per chunk overwrites — then restores — only the sliced
  // predicate's entry, so the hot fan-out path never deep-copies the
  // whole DeltaRanges per chunk.
  std::vector<DeltaRanges> scratch(pool.num_workers() + 1);

  const ThreadPool::DynamicLoopStats dyn = pool.ParallelForDynamic(
      item_rows, item_weights, min_slice_rows_,
      [&](size_t i, size_t begin, size_t end, size_t worker) {
        const StealItem& item = items[i];
        ChunkRecord rec{i, begin, end - begin, {}, {}};
        if (item.batch != nullptr) {
          const DeltaUnit& u = *item.batch;
          rec.outs.reserve(u.heads.size());
          for (int head : u.heads) {
            rec.outs.emplace_back((*buffers)[head].arity(), num_shards_);
          }
          rec.stats.resize(u.heads.size());
          for (const BatchEntry& e : u.batch) {
            size_t slot = 0;
            while (u.heads[slot] != e.head_idb) ++slot;
            ExecutePlan(ctx_, *e.plan, *state_, &delta_ranges_,
                        &rec.outs[slot], &rec.stats[slot], &shared_rels_);
          }
          records[worker].push_back(std::move(rec));
          return;
        }
        rec.outs.emplace_back((*buffers)[item.head_idb].arity(),
                              num_shards_);
        rec.stats.resize(1);
        const DeltaRanges* deltas = nullptr;
        if (!full_pass) {
          if (item.delta_idb >= 0) {
            DeltaRanges& local = scratch[worker];
            if (local.empty()) local = delta_ranges_;
            local[item.delta_idb] = ProjectDeltaWindow(
                delta_ranges_[item.delta_idb], begin, end);
            deltas = &local;
          } else {
            deltas = &delta_ranges_;
          }
        }
        ExecutePlan(ctx_, *item.plan, *state_, deltas, &rec.outs[0],
                    &rec.stats[0], &shared_rels_);
        if (!full_pass && item.delta_idb >= 0) {
          // Restore the invariant scratch[worker] == delta_ranges_.
          scratch[worker][item.delta_idb] = delta_ranges_[item.delta_idb];
        }
        records[worker].push_back(std::move(rec));
      });

  // Deterministic fold order: ascending (unit, first delta row). Stealing
  // reordered which worker ran which rows, never which rows exist or how
  // they fold.
  std::vector<ChunkRecord*> chunks;
  for (std::vector<ChunkRecord>& worker_records : records) {
    for (ChunkRecord& rec : worker_records) chunks.push_back(&rec);
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkRecord* a, const ChunkRecord* b) {
              return a->item != b->item ? a->item < b->item
                                        : a->begin < b->begin;
            });
  std::vector<StagedOutput> ordered;
  ordered.reserve(chunks.size());
  for (ChunkRecord* rec : chunks) {
    const StealItem& item = items[rec->item];
    if (item.batch != nullptr) {
      // Batched plans recorded their slices at partition time.
      for (size_t slot = 0; slot < item.batch->heads.size(); ++slot) {
        ordered.push_back(StagedOutput{item.batch->heads[slot],
                                       &rec->outs[slot], &rec->stats[slot]});
      }
      continue;
    }
    if (item.delta_idb >= 0) rec->stats[0].RecordSlice(rec->rows);
    ordered.push_back(StagedOutput{item.head_idb, &rec->outs[0],
                                   &rec->stats[0]});
  }
  FoldStagedOutputs(ordered, buffers, pool);
  stats_.steals += dyn.steals;
  stats_.splits += dyn.splits;
  stats_.parks += dyn.parks;
}

void RelationalConsequence::FoldStagedOutputs(
    const std::vector<StagedOutput>& ordered, std::vector<Relation>* buffers,
    ThreadPool& pool) {
  // Shard-wise ordered merge: each worker owns one shard of every buffer
  // and folds the staged outputs in the given order — the serial
  // execution order — so the per-shard sequence of first appearances in
  // `buffers` (and therefore row ids, stage sizes, and every downstream
  // stage) is identical to the serial run, while no two workers ever
  // write the same shard and no serial merge runs.
  std::vector<size_t> merged(ordered.size() * num_shards_, 0);
  auto merge_shard = [&](size_t s) {
    for (size_t i = 0; i < ordered.size(); ++i) {
      merged[i * num_shards_ + s] =
          (*buffers)[ordered[i].head_idb].MergeShardFrom(*ordered[i].out, s);
    }
  };
  if (num_shards_ > 1) {
    pool.ParallelFor(num_shards_, merge_shard);
  } else {
    merge_shard(0);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    size_t merged_new = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      merged_new += merged[i * num_shards_ + s];
    }
    // A tuple derived by two stagings is new in both but was counted once
    // serially; the merge count restores the serial new_tuples.
    ordered[i].stats->new_tuples = merged_new;
    stats_.Add(*ordered[i].stats);
  }
  stats_.parallel_tasks += ordered.size();
}

size_t RelationalConsequence::MergeStageBuffers(
    const std::vector<Relation>& buffers) {
  size_t batch = 0;
  for (const Relation& buffer : buffers) batch += buffer.size();
  std::vector<size_t> added(num_shards_, 0);
  auto merge_shard = [&](size_t s) {
    size_t add = 0;
    for (size_t i = 0; i < buffers.size(); ++i) {
      Relation& rel = state_->relations[i];
      const size_t before = rel.ShardSize(s);
      add += rel.MergeShardFrom(buffers[i], s);
      delta_ranges_[i][s] = {before, rel.ShardSize(s)};
    }
    added[s] = add;
  };
  // Shard-parallel whenever a pool is already running and the batch is
  // worth a wakeup; the serial fallback runs the same per-shard merges in
  // shard order, so the state (per-shard insertion order included) is
  // identical either way.
  if (num_threads_ > 1 && num_shards_ > 1 && *pool_slot_ != nullptr &&
      batch >= min_slice_rows_) {
    (*pool_slot_)->ParallelFor(num_shards_, merge_shard);
  } else {
    for (size_t s = 0; s < num_shards_; ++s) merge_shard(s);
  }
  size_t total = 0;
  for (size_t a : added) total += a;
  return total;
}

size_t RelationalConsequence::Step(size_t stage) {
  const Program& program = ctx_.program();
  const size_t num_idb = program.idb_predicates().size();

  // Derivations are buffered per stage and merged afterwards, so every
  // stage reads a consistent Sⁿ (and so relations are never mutated while
  // scanned). Buffers share the state's shard count so the merge can go
  // shard by shard.
  std::vector<Relation> buffers;
  buffers.reserve(num_idb);
  for (uint32_t pred : program.idb_predicates()) {
    buffers.emplace_back(program.predicate(pred).arity, num_shards_);
  }

  const bool full_pass = (stage == 0 && !seeded_) || !use_deltas_;
  // Shared intermediates (subplan sharing) are rebuilt before the stage
  // fans out — one task per pending subplan when the work clears the
  // serial cutoff — so every consumer, on any thread and under any
  // scheduler, reads the same finalized relation.
  ComputeSharedIntermediates(full_pass);
  if (num_threads_ <= 1) {
    RunStageSerial(full_pass, &buffers);
  } else {
    RunStageParallel(full_pass, &buffers);
  }

  // Merge the stage's derivations; the appended per-shard row ranges
  // become the next deltas.
  const size_t added = MergeStageBuffers(buffers);
  if (added > 0) {
    ++stats_.stages;
    for (size_t i = 0; i < num_idb; ++i) {
      const Relation& rel = state_->relations[i];
      stage_sizes_[i].push_back(rel.size());
      std::vector<size_t> per_shard(num_shards_);
      for (size_t s = 0; s < num_shards_; ++s) {
        per_shard[s] = rel.ShardSize(s);
      }
      stage_shard_sizes_[i].push_back(std::move(per_shard));
    }
  }
  return added;
}

GroundConsequence::GroundConsequence(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true)
    : ground_(ground) {
  const size_t num_atoms = ground.atoms.size();
  INFLOG_CHECK(assumed_true.size() == num_atoms);
  constexpr uint32_t kDead = static_cast<uint32_t>(-1);

  missing_.resize(ground.rules.size());
  watchers_.resize(num_atoms);
  model_.assign(num_atoms, false);

  for (uint32_t r = 0; r < ground.rules.size(); ++r) {
    const GroundRule& rule = ground.rules[r];
    const GroundBody& body = ground.RuleBody(rule);
    bool dead = false;
    for (uint32_t n : body.neg) {
      if (assumed_true[n]) {
        dead = true;
        break;
      }
    }
    if (dead) {
      missing_[r] = kDead;
      continue;
    }
    missing_[r] = static_cast<uint32_t>(body.pos.size());
    for (uint32_t p : body.pos) watchers_[p].push_back(r);
    if (body.pos.empty() && !model_[rule.head]) {
      model_[rule.head] = true;
      frontier_.push_back(rule.head);
    }
  }
}

size_t GroundConsequence::Step(size_t /*stage*/) {
  std::vector<uint32_t> next;
  for (uint32_t atom : frontier_) {
    for (uint32_t r : watchers_[atom]) {
      INFLOG_DCHECK(missing_[r] != static_cast<uint32_t>(-1) &&
                    missing_[r] > 0);
      if (--missing_[r] == 0) {
        const uint32_t head = ground_.rules[r].head;
        if (!model_[head]) {
          model_[head] = true;
          next.push_back(head);
        }
      }
    }
  }
  frontier_ = std::move(next);
  return frontier_.size();
}

}  // namespace inflog
