// Gelfond–Lifschitz reducts and least models of positive ground programs.
//
// Shared machinery for the well-founded and stable-model semantics — the
// successors of the fixpoint semantics the paper studies (Van Gelder's
// alternating fixpoint grew directly out of this line of work).

#ifndef INFLOG_EVAL_REDUCT_H_
#define INFLOG_EVAL_REDUCT_H_

#include <vector>

#include "src/ground/ground_program.h"

namespace inflog {

/// Computes the least model of the reduct P^I: drop every ground rule
/// with a negated atom in `assumed_true`, drop the remaining negated
/// literals, and close the positive residue under immediate consequence
/// (unit propagation on definite rules). Returns truth by atom id.
///
/// This operator S(I) is antimonotone in I; its alternating iteration
/// yields the well-founded semantics, and its fixpoints S(I) = I are the
/// stable models.
std::vector<bool> LeastModelOfReduct(const GroundProgram& ground,
                                     const std::vector<bool>& assumed_true);

}  // namespace inflog

#endif  // INFLOG_EVAL_REDUCT_H_
