// Plan executor: interprets a RulePlan against an evaluation context and an
// IDB state, emitting derived head tuples.

#ifndef INFLOG_EVAL_EXECUTOR_H_
#define INFLOG_EVAL_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/eval/context.h"
#include "src/eval/plan.h"

namespace inflog {

/// Counters accumulated across executions; cheap to keep, useful for the
/// naive-vs-semi-naive ablation benchmarks.
///
/// The first block (derivations .. stages) describes *what* was computed
/// and is bit-identical across every (threads, shards, scheduler,
/// min_slice_rows) configuration; the executor block (parallel_tasks ..
/// slice_hist) describes *how* the work was partitioned and necessarily
/// varies with the configuration (and, for the stealing scheduler, with
/// run-to-run timing).
struct EvalStats {
  uint64_t derivations = 0;    ///< Head tuples produced (with duplicates).
  uint64_t new_tuples = 0;     ///< Head tuples that were new in the output.
  uint64_t rows_matched = 0;   ///< Rows tested by kMatch ops.
  uint64_t index_lookups = 0;  ///< kMatch ops served by a hash index.
  uint64_t intersections = 0;  ///< Index lookups that intersected two
                               ///< posting lists (≥2 bound key columns).
  uint64_t enumerations = 0;   ///< Universe elements tried by kEnumerate.
  uint64_t stages = 0;         ///< Iteration stages run (filled by drivers).
  uint64_t parallel_tasks = 0;  ///< Stage tasks run on a thread pool.
  uint64_t steals = 0;          ///< Chunks a worker took from another's
                                ///< deque (stealing scheduler only).
  uint64_t splits = 0;          ///< Chunk halves shed for stealing.
  uint64_t parks = 0;           ///< Hungry stealing workers that blocked
                                ///< on the loop's condition variable.
  uint64_t slices = 0;          ///< Delta slices executed (both
                                ///< schedulers; full-plan tasks excluded).
  uint64_t auto_static_stages = 0;    ///< Parallel stages the auto
                                      ///< scheduler ran with the static
                                      ///< slicer.
  uint64_t auto_stealing_stages = 0;  ///< Parallel stages the auto
                                      ///< scheduler flipped to stealing.
  uint64_t batched_plans = 0;   ///< Tiny delta plans that shared a stage
                                ///< task with at least one other plan.
  // Optimizer pipeline counters (src/opt/pass_manager.h), filled once at
  // plan-compile time. Pure functions of the program, the EDB contents,
  // and the pass selection — invariant across the {threads × shards ×
  // scheduler} sweep at a fixed pass selection.
  uint64_t opt_rules_eliminated = 0;  ///< Rules dropped by dead-rule
                                      ///< elimination.
  uint64_t opt_plans_reordered = 0;   ///< Plans whose join order the
                                      ///< cost-based pass changed.
  uint64_t opt_subplans_shared = 0;   ///< Plans rewritten to read a shared
                                      ///< intermediate.
  uint64_t opt_shared_prefixes = 0;   ///< Distinct shared intermediates
                                      ///< materialized per stage.
  uint64_t opt_shared_rows = 0;       ///< Rows inserted into shared
                                      ///< intermediates across all stages.
  // Program-rewrite counters (src/opt/program_rewrite.h), filled by the
  // evaluators when declared outputs make the magic-sets / inlining
  // rewrites active. Pure functions of the program, the outputs, and
  // the pass selection — sweep-invariant like the plan counters above.
  uint64_t opt_magic_rules_generated = 0;  ///< Magic (demand) rules the
                                           ///< magic-sets rewrite added.
  uint64_t opt_rules_inlined = 0;          ///< Predicates inlined into
                                           ///< their single call site.
  // Incremental-maintenance counters (src/eval/incremental.h), filled by
  // Engine::ApplyUpdate. The tuple-level counters (edb/idb inserts and
  // deletes, candidates, rederived, recounted) are pure functions of the
  // update stream and invariant across the {threads × shards × scheduler}
  // sweep; the phase counters count maintenance passes run.
  uint64_t incremental_updates = 0;      ///< ApplyUpdate calls maintained
                                         ///< incrementally.
  uint64_t incremental_oracle_runs = 0;  ///< ApplyUpdate calls that fell
                                         ///< back to full recompute
                                         ///< (grounded semantics,
                                         ///< non-positive inflationary,
                                         ///< universe growth with unsafe
                                         ///< rules) or were oracle
                                         ///< cross-checks.
  uint64_t incremental_edb_inserted = 0;  ///< EDB tuples actually added.
  uint64_t incremental_edb_deleted = 0;   ///< EDB tuples actually removed.
  uint64_t incremental_idb_inserted = 0;  ///< Net IDB tuples added.
  uint64_t incremental_idb_deleted = 0;   ///< Net IDB tuples removed.
  uint64_t incremental_del_candidates = 0;  ///< Overcounted DRed deletion
                                            ///< candidates erased before
                                            ///< rederivation.
  uint64_t incremental_rederived = 0;   ///< Candidates DRed put back.
  uint64_t incremental_recounted = 0;   ///< Tuples whose derivation count
                                        ///< the counting pass recomputed.
  uint64_t incremental_counting_units = 0;  ///< Non-recursive rule units
                                            ///< maintained by counting.
  uint64_t incremental_dred_units = 0;      ///< Recursive rule units
                                            ///< maintained by DRed.
  // SAT core counters (src/sat/solver.h SolverStats), filled by the
  // grounded stable pipeline (and any caller that runs the CDCL solver).
  // The search counters (conflicts .. deleted) describe *how* the solver
  // searched and vary with the solver configuration (preprocessing,
  // deletion, portfolio width); the results they lead to are bit-identical
  // across every configuration.
  uint64_t sat_conflicts = 0;     ///< CDCL conflicts across all solves.
  uint64_t sat_decisions = 0;     ///< Branching decisions.
  uint64_t sat_propagations = 0;  ///< Unit propagations.
  uint64_t sat_restarts = 0;      ///< Luby restarts.
  uint64_t sat_learned = 0;       ///< Clauses learned from conflicts.
  uint64_t sat_deleted = 0;       ///< Learnt clauses dropped by ReduceDB.
  uint64_t sat_preprocess_vars_eliminated = 0;    ///< Vars removed by the
                                                  ///< preprocessing
                                                  ///< front-end.
  uint64_t sat_preprocess_clauses_removed = 0;    ///< Net clause-count
                                                  ///< drop from
                                                  ///< preprocessing.
  // Serving-layer counters (src/serve/), filled by ServingSession. Like
  // the scheduler counters, they describe how the session was driven
  // (thread count, cache on/off, batching window) — the query answers
  // themselves are bit-identical across every configuration.
  uint64_t serve_epochs_published = 0;  ///< Snapshots sealed and swapped in.
  uint64_t serve_snapshots_pinned = 0;  ///< Pin calls readers made.
  uint64_t serve_queries = 0;           ///< Queries evaluated (or served
                                        ///< from cache).
  uint64_t serve_updates = 0;           ///< Update lines accepted.
  uint64_t serve_batched_updates = 0;   ///< Update lines coalesced into a
                                        ///< larger batch (update_batch>1).
  uint64_t serve_compactions = 0;       ///< Relations compacted by the
                                        ///< periodic schedule.
  uint64_t cache_hits = 0;           ///< Query-cache lookups that hit.
  uint64_t cache_misses = 0;         ///< Lookups that evaluated instead.
  uint64_t cache_invalidations = 0;  ///< Entries killed by net deltas.
  /// Histogram of executed delta-slice sizes: bucket k counts slices with
  /// row count in [2^k, 2^(k+1)), the last bucket everything larger.
  static constexpr size_t kSliceHistBuckets = 17;
  std::array<uint64_t, kSliceHistBuckets> slice_hist{};

  /// Counts one executed delta slice of `rows` rows.
  void RecordSlice(uint64_t rows) {
    ++slices;
    size_t bucket = 0;
    while ((uint64_t{2} << bucket) <= rows &&
           bucket + 1 < kSliceHistBuckets) {
      ++bucket;
    }
    slice_hist[bucket] += 1;
  }

  void Add(const EvalStats& other) {
    derivations += other.derivations;
    new_tuples += other.new_tuples;
    rows_matched += other.rows_matched;
    index_lookups += other.index_lookups;
    intersections += other.intersections;
    enumerations += other.enumerations;
    stages += other.stages;
    parallel_tasks += other.parallel_tasks;
    steals += other.steals;
    splits += other.splits;
    parks += other.parks;
    slices += other.slices;
    auto_static_stages += other.auto_static_stages;
    auto_stealing_stages += other.auto_stealing_stages;
    batched_plans += other.batched_plans;
    opt_rules_eliminated += other.opt_rules_eliminated;
    opt_plans_reordered += other.opt_plans_reordered;
    opt_subplans_shared += other.opt_subplans_shared;
    opt_shared_prefixes += other.opt_shared_prefixes;
    opt_shared_rows += other.opt_shared_rows;
    opt_magic_rules_generated += other.opt_magic_rules_generated;
    opt_rules_inlined += other.opt_rules_inlined;
    incremental_updates += other.incremental_updates;
    incremental_oracle_runs += other.incremental_oracle_runs;
    incremental_edb_inserted += other.incremental_edb_inserted;
    incremental_edb_deleted += other.incremental_edb_deleted;
    incremental_idb_inserted += other.incremental_idb_inserted;
    incremental_idb_deleted += other.incremental_idb_deleted;
    incremental_del_candidates += other.incremental_del_candidates;
    incremental_rederived += other.incremental_rederived;
    incremental_recounted += other.incremental_recounted;
    incremental_counting_units += other.incremental_counting_units;
    incremental_dred_units += other.incremental_dred_units;
    sat_conflicts += other.sat_conflicts;
    sat_decisions += other.sat_decisions;
    sat_propagations += other.sat_propagations;
    sat_restarts += other.sat_restarts;
    sat_learned += other.sat_learned;
    sat_deleted += other.sat_deleted;
    sat_preprocess_vars_eliminated += other.sat_preprocess_vars_eliminated;
    sat_preprocess_clauses_removed += other.sat_preprocess_clauses_removed;
    serve_epochs_published += other.serve_epochs_published;
    serve_snapshots_pinned += other.serve_snapshots_pinned;
    serve_queries += other.serve_queries;
    serve_updates += other.serve_updates;
    serve_batched_updates += other.serve_batched_updates;
    serve_compactions += other.serve_compactions;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_invalidations += other.cache_invalidations;
    for (size_t i = 0; i < kSliceHistBuckets; ++i) {
      slice_hist[i] += other.slice_hist[i];
    }
  }
};

/// One shard's appended local-row range [begin, end).
using ShardRange = std::pair<size_t, size_t>;

/// Per dynamic IDB predicate (by idb_index), the per-shard local-row
/// ranges holding the tuples added in the previous stage (indexed by the
/// relation's shard; inner size == Relation::num_shards()). Used by
/// delta-scan ops, and sliced along shard boundaries by the parallel
/// stage fan-out.
using DeltaRanges = std::vector<std::vector<ShardRange>>;

/// Executes `plan` reading predicate values through `ctx`/`state`, inserting
/// derived head tuples into `out` (which must have the head's arity — or
/// the projection arity when `plan.has_projection`). `deltas` may be null
/// when the plan has no delta literal. `shared` holds the stage's shared
/// intermediates, indexed by PlanOp::shared_source; may be null when the
/// plan has no shared-scan ops.
void ExecutePlan(const EvalContext& ctx, const RulePlan& plan,
                 const IdbState& state, const DeltaRanges* deltas,
                 Relation* out, EvalStats* stats,
                 const std::vector<Relation>* shared = nullptr);

/// ExecutePlan variant that keeps derivation *multiplicities* instead of
/// the derived set: each emitted head tuple increments its entry in `out`.
/// The counting-based incremental maintainer recounts candidate tuples
/// with this (a tuple's support is the number of distinct body matches,
/// which plain ExecutePlan's set insertion collapses).
void ExecutePlanCounted(const EvalContext& ctx, const RulePlan& plan,
                        const IdbState& state, const DeltaRanges* deltas,
                        TupleCountMap* out, EvalStats* stats,
                        const std::vector<Relation>* shared = nullptr);

/// Sampled per-row work estimate of one delta plan, used by the auto
/// stage scheduler (StageScheduler::kAuto) to predict how unevenly the
/// static partition's tasks would be loaded.
struct DeltaWorkEstimate {
  /// Total delta rows the plan scans (shards linearized in shard order,
  /// the delta-scan walk order — the same linearization the schedulers
  /// slice).
  size_t rows = 0;
  /// Sampling stride: sample i describes delta row i * stride and stands
  /// for the stride rows starting there.
  size_t stride = 1;
  /// Estimated join work of each sampled row: 1 + the shortest
  /// posting-list length the first index probe after the delta scan
  /// would iterate for that row's key values. Empty when the plan gives
  /// the estimator no per-row signal (no index probe keyed by delta-bound
  /// variables, or indexes disabled); rows are then assumed uniform.
  std::vector<uint64_t> sample_cost;
  /// Per-row cost assumed when `sample_cost` is empty: 1 plus the full
  /// cardinality of the first non-delta match's relation when that match
  /// is a scan (no usable key columns), else 1. Keeps scan-heavy plans
  /// costed consistently with probed ones for the auto scheduler and the
  /// optimizer instead of defaulting every uniform plan to weight 1.
  uint64_t uniform_cost = 1;
};

/// Estimates `plan`'s per-row join work over the delta rows in
/// `delta_ranges` (the plan's delta predicate), probing at most
/// `max_samples` rows. Reads posting-list *lengths* only — cheap relative
/// to executing the plan — and touches no EvalStats, so running it never
/// perturbs the determinism-checked counters. Caller must have finalized
/// the probed indexes (Relation::EnsureIndexed) when running concurrently.
DeltaWorkEstimate EstimateDeltaWork(const EvalContext& ctx,
                                    const RulePlan& plan,
                                    const IdbState& state,
                                    const std::vector<ShardRange>& delta_ranges,
                                    size_t max_samples);

}  // namespace inflog

#endif  // INFLOG_EVAL_EXECUTOR_H_
