// Plan executor: interprets a RulePlan against an evaluation context and an
// IDB state, emitting derived head tuples.

#ifndef INFLOG_EVAL_EXECUTOR_H_
#define INFLOG_EVAL_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "src/eval/context.h"
#include "src/eval/plan.h"

namespace inflog {

/// Counters accumulated across executions; cheap to keep, useful for the
/// naive-vs-semi-naive ablation benchmarks.
struct EvalStats {
  uint64_t derivations = 0;    ///< Head tuples produced (with duplicates).
  uint64_t new_tuples = 0;     ///< Head tuples that were new in the output.
  uint64_t rows_matched = 0;   ///< Rows tested by kMatch ops.
  uint64_t index_lookups = 0;  ///< kMatch ops served by a hash index.
  uint64_t intersections = 0;  ///< Index lookups that intersected two
                               ///< posting lists (≥2 bound key columns).
  uint64_t enumerations = 0;   ///< Universe elements tried by kEnumerate.
  uint64_t stages = 0;         ///< Iteration stages run (filled by drivers).
  uint64_t parallel_tasks = 0;  ///< Stage tasks run on a thread pool.

  void Add(const EvalStats& other) {
    derivations += other.derivations;
    new_tuples += other.new_tuples;
    rows_matched += other.rows_matched;
    index_lookups += other.index_lookups;
    intersections += other.intersections;
    enumerations += other.enumerations;
    stages += other.stages;
    parallel_tasks += other.parallel_tasks;
  }
};

/// One shard's appended local-row range [begin, end).
using ShardRange = std::pair<size_t, size_t>;

/// Per dynamic IDB predicate (by idb_index), the per-shard local-row
/// ranges holding the tuples added in the previous stage (indexed by the
/// relation's shard; inner size == Relation::num_shards()). Used by
/// delta-scan ops, and sliced along shard boundaries by the parallel
/// stage fan-out.
using DeltaRanges = std::vector<std::vector<ShardRange>>;

/// Executes `plan` reading predicate values through `ctx`/`state`, inserting
/// derived head tuples into `out` (which must have the head's arity).
/// `deltas` may be null when the plan has no delta literal.
void ExecutePlan(const EvalContext& ctx, const RulePlan& plan,
                 const IdbState& state, const DeltaRanges* deltas,
                 Relation* out, EvalStats* stats);

}  // namespace inflog

#endif  // INFLOG_EVAL_EXECUTOR_H_
