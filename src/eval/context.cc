#include "src/eval/context.h"

#include <algorithm>
#include <unordered_set>

#include "src/ast/analysis.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"

namespace inflog {

std::string_view StageSchedulerName(StageScheduler scheduler) {
  switch (scheduler) {
    case StageScheduler::kStatic:
      return "static";
    case StageScheduler::kStealing:
      return "stealing";
    case StageScheduler::kAuto:
      return "auto";
  }
  INFLOG_CHECK(false) << "bad StageScheduler";
  return "";
}

Result<StageScheduler> ParseStageScheduler(std::string_view name) {
  for (StageScheduler s : {StageScheduler::kAuto, StageScheduler::kStatic,
                           StageScheduler::kStealing}) {
    if (name == StageSchedulerName(s)) return s;
  }
  return Status::InvalidArgument(
      StrCat("unknown stage scheduler: ", std::string(name),
             " (expected auto|static|stealing)"));
}

Result<EvalContext> EvalContext::Create(const Program& program,
                                        const Database& database,
                                        const EvalContextOptions& options) {
  EvalContext ctx(program, database);
  ctx.dynamic_idb_.assign(program.idb_predicates().size(), true);
  INFLOG_RETURN_IF_ERROR(ctx.Bind(options));
  return ctx;
}

Result<EvalContext> EvalContext::CreateWithFixed(
    const Program& program, const Database& database,
    std::vector<bool> dynamic_idb, const IdbState* fixed_state,
    const EvalContextOptions& options) {
  INFLOG_CHECK(dynamic_idb.size() == program.idb_predicates().size());
  INFLOG_CHECK(fixed_state != nullptr);
  INFLOG_CHECK(fixed_state->relations.size() ==
               program.idb_predicates().size());
  EvalContext ctx(program, database);
  ctx.dynamic_idb_ = std::move(dynamic_idb);
  ctx.fixed_state_ = fixed_state;
  INFLOG_RETURN_IF_ERROR(ctx.Bind(options));
  return ctx;
}

Result<EvalContext> EvalContext::CreateWithOverrides(
    const Program& program, const Database& database,
    std::vector<const Relation*> overrides,
    const EvalContextOptions& options) {
  EvalContext ctx(program, database);
  ctx.dynamic_idb_.assign(program.idb_predicates().size(), true);
  ctx.overrides_ = std::move(overrides);
  // An overridden IDB predicate reads the supplied relation and does not
  // evolve (the maintainer overrides exactly the frozen ones).
  for (uint32_t pred = 0;
       pred < ctx.overrides_.size() && pred < program.num_predicates();
       ++pred) {
    if (ctx.overrides_[pred] == nullptr) continue;
    const PredicateInfo& info = program.predicate(pred);
    if (info.is_idb) ctx.dynamic_idb_[info.idb_index] = false;
  }
  INFLOG_RETURN_IF_ERROR(ctx.Bind(options));
  return ctx;
}

size_t ResolvedNumThreads(const EvalContextOptions& options) {
  return options.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                  : options.num_threads;
}

size_t ResolvedNumShards(const EvalContextOptions& options) {
  const size_t shards =
      options.num_shards == 0 ? ResolvedNumThreads(options)
                              : options.num_shards;
  // Same rounding the Relation constructor applies (ShardBitsFor), so
  // the resolved count always equals the relations' actual shard count.
  return size_t{1} << ShardBitsFor(
             std::min(shards, EvalContextOptions::kMaxShards));
}

size_t ResolvedMinSliceRows(const EvalContextOptions& options) {
  return options.min_slice_rows == 0
             ? EvalContextOptions::kDefaultMinSliceRows
             : options.min_slice_rows;
}

double ResolvedStealVariance(const EvalContextOptions& options) {
  return options.steal_variance == 0
             ? EvalContextOptions::kDefaultStealVariance
             : options.steal_variance;
}

Status EvalContext::Bind(const EvalContextOptions& options) {
  if (options.reject_unsafe_negation) {
    INFLOG_RETURN_IF_ERROR(CheckNegationSafety(*program_));
  }
  use_join_indexes_ = options.use_join_indexes;
  num_threads_ = ResolvedNumThreads(options);
  num_shards_ = ResolvedNumShards(options);
  scheduler_ = options.scheduler;
  min_slice_rows_ = ResolvedMinSliceRows(options);
  steal_variance_ = ResolvedStealVariance(options);
  optimizer_passes_ = options.optimizer_passes;
  for (const std::string& name : options.output_predicates) {
    Result<uint32_t> pred = program_->FindPredicate(name);
    if (!pred.ok()) {
      return Status::InvalidArgument(
          StrCat("output predicate ", name, " is not in the program"));
    }
    if (!program_->predicate(*pred).is_idb) {
      return Status::InvalidArgument(
          StrCat("output predicate ", name,
                 " is an EDB relation; only IDB predicates are outputs"));
    }
    output_preds_.push_back(*pred);
  }
  bindings_.resize(program_->num_predicates());
  for (uint32_t pred = 0; pred < program_->num_predicates(); ++pred) {
    const PredicateInfo& info = program_->predicate(pred);
    PredBinding& binding = bindings_[pred];
    if (pred < overrides_.size() && overrides_[pred] != nullptr) {
      // Caller-supplied binding (CreateWithOverrides): the predicate —
      // EDB-classified companion or otherwise — reads this relation,
      // whatever the database holds.
      if (overrides_[pred]->arity() != info.arity) {
        return Status::InvalidArgument(
            StrCat("override for ", info.name, " has arity ",
                   overrides_[pred]->arity(), " but the program declares ",
                   info.arity));
      }
      if (info.is_idb && dynamic_idb_[info.idb_index]) {
        return Status::InvalidArgument(
            StrCat("override for ", info.name,
                   " conflicts with its dynamic binding"));
      }
      binding.kind = info.is_idb ? PredBinding::Kind::kFixedIdb
                                 : PredBinding::Kind::kEdb;
      binding.fixed = overrides_[pred];
      continue;
    }
    if (info.is_idb) {
      if (dynamic_idb_[info.idb_index]) {
        binding.kind = PredBinding::Kind::kDynamicIdb;
        binding.dyn_index = info.idb_index;
      } else {
        binding.kind = PredBinding::Kind::kFixedIdb;
        INFLOG_CHECK(fixed_state_ != nullptr)
            << "fixed IDB predicate without a fixed state";
        binding.fixed = &fixed_state_->relations[info.idb_index];
      }
      continue;
    }
    binding.kind = PredBinding::Kind::kEdb;
    auto rel = database_->GetRelation(info.name);
    if (!rel.ok()) {
      if (!options.allow_missing_edb) {
        return Status::NotFound(
            StrCat("EDB relation ", info.name,
                   " is not present in the database"));
      }
      empties_.push_back(std::make_unique<Relation>(info.arity));
      binding.fixed = empties_.back().get();
      continue;
    }
    if ((*rel)->arity() != info.arity) {
      return Status::InvalidArgument(
          StrCat("EDB relation ", info.name, " has arity ", (*rel)->arity(),
                 " in the database but ", info.arity, " in the program"));
    }
    binding.fixed = *rel;
  }

  // Evaluation universe: active domain plus program constants, deduped,
  // database order first (deterministic).
  std::unordered_set<Value> seen;
  for (Value v : database_->universe()) {
    if (seen.insert(v).second) universe_.push_back(v);
  }
  for (Value v : program_->Constants()) {
    if (seen.insert(v).second) universe_.push_back(v);
  }
  return Status::OK();
}

const Relation& EvalContext::Resolve(uint32_t pred,
                                     const IdbState& state) const {
  INFLOG_DCHECK(pred < bindings_.size());
  const PredBinding& binding = bindings_[pred];
  if (binding.kind == PredBinding::Kind::kDynamicIdb) {
    return state.relations[binding.dyn_index];
  }
  return *binding.fixed;
}

bool EvalContext::IsDynamic(uint32_t pred) const {
  INFLOG_DCHECK(pred < bindings_.size());
  return bindings_[pred].kind == PredBinding::Kind::kDynamicIdb;
}

}  // namespace inflog
