#include "src/serve/cache.h"

#include <algorithm>

namespace inflog {
namespace serve {

std::optional<ServeAnswer> QueryCache::Lookup(const std::string& key,
                                              uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.epoch != epoch) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.answer;
}

void QueryCache::Insert(const std::string& key, uint64_t epoch,
                        const std::vector<std::string>& support,
                        const ServeAnswer& answer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch < current_epoch_) return;  // late insert from a retired pin
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.epoch >= epoch) return;
  entries_[key] = Entry{epoch, support, answer};
}

void QueryCache::Advance(const std::vector<std::string>* changed_relations,
                         uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  current_epoch_ = new_epoch;
  if (changed_relations == nullptr) {
    invalidations_ += entries_.size();
    entries_.clear();
    return;
  }
  std::vector<std::string> changed_sorted = *changed_relations;
  std::sort(changed_sorted.begin(), changed_sorted.end());
  for (auto it = entries_.begin(); it != entries_.end();) {
    // Both lists are sorted: linear intersection test.
    const std::vector<std::string>& support = it->second.support;
    const bool touched = std::find_first_of(
                             support.begin(), support.end(),
                             changed_sorted.begin(),
                             changed_sorted.end()) != support.end();
    if (touched) {
      ++invalidations_;
      it = entries_.erase(it);
    } else {
      it->second.epoch = new_epoch;
      ++it;
    }
  }
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += entries_.size();
  entries_.clear();
}

uint64_t QueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t QueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t QueryCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace serve
}  // namespace inflog
