// Delta-invalidated query-result cache.
//
// Entries are keyed by the canonical query string (variables renamed
// $0,$1,... — see ParseServeQuery) and tagged with the epoch whose answer
// they hold plus the query's support set (the relations it reads). When
// the writer publishes epoch E+1 with net deltas touching relations D,
// Advance(D, E+1) erases exactly the entries whose support intersects D
// and re-tags the survivors with E+1 — their answers provably cannot have
// changed, because a serve query reads only its support relations and
// those are shared by pointer with the previous epoch.
//
// A lookup hits only when the entry's epoch equals the reader's pinned
// epoch, so a reader pinned to an older snapshot never sees a newer
// answer (and vice versa). Inserts never downgrade: an answer computed
// against an old pin is dropped if the cache has moved past that epoch.

#ifndef INFLOG_SERVE_CACHE_H_
#define INFLOG_SERVE_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/query.h"

namespace inflog {
namespace serve {

/// Thread-safe (mutex-guarded) query-result cache with delta-precise
/// invalidation. One instance per serving session.
class QueryCache {
 public:
  /// The cached answer for `key` at exactly `epoch`, or nullopt. Counts a
  /// hit or a miss.
  std::optional<ServeAnswer> Lookup(const std::string& key, uint64_t epoch);

  /// Caches `answer` for `key`, valid at `epoch` with the given support
  /// set. Dropped (not an error) when the cache has already advanced
  /// past `epoch` or an entry for `key` exists at `epoch` or later — a
  /// late insert from a reader pinned to a retired epoch must not shadow
  /// fresher answers, and must not be re-tagged forward by a future
  /// Advance whose delta happens to miss its support (the invalidation
  /// that would have killed it already ran).
  void Insert(const std::string& key, uint64_t epoch,
              const std::vector<std::string>& support,
              const ServeAnswer& answer);

  /// Advances the cache to `new_epoch`: erases every entry whose support
  /// set intersects `changed_relations` (nullptr = everything changed,
  /// the oracle-recompute path) and re-tags the survivors with
  /// `new_epoch`. Writer-side, called once per published epoch.
  void Advance(const std::vector<std::string>* changed_relations,
               uint64_t new_epoch);

  /// Drops every entry (counted as invalidations).
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t invalidations() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    std::vector<std::string> support;  ///< sorted, from ServeQuery.
    ServeAnswer answer;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// The epoch of the last Advance; inserts below it are dropped.
  uint64_t current_epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace serve
}  // namespace inflog

#endif  // INFLOG_SERVE_CACHE_H_
