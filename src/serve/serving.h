// The serving session: one writer, many readers, epoch snapshots in
// between.
//
//   writer thread                      reader threads
//   -------------                      --------------
//   ApplyUpdate(batch)                 Pin() -> snapshot handle E
//     IncrementalSession::ApplyUpdate  Query(line):
//     CompactDeadRelations (periodic)    parse against E's frozen symbols
//     SnapshotRegistry::Publish(E+1)     cache lookup (key, E)
//     QueryCache::Advance(deltas, E+1)   miss: EvalServeQuery on E, insert
//
// The writer owns the live Database and the IncrementalSession; readers
// only ever touch sealed snapshots, the mutex-guarded cache and a few
// atomic counters, so the reader path is lock-free against the writer
// (and TSan-clean — tests/serving_test.cc runs exactly this pattern
// under the sanitizer).
//
// Update coalescing (`ServingTuning::update_batch > 1`): Enqueue buffers
// update lines and flushes them as ONE UpdateBatch once the window
// fills. The merged window follows UpdateBatch's netting rule — deletes
// apply first, inserts win — so `+E(1,2)` followed by `-E(1,2)` in one
// window leaves the tuple present (the insert wins), unlike two separate
// batches. That is the documented semantics of the knob, not an
// accident; callers that need sequential semantics keep update_batch=1.

#ifndef INFLOG_SERVE_SERVING_H_
#define INFLOG_SERVE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/eval/incremental.h"
#include "src/serve/cache.h"
#include "src/serve/query.h"
#include "src/serve/snapshot.h"

namespace inflog {
namespace serve {

/// Serving knobs (the CLI flags map onto these).
struct ServingTuning {
  /// Query-result cache on/off (--serve-cache).
  bool cache = true;
  /// Dead-row share above which a relation is compacted after an update
  /// (--compact-threshold); <= 0 disables the periodic schedule.
  double compact_threshold = 0.3;
  /// Update lines coalesced into one ApplyUpdate (--update-batch).
  size_t update_batch = 1;
};

/// One evaluated query with its provenance.
struct QueryOutcome {
  uint64_t epoch = 0;    ///< Epoch the answer is valid at.
  bool cache_hit = false;
  ServeAnswer answer;
};

/// A maintained evaluation published as epoch snapshots, serving
/// concurrent readers while one writer applies updates.
class ServingSession {
 public:
  /// Evaluates (program, *database) via an IncrementalSession and
  /// publishes epoch 0. Same lifetime contract as IncrementalSession:
  /// `program` and `database` must outlive the session and only the
  /// session may mutate *database* afterwards.
  static Result<std::unique_ptr<ServingSession>> Create(
      const Program& program, Database* database,
      const IncrementalOptions& options = {},
      const ServingTuning& tuning = {});

  // --- Reader side: safe from any thread, concurrently with the writer.

  /// Pins the current epoch. The handle stays valid (and the epoch
  /// alive) for as long as the caller holds it.
  SnapshotHandle Pin() const;

  /// Parses and evaluates one `?...` query line against `snap`,
  /// consulting the cache when enabled. Deterministic per epoch.
  Result<QueryOutcome> Query(std::string_view line,
                             const SnapshotHandle& snap) const;

  /// Convenience: pins the current epoch and queries it.
  Result<QueryOutcome> Query(std::string_view line) const;

  // --- Writer side: one thread at a time.

  /// Applies one batch through the incremental session, runs the
  /// periodic compaction schedule, publishes the next epoch and advances
  /// the cache from the net deltas. Counts as `lines` update lines in
  /// the stats (a coalesced window passes its line count).
  Result<UpdateResult> ApplyUpdate(const UpdateBatch& batch,
                                   size_t lines = 1);

  /// Coalesces `batch` into the pending window; flushes (one merged
  /// ApplyUpdate) when the window reaches `tuning.update_batch` lines.
  /// Returns the UpdateResult when a flush happened, nullopt otherwise.
  Result<std::optional<UpdateResult>> Enqueue(const UpdateBatch& batch);

  /// Flushes a partially filled window, if any.
  Result<std::optional<UpdateResult>> Flush();

  /// Current epoch (0 after Create).
  uint64_t epoch() const { return registry_.epoch(); }

  /// Composite counters: the incremental session's cumulative stats plus
  /// the serve_*/cache_* block.
  EvalStats stats() const;

  const Program& program() const { return session_->program(); }
  bool incremental_capable() const {
    return session_->incremental_capable();
  }
  const IncrementalSession& incremental() const { return *session_; }
  const SnapshotRegistry& registry() const { return registry_; }
  const ServingTuning& tuning() const { return tuning_; }

 private:
  ServingSession(std::unique_ptr<IncrementalSession> session,
                 Database* database, ServingTuning tuning)
      : session_(std::move(session)), database_(database),
        tuning_(tuning) {}

  std::unique_ptr<IncrementalSession> session_;
  Database* database_;  ///< The live database (writer-side only).
  ServingTuning tuning_;
  SnapshotRegistry registry_;
  mutable QueryCache cache_;

  mutable std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> batched_{0};
  std::atomic<uint64_t> compactions_{0};

  /// Pending coalescing window (writer-side only).
  UpdateBatch pending_;
  size_t pending_lines_ = 0;
};

}  // namespace serve
}  // namespace inflog

#endif  // INFLOG_SERVE_SERVING_H_
