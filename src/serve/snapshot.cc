#include "src/serve/snapshot.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/base/strings.h"

namespace inflog {
namespace serve {

namespace {

/// Copies a live relation into a sealed one: tombstones compacted away,
/// every column index built, so post-seal reads are pure.
std::shared_ptr<const Relation> Seal(const Relation& live) {
  auto sealed = std::make_shared<Relation>(live);
  sealed->CompactDead();
  for (size_t col = 0; col < sealed->arity(); ++col) {
    sealed->EnsureIndexed(col);
  }
  return sealed;
}

}  // namespace

DatabaseSnapshot::~DatabaseSnapshot() {
  if (live_ != nullptr) live_->fetch_sub(1, std::memory_order_relaxed);
}

Result<const Relation*> DatabaseSnapshot::Find(const Program& program,
                                               std::string_view name) const {
  const Result<uint32_t> pred = program.FindPredicate(name);
  if (pred.ok()) {
    const PredicateInfo& info = program.predicate(*pred);
    if (info.is_idb) {
      if (static_cast<size_t>(info.idb_index) >= idb_.size()) {
        return Status::Internal(
            StrCat("snapshot does not cover IDB predicate ", name));
      }
      return idb_[info.idb_index].get();
    }
  }
  const auto it = edb_.find(name);
  if (it != edb_.end()) return it->second.get();
  return Status::NotFound(
      StrCat("unknown relation in query: ", std::string(name)));
}

Result<Database> DatabaseSnapshot::ToDatabase() const {
  // The rebuilt database gets its own symbol copy so the oracle run can
  // never mutate the frozen table other readers share (ids are preserved,
  // so tuples carry over verbatim).
  Database db(std::make_shared<SymbolTable>(*symbols_));
  for (const Value v : *universe_) db.AddUniverseValue(v);
  for (const auto& [name, rel] : edb_) {
    INFLOG_RETURN_IF_ERROR(db.DeclareRelation(name, rel->arity()));
    for (size_t s = 0; s < rel->num_shards(); ++s) {
      const Relation::ShardView view = rel->shard(s);
      for (size_t r = 0; r < view.size(); ++r) {
        if (!view.IsLive(r)) continue;
        INFLOG_RETURN_IF_ERROR(db.AddFact(name, view.Row(r)));
      }
    }
  }
  return db;
}

SnapshotRegistry::SnapshotRegistry()
    : live_(std::make_shared<std::atomic<int64_t>>(0)) {}

uint64_t SnapshotRegistry::Publish(
    const Program& program, const Database& database, const IdbState& state,
    const std::vector<std::string>* changed_relations,
    const EvalStats& stats) {
  const std::unordered_set<std::string_view> changed =
      changed_relations == nullptr
          ? std::unordered_set<std::string_view>{}
          : std::unordered_set<std::string_view>(changed_relations->begin(),
                                                 changed_relations->end());
  const bool all_changed = changed_relations == nullptr;
  const DatabaseSnapshot* prev = writer_prev_.get();

  auto snap = std::shared_ptr<DatabaseSnapshot>(new DatabaseSnapshot());
  snap->epoch_ = prev == nullptr ? 0 : prev->epoch_ + 1;
  snap->stats_ = stats;

  // Freeze the symbol table / universe: copy only when they grew since
  // the last seal (both are append-only).
  const SymbolTable& symbols = database.symbols();
  if (prev != nullptr && symbols.size() == symbols_size_at_seal_) {
    snap->symbols_ = prev->symbols_;
    snap->universe_ = database.universe().size() == prev->universe_->size()
                          ? prev->universe_
                          : std::make_shared<const std::vector<Value>>(
                                database.universe());
  } else {
    snap->symbols_ = std::make_shared<const SymbolTable>(symbols);
    snap->universe_ =
        std::make_shared<const std::vector<Value>>(database.universe());
  }
  symbols_size_at_seal_ = symbols.size();

  for (const std::string& name : database.RelationNames()) {
    const Result<const Relation*> rel = database.GetRelation(name);
    INFLOG_CHECK(rel.ok());
    std::shared_ptr<const Relation> sealed;
    if (!all_changed && changed.count(name) == 0 && prev != nullptr) {
      const auto it = prev->edb_.find(name);
      if (it != prev->edb_.end()) sealed = it->second;
    }
    if (sealed == nullptr) sealed = Seal(**rel);
    snap->edb_.emplace(name, std::move(sealed));
  }

  snap->idb_.resize(state.relations.size());
  for (uint32_t pred : program.idb_predicates()) {
    const PredicateInfo& info = program.predicate(pred);
    const size_t i = info.idb_index;
    std::shared_ptr<const Relation> sealed;
    if (!all_changed && changed.count(info.name) == 0 && prev != nullptr &&
        i < prev->idb_.size()) {
      sealed = prev->idb_[i];
    }
    if (sealed == nullptr) sealed = Seal(state.relations[i]);
    snap->idb_[i] = std::move(sealed);
  }

  snap->live_ = live_;
  live_->fetch_add(1, std::memory_order_relaxed);
  writer_prev_ = snap;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_ = snap;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  return snap->epoch_;
}

SnapshotHandle SnapshotRegistry::Pin() const {
  pins_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::epoch() const {
  SnapshotHandle snap;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap = current_;
  }
  return snap == nullptr ? kNoEpoch : snap->epoch();
}

}  // namespace serve
}  // namespace inflog
