#include "src/serve/query.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <span>
#include <utility>

#include "src/base/strings.h"

namespace inflog {
namespace serve {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

Result<ServeQuery> ParseServeQuery(std::string_view line,
                                   const SymbolTable& symbols) {
  ServeQuery query;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '?') {
    return Status::InvalidArgument(
        StrCat("query must start with '?': ", std::string(line)));
  }
  ++i;
  // Named-variable name -> dense id (appearance order); anonymous `_`
  // terms get fresh ids and never join output_vars.
  std::map<std::string, uint32_t, std::less<>> named;
  while (true) {
    skip_ws();
    const size_t name_start = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    if (i == name_start) {
      return Status::InvalidArgument(
          StrCat("expected a relation name at column ", i + 1, " of query: ",
                 std::string(line)));
    }
    ServeAtom atom;
    atom.predicate = std::string(line.substr(name_start, i - name_start));
    if (i >= line.size() || line[i] != '(') {
      return Status::InvalidArgument(
          StrCat("expected '(' after relation name ", atom.predicate));
    }
    ++i;
    std::string key_atom = StrCat(atom.predicate, "(");
    bool first_term = true;
    skip_ws();
    if (i < line.size() && line[i] == ')') {
      ++i;  // zero-arity atom
    } else {
      while (true) {
        skip_ws();
        const size_t term_start = i;
        while (i < line.size() && line[i] != ',' && line[i] != ')' &&
               std::isspace(static_cast<unsigned char>(line[i])) == 0) {
          ++i;
        }
        if (i == term_start) {
          return Status::InvalidArgument(
              StrCat("empty term in query atom ", atom.predicate));
        }
        const std::string_view token = line.substr(term_start, i - term_start);
        ServeTerm term;
        const char c0 = token.front();
        if (std::isupper(static_cast<unsigned char>(c0)) || c0 == '_') {
          term.is_var = true;
          if (token == "_") {
            term.var = query.num_vars++;
            key_atom += first_term ? "_" : ",_";
          } else {
            const auto it = named.find(token);
            if (it != named.end()) {
              term.var = it->second;
            } else {
              term.var = query.num_vars++;
              named.emplace(std::string(token), term.var);
              query.output_vars.push_back(term.var);
              query.output_names.emplace_back(token);
            }
            // Positional rename: the k-th distinct named variable is $k.
            size_t pos = 0;
            while (query.output_vars[pos] != term.var) ++pos;
            key_atom += StrCat(first_term ? "$" : ",$", pos);
          }
        } else {
          term.constant = symbols.Find(token);  // kNoValue: matches nothing
          key_atom += StrCat(first_term ? "" : ",", std::string(token));
        }
        atom.terms.push_back(term);
        first_term = false;
        skip_ws();
        if (i < line.size() && line[i] == ',') {
          ++i;
          continue;
        }
        if (i < line.size() && line[i] == ')') {
          ++i;
          break;
        }
        return Status::InvalidArgument(
            StrCat("unterminated atom in query: ", std::string(line)));
      }
    }
    key_atom += ")";
    query.key += query.atoms.empty() ? key_atom : StrCat(",", key_atom);
    query.support.push_back(atom.predicate);
    query.atoms.push_back(std::move(atom));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_ws();
  if (i < line.size() && line[i] != '#') {
    return Status::InvalidArgument(
        StrCat("trailing garbage after query: ", std::string(line)));
  }
  std::sort(query.support.begin(), query.support.end());
  query.support.erase(
      std::unique(query.support.begin(), query.support.end()),
      query.support.end());
  return query;
}

namespace {

/// Backtracking index-nested-loop join over sealed relations. Every read
/// is pure (the snapshot sealed all column indexes), so concurrent
/// evaluations share relations freely.
class QueryJoiner {
 public:
  QueryJoiner(const ServeQuery& query,
              const std::vector<const Relation*>& rels, Relation* out)
      : query_(query),
        rels_(rels),
        out_(out),
        binding_(query.num_vars, kNoValue) {}

  /// True iff at least one full match was found (the ground-query
  /// answer); `out_` accumulates the projected bindings.
  bool Run() { return Join(0); }

 private:
  bool Join(size_t ai) {
    if (ai == query_.atoms.size()) {
      if (query_.num_vars != 0) {
        Tuple row(query_.output_vars.size());
        for (size_t k = 0; k < query_.output_vars.size(); ++k) {
          row[k] = binding_[query_.output_vars[k]];
        }
        out_->Insert(row);
      }
      return true;
    }
    const ServeAtom& atom = query_.atoms[ai];
    const Relation& rel = *rels_[ai];
    const size_t arity = atom.terms.size();
    // Resolve each column: a constant or an already-bound variable gives
    // a probe value; anything else stays open for this atom to bind.
    bool all_bound = true;
    size_t probe_col = arity;  // first bound column, if any
    Tuple probe(arity, kNoValue);
    for (size_t col = 0; col < arity; ++col) {
      const ServeTerm& t = atom.terms[col];
      const Value v = t.is_var ? binding_[t.var] : t.constant;
      if (t.is_var && v == kNoValue) {
        all_bound = false;
        continue;
      }
      if (!t.is_var && v == kNoValue) return false;  // unknown constant
      probe[col] = v;
      if (probe_col == arity) probe_col = col;
    }
    if (all_bound) {
      return rel.Contains(probe) && Join(ai + 1);
    }
    bool any = false;
    if (probe_col < arity) {
      // Indexed path: walk the per-shard postings of the first bound
      // column in shard-major ascending order (deterministic).
      std::vector<std::span<const uint32_t>> spans(rel.num_shards());
      rel.EqualRowsPerShard(probe_col, probe[probe_col], spans.data());
      for (size_t s = 0; s < rel.num_shards(); ++s) {
        const Relation::ShardView view = rel.shard(s);
        for (const uint32_t row : spans[s]) {
          any |= TryRow(ai, view.Row(row));
        }
      }
    } else {
      for (size_t s = 0; s < rel.num_shards(); ++s) {
        const Relation::ShardView view = rel.shard(s);
        for (size_t row = 0; row < view.size(); ++row) {
          if (!view.IsLive(row)) continue;
          any |= TryRow(ai, view.Row(row));
        }
      }
    }
    return any;
  }

  /// Matches one candidate row against atom `ai`, binding its open
  /// variables; recurses on success and always restores the bindings.
  bool TryRow(size_t ai, TupleView row) {
    const ServeAtom& atom = query_.atoms[ai];
    uint32_t bound_here[16];
    size_t num_bound = 0;
    bool match = true;
    for (size_t col = 0; col < atom.terms.size() && match; ++col) {
      const ServeTerm& t = atom.terms[col];
      if (!t.is_var) {
        match = row[col] == t.constant;
      } else if (binding_[t.var] != kNoValue) {
        match = row[col] == binding_[t.var];
      } else {
        binding_[t.var] = row[col];
        INFLOG_CHECK(num_bound < 16) << "query atom arity over 16";
        bound_here[num_bound++] = t.var;
      }
    }
    const bool any = match && Join(ai + 1);
    for (size_t k = 0; k < num_bound; ++k) {
      binding_[bound_here[k]] = kNoValue;
    }
    return any;
  }

  const ServeQuery& query_;
  const std::vector<const Relation*>& rels_;
  Relation* out_;
  std::vector<Value> binding_;
};

}  // namespace

Result<ServeAnswer> EvalServeQuery(const ServeQuery& query,
                                   const Program& program,
                                   const DatabaseSnapshot& snapshot) {
  std::vector<const Relation*> rels;
  rels.reserve(query.atoms.size());
  for (const ServeAtom& atom : query.atoms) {
    INFLOG_ASSIGN_OR_RETURN(const Relation* rel,
                            snapshot.Find(program, atom.predicate));
    if (rel->arity() != atom.terms.size()) {
      return Status::InvalidArgument(
          StrCat("query atom ", atom.predicate, " has ", atom.terms.size(),
                 " terms, relation has arity ", rel->arity()));
    }
    rels.push_back(rel);
  }
  ServeAnswer answer;
  answer.ground = query.ground();
  Relation out(query.output_vars.size());
  QueryJoiner joiner(query, rels, &out);
  const bool any = joiner.Run();
  if (answer.ground) {
    answer.truth = any;
    answer.rendered = any ? "true" : "false";
  } else {
    answer.rows = out.SortedTuples();
    answer.rendered = out.ToString(snapshot.symbols());
  }
  return answer;
}

}  // namespace serve
}  // namespace inflog
