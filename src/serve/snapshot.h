// Epoch snapshots: immutable, sealed views of one (database, maintained
// IDB state) pair, published through an atomic epoch pointer so readers
// run lock-free against a stable state while the writer builds the next
// epoch.
//
// A DatabaseSnapshot owns shared handles to *sealed* relations: each
// relation was copied from the live state, compacted (CompactDead) and
// fully indexed (EnsureIndexed on every column) before publication, so
// every read the query evaluator performs on it — Contains, shard scans,
// EqualRowsPerShard — is a pure read with no lazy index catch-up.
// Relations the update did not touch are shared with the previous epoch
// by pointer (the delta the incremental maintainer computes names exactly
// the touched relations), so sealing an epoch costs O(changed relations),
// not O(database).
//
// The symbol table and universe are frozen the same way: a snapshot holds
// a copy taken when the table last grew (ids are append-only, so an
// unchanged size means an unchanged table) and otherwise shares the
// previous epoch's copy. Readers therefore never touch the live
// SymbolTable the writer interns new constants into.
//
// Lifecycle: SnapshotRegistry::Pin hands out shared_ptr handles (the pin);
// dropping the last handle retires the epoch (the unpin) — classic
// reference-counted epoch GC. The current-epoch handle is guarded by a
// mutex that Pin holds only long enough to copy one shared_ptr — every
// actual read (query evaluation, snapshot accessors) then runs against
// the pinned, fully-sealed snapshot with no synchronization at all, and
// readers never observe a half-built epoch. (libstdc++'s lock-based
// std::atomic<std::shared_ptr> would do the same job, but its reader
// unlock is a relaxed RMW — formally racy with the writer's store, and
// ThreadSanitizer rightly flags it.)

#ifndef INFLOG_SERVE_SNAPSHOT_H_
#define INFLOG_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/executor.h"
#include "src/eval/idb_state.h"
#include "src/relation/database.h"

namespace inflog {
namespace serve {

/// One sealed epoch: an immutable view of the EDB and the maintained IDB
/// state at the moment it was published. All members are frozen — nothing
/// mutates after sealing, so any number of threads may read concurrently.
class DatabaseSnapshot {
 public:
  ~DatabaseSnapshot();

  DatabaseSnapshot(const DatabaseSnapshot&) = delete;
  DatabaseSnapshot& operator=(const DatabaseSnapshot&) = delete;

  /// The epoch number (0 = the initial evaluation, +1 per published
  /// update batch).
  uint64_t epoch() const { return epoch_; }

  /// The frozen symbol table of this epoch. Contains every id any sealed
  /// relation references (interning is append-only and sealing happens
  /// after the update that introduced new constants).
  const SymbolTable& symbols() const { return *symbols_; }

  /// The frozen universe (active domain plus declared elements).
  const std::vector<Value>& universe() const { return *universe_; }

  /// The sealed relation named `name`: an IDB predicate of `program`
  /// resolves to the maintained state, anything else to the EDB relation
  /// of that name. NotFound when neither exists.
  Result<const Relation*> Find(const Program& program,
                               std::string_view name) const;

  /// The sealed EDB relations by name (deterministic iteration order).
  const std::map<std::string, std::shared_ptr<const Relation>, std::less<>>&
  edb() const {
    return edb_;
  }

  /// The sealed IDB relations by dense idb_index.
  const std::vector<std::shared_ptr<const Relation>>& idb() const {
    return idb_;
  }

  /// Cumulative serving/maintenance counters at the moment this epoch was
  /// sealed (the per-snapshot EvalStats the serving API exposes).
  const EvalStats& stats() const { return stats_; }

  /// Rebuilds a standalone Database holding this epoch's EDB contents and
  /// universe (sharing the frozen symbol copy). This is the oracle hook:
  /// tests evaluate the program from scratch against it and compare with
  /// the sealed IDB state.
  Result<Database> ToDatabase() const;

 private:
  friend class SnapshotRegistry;
  DatabaseSnapshot() = default;

  uint64_t epoch_ = 0;
  std::shared_ptr<const SymbolTable> symbols_;
  std::shared_ptr<const std::vector<Value>> universe_;
  std::map<std::string, std::shared_ptr<const Relation>, std::less<>> edb_;
  std::vector<std::shared_ptr<const Relation>> idb_;
  EvalStats stats_;
  /// Registry's live-epoch gauge; decremented on retirement.
  std::shared_ptr<std::atomic<int64_t>> live_;
};

/// A pinned snapshot: holding it keeps the epoch alive.
using SnapshotHandle = std::shared_ptr<const DatabaseSnapshot>;

/// Publishes sealed epochs and hands out pins. One writer calls Publish;
/// any number of readers call Pin concurrently.
class SnapshotRegistry {
 public:
  SnapshotRegistry();

  /// Seals the next epoch from the live (database, state) pair and
  /// atomically installs it as current. `changed_relations` names the
  /// relations the update touched (sorted or not; nullptr means
  /// everything changed — the initial epoch and oracle recomputes);
  /// untouched relations are shared with the previous epoch instead of
  /// copied. `program` supplies the IDB naming; `stats` is frozen into
  /// the snapshot. Returns the published epoch number. Writer-side only.
  uint64_t Publish(const Program& program, const Database& database,
                   const IdbState& state,
                   const std::vector<std::string>* changed_relations,
                   const EvalStats& stats);

  /// Pins the current epoch (counted); never returns null once Publish
  /// has run. Safe from any thread.
  SnapshotHandle Pin() const;

  /// The current epoch number (kNoEpoch before the first Publish).
  uint64_t epoch() const;
  static constexpr uint64_t kNoEpoch = static_cast<uint64_t>(-1);

  /// Epochs published so far.
  uint64_t epochs_published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Pin calls served so far.
  uint64_t pins() const { return pins_.load(std::memory_order_relaxed); }

  /// Epochs not yet retired (their last handle still alive). At quiesce
  /// this is 1: the current epoch.
  int64_t live_snapshots() const {
    return live_->load(std::memory_order_relaxed);
  }

 private:
  /// Guards current_ only; held for one shared_ptr copy per Pin/Publish.
  mutable std::mutex mu_;
  std::shared_ptr<const DatabaseSnapshot> current_;
  mutable std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> published_{0};
  std::shared_ptr<std::atomic<int64_t>> live_;
  /// Writer-side bookkeeping for copy reuse: the snapshot the writer
  /// published last (readers never touch this).
  std::shared_ptr<const DatabaseSnapshot> writer_prev_;
  size_t symbols_size_at_seal_ = 0;
};

}  // namespace serve
}  // namespace inflog

#endif  // INFLOG_SERVE_SNAPSHOT_H_
