#include "src/serve/serving.h"

#include <utility>

namespace inflog {
namespace serve {

Result<std::unique_ptr<ServingSession>> ServingSession::Create(
    const Program& program, Database* database,
    const IncrementalOptions& options, const ServingTuning& tuning) {
  INFLOG_ASSIGN_OR_RETURN(std::unique_ptr<IncrementalSession> session,
                          IncrementalSession::Create(program, database,
                                                     options));
  auto serving = std::unique_ptr<ServingSession>(
      new ServingSession(std::move(session), database, tuning));
  // Epoch 0: everything is new, seal the full state.
  serving->registry_.Publish(serving->session_->program(), *database,
                             serving->session_->state(),
                             /*changed_relations=*/nullptr,
                             serving->stats());
  return serving;
}

SnapshotHandle ServingSession::Pin() const { return registry_.Pin(); }

Result<QueryOutcome> ServingSession::Query(std::string_view line,
                                           const SnapshotHandle& snap) const {
  INFLOG_ASSIGN_OR_RETURN(const ServeQuery query,
                          ParseServeQuery(line, snap->symbols()));
  QueryOutcome out;
  out.epoch = snap->epoch();
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (tuning_.cache) {
    std::optional<ServeAnswer> cached = cache_.Lookup(query.key, out.epoch);
    if (cached.has_value()) {
      out.cache_hit = true;
      out.answer = std::move(*cached);
      return out;
    }
  }
  INFLOG_ASSIGN_OR_RETURN(out.answer,
                          EvalServeQuery(query, session_->program(), *snap));
  if (tuning_.cache) {
    cache_.Insert(query.key, out.epoch, query.support, out.answer);
  }
  return out;
}

Result<QueryOutcome> ServingSession::Query(std::string_view line) const {
  return Query(line, Pin());
}

Result<UpdateResult> ServingSession::ApplyUpdate(const UpdateBatch& batch,
                                                 size_t lines) {
  INFLOG_ASSIGN_OR_RETURN(UpdateResult result,
                          session_->ApplyUpdate(batch));
  updates_.fetch_add(lines, std::memory_order_relaxed);
  if (lines > 1) batched_.fetch_add(lines, std::memory_order_relaxed);
  if (tuning_.compact_threshold > 0) {
    // Compaction changes the physical layout only, so relations it
    // touches outside `changed_relations` still share the previous
    // epoch's sealed copy (same logical content).
    compactions_.fetch_add(
        session_->CompactDeadRelations(tuning_.compact_threshold),
        std::memory_order_relaxed);
  }
  const uint64_t next = registry_.Publish(
      session_->program(), *database_, session_->state(),
      &result.changed_relations, stats());
  if (tuning_.cache) cache_.Advance(&result.changed_relations, next);
  return result;
}

Result<std::optional<UpdateResult>> ServingSession::Enqueue(
    const UpdateBatch& batch) {
  if (tuning_.update_batch <= 1) {
    INFLOG_ASSIGN_OR_RETURN(UpdateResult result, ApplyUpdate(batch, 1));
    return std::optional<UpdateResult>(std::move(result));
  }
  pending_.inserts.insert(pending_.inserts.end(), batch.inserts.begin(),
                          batch.inserts.end());
  pending_.deletes.insert(pending_.deletes.end(), batch.deletes.begin(),
                          batch.deletes.end());
  ++pending_lines_;
  if (pending_lines_ >= tuning_.update_batch) return Flush();
  return std::optional<UpdateResult>();
}

Result<std::optional<UpdateResult>> ServingSession::Flush() {
  if (pending_lines_ == 0) return std::optional<UpdateResult>();
  const UpdateBatch batch = std::move(pending_);
  const size_t lines = pending_lines_;
  pending_ = UpdateBatch{};
  pending_lines_ = 0;
  INFLOG_ASSIGN_OR_RETURN(UpdateResult result, ApplyUpdate(batch, lines));
  return std::optional<UpdateResult>(std::move(result));
}

EvalStats ServingSession::stats() const {
  EvalStats st = session_->cumulative_stats();
  st.serve_epochs_published = registry_.epochs_published();
  st.serve_snapshots_pinned = registry_.pins();
  st.serve_queries = queries_.load(std::memory_order_relaxed);
  st.serve_updates = updates_.load(std::memory_order_relaxed);
  st.serve_batched_updates = batched_.load(std::memory_order_relaxed);
  st.serve_compactions = compactions_.load(std::memory_order_relaxed);
  st.cache_hits = cache_.hits();
  st.cache_misses = cache_.misses();
  st.cache_invalidations = cache_.invalidations();
  return st;
}

}  // namespace serve
}  // namespace inflog
