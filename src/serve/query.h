// Serve queries: the point/join query language of the serving layer.
//
// A query is one line, `?` followed by a comma-separated conjunction of
// atoms over EDB or IDB predicates:
//
//   ?E(1,2)              — point query: is the tuple there? (true/false)
//   ?T(1,X)              — selection: every X with T(1,X)
//   ?E(X,Y), T(Y,Z)      — conjunctive join over snapshot relations
//   ?R(X,_,X)            — `_` matches anything and is not output
//
// Terms follow the program syntax: an identifier starting with an
// uppercase letter (or `_`) is a variable, anything else a constant.
// Results are the distinct bindings of the named variables in
// first-appearance order, rendered in the same canonical sorted `{...}`
// form Relation::ToString uses — so serve-mode output diffs cleanly
// against batch-mode relation printouts.
//
// Parsing resolves constants against a *frozen* snapshot symbol table
// (lookup only, never interning): a constant the epoch has never seen
// simply matches nothing. The canonical cache key renames variables to
// $0,$1,... in appearance order and renders constants by name, so
// alpha-equivalent queries share one cache entry across epochs.

#ifndef INFLOG_SERVE_QUERY_H_
#define INFLOG_SERVE_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/serve/snapshot.h"

namespace inflog {
namespace serve {

/// One term of a query atom: a variable (dense id, appearance order) or a
/// constant (kNoValue when the snapshot's table does not know the name —
/// such an atom matches nothing at this epoch).
struct ServeTerm {
  bool is_var = false;
  uint32_t var = 0;       ///< is_var: dense variable id.
  Value constant = kNoValue;  ///< !is_var: interned id or kNoValue.
};

/// One positive atom `Pred(t1,...,tn)`.
struct ServeAtom {
  std::string predicate;
  std::vector<ServeTerm> terms;
};

/// A parsed query, ready to evaluate against any snapshot whose symbol
/// table extends the one it was parsed with.
struct ServeQuery {
  std::vector<ServeAtom> atoms;
  uint32_t num_vars = 0;
  /// Dense ids of the *named* variables, in first-appearance order (the
  /// output columns). `_` terms get ids past these and are projected away.
  std::vector<uint32_t> output_vars;
  std::vector<std::string> output_names;  ///< Parallel to output_vars.
  /// Canonical cache key: variables renamed positionally, constants by
  /// name.
  std::string key;
  /// Sorted, deduplicated predicate names the query reads — its cache
  /// support set.
  std::vector<std::string> support;

  /// True for a fully ground query (no variables): the answer is a truth
  /// value, not a set.
  bool ground() const { return num_vars == 0; }
};

/// Parses a `?...` query line. `symbols` is used for constant lookup only
/// (never interning) — pass the pinned snapshot's frozen table.
Result<ServeQuery> ParseServeQuery(std::string_view line,
                                   const SymbolTable& symbols);

/// A query's answer at one epoch.
struct ServeAnswer {
  bool ground = false;
  bool truth = false;           ///< ground queries only
  std::vector<Tuple> rows;      ///< sorted distinct output bindings
  /// "true"/"false" for ground queries, canonical "{...}" otherwise.
  std::string rendered;
};

/// Evaluates `query` against `snapshot` by index-nested-loop join over
/// the sealed relations (atoms in written order; bound columns probe the
/// per-shard postings, unbound atoms scan). Deterministic: shard-major
/// ascending row order, output sorted. Pure reads only — safe from any
/// number of threads concurrently. NotFound when an atom names a
/// relation neither the program nor the snapshot knows; InvalidArgument
/// on arity mismatch.
Result<ServeAnswer> EvalServeQuery(const ServeQuery& query,
                                   const Program& program,
                                   const DatabaseSnapshot& snapshot);

}  // namespace serve
}  // namespace inflog

#endif  // INFLOG_SERVE_QUERY_H_
