#include "src/fixpoint/brute_force.h"

#include "src/base/strings.h"
#include "src/eval/theta.h"

namespace inflog {

Result<std::vector<IdbState>> BruteForceFixpoints(
    const Program& program, const Database& database,
    const BruteForceOptions& options) {
  EvalContextOptions ctx_options;
  ctx_options.allow_missing_edb = options.allow_missing_edb;
  INFLOG_ASSIGN_OR_RETURN(
      EvalContext ctx, EvalContext::Create(program, database, ctx_options));
  const std::vector<Value>& universe = ctx.universe();

  // Materialize the full candidate atom space: every tuple over the
  // universe, for every IDB predicate.
  struct CandidateAtom {
    size_t idb_index;
    Tuple tuple;
  };
  std::vector<CandidateAtom> atoms;
  const auto& idb = program.idb_predicates();
  for (size_t i = 0; i < idb.size(); ++i) {
    const size_t arity = program.predicate(idb[i]).arity;
    // Count |A|^arity with overflow care.
    double count = 1;
    for (size_t k = 0; k < arity; ++k) count *= universe.size();
    if (count + atoms.size() > static_cast<double>(options.max_atoms)) {
      return Status::ResourceExhausted(
          StrCat("brute force would enumerate 2^",
                 static_cast<size_t>(count) + atoms.size(), " states (cap ",
                 options.max_atoms, " atoms)"));
    }
    // Odometer over A^arity.
    Tuple tuple(arity, universe.empty() ? 0 : universe[0]);
    std::vector<size_t> digits(arity, 0);
    if (arity == 0) {
      atoms.push_back(CandidateAtom{i, {}});
      continue;
    }
    if (universe.empty()) continue;
    while (true) {
      for (size_t k = 0; k < arity; ++k) tuple[k] = universe[digits[k]];
      atoms.push_back(CandidateAtom{i, tuple});
      size_t k = 0;
      while (k < arity && ++digits[k] == universe.size()) {
        digits[k] = 0;
        ++k;
      }
      if (k == arity) break;
    }
  }
  INFLOG_CHECK(atoms.size() <= 63) << "mask enumeration limit";

  ThetaOperator theta(&ctx);
  std::vector<IdbState> fixpoints;
  const uint64_t total = uint64_t{1} << atoms.size();
  for (uint64_t mask = 0; mask < total; ++mask) {
    IdbState state = MakeEmptyIdbState(program);
    for (size_t a = 0; a < atoms.size(); ++a) {
      if (mask & (uint64_t{1} << a)) {
        state.relations[atoms[a].idb_index].Insert(atoms[a].tuple);
      }
    }
    if (theta.IsFixpoint(state)) fixpoints.push_back(std::move(state));
  }
  return fixpoints;
}

}  // namespace inflog
