// Brute-force fixpoint enumeration over the full IDB tuple space.
//
// Enumerates every candidate state S ⊆ A^k₁ × ... × A^k_m and keeps those
// with Θ(S) = S. Exponential — usable only when the total number of
// candidate atoms is tiny — but it checks the definition directly, with no
// grounding, completion, or SAT in the loop, so it is the ground truth the
// analyzer is property-tested against.

#ifndef INFLOG_FIXPOINT_BRUTE_FORCE_H_
#define INFLOG_FIXPOINT_BRUTE_FORCE_H_

#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/relation/database.h"

namespace inflog {

/// Limits for brute-force enumeration.
struct BruteForceOptions {
  /// Error out when |A|^arity summed over IDB predicates exceeds this
  /// (2^max_atoms candidate states would be enumerated).
  size_t max_atoms = 22;
  bool allow_missing_edb = false;
};

/// All fixpoints of (π, D), by exhaustive enumeration.
Result<std::vector<IdbState>> BruteForceFixpoints(
    const Program& program, const Database& database,
    const BruteForceOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_FIXPOINT_BRUTE_FORCE_H_
