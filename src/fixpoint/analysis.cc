#include "src/fixpoint/analysis.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/eval/theta.h"

namespace inflog {

Result<FixpointAnalyzer> FixpointAnalyzer::Create(const Program* program,
                                                  const Database* database,
                                                  AnalyzeOptions options) {
  INFLOG_CHECK(program != nullptr && database != nullptr);
  FixpointAnalyzer analyzer(program, database, options);
  INFLOG_ASSIGN_OR_RETURN(
      analyzer.ground_,
      GroundProgramFor(*program, *database, options.grounder));
  analyzer.encoding_ = EncodeCompletion(analyzer.ground_);
  return analyzer;
}

Result<sat::PortfolioSolver> FixpointAnalyzer::MakeSolver() const {
  sat::PortfolioSolver solver(options_.solver);
  solver.AddCnf(encoding_.cnf);
  // Blocking clauses and activation assumptions reference the atom
  // variables after the first Solve: freeze them so preprocessing cannot
  // eliminate them (elimination is an exact existential projection, so the
  // model set over the frozen variables is unchanged).
  for (const int32_t var : encoding_.atom_vars) {
    if (var >= 0) solver.FreezeVar(var);
  }
  return solver;
}

Result<IdbState> FixpointAnalyzer::DecodeModel(
    const std::vector<bool>& atoms) const {
  IdbState state = ground_.DecodeState(*program_, atoms);
  if (options_.verify_models) {
    INFLOG_ASSIGN_OR_RETURN(const bool is_fixpoint, VerifyFixpoint(state));
    if (!is_fixpoint) {
      return Status::Internal(
          "SAT model of the completion is not a fixpoint of Θ; "
          "encoding bug");
    }
  }
  return state;
}

sat::Clause FixpointAnalyzer::BlockingClause(
    const std::vector<bool>& atoms) const {
  sat::Clause clause;
  for (size_t a = 0; a < encoding_.atom_vars.size(); ++a) {
    const int32_t var = encoding_.atom_vars[a];
    if (var < 0) continue;
    clause.push_back(atoms[a] ? sat::Neg(var) : sat::Pos(var));
  }
  return clause;
}

Result<bool> FixpointAnalyzer::HasFixpoint() const {
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  const sat::SolveResult res = solver.Solve();
  sat_stats_.Add(solver.stats());
  if (res == sat::SolveResult::kUnknown) {
    return Status::ResourceExhausted("SAT conflict budget exhausted");
  }
  return res == sat::SolveResult::kSat;
}

Result<std::optional<IdbState>> FixpointAnalyzer::FindFixpoint() const {
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  const sat::SolveResult res = solver.Solve();
  sat_stats_.Add(solver.stats());
  if (res == sat::SolveResult::kUnknown) {
    return Status::ResourceExhausted("SAT conflict budget exhausted");
  }
  if (res == sat::SolveResult::kUnsat) {
    return std::optional<IdbState>();
  }
  INFLOG_ASSIGN_OR_RETURN(IdbState state,
                          DecodeModel(encoding_.DecodeAtoms(solver.Model())));
  return std::optional<IdbState>(std::move(state));
}

Result<std::vector<IdbState>> FixpointAnalyzer::EnumerateFixpoints(
    size_t limit) const {
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  std::vector<std::vector<bool>> found;
  while (limit == 0 || found.size() < limit) {
    const sat::SolveResult res = solver.Solve();
    if (res == sat::SolveResult::kUnknown) {
      sat_stats_.Add(solver.stats());
      return Status::ResourceExhausted("SAT conflict budget exhausted");
    }
    if (res == sat::SolveResult::kUnsat) break;
    std::vector<bool> atoms = encoding_.DecodeAtoms(solver.Model());
    const sat::Clause block = BlockingClause(atoms);
    found.push_back(std::move(atoms));
    if (block.empty() || !solver.AddClause(block)) break;
  }
  sat_stats_.Add(solver.stats());
  // Canonical order: a full enumeration is then identical whatever the
  // solver configuration found the models in.
  std::sort(found.begin(), found.end());
  std::vector<IdbState> fixpoints;
  fixpoints.reserve(found.size());
  for (const std::vector<bool>& atoms : found) {
    INFLOG_ASSIGN_OR_RETURN(IdbState state, DecodeModel(atoms));
    fixpoints.push_back(std::move(state));
  }
  return fixpoints;
}

Result<uint64_t> FixpointAnalyzer::CountFixpoints(uint64_t limit) const {
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  uint64_t count = 0;
  while (true) {
    const sat::SolveResult res = solver.Solve();
    if (res == sat::SolveResult::kUnknown) {
      sat_stats_.Add(solver.stats());
      return Status::ResourceExhausted("SAT conflict budget exhausted");
    }
    if (res == sat::SolveResult::kUnsat) {
      sat_stats_.Add(solver.stats());
      return count;
    }
    ++count;
    if (count > limit) {
      sat_stats_.Add(solver.stats());
      return Status::ResourceExhausted(
          StrCat("more than ", limit, " fixpoints"));
    }
    const sat::Clause block =
        BlockingClause(encoding_.DecodeAtoms(solver.Model()));
    if (block.empty() || !solver.AddClause(block)) {
      sat_stats_.Add(solver.stats());
      return count;
    }
  }
}

Result<UniqueStatus> FixpointAnalyzer::UniqueFixpoint() const {
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  sat::SolveResult res = solver.Solve();
  if (res == sat::SolveResult::kUnknown) {
    sat_stats_.Add(solver.stats());
    return Status::ResourceExhausted("SAT conflict budget exhausted");
  }
  if (res == sat::SolveResult::kUnsat) {
    sat_stats_.Add(solver.stats());
    return UniqueStatus::kNoFixpoint;
  }
  const sat::Clause block =
      BlockingClause(encoding_.DecodeAtoms(solver.Model()));
  if (block.empty() || !solver.AddClause(block)) {
    sat_stats_.Add(solver.stats());
    return UniqueStatus::kUnique;  // no atoms at all: the empty state only
  }
  res = solver.Solve();
  sat_stats_.Add(solver.stats());
  if (res == sat::SolveResult::kUnknown) {
    return Status::ResourceExhausted("SAT conflict budget exhausted");
  }
  return res == sat::SolveResult::kSat ? UniqueStatus::kMultiple
                                       : UniqueStatus::kUnique;
}

Result<LeastFixpointOutcome> FixpointAnalyzer::LeastFixpoint() const {
  LeastFixpointOutcome out;
  INFLOG_ASSIGN_OR_RETURN(sat::PortfolioSolver solver, MakeSolver());
  sat::SolveResult res = solver.Solve();
  ++out.sat_calls;
  if (res == sat::SolveResult::kUnknown) {
    sat_stats_.Add(solver.stats());
    return Status::ResourceExhausted("SAT conflict budget exhausted");
  }
  if (res == sat::SolveResult::kUnsat) {
    sat_stats_.Add(solver.stats());
    return out;  // no fixpoint at all
  }
  out.has_fixpoint = true;

  // Candidate C := atoms true in the first model; then repeatedly ask for
  // a fixpoint missing part of C and intersect. When no such model exists,
  // C is exactly the intersection of all fixpoints. Each round either
  // terminates or strictly shrinks C, so at most |C₀|+1 SAT calls run.
  // (Activation variables are created after the first Solve, so the
  // preprocessor never sees — and cannot eliminate — them.)
  std::vector<bool> candidate = encoding_.DecodeAtoms(solver.Model());
  while (true) {
    sat::Clause ask;
    const sat::Var activation = solver.NewVar();
    ask.push_back(sat::Neg(activation));
    for (size_t a = 0; a < candidate.size(); ++a) {
      if (candidate[a]) ask.push_back(sat::Neg(encoding_.atom_vars[a]));
    }
    if (ask.size() == 1) break;  // candidate already empty
    solver.AddClause(ask);
    res = solver.Solve({sat::Pos(activation)});
    ++out.sat_calls;
    if (res == sat::SolveResult::kUnknown) {
      sat_stats_.Add(solver.stats());
      return Status::ResourceExhausted("SAT conflict budget exhausted");
    }
    // Deactivate the query clause for subsequent rounds.
    const bool found = res == sat::SolveResult::kSat;
    std::vector<bool> model_atoms;
    if (found) model_atoms = encoding_.DecodeAtoms(solver.Model());
    solver.AddClause({sat::Neg(activation)});
    if (!found) break;
    for (size_t a = 0; a < candidate.size(); ++a) {
      candidate[a] = candidate[a] && model_atoms[a];
    }
  }
  sat_stats_.Add(solver.stats());

  out.intersection = ground_.DecodeState(*program_, candidate);
  // Theorem 3's observation: a least fixpoint exists iff the intersection
  // of all fixpoints is itself a fixpoint.
  INFLOG_ASSIGN_OR_RETURN(out.has_least, VerifyFixpoint(out.intersection));
  return out;
}

Result<bool> FixpointAnalyzer::VerifyFixpoint(const IdbState& state) const {
  EvalContextOptions ctx_options;
  ctx_options.allow_missing_edb = options_.grounder.allow_missing_edb;
  INFLOG_ASSIGN_OR_RETURN(
      EvalContext ctx,
      EvalContext::Create(*program_, *database_, ctx_options));
  ThetaOperator theta(&ctx);
  return theta.IsFixpoint(state);
}

}  // namespace inflog
