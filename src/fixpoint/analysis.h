// FixpointAnalyzer: the executable form of the paper's Section 3.
//
// For a fixed program π and input database D it answers, through the
// ground-completion-CDCL pipeline:
//
//   * HasFixpoint / FindFixpoint     — Theorem 1's NP problem;
//   * UniqueFixpoint                 — Theorem 2's US problem
//                                      (two SAT calls: solve, block, solve);
//   * EnumerateFixpoints / Count     — the full fixpoint structure (the
//                                      §2 example: paths, cycles, Gₙ);
//   * LeastFixpoint                  — Theorem 3's problem, decided by the
//                                      paper's observation that a least
//                                      fixpoint exists iff the
//                                      intersection of all fixpoints is a
//                                      fixpoint. The intersection is
//                                      computed with polynomially many SAT
//                                      calls (FONP-style: first-order
//                                      combination of NP oracle answers).
//
// Every model returned by the solver is re-verified against the direct
// Θ(S) = S check, so the SAT path never silently diverges from the
// semantics.

#ifndef INFLOG_FIXPOINT_ANALYSIS_H_
#define INFLOG_FIXPOINT_ANALYSIS_H_

#include <optional>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/fixpoint/completion.h"
#include "src/ground/grounder.h"
#include "src/relation/database.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace inflog {

/// Limits for fixpoint analysis.
struct AnalyzeOptions {
  GrounderOptions grounder;
  sat::SolverOptions solver;
  /// Verify each decoded fixpoint with a direct Θ(S) = S check.
  bool verify_models = true;
};

/// Three-way answer for unique-fixpoint queries (the class US asks for
/// "exactly one accepting computation").
enum class UniqueStatus { kNoFixpoint, kUnique, kMultiple };

/// Outcome of the least-fixpoint decision.
struct LeastFixpointOutcome {
  bool has_fixpoint = false;  ///< (π, D) has at least one fixpoint.
  bool has_least = false;     ///< The intersection is itself a fixpoint.
  /// The coordinatewise intersection of all fixpoints (meaningful iff
  /// has_fixpoint). When has_least, this is the least fixpoint.
  IdbState intersection;
  /// SAT oracle calls used (the FONP flavor of Theorem 3 made concrete).
  size_t sat_calls = 0;
};

/// Per-(π, D) analyzer. Holds the grounding and its completion; each query
/// runs a fresh CDCL solver over the encoding.
class FixpointAnalyzer {
 public:
  /// Grounds and encodes. `program` and `database` must outlive the
  /// analyzer.
  static Result<FixpointAnalyzer> Create(const Program* program,
                                         const Database* database,
                                         AnalyzeOptions options = {});

  /// Does (π, D) have any fixpoint?
  Result<bool> HasFixpoint() const;

  /// Some fixpoint, or nullopt when none exists.
  Result<std::optional<IdbState>> FindFixpoint() const;

  /// Up to `limit` fixpoints (0 = all). The returned set is sorted
  /// canonically (by ground-atom assignment), so a full enumeration is
  /// identical across solver configurations (preprocessing, deletion,
  /// portfolio width); with a nonzero `limit`, *which* fixpoints are found
  /// first remains solver-dependent.
  Result<std::vector<IdbState>> EnumerateFixpoints(size_t limit = 0) const;

  /// Number of fixpoints, counted by enumeration up to `limit`
  /// (ResourceExhausted beyond it).
  Result<uint64_t> CountFixpoints(uint64_t limit = 1'000'000) const;

  /// None / exactly one / more than one fixpoint.
  Result<UniqueStatus> UniqueFixpoint() const;

  /// Decides least-fixpoint existence per Theorem 3.
  Result<LeastFixpointOutcome> LeastFixpoint() const;

  /// Direct semantic check Θ(state) = state (independent of SAT).
  Result<bool> VerifyFixpoint(const IdbState& state) const;

  const GroundProgram& ground() const { return ground_; }
  const CompletionEncoding& encoding() const { return encoding_; }

  /// SAT statistics accumulated across every query on this analyzer.
  const sat::SolverStats& sat_stats() const { return sat_stats_; }

 private:
  FixpointAnalyzer(const Program* program, const Database* database,
                   AnalyzeOptions options)
      : program_(program), database_(database), options_(options) {}

  /// Fresh portfolio pre-loaded with the completion; every completion atom
  /// variable is frozen so blocking clauses and assumptions stay sound
  /// under preprocessing.
  Result<sat::PortfolioSolver> MakeSolver() const;

  /// Decodes + optionally verifies an atom assignment.
  Result<IdbState> DecodeModel(const std::vector<bool>& atoms) const;

  /// Clause blocking the given head-atom assignment.
  sat::Clause BlockingClause(const std::vector<bool>& atoms) const;

  const Program* program_;
  const Database* database_;
  AnalyzeOptions options_;
  GroundProgram ground_;
  CompletionEncoding encoding_;
  mutable sat::SolverStats sat_stats_;
};

}  // namespace inflog

#endif  // INFLOG_FIXPOINT_ANALYSIS_H_
