#include "src/fixpoint/completion.h"

#include <algorithm>

namespace inflog {
namespace {

/// Lazily computed simplification of one interned body against the set of
/// supported atoms.
struct SimplifiedBody {
  enum class State : uint8_t { kUnknown, kTrue, kFalse, kLit };
  State state = State::kUnknown;
  sat::Lit lit;
};

}  // namespace

CompletionEncoding EncodeCompletion(const GroundProgram& ground) {
  CompletionEncoding enc;
  const size_t num_atoms = ground.atoms.size();
  INFLOG_CHECK(ground.rules_by_head.size() == num_atoms)
      << "GroundProgram::IndexHeads() must run before encoding";

  enc.atom_vars.assign(num_atoms, -1);
  for (uint32_t a = 0; a < num_atoms; ++a) {
    if (!ground.rules_by_head[a].empty()) {
      enc.atom_vars[a] = enc.cnf.NewVar();
    }
  }

  // One shared Tseitin definition per interned body (computed lazily the
  // first time a rule uses that body).
  std::vector<SimplifiedBody> simplified(ground.bodies.size());
  auto body_def = [&](uint32_t body_id) -> SimplifiedBody& {
    SimplifiedBody& sb = simplified[body_id];
    if (sb.state != SimplifiedBody::State::kUnknown) return sb;
    const GroundBody& body = ground.bodies.body(body_id);
    std::vector<sat::Lit> lits;
    for (uint32_t p : body.pos) {
      if (enc.atom_vars[p] < 0) {
        sb.state = SimplifiedBody::State::kFalse;  // unsupported atom
        return sb;
      }
      lits.push_back(sat::Pos(enc.atom_vars[p]));
    }
    for (uint32_t n : body.neg) {
      if (enc.atom_vars[n] < 0) continue;  // ¬(false atom) is true
      lits.push_back(sat::Neg(enc.atom_vars[n]));
    }
    if (lits.empty()) {
      sb.state = SimplifiedBody::State::kTrue;
      return sb;
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    if (lits.size() == 1) {
      sb.state = SimplifiedBody::State::kLit;
      sb.lit = lits[0];
      return sb;
    }
    const sat::Var b = enc.cnf.NewVar();
    ++enc.num_body_vars;
    sb.state = SimplifiedBody::State::kLit;
    sb.lit = sat::Pos(b);
    // b ↔ ⋀ lits.
    sat::Clause back{sb.lit};
    for (const sat::Lit& l : lits) {
      enc.cnf.AddClause({sat::Neg(b), l});
      back.push_back(~l);
    }
    enc.cnf.AddClause(std::move(back));
    return sb;
  };

  for (uint32_t a = 0; a < num_atoms; ++a) {
    if (enc.atom_vars[a] < 0) continue;
    const sat::Lit head = sat::Pos(enc.atom_vars[a]);

    bool has_true_body = false;
    std::vector<sat::Lit> body_lits;     // one defining literal per body
    std::vector<int32_t> seen_codes;     // dedup across this head's bodies
    for (uint32_t r : ground.rules_by_head[a]) {
      const SimplifiedBody& sb = body_def(ground.rules[r].body);
      if (sb.state == SimplifiedBody::State::kFalse) continue;
      if (sb.state == SimplifiedBody::State::kTrue) {
        has_true_body = true;
        break;
      }
      if (std::find(seen_codes.begin(), seen_codes.end(), sb.lit.code) ==
          seen_codes.end()) {
        seen_codes.push_back(sb.lit.code);
        body_lits.push_back(sb.lit);
      }
    }

    if (has_true_body) {
      // a ↔ (true ∨ ...): a is simply true.
      enc.cnf.AddClause({head});
      continue;
    }
    if (body_lits.empty()) {
      // Every body was unsatisfiable: a ↔ false.
      enc.cnf.AddClause({~head});
      continue;
    }
    // bᵢ → a, and a → ⋁ bᵢ.
    sat::Clause support{~head};
    for (const sat::Lit& b : body_lits) {
      enc.cnf.AddClause({~b, head});
      support.push_back(b);
    }
    enc.cnf.AddClause(std::move(support));
  }
  return enc;
}

}  // namespace inflog
