// Clark completion of a ground program, encoded to CNF.
//
// S is a fixpoint of (π, D) — Θ(S) = S — iff S is a supported model of the
// grounding: an atom is true exactly when some ground rule with that head
// has a true body. That biconditional, atom by atom, is Clark's completion:
//
//    a  ↔  body₁ ∨ body₂ ∨ ... ∨ body_k     (rules with head a)
//
// Atoms heading no ground rule are false in every fixpoint and get no SAT
// variable; bodies referencing them positively are dropped, negated
// references are removed as vacuously true. Multi-literal bodies get a
// Tseitin definition variable, shared across heads when the same body
// recurs (the toggle rule instantiates the same {¬Q(u),¬T(w)} body for
// every head T(z), so sharing collapses |A|³ rule instances to |A|² body
// definitions).
//
// This is the bridge from the paper's Theorems 1–3 to the CDCL engine:
// fixpoint existence ⇔ SAT of the completion.

#ifndef INFLOG_FIXPOINT_COMPLETION_H_
#define INFLOG_FIXPOINT_COMPLETION_H_

#include <vector>

#include "src/ground/ground_program.h"
#include "src/sat/cnf.h"

namespace inflog {

/// CNF encoding of the completion plus the atom/variable correspondence.
struct CompletionEncoding {
  sat::Cnf cnf;
  /// SAT variable per ground atom id, or -1 when the atom is unsupported
  /// (false in every fixpoint).
  std::vector<int32_t> atom_vars;
  /// Number of Tseitin body-definition variables introduced.
  size_t num_body_vars = 0;

  /// Truth of every ground atom under a solver model.
  std::vector<bool> DecodeAtoms(const std::vector<bool>& model) const {
    std::vector<bool> out(atom_vars.size(), false);
    for (size_t a = 0; a < atom_vars.size(); ++a) {
      if (atom_vars[a] >= 0) out[a] = model[atom_vars[a]];
    }
    return out;
  }
};

/// Builds the completion CNF for `ground` (rules_by_head must be indexed).
CompletionEncoding EncodeCompletion(const GroundProgram& ground);

}  // namespace inflog

#endif  // INFLOG_FIXPOINT_COMPLETION_H_
