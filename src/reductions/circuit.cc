#include "src/reductions/circuit.h"

#include "src/base/strings.h"

namespace inflog {

uint32_t Circuit::AddInput(uint32_t pos) {
  INFLOG_CHECK(pos < num_inputs_);
  gates_.push_back(Gate{Gate::Kind::kIn, 0, 0, pos});
  return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t Circuit::AddAnd(uint32_t x, uint32_t y) {
  INFLOG_CHECK(x < gates_.size() && y < gates_.size());
  gates_.push_back(Gate{Gate::Kind::kAnd, x, y, 0});
  return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t Circuit::AddOr(uint32_t x, uint32_t y) {
  INFLOG_CHECK(x < gates_.size() && y < gates_.size());
  gates_.push_back(Gate{Gate::Kind::kOr, x, y, 0});
  return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t Circuit::AddNot(uint32_t x) {
  INFLOG_CHECK(x < gates_.size());
  gates_.push_back(Gate{Gate::Kind::kNot, x, x, 0});
  return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t Circuit::AddAndAll(const std::vector<uint32_t>& xs) {
  INFLOG_CHECK(!xs.empty());
  uint32_t acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = AddAnd(acc, xs[i]);
  return acc;
}

uint32_t Circuit::AddOrAll(const std::vector<uint32_t>& xs) {
  INFLOG_CHECK(!xs.empty());
  uint32_t acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = AddOr(acc, xs[i]);
  return acc;
}

std::vector<bool> Circuit::EvalAllGates(const std::vector<bool>& inputs) const {
  INFLOG_CHECK(inputs.size() == num_inputs_);
  std::vector<bool> values(gates_.size());
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case Gate::Kind::kIn:
        values[i] = inputs[g.input];
        break;
      case Gate::Kind::kAnd:
        values[i] = values[g.a] && values[g.b];
        break;
      case Gate::Kind::kOr:
        values[i] = values[g.a] || values[g.b];
        break;
      case Gate::Kind::kNot:
        values[i] = !values[g.a];
        break;
    }
  }
  return values;
}

bool Circuit::Eval(const std::vector<bool>& inputs) const {
  INFLOG_CHECK(!gates_.empty());
  return EvalAllGates(inputs).back();
}

Status Circuit::Validate() const {
  if (gates_.empty()) {
    return Status::InvalidArgument("circuit has no gates");
  }
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == Gate::Kind::kIn) {
      if (g.input >= num_inputs_) {
        return Status::InvalidArgument(
            StrCat("gate ", i, " reads input ", g.input, " of ",
                   num_inputs_));
      }
      continue;
    }
    if (g.a >= i || g.b >= i) {
      return Status::InvalidArgument(
          StrCat("gate ", i, " reads a later or same gate"));
    }
  }
  return Status::OK();
}

bool SuccinctGraph::HasEdge(uint64_t u, uint64_t v) const {
  std::vector<bool> inputs(2 * n);
  for (size_t bit = 0; bit < n; ++bit) {
    inputs[bit] = (u >> bit) & 1;
    inputs[n + bit] = (v >> bit) & 1;
  }
  return circuit.Eval(inputs);
}

Digraph SuccinctGraph::Expand() const {
  const size_t size = num_vertices();
  Digraph g(size);
  for (uint64_t u = 0; u < size; ++u) {
    for (uint64_t v = 0; v < size; ++v) {
      if (HasEdge(u, v)) g.AddEdge(u, v);
    }
  }
  return g;
}

namespace {

/// Gate computing "input u-bit i differs from input v-bit i".
uint32_t AddBitDiffers(Circuit* c, size_t n, size_t bit) {
  const uint32_t ui = c->AddInput(bit);
  const uint32_t vi = c->AddInput(n + bit);
  const uint32_t both = c->AddAnd(ui, vi);
  const uint32_t either = c->AddOr(ui, vi);
  return c->AddAnd(either, c->AddNot(both));  // XOR
}

}  // namespace

SuccinctGraph SuccinctCompleteGraph(size_t n) {
  SuccinctGraph sg;
  sg.n = n;
  sg.circuit = Circuit(2 * n);
  std::vector<uint32_t> diffs;
  for (size_t bit = 0; bit < n; ++bit) {
    diffs.push_back(AddBitDiffers(&sg.circuit, n, bit));
  }
  sg.circuit.AddOrAll(diffs);  // u ≠ v
  return sg;
}

SuccinctGraph SuccinctHypercube(size_t n) {
  SuccinctGraph sg;
  sg.n = n;
  sg.circuit = Circuit(2 * n);
  std::vector<uint32_t> diffs;
  for (size_t bit = 0; bit < n; ++bit) {
    diffs.push_back(AddBitDiffers(&sg.circuit, n, bit));
  }
  // Exactly one bit differs: ⋁ᵢ (diffᵢ ∧ ⋀_{j≠i} ¬diffⱼ).
  std::vector<uint32_t> exactly_one;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> conj{diffs[i]};
    for (size_t j = 0; j < n; ++j) {
      if (j != i) conj.push_back(sg.circuit.AddNot(diffs[j]));
    }
    exactly_one.push_back(sg.circuit.AddAndAll(conj));
  }
  sg.circuit.AddOrAll(exactly_one);
  return sg;
}

SuccinctGraph SuccinctCycle(size_t n) {
  SuccinctGraph sg;
  sg.n = n;
  sg.circuit = Circuit(2 * n);
  // v = u + 1 (mod 2ⁿ) via a ripple carry: c₀ = 1, yᵢ = uᵢ ⊕ cᵢ,
  // cᵢ₊₁ = uᵢ ∧ cᵢ; edge iff ⋀ᵢ (vᵢ ↔ yᵢ).
  std::vector<uint32_t> match;
  // carry starts as constant true: encode as (x ∨ ¬x) on input 0.
  const uint32_t in0 = sg.circuit.AddInput(0);
  uint32_t carry = sg.circuit.AddOr(in0, sg.circuit.AddNot(in0));
  for (size_t bit = 0; bit < n; ++bit) {
    const uint32_t ui = sg.circuit.AddInput(bit);
    const uint32_t vi = sg.circuit.AddInput(n + bit);
    // yᵢ = uᵢ ⊕ carry.
    const uint32_t both = sg.circuit.AddAnd(ui, carry);
    const uint32_t either = sg.circuit.AddOr(ui, carry);
    const uint32_t yi = sg.circuit.AddAnd(either, sg.circuit.AddNot(both));
    // vᵢ ↔ yᵢ  ≡  (vᵢ ∧ yᵢ) ∨ (¬vᵢ ∧ ¬yᵢ).
    const uint32_t eq = sg.circuit.AddOr(
        sg.circuit.AddAnd(vi, yi),
        sg.circuit.AddAnd(sg.circuit.AddNot(vi), sg.circuit.AddNot(yi)));
    match.push_back(eq);
    carry = both;
  }
  sg.circuit.AddAndAll(match);
  return sg;
}

SuccinctGraph SuccinctFromExplicit(const Digraph& g, size_t n) {
  INFLOG_CHECK(g.num_vertices() <= (size_t{1} << n))
      << "graph too large for " << n << " bits";
  SuccinctGraph sg;
  sg.n = n;
  sg.circuit = Circuit(2 * n);
  Circuit& c = sg.circuit;
  // Literal cache: gate for "input i is 1" and "input i is 0".
  std::vector<uint32_t> pos(2 * n), neg(2 * n);
  for (size_t i = 0; i < 2 * n; ++i) {
    pos[i] = c.AddInput(i);
    neg[i] = c.AddNot(pos[i]);
  }
  std::vector<uint32_t> edge_terms;
  for (const auto& [u, v] : g.Edges()) {
    std::vector<uint32_t> conj;
    for (size_t bit = 0; bit < n; ++bit) {
      conj.push_back(((u >> bit) & 1) ? pos[bit] : neg[bit]);
      conj.push_back(((v >> bit) & 1) ? pos[n + bit] : neg[n + bit]);
    }
    edge_terms.push_back(c.AddAndAll(conj));
  }
  if (edge_terms.empty()) {
    // No edges: constant false.
    const uint32_t in0 = c.AddInput(0);
    c.AddAnd(in0, c.AddNot(in0));
  } else {
    c.AddOrAll(edge_terms);
  }
  return sg;
}

SuccinctGraph RandomSuccinctGraph(size_t n, size_t extra_gates, Rng* rng) {
  SuccinctGraph sg;
  sg.n = n;
  sg.circuit = Circuit(2 * n);
  Circuit& c = sg.circuit;
  for (size_t i = 0; i < 2 * n; ++i) c.AddInput(static_cast<uint32_t>(i));
  for (size_t i = 0; i < extra_gates; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng->Uniform(c.num_gates()));
    const uint32_t b = static_cast<uint32_t>(rng->Uniform(c.num_gates()));
    switch (rng->Uniform(3)) {
      case 0:
        c.AddAnd(a, b);
        break;
      case 1:
        c.AddOr(a, b);
        break;
      default:
        c.AddNot(a);
        break;
    }
  }
  return sg;
}

}  // namespace inflog
