// Theorem 4: compiling SUCCINCT 3-COLORING into fixpoint existence.
//
// Given a circuit {(aᵢ,bᵢ,cᵢ)} with 2n inputs presenting a graph on
// {0,1}ⁿ, build the DATALOG¬ program π_SC over the two-element universe
// {0,1}: one nondatabase relation Gtᵢ of arity 2n per gate, with
//
//   AND:  Gtᵢ(x̄,ȳ) ← Gtₐ(x̄,ȳ), Gt_b(x̄,ȳ)
//   OR:   Gtᵢ(x̄,ȳ) ← Gtₐ(x̄,ȳ)   and   Gtᵢ(x̄,ȳ) ← Gt_b(x̄,ȳ)
//   NOT:  Gtᵢ(x̄,ȳ) ← ¬Gtₐ(x̄,ȳ)
//   IN j: Gtᵢ(z₁,...,z_{j-1},1,z_{j+1},...,z₂ₙ) ← .
//
// plus the rules of π_COL with the edge relation E identified with the
// output gate's relation and the colors R/B/G of arity n. In every
// fixpoint the gate relations hold exactly the 2n-tuples on which the
// gate outputs 1 (the completions mirror the circuit bottom-up), so a
// fixpoint exists iff the presented graph is 3-colorable.
//
// The universe is pinned to {0,1} by a database relation Dom = {0,1},
// exactly the paper's "fixing the universe is not a departure" remark.

#ifndef INFLOG_REDUCTIONS_SUCCINCT_H_
#define INFLOG_REDUCTIONS_SUCCINCT_H_

#include <memory>
#include <string>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/reductions/circuit.h"
#include "src/relation/database.h"

namespace inflog {

/// The compiled instance: π_SC plus its two-element database.
struct SuccinctColInstance {
  std::string program_text;
  Program program;
  Database database;
  /// Name of the output gate's relation (the succinct edge relation).
  std::string output_pred;

  SuccinctColInstance(Program p, Database d)
      : program(std::move(p)), database(std::move(d)) {}
};

/// Compiles the succinct graph into π_SC. Fails on malformed circuits.
Result<SuccinctColInstance> BuildSuccinct3Col(
    const SuccinctGraph& graph, std::shared_ptr<SymbolTable> symbols);

/// The n-tuple of bit symbols for vertex `u` (LSB first), matching the
/// input ordering of SuccinctGraph::HasEdge.
Tuple VertexTuple(const SymbolTable& symbols, uint64_t u, size_t n);

/// Reads the coloring of the 2ⁿ vertices out of a π_SC fixpoint
/// (0/1/2 for R/B/G).
Result<std::vector<int>> DecodeSuccinctColoring(
    const SuccinctColInstance& instance, const SuccinctGraph& graph,
    const IdbState& fixpoint);

}  // namespace inflog

#endif  // INFLOG_REDUCTIONS_SUCCINCT_H_
