#include "src/reductions/sat_db.h"

#include "src/ast/parser.h"
#include "src/base/strings.h"

namespace inflog {

std::string PiSatText() {
  return "S(X) :- S(X).\n"
         "Q(X) :- V(X).\n"
         "Q(X) :- !S(X), P(X,Y), S(Y).\n"
         "Q(X) :- !S(X), N(X,Y), !S(Y).\n"
         "T(Z) :- !Q(U), !T(W).\n";
}

Program PiSatProgram(std::shared_ptr<SymbolTable> symbols) {
  auto program = ParseProgram(PiSatText(), std::move(symbols));
  INFLOG_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Database SatToDatabase(const sat::Cnf& cnf,
                       std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  SymbolTable& st = db.symbols();
  std::vector<Value> var_syms(cnf.num_vars);
  for (int32_t i = 0; i < cnf.num_vars; ++i) {
    var_syms[i] = st.Intern(StrCat("v", i));
    INFLOG_CHECK(db.AddFact("V", Tuple{var_syms[i]}).ok());
  }
  // Declare P and N up front: instances without positive (or negative)
  // occurrences still need the relations to exist.
  INFLOG_CHECK(db.DeclareRelation("P", 2).ok());
  INFLOG_CHECK(db.DeclareRelation("N", 2).ok());
  for (size_t j = 0; j < cnf.clauses.size(); ++j) {
    const Value c = db.AddUniverseSymbol(StrCat("c", j));
    for (const sat::Lit& lit : cnf.clauses[j]) {
      INFLOG_CHECK(db.AddFact(lit.negated() ? "N" : "P",
                              Tuple{c, var_syms[lit.var()]})
                       .ok());
    }
  }
  return db;
}

Result<sat::Cnf> DatabaseToSat(const Database& db) {
  INFLOG_ASSIGN_OR_RETURN(const Relation* v_rel, db.GetRelation("V"));
  if (v_rel->arity() != 1) {
    return Status::InvalidArgument("V must be unary");
  }
  // Map variable symbols to dense CNF variables, clause symbols (all
  // non-V universe elements) to dense clause indices.
  sat::Cnf cnf;
  std::vector<int64_t> var_index(db.symbols().size(), -1);
  std::vector<int64_t> clause_index(db.symbols().size(), -1);
  for (size_t i = 0; i < v_rel->size(); ++i) {
    var_index[v_rel->Row(i)[0]] = cnf.NewVar();
  }
  std::vector<sat::Clause> clauses;
  for (Value u : db.universe()) {
    if (var_index[u] >= 0) continue;
    clause_index[u] = static_cast<int64_t>(clauses.size());
    clauses.emplace_back();
  }
  for (const char* rel_name : {"P", "N"}) {
    auto rel = db.GetRelation(rel_name);
    if (!rel.ok()) continue;  // absent occurrence relation = no literals
    if ((*rel)->arity() != 2) {
      return Status::InvalidArgument(StrCat(rel_name, " must be binary"));
    }
    const bool negated = rel_name[0] == 'N';
    for (size_t i = 0; i < (*rel)->size(); ++i) {
      TupleView row = (*rel)->Row(i);
      const int64_t c = clause_index[row[0]];
      const int64_t v = var_index[row[1]];
      if (c < 0 || v < 0) {
        return Status::InvalidArgument(
            StrCat(rel_name, " is not a subset of (A−V) × V"));
      }
      clauses[c].push_back(
          sat::Lit(static_cast<sat::Var>(v), negated));
    }
  }
  cnf.clauses = std::move(clauses);
  return cnf;
}

Result<std::vector<bool>> DecodeAssignment(const Program& pi_sat,
                                           const Database& db,
                                           const sat::Cnf& cnf,
                                           const IdbState& fixpoint) {
  INFLOG_ASSIGN_OR_RETURN(const uint32_t s_pred, pi_sat.FindPredicate("S"));
  const int idb = pi_sat.predicate(s_pred).idb_index;
  if (idb < 0) return Status::Internal("S is not IDB in π_SAT");
  const Relation& s = fixpoint.relations[idb];
  std::vector<bool> assignment(cnf.num_vars, false);
  for (int32_t i = 0; i < cnf.num_vars; ++i) {
    const Value v = db.symbols().Find(StrCat("v", i));
    if (v == kNoValue) {
      return Status::InvalidArgument(StrCat("variable v", i, " missing"));
    }
    assignment[i] = s.Contains(Tuple{v});
  }
  return assignment;
}

Result<IdbState> EncodeAssignment(const Program& pi_sat, const Database& db,
                                  const sat::Cnf& cnf,
                                  const std::vector<bool>& assignment) {
  if (assignment.size() != static_cast<size_t>(cnf.num_vars)) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  IdbState state = MakeEmptyIdbState(pi_sat);
  INFLOG_ASSIGN_OR_RETURN(const uint32_t s_pred, pi_sat.FindPredicate("S"));
  INFLOG_ASSIGN_OR_RETURN(const uint32_t q_pred, pi_sat.FindPredicate("Q"));
  Relation& s = state.relations[pi_sat.predicate(s_pred).idb_index];
  Relation& q = state.relations[pi_sat.predicate(q_pred).idb_index];
  for (int32_t i = 0; i < cnf.num_vars; ++i) {
    if (!assignment[i]) continue;
    const Value v = db.symbols().Find(StrCat("v", i));
    if (v == kNoValue) {
      return Status::InvalidArgument(StrCat("variable v", i, " missing"));
    }
    s.Insert(Tuple{v});
  }
  for (Value u : db.universe()) q.Insert(Tuple{u});
  // T stays empty.
  return state;
}

}  // namespace inflog
