// Boolean circuits and succinctly represented graphs (Theorem 4).
//
// A circuit is a sequence of gates (aᵢ, bᵢ, cᵢ) with aᵢ ∈ {IN, AND, OR,
// NOT} and gate inputs referring to earlier gates, exactly as in the
// paper. A circuit with 2n inputs presents a graph on {0,1}ⁿ: the inputs
// are the bit strings of two vertices and the output says whether they are
// adjacent. SUCCINCT 3-COLORING — is the presented graph 3-colorable? —
// is NEXP-complete (Lemma 2), which is how the paper shows the
// expression-complexity version of fixpoint existence is NEXP-complete.

#ifndef INFLOG_REDUCTIONS_CIRCUIT_H_
#define INFLOG_REDUCTIONS_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/graphs/digraph.h"

namespace inflog {

/// One gate. Inputs `a`, `b` index earlier gates (NOT uses a == b; IN uses
/// `input` instead).
struct Gate {
  enum class Kind : uint8_t { kIn, kAnd, kOr, kNot };
  Kind kind;
  uint32_t a = 0;      ///< first input gate (kAnd/kOr/kNot)
  uint32_t b = 0;      ///< second input gate (kAnd/kOr); == a for kNot
  uint32_t input = 0;  ///< input position (kIn)
};

/// A Boolean circuit; the last gate is the output.
class Circuit {
 public:
  explicit Circuit(size_t num_inputs) : num_inputs_(num_inputs) {}

  /// Appends a gate reading input position `pos`; returns its index.
  uint32_t AddInput(uint32_t pos);
  /// Appends x ∧ y over gate indices; returns its index.
  uint32_t AddAnd(uint32_t x, uint32_t y);
  /// Appends x ∨ y; returns its index.
  uint32_t AddOr(uint32_t x, uint32_t y);
  /// Appends ¬x; returns its index.
  uint32_t AddNot(uint32_t x);

  /// Convenience folds; both require at least one operand.
  uint32_t AddAndAll(const std::vector<uint32_t>& xs);
  uint32_t AddOrAll(const std::vector<uint32_t>& xs);

  size_t num_inputs() const { return num_inputs_; }
  size_t num_gates() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }

  /// Evaluates the circuit: the value of the last gate on `inputs`
  /// (size num_inputs).
  bool Eval(const std::vector<bool>& inputs) const;

  /// Per-gate values (for the π_SC correspondence tests).
  std::vector<bool> EvalAllGates(const std::vector<bool>& inputs) const;

  /// Structural well-formedness: nonempty, inputs in range, acyclic by
  /// construction.
  Status Validate() const;

 private:
  size_t num_inputs_;
  std::vector<Gate> gates_;
};

/// A graph on {0,1}ⁿ presented by a circuit with 2n inputs. Input
/// positions 0..n-1 carry the first vertex's bits (LSB first), n..2n-1 the
/// second's.
struct SuccinctGraph {
  size_t n = 0;  ///< vertices are {0,1}ⁿ
  Circuit circuit{0};

  size_t num_vertices() const { return size_t{1} << n; }

  /// Adjacency test via circuit evaluation.
  bool HasEdge(uint64_t u, uint64_t v) const;

  /// Materializes all 2ⁿ vertices and 2²ⁿ adjacency queries — the
  /// exponential blowup Theorem 4 is about.
  Digraph Expand() const;
};

// --- Succinct graph families used by the experiments. ---

/// K_{2ⁿ}: edge iff u ≠ v (3-colorable only for n ≤ 1).
SuccinctGraph SuccinctCompleteGraph(size_t n);

/// Hypercube Qₙ: edge iff u, v differ in exactly one bit (bipartite, so
/// always 3-colorable).
SuccinctGraph SuccinctHypercube(size_t n);

/// Directed cycle C_{2ⁿ}: edge iff v = u + 1 (mod 2ⁿ) — an even cycle,
/// 2-colorable.
SuccinctGraph SuccinctCycle(size_t n);

/// Encodes an explicit graph (≤ 2ⁿ vertices) as a circuit in DNF over its
/// edge list — the generic explicit→succinct embedding.
SuccinctGraph SuccinctFromExplicit(const Digraph& g, size_t n);

/// Random circuit over 2n inputs with `extra_gates` random AND/OR/NOT
/// gates stacked on the inputs.
SuccinctGraph RandomSuccinctGraph(size_t n, size_t extra_gates, Rng* rng);

}  // namespace inflog

#endif  // INFLOG_REDUCTIONS_CIRCUIT_H_
