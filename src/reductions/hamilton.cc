#include "src/reductions/hamilton.h"

#include "src/base/strings.h"

namespace inflog {

Result<sat::Cnf> HamiltonToCnf(const Digraph& g) {
  const size_t n = g.num_vertices();
  if (n < 2) {
    return Status::InvalidArgument(
        "Hamilton encoding needs at least two vertices");
  }
  sat::Cnf cnf;
  // x_{v,p}: vertex v at position p.
  auto x = [&](size_t v, size_t p) {
    return static_cast<sat::Var>(v * n + p);
  };
  for (size_t i = 0; i < n * n; ++i) cnf.NewVar();

  // Every position holds some vertex.
  for (size_t p = 0; p < n; ++p) {
    sat::Clause c;
    for (size_t v = 0; v < n; ++v) c.push_back(sat::Pos(x(v, p)));
    cnf.AddClause(c);
  }
  // No vertex occupies two positions; no position holds two vertices.
  for (size_t v = 0; v < n; ++v) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        cnf.AddClause({sat::Neg(x(v, p)), sat::Neg(x(v, q))});
        cnf.AddClause({sat::Neg(x(p, v)), sat::Neg(x(q, v))});
      }
    }
  }
  // Consecutive positions must be adjacent (including the wrap-around).
  for (size_t p = 0; p < n; ++p) {
    const size_t next = (p + 1) % n;
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        if (u == v || g.HasEdge(u, v)) continue;
        cnf.AddClause({sat::Neg(x(u, p)), sat::Neg(x(v, next))});
      }
      // A vertex can never follow itself (u at p and u at next).
      if (n > 1) {
        cnf.AddClause({sat::Neg(x(u, p)), sat::Neg(x(u, next))});
      }
    }
  }
  // Normalize rotations: vertex 0 sits at position 0, giving a bijection
  // between models and directed Hamilton circuits.
  cnf.AddClause({sat::Pos(x(0, 0))});
  return cnf;
}

Result<std::vector<uint32_t>> DecodeHamiltonCircuit(
    const Digraph& g, const std::vector<bool>& model) {
  const size_t n = g.num_vertices();
  if (model.size() < n * n) {
    return Status::InvalidArgument("model too small for the encoding");
  }
  std::vector<uint32_t> order(n, 0);
  for (size_t p = 0; p < n; ++p) {
    int found = -1;
    for (size_t v = 0; v < n; ++v) {
      if (model[v * n + p]) {
        if (found >= 0) {
          return Status::InvalidArgument(
              StrCat("two vertices at position ", p));
        }
        found = static_cast<int>(v);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(StrCat("no vertex at position ", p));
    }
    order[p] = static_cast<uint32_t>(found);
  }
  for (size_t p = 0; p < n; ++p) {
    if (!g.HasEdge(order[p], order[(p + 1) % n])) {
      return Status::InvalidArgument(
          StrCat("positions ", p, "->", (p + 1) % n, " not an edge"));
    }
  }
  return order;
}

}  // namespace inflog
