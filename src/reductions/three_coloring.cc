#include "src/reductions/three_coloring.h"

#include "src/ast/parser.h"
#include "src/base/strings.h"

namespace inflog {

std::string PiColText() {
  return "R(X) :- R(X).\n"
         "B(X) :- B(X).\n"
         "G(X) :- G(X).\n"
         "P(X) :- E(X,Y), R(X), R(Y).\n"
         "P(X) :- E(X,Y), B(X), B(Y).\n"
         "P(X) :- E(X,Y), G(X), G(Y).\n"
         "P(X) :- G(X), B(X).\n"
         "P(X) :- B(X), R(X).\n"
         "P(X) :- R(X), G(X).\n"
         "P(X) :- !R(X), !B(X), !G(X).\n"
         "T(Z) :- P(X), !T(W).\n";
}

Program PiColProgram(std::shared_ptr<SymbolTable> symbols) {
  auto program = ParseProgram(PiColText(), std::move(symbols));
  INFLOG_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Result<std::vector<int>> DecodeColoring(const Program& pi_col,
                                        const Database& db,
                                        size_t num_vertices,
                                        const IdbState& fixpoint) {
  const char* color_preds[] = {"R", "B", "G"};
  std::vector<int> colors(num_vertices, -1);
  for (int c = 0; c < 3; ++c) {
    INFLOG_ASSIGN_OR_RETURN(const uint32_t pred,
                            pi_col.FindPredicate(color_preds[c]));
    const Relation& rel = fixpoint.relations[pi_col.predicate(pred).idb_index];
    for (size_t v = 0; v < num_vertices; ++v) {
      const Value sym = db.symbols().Find(std::to_string(v));
      if (sym == kNoValue) {
        return Status::InvalidArgument(
            StrCat("vertex ", v, " missing from the database"));
      }
      if (!rel.Contains(Tuple{sym})) continue;
      if (colors[v] >= 0) {
        return Status::InvalidArgument(
            StrCat("vertex ", v, " is doubly colored"));
      }
      colors[v] = c;
    }
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    if (colors[v] < 0) {
      return Status::InvalidArgument(StrCat("vertex ", v, " is uncolored"));
    }
  }
  return colors;
}

bool IsProperColoring(const Digraph& g, const std::vector<int>& colors) {
  if (colors.size() != g.num_vertices()) return false;
  for (int c : colors) {
    if (c < 0 || c > 2) return false;
  }
  for (const auto& [u, v] : g.Edges()) {
    if (colors[u] == colors[v]) return false;
  }
  return true;
}

}  // namespace inflog
