// Example 1 of the paper: the correspondence between SATISFIABILITY
// instances and databases over the vocabulary σ = (V, P, N), plus the
// fixed DATALOG¬ program π_SAT whose fixpoints on D(I) are in bijection
// with the satisfying assignments of I.
//
//   universe  A  =  variables ∪ clauses
//   V(v)            v is a variable
//   P(c, v)         v occurs positively in clause c
//   N(c, v)         v occurs negatively in clause c
//
//   π_SAT:   S(x) ← S(x)
//            Q(x) ← V(x)
//            Q(x) ← ¬S(x), P(x,y), S(y)
//            Q(x) ← ¬S(x), N(x,y), ¬S(y)
//            T(z) ← ¬Q(u), ¬T(w)
//
// In a fixpoint, S ⊆ V encodes a satisfying assignment, Q = A certifies
// that every clause is satisfied, and T = ∅ pacifies the toggle rule.
// This is Theorem 1 instantiated at SAT and the engine of Theorem 2
// (unique fixpoint ⇔ unique satisfying assignment, US-completeness).

#ifndef INFLOG_REDUCTIONS_SAT_DB_H_
#define INFLOG_REDUCTIONS_SAT_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/relation/database.h"
#include "src/sat/cnf.h"

namespace inflog {

/// The fixed program π_SAT in concrete syntax.
std::string PiSatText();

/// Parses π_SAT over `symbols`.
Program PiSatProgram(std::shared_ptr<SymbolTable> symbols);

/// D(I): encodes a CNF instance as a database over (V, P, N). Variable i
/// becomes constant "v<i>", clause j becomes "c<j>".
Database SatToDatabase(const sat::Cnf& cnf,
                       std::shared_ptr<SymbolTable> symbols);

/// I(D): decodes a database over (V, P, N) back into a CNF instance.
/// Inverse of SatToDatabase on its image; accepts any database in the
/// class 𝒴 (V ⊆ A, P,N ⊆ (A−V)×V).
Result<sat::Cnf> DatabaseToSat(const Database& db);

/// Reads the assignment out of a π_SAT fixpoint: assignment[i] is true
/// iff S contains v<i>.
Result<std::vector<bool>> DecodeAssignment(const Program& pi_sat,
                                           const Database& db,
                                           const sat::Cnf& cnf,
                                           const IdbState& fixpoint);

/// Builds the fixpoint (S = assignment, Q = A, T = ∅) that a satisfying
/// `assignment` induces — the forward direction of the Theorem 1 proof.
Result<IdbState> EncodeAssignment(const Program& pi_sat, const Database& db,
                                  const sat::Cnf& cnf,
                                  const std::vector<bool>& assignment);

}  // namespace inflog

#endif  // INFLOG_REDUCTIONS_SAT_DB_H_
