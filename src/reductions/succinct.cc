#include "src/reductions/succinct.h"

#include "src/ast/parser.h"
#include "src/base/strings.h"

namespace inflog {
namespace {

/// "P(V1,...,Vk)" with the variable stem, e.g. Vars("Gt3", "A", 6).
std::string Atom(std::string_view pred, std::string_view stem, size_t k) {
  std::string out = StrCat(pred, "(");
  for (size_t i = 1; i <= k; ++i) {
    if (i > 1) out += ",";
    out += StrCat(stem, i);
  }
  return out + ")";
}

/// Atom over the concatenation of two variable stems (x̄, ȳ).
std::string Atom2(std::string_view pred, std::string_view stem_x,
                  std::string_view stem_y, size_t n) {
  std::string out = StrCat(pred, "(");
  for (size_t i = 1; i <= n; ++i) out += StrCat(i > 1 ? "," : "", stem_x, i);
  for (size_t i = 1; i <= n; ++i) out += StrCat(",", stem_y, i);
  return out + ")";
}

}  // namespace

Result<SuccinctColInstance> BuildSuccinct3Col(
    const SuccinctGraph& graph, std::shared_ptr<SymbolTable> symbols) {
  INFLOG_RETURN_IF_ERROR(graph.circuit.Validate());
  const size_t n = graph.n;
  if (n == 0) {
    return Status::InvalidArgument("succinct graph needs n >= 1");
  }
  if (graph.circuit.num_inputs() != 2 * n) {
    return Status::InvalidArgument(
        StrCat("circuit must have 2n = ", 2 * n, " inputs, has ",
               graph.circuit.num_inputs()));
  }

  std::string text;
  const auto& gates = graph.circuit.gates();
  auto gate_pred = [](size_t i) { return StrCat("Gt", i); };

  // One relation of arity 2n per gate.
  for (size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind) {
      case Gate::Kind::kIn: {
        // Head with the constant 1 at the gate's input position; all other
        // coordinates are free head variables over the universe {0,1}.
        std::string head = StrCat(gate_pred(i), "(");
        for (size_t pos = 0; pos < 2 * n; ++pos) {
          if (pos > 0) head += ",";
          head += (pos == g.input) ? "1" : StrCat("A", pos + 1);
        }
        text += head + ").\n";
        break;
      }
      case Gate::Kind::kAnd:
        text += StrCat(Atom(gate_pred(i), "A", 2 * n), " :- ",
                       Atom(gate_pred(g.a), "A", 2 * n), ", ",
                       Atom(gate_pred(g.b), "A", 2 * n), ".\n");
        break;
      case Gate::Kind::kOr:
        text += StrCat(Atom(gate_pred(i), "A", 2 * n), " :- ",
                       Atom(gate_pred(g.a), "A", 2 * n), ".\n");
        text += StrCat(Atom(gate_pred(i), "A", 2 * n), " :- ",
                       Atom(gate_pred(g.b), "A", 2 * n), ".\n");
        break;
      case Gate::Kind::kNot:
        text += StrCat(Atom(gate_pred(i), "A", 2 * n), " :- !",
                       Atom(gate_pred(g.a), "A", 2 * n), ".\n");
        break;
    }
  }

  // π_COL with E identified with the output gate and n-tuple vertices.
  const std::string e = gate_pred(gates.size() - 1);
  const std::string rx = Atom("R", "X", n), bx = Atom("B", "X", n),
                    gx = Atom("G", "X", n);
  const std::string ry = Atom("R", "Y", n), by = Atom("B", "Y", n),
                    gy = Atom("G", "Y", n);
  const std::string px = Atom("P", "X", n);
  const std::string exy = Atom2(e, "X", "Y", n);
  text += StrCat(rx, " :- ", rx, ".\n");
  text += StrCat(bx, " :- ", bx, ".\n");
  text += StrCat(gx, " :- ", gx, ".\n");
  text += StrCat(px, " :- ", exy, ", ", rx, ", ", ry, ".\n");
  text += StrCat(px, " :- ", exy, ", ", bx, ", ", by, ".\n");
  text += StrCat(px, " :- ", exy, ", ", gx, ", ", gy, ".\n");
  text += StrCat(px, " :- ", gx, ", ", bx, ".\n");
  text += StrCat(px, " :- ", bx, ", ", rx, ".\n");
  text += StrCat(px, " :- ", rx, ", ", gx, ".\n");
  text += StrCat(px, " :- !", rx, ", !", bx, ", !", gx, ".\n");
  text += StrCat(Atom("T", "Z", n), " :- ", px, ", !",
                 Atom("T", "W", n), ".\n");

  INFLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, symbols));

  // The two-element universe, pinned by Dom = {0,1}.
  Database db(std::move(symbols));
  INFLOG_RETURN_IF_ERROR(
      db.AddFact("Dom", Tuple{db.symbols().Intern("0")}));
  INFLOG_RETURN_IF_ERROR(
      db.AddFact("Dom", Tuple{db.symbols().Intern("1")}));

  SuccinctColInstance instance(std::move(program), std::move(db));
  instance.program_text = std::move(text);
  instance.output_pred = e;
  return instance;
}

Tuple VertexTuple(const SymbolTable& symbols, uint64_t u, size_t n) {
  const Value zero = symbols.Find("0");
  const Value one = symbols.Find("1");
  INFLOG_CHECK(zero != kNoValue && one != kNoValue)
      << "bit symbols not interned";
  Tuple t(n);
  for (size_t bit = 0; bit < n; ++bit) {
    t[bit] = ((u >> bit) & 1) ? one : zero;
  }
  return t;
}

Result<std::vector<int>> DecodeSuccinctColoring(
    const SuccinctColInstance& instance, const SuccinctGraph& graph,
    const IdbState& fixpoint) {
  const Program& p = instance.program;
  const SymbolTable& symbols = instance.database.symbols();
  const size_t count = graph.num_vertices();
  std::vector<int> colors(count, -1);
  const char* color_preds[] = {"R", "B", "G"};
  for (int c = 0; c < 3; ++c) {
    INFLOG_ASSIGN_OR_RETURN(const uint32_t pred,
                            p.FindPredicate(color_preds[c]));
    const Relation& rel = fixpoint.relations[p.predicate(pred).idb_index];
    for (uint64_t u = 0; u < count; ++u) {
      if (!rel.Contains(VertexTuple(symbols, u, graph.n))) continue;
      if (colors[u] >= 0) {
        return Status::InvalidArgument(
            StrCat("vertex ", u, " is doubly colored"));
      }
      colors[u] = c;
    }
  }
  for (uint64_t u = 0; u < count; ++u) {
    if (colors[u] < 0) {
      return Status::InvalidArgument(StrCat("vertex ", u, " is uncolored"));
    }
  }
  return colors;
}

}  // namespace inflog
