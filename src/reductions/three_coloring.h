// Lemma 1 of the paper: the fixed DATALOG¬ program π_COL that has a
// fixpoint on a database E exactly when the graph E represents is
// 3-colorable.
//
//   R(x) ← R(x)   B(x) ← B(x)   G(x) ← G(x)      (choice of coloring)
//   P(x) ← E(x,y), R(x), R(y)   (+B, +G)         (monochrome edges)
//   P(x) ← G(x), B(x)           (+BR, +RG)       (doubly colored nodes)
//   P(x) ← ¬R(x), ¬B(x), ¬G(x)                   (uncolored nodes)
//   T(z) ← P(x), ¬T(w)                           (guarded toggle)
//
// A fixpoint exists iff some choice of (R, B, G) leaves P empty — iff the
// graph is 3-colorable. This program is the explicit half of Theorem 4;
// src/reductions/succinct.h lifts it to circuit-presented graphs.

#ifndef INFLOG_REDUCTIONS_THREE_COLORING_H_
#define INFLOG_REDUCTIONS_THREE_COLORING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/graphs/digraph.h"
#include "src/relation/database.h"

namespace inflog {

/// The fixed program π_COL in concrete syntax (E is the EDB).
std::string PiColText();

/// Parses π_COL over `symbols`.
Program PiColProgram(std::shared_ptr<SymbolTable> symbols);

/// Reads the coloring out of a π_COL fixpoint: colors[v] ∈ {0,1,2} for
/// R/B/G. Fails if some vertex is uncolored or doubly colored (cannot
/// happen in a genuine fixpoint).
Result<std::vector<int>> DecodeColoring(const Program& pi_col,
                                        const Database& db, size_t num_vertices,
                                        const IdbState& fixpoint);

/// Checks that `colors` is a proper 3-coloring of `g` (edge directions
/// ignored).
bool IsProperColoring(const Digraph& g, const std::vector<int>& colors);

}  // namespace inflog

#endif  // INFLOG_REDUCTIONS_THREE_COLORING_H_
