// Hamilton circuits through the π_SAT pipeline.
//
// The paper names "does a graph have a unique Hamilton circuit?" as a
// typical member of US (Theorem 2's class). This module gives that claim
// an executable form: encode Hamiltonicity as CNF with a position-based
// encoding normalized so that satisfying assignments correspond 1:1 to
// directed Hamilton circuits (vertex 0 pinned to position 0); compose
// with Example 1's D(I) encoding and π_SAT, and fixpoints of (π_SAT,
// D(ham(G))) correspond 1:1 to the Hamilton circuits of G. Uniqueness of
// the circuit becomes uniqueness of the fixpoint.

#ifndef INFLOG_REDUCTIONS_HAMILTON_H_
#define INFLOG_REDUCTIONS_HAMILTON_H_

#include "src/base/result.h"
#include "src/graphs/digraph.h"
#include "src/sat/cnf.h"

namespace inflog {

/// CNF whose models are exactly the directed Hamilton circuits of `g`
/// (vertex 0 fixed at position 0). Variable x_{v,p} = "vertex v sits at
/// position p"; index v * n + p.
Result<sat::Cnf> HamiltonToCnf(const Digraph& g);

/// Reads the circuit (vertex at each position) out of a model of
/// HamiltonToCnf(g).
Result<std::vector<uint32_t>> DecodeHamiltonCircuit(
    const Digraph& g, const std::vector<bool>& model);

}  // namespace inflog

#endif  // INFLOG_REDUCTIONS_HAMILTON_H_
