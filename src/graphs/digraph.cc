#include "src/graphs/digraph.h"

#include <algorithm>
#include <deque>

#include "src/base/strings.h"

namespace inflog {

bool Digraph::AddEdge(size_t u, size_t v) {
  INFLOG_CHECK(u < adj_.size() && v < adj_.size());
  auto& out = adj_[u];
  if (std::find(out.begin(), out.end(), static_cast<uint32_t>(v)) !=
      out.end()) {
    return false;
  }
  out.push_back(static_cast<uint32_t>(v));
  ++num_edges_;
  return true;
}

bool Digraph::HasEdge(size_t u, size_t v) const {
  INFLOG_CHECK(u < adj_.size() && v < adj_.size());
  const auto& out = adj_[u];
  return std::find(out.begin(), out.end(), static_cast<uint32_t>(v)) !=
         out.end();
}

std::vector<std::pair<uint32_t, uint32_t>> Digraph::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges_);
  for (uint32_t u = 0; u < adj_.size(); ++u) {
    for (uint32_t v : adj_[u]) edges.emplace_back(u, v);
  }
  return edges;
}

std::string Digraph::ToString() const {
  std::string out = StrCat("n=", num_vertices(), " edges=[");
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) out += ",";
    first = false;
    out += StrCat("(", u, ",", v, ")");
  }
  return out + "]";
}

Digraph PathGraph(size_t n) {
  Digraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Digraph CycleGraph(size_t n) {
  INFLOG_CHECK(n >= 1);
  Digraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  g.AddEdge(n - 1, 0);
  return g;
}

Digraph DisjointCycles(size_t k, size_t len) {
  INFLOG_CHECK(len >= 1);
  Digraph g(k * len);
  for (size_t c = 0; c < k; ++c) {
    const size_t base = c * len;
    for (size_t i = 0; i + 1 < len; ++i) g.AddEdge(base + i, base + i + 1);
    g.AddEdge(base + len - 1, base);
  }
  return g;
}

Digraph CompleteGraph(size_t n) {
  Digraph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  return g;
}

Digraph RandomDigraph(size_t n, double p, Rng* rng) {
  Digraph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (u != v && rng->Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Digraph Hypercube(size_t d) {
  const size_t n = size_t{1} << d;
  Digraph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t bit = 0; bit < d; ++bit) {
      g.AddEdge(u, u ^ (size_t{1} << bit));
    }
  }
  return g;
}

std::vector<std::vector<int>> BfsAllPairs(const Digraph& g) {
  const size_t n = g.num_vertices();
  std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
  for (size_t s = 0; s < n; ++s) {
    dist[s][s] = 0;
    std::deque<uint32_t> queue{static_cast<uint32_t>(s)};
    while (!queue.empty()) {
      const uint32_t u = queue.front();
      queue.pop_front();
      for (uint32_t v : g.Successors(u)) {
        if (dist[s][v] < 0) {
          dist[s][v] = dist[s][u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

std::vector<std::vector<bool>> TransitiveClosure(const Digraph& g) {
  const size_t n = g.num_vertices();
  std::vector<std::vector<bool>> tc(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : g.Edges()) tc[u][v] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!tc[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (tc[k][j]) tc[i][j] = true;
      }
    }
  }
  return tc;
}

namespace {

bool ColorBacktrack(const std::vector<std::vector<bool>>& adjacent,
                    std::vector<int>* colors, size_t v) {
  const size_t n = adjacent.size();
  if (v == n) return true;
  for (int c = 0; c < 3; ++c) {
    bool ok = true;
    for (size_t u = 0; u < v && ok; ++u) {
      if (adjacent[u][v] && (*colors)[u] == c) ok = false;
    }
    if (adjacent[v][v]) ok = false;  // self-loop: no proper coloring
    if (!ok) continue;
    (*colors)[v] = c;
    if (ColorBacktrack(adjacent, colors, v + 1)) return true;
  }
  (*colors)[v] = -1;
  return false;
}

}  // namespace

bool IsThreeColorable(const Digraph& g) {
  const size_t n = g.num_vertices();
  std::vector<std::vector<bool>> adjacent(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : g.Edges()) {
    adjacent[u][v] = true;
    adjacent[v][u] = true;
  }
  std::vector<int> colors(n, -1);
  return ColorBacktrack(adjacent, &colors, 0);
}

namespace {

uint64_t HamiltonBacktrack(const Digraph& g, std::vector<bool>* used,
                           size_t current, size_t visited) {
  const size_t n = g.num_vertices();
  if (visited == n) return g.HasEdge(current, 0) ? 1 : 0;
  uint64_t count = 0;
  for (uint32_t next : g.Successors(current)) {
    if ((*used)[next]) continue;
    (*used)[next] = true;
    count += HamiltonBacktrack(g, used, next, visited + 1);
    (*used)[next] = false;
  }
  return count;
}

}  // namespace

uint64_t CountHamiltonCircuits(const Digraph& g) {
  const size_t n = g.num_vertices();
  if (n == 0) return 0;
  if (n == 1) return g.HasEdge(0, 0) ? 1 : 0;
  std::vector<bool> used(n, false);
  used[0] = true;
  return HamiltonBacktrack(g, &used, 0, 1);
}

void GraphToDatabase(const Digraph& g, std::string_view edge_relation,
                     Database* db) {
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    db->AddUniverseInt(static_cast<int64_t>(v));
  }
  for (const auto& [u, v] : g.Edges()) {
    const Tuple tuple{db->symbols().InternInt(u), db->symbols().InternInt(v)};
    INFLOG_CHECK(db->AddFact(edge_relation, tuple).ok());
  }
  if (!db->HasRelation(edge_relation)) {
    INFLOG_CHECK(db->DeclareRelation(edge_relation, 2).ok());
  }
}

Result<Digraph> GraphFromDatabase(const Database& db,
                                  std::string_view edge_relation) {
  const size_t n = db.universe().size();
  // Map universe symbols "0".."n-1" back to indices.
  std::vector<int64_t> index_of(db.symbols().size(), -1);
  for (size_t i = 0; i < n; ++i) {
    const std::string name = std::to_string(i);
    const Value v = db.symbols().Find(name);
    if (v == kNoValue || !db.InUniverse(v)) {
      return Status::InvalidArgument(
          StrCat("universe is not the decimal range 0..", n - 1));
    }
    index_of[v] = static_cast<int64_t>(i);
  }
  Digraph g(n);
  INFLOG_ASSIGN_OR_RETURN(const Relation* rel,
                          db.GetRelation(edge_relation));
  if (rel->arity() != 2) {
    return Status::InvalidArgument("edge relation must be binary");
  }
  for (size_t r = 0; r < rel->size(); ++r) {
    TupleView row = rel->Row(r);
    const int64_t u = index_of[row[0]];
    const int64_t v = index_of[row[1]];
    if (u < 0 || v < 0) {
      return Status::InvalidArgument("edge endpoint outside the universe");
    }
    g.AddEdge(static_cast<size_t>(u), static_cast<size_t>(v));
  }
  return g;
}

}  // namespace inflog
