// Digraph: the finite directed graphs the paper's examples live on.
//
// Vertices are 0..n-1. Conversions to/from the relational representation
// (a binary EDB relation E over vertex symbols) connect the graph world to
// the DATALOG¬ world; the generators produce the paper's families (paths
// Lₙ, cycles Cₙ, disjoint cycle unions Gₙ) plus standard test fodder; the
// oracles (BFS distances, transitive closure, 3-colorability, Hamilton
// circuits) are the independent ground truth the reductions are checked
// against.

#ifndef INFLOG_GRAPHS_DIGRAPH_H_
#define INFLOG_GRAPHS_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/relation/database.h"

namespace inflog {

/// A directed graph on vertices 0..n-1 (no multi-edges).
class Digraph {
 public:
  explicit Digraph(size_t num_vertices) : adj_(num_vertices) {}

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Adds edge u→v if absent; returns true when added.
  bool AddEdge(size_t u, size_t v);

  bool HasEdge(size_t u, size_t v) const;

  /// Out-neighbors of u.
  const std::vector<uint32_t>& Successors(size_t u) const {
    INFLOG_CHECK(u < adj_.size());
    return adj_[u];
  }

  /// All edges as (u, v) pairs, ordered by u then insertion.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  /// Renders "n=3 edges=[(0,1),(1,2)]".
  std::string ToString() const;

 private:
  std::vector<std::vector<uint32_t>> adj_;
  size_t num_edges_ = 0;
};

// --- Generators (the paper's families and standard test graphs). ---

/// The directed path Lₙ: vertices 1..n as 0..n-1, edges i→i+1.
Digraph PathGraph(size_t n);

/// The directed cycle Cₙ: edges i→i+1 and n-1→0.
Digraph CycleGraph(size_t n);

/// Gₖ of the §2 example: k disjoint copies of the cycle C_len (the paper
/// uses len = 4; 2ᵏ pairwise-incomparable fixpoints of π₁ live here).
Digraph DisjointCycles(size_t k, size_t len);

/// The complete digraph Kₙ (all ordered pairs u ≠ v).
Digraph CompleteGraph(size_t n);

/// Erdős–Rényi digraph: each ordered pair u ≠ v is an edge with
/// probability p (deterministic under `rng`).
Digraph RandomDigraph(size_t n, double p, Rng* rng);

/// Undirected hypercube Q_d on 2^d vertices, both edge directions.
Digraph Hypercube(size_t d);

// --- Oracles. ---

/// All-pairs shortest path lengths by BFS; dist[u][v] = -1 when v is
/// unreachable from u, 0 on the diagonal.
std::vector<std::vector<int>> BfsAllPairs(const Digraph& g);

/// Transitive closure: tc[u][v] iff there is a nonempty path u→v.
std::vector<std::vector<bool>> TransitiveClosure(const Digraph& g);

/// Ignores edge directions and decides proper 3-colorability by
/// backtracking. Self-loops make a graph uncolorable.
bool IsThreeColorable(const Digraph& g);

/// Counts directed Hamilton circuits (up to rotation, fixing vertex 0 as
/// the start). Exponential; for small graphs only.
uint64_t CountHamiltonCircuits(const Digraph& g);

// --- Relational representation. ---

/// Writes the graph into `db` as facts E(u, v), vertex i named "i". Adds
/// every vertex to the universe (isolated vertices included).
void GraphToDatabase(const Digraph& g, std::string_view edge_relation,
                     Database* db);

/// Reads a digraph back from a binary relation whose constants are decimal
/// vertex names 0..n-1 (n = universe size).
Result<Digraph> GraphFromDatabase(const Database& db,
                                  std::string_view edge_relation);

}  // namespace inflog

#endif  // INFLOG_GRAPHS_DIGRAPH_H_
