#include "src/logic/eval.h"

#include "src/base/strings.h"

namespace inflog {
namespace logic {
namespace {

class Evaluator {
 public:
  explicit Evaluator(const FoModel& model)
      : model_(model), universe_(model.UniverseOrDefault()) {}

  Result<bool> Eval(const FormulaPtr& f, FoBinding* binding) {
    switch (f->kind) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom: {
        INFLOG_ASSIGN_OR_RETURN(const Relation* rel, Resolve(f->pred));
        if (rel->arity() != f->args.size()) {
          return Status::InvalidArgument(
              StrCat("atom ", f->pred, " has ", f->args.size(),
                     " args, relation has arity ", rel->arity()));
        }
        Tuple tuple;
        tuple.reserve(f->args.size());
        for (const FoTerm& t : f->args) {
          INFLOG_ASSIGN_OR_RETURN(const Value v, TermValue(t, *binding));
          tuple.push_back(v);
        }
        return rel->Contains(tuple);
      }
      case Formula::Kind::kEq: {
        INFLOG_ASSIGN_OR_RETURN(const Value a, TermValue(f->args[0], *binding));
        INFLOG_ASSIGN_OR_RETURN(const Value b, TermValue(f->args[1], *binding));
        return a == b;
      }
      case Formula::Kind::kNot: {
        INFLOG_ASSIGN_OR_RETURN(const bool v, Eval(f->children[0], binding));
        return !v;
      }
      case Formula::Kind::kAnd:
        for (const FormulaPtr& c : f->children) {
          INFLOG_ASSIGN_OR_RETURN(const bool v, Eval(c, binding));
          if (!v) return false;
        }
        return true;
      case Formula::Kind::kOr:
        for (const FormulaPtr& c : f->children) {
          INFLOG_ASSIGN_OR_RETURN(const bool v, Eval(c, binding));
          if (v) return true;
        }
        return false;
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        const bool is_exists = f->kind == Formula::Kind::kExists;
        return EvalQuantifier(f, binding, 0, is_exists);
      }
    }
    return Status::Internal("bad formula kind");
  }

 private:
  Result<bool> EvalQuantifier(const FormulaPtr& f, FoBinding* binding,
                              size_t var_index, bool is_exists) {
    if (var_index == f->vars.size()) {
      return Eval(f->children[0], binding);
    }
    const std::string& var = f->vars[var_index];
    // Shadowing: remember and restore any outer binding of this name.
    auto it = binding->find(var);
    const bool had = it != binding->end();
    const Value saved = had ? it->second : kNoValue;
    for (Value v : universe_) {
      (*binding)[var] = v;
      INFLOG_ASSIGN_OR_RETURN(
          const bool result, EvalQuantifier(f, binding, var_index + 1,
                                            is_exists));
      if (result == is_exists) {
        RestoreBinding(binding, var, had, saved);
        return is_exists;
      }
    }
    RestoreBinding(binding, var, had, saved);
    return !is_exists;
  }

  static void RestoreBinding(FoBinding* binding, const std::string& var,
                             bool had, Value saved) {
    if (had) {
      (*binding)[var] = saved;
    } else {
      binding->erase(var);
    }
  }

  Result<const Relation*> Resolve(const std::string& pred) {
    auto it = model_.extra.find(pred);
    if (it != model_.extra.end()) return it->second;
    return model_.db->GetRelation(pred);
  }

  Result<Value> TermValue(const FoTerm& t, const FoBinding& binding) {
    if (t.is_var) {
      auto it = binding.find(t.name);
      if (it == binding.end()) {
        return Status::InvalidArgument(
            StrCat("unbound variable ", t.name));
      }
      return it->second;
    }
    const Value v = model_.db->symbols().Find(t.name);
    if (v == kNoValue) {
      return Status::InvalidArgument(StrCat("unknown constant ", t.name));
    }
    return v;
  }

  const FoModel& model_;
  std::vector<Value> universe_;
};

}  // namespace

Result<bool> EvalFormula(const FoModel& model, const FormulaPtr& f,
                         const FoBinding& binding) {
  FoBinding scratch = binding;
  return Evaluator(model).Eval(f, &scratch);
}

Result<bool> EvalEsoBruteForce(const FoModel& model,
                               const EsoSentence& sentence,
                               size_t max_atoms) {
  const std::vector<Value> universe = model.UniverseOrDefault();
  // Candidate atoms for each SO variable.
  struct WitnessAtom {
    size_t so_index;
    Tuple tuple;
  };
  std::vector<WitnessAtom> atoms;
  for (size_t s = 0; s < sentence.so_vars.size(); ++s) {
    const size_t arity = sentence.so_vars[s].arity;
    double count = 1;
    for (size_t k = 0; k < arity; ++k) count *= universe.size();
    if (count + atoms.size() > static_cast<double>(max_atoms)) {
      return Status::ResourceExhausted(
          StrCat("∃SO brute force needs more than ", max_atoms, " atoms"));
    }
    if (arity == 0) {
      atoms.push_back(WitnessAtom{s, {}});
      continue;
    }
    if (universe.empty()) continue;
    std::vector<size_t> digits(arity, 0);
    while (true) {
      Tuple t(arity);
      for (size_t k = 0; k < arity; ++k) t[k] = universe[digits[k]];
      atoms.push_back(WitnessAtom{s, std::move(t)});
      size_t k = 0;
      while (k < arity && ++digits[k] == universe.size()) {
        digits[k] = 0;
        ++k;
      }
      if (k == arity) break;
    }
  }
  const uint64_t total = uint64_t{1} << atoms.size();
  for (uint64_t mask = 0; mask < total; ++mask) {
    std::vector<Relation> witnesses;
    witnesses.reserve(sentence.so_vars.size());
    for (const RelVar& rv : sentence.so_vars) {
      witnesses.emplace_back(rv.arity);
    }
    for (size_t a = 0; a < atoms.size(); ++a) {
      if (mask & (uint64_t{1} << a)) {
        witnesses[atoms[a].so_index].Insert(atoms[a].tuple);
      }
    }
    FoModel extended = model;
    for (size_t s = 0; s < sentence.so_vars.size(); ++s) {
      extended.extra[sentence.so_vars[s].name] = &witnesses[s];
    }
    INFLOG_ASSIGN_OR_RETURN(const bool holds,
                            EvalFormula(extended, sentence.matrix));
    if (holds) return true;
  }
  return false;
}

}  // namespace logic
}  // namespace inflog
