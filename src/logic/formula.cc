#include "src/logic/formula.h"

#include <algorithm>
#include <set>

#include "src/base/strings.h"

namespace inflog {
namespace logic {
namespace {

FormulaPtr Make(Formula f) {
  return std::make_shared<const Formula>(std::move(f));
}

}  // namespace

FormulaPtr Atom(std::string pred, std::vector<FoTerm> args) {
  Formula f;
  f.kind = Formula::Kind::kAtom;
  f.pred = std::move(pred);
  f.args = std::move(args);
  return Make(std::move(f));
}

FormulaPtr Eq(FoTerm lhs, FoTerm rhs) {
  Formula f;
  f.kind = Formula::Kind::kEq;
  f.args = {std::move(lhs), std::move(rhs)};
  return Make(std::move(f));
}

FormulaPtr True() {
  Formula f;
  f.kind = Formula::Kind::kTrue;
  return Make(std::move(f));
}

FormulaPtr False() {
  Formula f;
  f.kind = Formula::Kind::kFalse;
  return Make(std::move(f));
}

FormulaPtr Not(FormulaPtr child) {
  Formula f;
  f.kind = Formula::Kind::kNot;
  f.children = {std::move(child)};
  return Make(std::move(f));
}

FormulaPtr And(std::vector<FormulaPtr> children) {
  Formula f;
  f.kind = Formula::Kind::kAnd;
  f.children = std::move(children);
  return Make(std::move(f));
}

FormulaPtr Or(std::vector<FormulaPtr> children) {
  Formula f;
  f.kind = Formula::Kind::kOr;
  f.children = std::move(children);
  return Make(std::move(f));
}

FormulaPtr Implies(FormulaPtr a, FormulaPtr b) {
  return Or({Not(std::move(a)), std::move(b)});
}

FormulaPtr Iff(FormulaPtr a, FormulaPtr b) {
  return And({Implies(a, b), Implies(b, a)});
}

FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  Formula f;
  f.kind = Formula::Kind::kExists;
  f.vars = std::move(vars);
  f.children = {std::move(body)};
  return Make(std::move(f));
}

FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body) {
  if (vars.empty()) return body;
  Formula f;
  f.kind = Formula::Kind::kForall;
  f.vars = std::move(vars);
  f.children = {std::move(body)};
  return Make(std::move(f));
}

namespace {

void CollectFree(const FormulaPtr& f, std::vector<std::string>* out,
                 std::set<std::string>* bound, std::set<std::string>* seen) {
  switch (f->kind) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq:
      for (const FoTerm& t : f->args) {
        if (t.is_var && bound->find(t.name) == bound->end() &&
            seen->insert(t.name).second) {
          out->push_back(t.name);
        }
      }
      return;
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f->children) {
        CollectFree(c, out, bound, seen);
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<std::string> newly_bound;
      for (const std::string& v : f->vars) {
        if (bound->insert(v).second) newly_bound.push_back(v);
      }
      CollectFree(f->children[0], out, bound, seen);
      for (const std::string& v : newly_bound) bound->erase(v);
      return;
    }
  }
}

void CollectPreds(const FormulaPtr& f, std::vector<std::string>* out,
                  std::set<std::string>* seen) {
  if (f->kind == Formula::Kind::kAtom) {
    if (seen->insert(f->pred).second) out->push_back(f->pred);
  }
  for (const FormulaPtr& c : f->children) CollectPreds(c, out, seen);
}

}  // namespace

std::vector<std::string> FreeVariables(const FormulaPtr& f) {
  std::vector<std::string> out;
  std::set<std::string> bound, seen;
  CollectFree(f, &out, &bound, &seen);
  return out;
}

std::vector<std::string> PredicateNames(const FormulaPtr& f) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  CollectPreds(f, &out, &seen);
  return out;
}

FormulaPtr SubstituteVars(
    const FormulaPtr& f,
    const std::vector<std::pair<std::string, FoTerm>>& subst) {
  auto lookup = [&subst](const std::string& name) -> const FoTerm* {
    for (const auto& [from, to] : subst) {
      if (from == name) return &to;
    }
    return nullptr;
  };
  switch (f->kind) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq: {
      std::vector<FoTerm> args = f->args;
      bool changed = false;
      for (FoTerm& t : args) {
        if (!t.is_var) continue;
        if (const FoTerm* to = lookup(t.name)) {
          t = *to;
          changed = true;
        }
      }
      if (!changed) return f;
      return f->kind == Formula::Kind::kAtom
                 ? Atom(f->pred, std::move(args))
                 : Eq(args[0], args[1]);
    }
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kNot:
      return Not(SubstituteVars(f->children[0], subst));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children.size());
      for (const FormulaPtr& c : f->children) {
        children.push_back(SubstituteVars(c, subst));
      }
      return f->kind == Formula::Kind::kAnd ? And(std::move(children))
                                            : Or(std::move(children));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      // Drop substitutions shadowed by the quantifier. Transform
      // pipelines rename bound variables apart first, so capture cannot
      // occur here.
      std::vector<std::pair<std::string, FoTerm>> inner;
      for (const auto& [from, to] : subst) {
        if (std::find(f->vars.begin(), f->vars.end(), from) ==
            f->vars.end()) {
          inner.emplace_back(from, to);
        }
      }
      if (inner.empty()) return f;
      FormulaPtr body = SubstituteVars(f->children[0], inner);
      return f->kind == Formula::Kind::kExists ? Exists(f->vars, body)
                                               : Forall(f->vars, body);
    }
  }
  INFLOG_CHECK(false) << "bad formula kind";
  return f;
}

std::string Formula::ToString() const {
  auto term_str = [](const FoTerm& t) { return t.name; };
  switch (kind) {
    case Kind::kAtom: {
      std::string out = pred + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += term_str(args[i]);
      }
      return out + ")";
    }
    case Kind::kEq:
      return StrCat(term_str(args[0]), "=", term_str(args[1]));
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kNot:
      return StrCat("~", children[0]->ToString());
    case Kind::kAnd:
    case Kind::kOr: {
      if (children.empty()) return kind == Kind::kAnd ? "true" : "false";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += kind == Kind::kAnd ? " & " : " | ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::string out = kind == Kind::kExists ? "exists " : "forall ";
      out += StrJoin(vars, ",");
      return StrCat(out, ". ", children[0]->ToString());
    }
  }
  return "<bad>";
}

std::string EsoSentence::ToString() const {
  std::string out;
  for (const RelVar& rv : so_vars) {
    out += StrCat("EXISTS ", rv.name, "/", rv.arity, ". ");
  }
  return out + matrix->ToString();
}

}  // namespace logic
}  // namespace inflog
