#include "src/logic/transform.h"

#include <algorithm>
#include <set>

#include "src/base/strings.h"

namespace inflog {
namespace logic {
namespace {

FormulaPtr NnfImpl(const FormulaPtr& f, bool negate) {
  switch (f->kind) {
    case Formula::Kind::kTrue:
      return negate ? False() : True();
    case Formula::Kind::kFalse:
      return negate ? True() : False();
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq:
      return negate ? Not(f) : f;
    case Formula::Kind::kNot:
      return NnfImpl(f->children[0], !negate);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      const bool make_and = (f->kind == Formula::Kind::kAnd) != negate;
      std::vector<FormulaPtr> children;
      children.reserve(f->children.size());
      for (const FormulaPtr& c : f->children) {
        children.push_back(NnfImpl(c, negate));
      }
      return make_and ? And(std::move(children)) : Or(std::move(children));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      const bool make_exists =
          (f->kind == Formula::Kind::kExists) != negate;
      FormulaPtr body = NnfImpl(f->children[0], negate);
      return make_exists ? Exists(f->vars, body) : Forall(f->vars, body);
    }
  }
  INFLOG_CHECK(false);
  return f;
}

}  // namespace

FormulaPtr ToNnf(const FormulaPtr& f) { return NnfImpl(f, false); }

FormulaPtr RenameBoundApart(const FormulaPtr& f, int* counter) {
  switch (f->kind) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq:
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kNot:
      return Not(RenameBoundApart(f->children[0], counter));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children.size());
      for (const FormulaPtr& c : f->children) {
        children.push_back(RenameBoundApart(c, counter));
      }
      return f->kind == Formula::Kind::kAnd ? And(std::move(children))
                                            : Or(std::move(children));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<std::string> fresh;
      std::vector<std::pair<std::string, FoTerm>> subst;
      fresh.reserve(f->vars.size());
      for (const std::string& v : f->vars) {
        std::string name = StrCat("q$", (*counter)++);
        subst.emplace_back(v, FoTerm::Var(name));
        fresh.push_back(std::move(name));
      }
      FormulaPtr body =
          RenameBoundApart(SubstituteVars(f->children[0], subst), counter);
      return f->kind == Formula::Kind::kExists
                 ? Exists(std::move(fresh), body)
                 : Forall(std::move(fresh), body);
    }
  }
  INFLOG_CHECK(false);
  return f;
}

PrenexForm ToPrenex(const FormulaPtr& f) {
  switch (f->kind) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq:
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return PrenexForm{{}, f};
    case Formula::Kind::kNot:
      // NNF: negation sits on a literal only.
      INFLOG_CHECK(f->children[0]->kind == Formula::Kind::kAtom ||
                   f->children[0]->kind == Formula::Kind::kEq)
          << "ToPrenex requires NNF input";
      return PrenexForm{{}, f};
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<PrenexForm> parts;
      parts.reserve(f->children.size());
      for (const FormulaPtr& c : f->children) {
        parts.push_back(ToPrenex(c));
      }
      // ∀-greedy merge of the sibling prefixes: repeatedly take a ∀ from
      // any part if one is available at the front, otherwise take an ∃.
      // Each part's internal order is preserved; since bound variables
      // are renamed apart, sibling quantifiers commute and any such
      // interleaving is equivalent.
      PrenexForm out;
      std::vector<size_t> pos(parts.size(), 0);
      while (true) {
        bool took = false;
        for (size_t i = 0; i < parts.size(); ++i) {
          if (pos[i] < parts[i].prefix.size() &&
              parts[i].prefix[pos[i]].first) {
            out.prefix.push_back(parts[i].prefix[pos[i]++]);
            took = true;
          }
        }
        if (took) continue;
        // No ∀ at any front; take one ∃ and loop (a later ∀ may unlock).
        for (size_t i = 0; i < parts.size(); ++i) {
          if (pos[i] < parts[i].prefix.size()) {
            out.prefix.push_back(parts[i].prefix[pos[i]++]);
            took = true;
            break;
          }
        }
        if (!took) break;
      }
      std::vector<FormulaPtr> matrices;
      matrices.reserve(parts.size());
      for (PrenexForm& p : parts) matrices.push_back(std::move(p.matrix));
      out.matrix = f->kind == Formula::Kind::kAnd ? And(std::move(matrices))
                                                  : Or(std::move(matrices));
      return out;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      PrenexForm inner = ToPrenex(f->children[0]);
      PrenexForm out;
      for (const std::string& v : f->vars) {
        out.prefix.emplace_back(f->kind == Formula::Kind::kForall, v);
      }
      out.prefix.insert(out.prefix.end(), inner.prefix.begin(),
                        inner.prefix.end());
      out.matrix = std::move(inner.matrix);
      return out;
    }
  }
  INFLOG_CHECK(false);
  return PrenexForm{};
}

namespace {

/// Rebuilds a formula from a prefix suffix and matrix.
FormulaPtr Requantify(const std::vector<std::pair<bool, std::string>>& prefix,
                      size_t from, FormulaPtr matrix) {
  FormulaPtr out = std::move(matrix);
  for (size_t i = prefix.size(); i > from; --i) {
    const auto& [is_forall, var] = prefix[i - 1];
    out = is_forall ? Forall({var}, out) : Exists({var}, out);
  }
  return out;
}

/// DNF of a quantifier-free NNF matrix; each clause is a conjunction.
Result<std::vector<std::vector<SnfLiteral>>> MatrixToDnf(
    const FormulaPtr& f, size_t max_disjuncts) {
  using Disjuncts = std::vector<std::vector<SnfLiteral>>;
  switch (f->kind) {
    case Formula::Kind::kTrue:
      return Disjuncts{{}};
    case Formula::Kind::kFalse:
      return Disjuncts{};
    case Formula::Kind::kAtom:
    case Formula::Kind::kEq: {
      SnfLiteral lit;
      lit.is_eq = f->kind == Formula::Kind::kEq;
      lit.pred = f->pred;
      lit.args = f->args;
      return Disjuncts{{lit}};
    }
    case Formula::Kind::kNot: {
      const FormulaPtr& child = f->children[0];
      if (child->kind != Formula::Kind::kAtom &&
          child->kind != Formula::Kind::kEq) {
        return Status::InvalidArgument("matrix is not in NNF");
      }
      SnfLiteral lit;
      lit.negated = true;
      lit.is_eq = child->kind == Formula::Kind::kEq;
      lit.pred = child->pred;
      lit.args = child->args;
      return Disjuncts{{lit}};
    }
    case Formula::Kind::kOr: {
      Disjuncts out;
      for (const FormulaPtr& c : f->children) {
        INFLOG_ASSIGN_OR_RETURN(Disjuncts part,
                                MatrixToDnf(c, max_disjuncts));
        out.insert(out.end(), part.begin(), part.end());
        if (out.size() > max_disjuncts) {
          return Status::ResourceExhausted("DNF blow-up");
        }
      }
      return out;
    }
    case Formula::Kind::kAnd: {
      Disjuncts acc{{}};
      for (const FormulaPtr& c : f->children) {
        INFLOG_ASSIGN_OR_RETURN(Disjuncts part,
                                MatrixToDnf(c, max_disjuncts));
        Disjuncts next;
        for (const auto& a : acc) {
          for (const auto& b : part) {
            std::vector<SnfLiteral> merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return Status::ResourceExhausted("DNF blow-up");
            }
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    default:
      return Status::InvalidArgument(
          "matrix contains quantifiers; prenex first");
  }
}

std::string LiteralKey(const SnfLiteral& lit) {
  std::string key = lit.negated ? "!" : "";
  key += lit.is_eq ? "=" : lit.pred;
  for (const FoTerm& t : lit.args) {
    key += StrCat("|", t.is_var ? "v" : "c", t.name);
  }
  return key;
}

/// Simplifies a DNF: folds trivial (in)equalities, drops contradictory
/// disjuncts, deduplicates literals and disjuncts, applies absorption.
std::vector<std::vector<SnfLiteral>> SimplifyDnf(
    std::vector<std::vector<SnfLiteral>> disjuncts) {
  std::vector<std::vector<SnfLiteral>> cleaned;
  std::set<std::vector<std::string>> seen_disjuncts;
  for (auto& disjunct : disjuncts) {
    bool contradictory = false;
    std::vector<SnfLiteral> lits;
    std::set<std::string> keys;
    for (SnfLiteral& lit : disjunct) {
      if (lit.is_eq) {
        const FoTerm& a = lit.args[0];
        const FoTerm& b = lit.args[1];
        if (a == b) {
          if (lit.negated) contradictory = true;  // t ≠ t
          continue;                                // t = t: drop
        }
        if (!a.is_var && !b.is_var) {
          // Distinct constant names denote distinct interned values.
          if (!lit.negated) contradictory = true;
          continue;
        }
      }
      const std::string key = LiteralKey(lit);
      if (keys.insert(key).second) lits.push_back(lit);
      // Complementary pair?
      const std::string complement =
          lit.negated ? key.substr(1) : StrCat("!", key);
      if (keys.find(complement) != keys.end()) contradictory = true;
      if (contradictory) break;
    }
    if (contradictory) continue;
    std::vector<std::string> canon;
    for (const SnfLiteral& lit : lits) canon.push_back(LiteralKey(lit));
    std::sort(canon.begin(), canon.end());
    if (seen_disjuncts.insert(canon).second) {
      cleaned.push_back(std::move(lits));
    }
  }
  // Absorption: drop disjuncts whose literal set contains another's.
  std::vector<std::set<std::string>> keysets;
  keysets.reserve(cleaned.size());
  for (const auto& d : cleaned) {
    std::set<std::string> ks;
    for (const SnfLiteral& lit : d) ks.insert(LiteralKey(lit));
    keysets.push_back(std::move(ks));
  }
  std::vector<std::vector<SnfLiteral>> out;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    bool absorbed = false;
    for (size_t j = 0; j < cleaned.size() && !absorbed; ++j) {
      if (i == j) continue;
      if (keysets[j].size() < keysets[i].size() ||
          (keysets[j].size() == keysets[i].size() && j < i)) {
        absorbed = std::includes(keysets[i].begin(), keysets[i].end(),
                                 keysets[j].begin(), keysets[j].end());
      }
    }
    if (!absorbed) out.push_back(std::move(cleaned[i]));
  }
  return out;
}

}  // namespace

Result<SkolemNormalForm> ToSkolemNormalForm(const EsoSentence& sentence,
                                            const SnfOptions& options) {
  int counter = 0;
  int rel_counter = 0;
  SkolemNormalForm snf;
  snf.so_vars = sentence.so_vars;

  FormulaPtr work = RenameBoundApart(ToNnf(sentence.matrix), &counter);
  // Conjuncts already in ∀*∃* prenex form.
  std::vector<PrenexForm> done;

  while (true) {
    PrenexForm p = ToPrenex(work);
    if (p.IsForallExists()) {
      done.push_back(std::move(p));
      break;
    }
    // Locate the first ∃ (everything before it is ∀) — it has a later ∀.
    size_t i = 0;
    while (p.prefix[i].first) ++i;
    std::vector<std::string> u_bar;
    for (size_t k = 0; k < i; ++k) u_bar.push_back(p.prefix[k].second);
    const std::string v = p.prefix[i].second;
    FormulaPtr psi = Requantify(p.prefix, i + 1, p.matrix);

    // Fresh function-graph relation X(ū, v).
    const std::string x_name = StrCat("X$", rel_counter++);
    snf.so_vars.push_back(RelVar{x_name, u_bar.size() + 1});
    std::vector<FoTerm> x_args;
    for (const std::string& u : u_bar) x_args.push_back(FoTerm::Var(u));
    x_args.push_back(FoTerm::Var(v));

    // C1 = ∀ū ∀v (¬X(ū,v) ∨ ψ): strictly fewer offending ∃s; keep working.
    std::vector<std::string> uv = u_bar;
    uv.push_back(v);
    work = Forall(uv, Or({Not(Atom(x_name, x_args)), psi}));

    // C2 = ∀ū' ∃v' X(ū',v'): already conforming; emit with fresh copies.
    std::vector<std::string> u_fresh;
    std::vector<FoTerm> x_args_fresh;
    for (size_t k = 0; k < u_bar.size(); ++k) {
      u_fresh.push_back(StrCat("q$", counter++));
      x_args_fresh.push_back(FoTerm::Var(u_fresh.back()));
    }
    const std::string v_fresh = StrCat("q$", counter++);
    x_args_fresh.push_back(FoTerm::Var(v_fresh));
    PrenexForm c2;
    for (const std::string& u : u_fresh) c2.prefix.emplace_back(true, u);
    c2.prefix.emplace_back(false, v_fresh);
    c2.matrix = Atom(x_name, x_args_fresh);
    done.push_back(std::move(c2));
  }

  // Merge the conforming conjuncts: all ∀s, then all ∃s (bound variables
  // are pairwise distinct so the quantifiers commute), matrix = ⋀.
  std::vector<FormulaPtr> matrices;
  for (const PrenexForm& p : done) {
    for (const auto& [is_forall, var] : p.prefix) {
      (is_forall ? snf.universal_vars : snf.existential_vars)
          .push_back(var);
    }
    matrices.push_back(p.matrix);
  }
  INFLOG_ASSIGN_OR_RETURN(
      auto dnf, MatrixToDnf(And(std::move(matrices)), options.max_disjuncts));
  snf.disjuncts = SimplifyDnf(std::move(dnf));
  return snf;
}

std::string SkolemNormalForm::ToString() const {
  std::string out;
  for (const RelVar& rv : so_vars) {
    out += StrCat("EXISTS ", rv.name, "/", rv.arity, ". ");
  }
  if (!universal_vars.empty()) {
    out += StrCat("forall ", StrJoin(universal_vars, ","), ". ");
  }
  if (!existential_vars.empty()) {
    out += StrCat("exists ", StrJoin(existential_vars, ","), ". ");
  }
  bool first_disjunct = true;
  for (const auto& disjunct : disjuncts) {
    out += first_disjunct ? "" : " | ";
    first_disjunct = false;
    out += "[";
    for (size_t i = 0; i < disjunct.size(); ++i) {
      if (i > 0) out += " & ";
      const SnfLiteral& lit = disjunct[i];
      if (lit.negated) out += "~";
      if (lit.is_eq) {
        out += StrCat(lit.args[0].name, "=", lit.args[1].name);
      } else {
        out += lit.pred + "(";
        for (size_t a = 0; a < lit.args.size(); ++a) {
          if (a > 0) out += ",";
          out += lit.args[a].name;
        }
        out += ")";
      }
    }
    out += "]";
  }
  if (disjuncts.empty()) out += "false";
  return out;
}

}  // namespace logic
}  // namespace inflog
