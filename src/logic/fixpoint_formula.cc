#include "src/logic/fixpoint_formula.h"

#include "src/base/strings.h"

namespace inflog {
namespace logic {
namespace {

/// Formula term for a rule term, with rule variables named per-rule.
FoTerm RuleTerm(const Program& program, size_t rule_index, const Term& t) {
  if (t.IsConstant()) {
    return FoTerm::Const(program.symbols().Name(t.id));
  }
  return FoTerm::Var(StrCat("r", rule_index, "v", t.id));
}

/// The body of rule `r` as a conjunction, plus head-matching equalities
/// x̄ = head args.
FormulaPtr RuleDisjunct(const Program& program, size_t rule_index,
                        const std::vector<std::string>& tuple_vars) {
  const Rule& rule = program.rules()[rule_index];
  std::vector<FormulaPtr> conj;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    conj.push_back(Eq(FoTerm::Var(tuple_vars[i]),
                      RuleTerm(program, rule_index, rule.head.args[i])));
  }
  for (const Literal& lit : rule.body) {
    std::vector<FoTerm> args;
    for (const Term& t : lit.args) {
      args.push_back(RuleTerm(program, rule_index, t));
    }
    switch (lit.kind) {
      case Literal::Kind::kAtom:
        conj.push_back(Atom(program.predicate(lit.predicate).name, args));
        break;
      case Literal::Kind::kNegAtom:
        conj.push_back(
            Not(Atom(program.predicate(lit.predicate).name, args)));
        break;
      case Literal::Kind::kEq:
        conj.push_back(Eq(args[0], args[1]));
        break;
      case Literal::Kind::kNeq:
        conj.push_back(Not(Eq(args[0], args[1])));
        break;
    }
  }
  // All rule variables are existential (head variables too — the
  // equalities x̄ = t̄ tie them to the tuple).
  std::vector<std::string> exist_vars;
  for (uint32_t v = 0; v < rule.num_vars; ++v) {
    exist_vars.push_back(StrCat("r", rule_index, "v", v));
  }
  return Exists(std::move(exist_vars), And(std::move(conj)));
}

}  // namespace

FormulaPtr BuildOperatorFormula(const Program& program, size_t idb_index) {
  INFLOG_CHECK(idb_index < program.idb_predicates().size());
  const uint32_t pred = program.idb_predicates()[idb_index];
  const size_t arity = program.predicate(pred).arity;
  std::vector<std::string> tuple_vars;
  for (size_t i = 0; i < arity; ++i) tuple_vars.push_back(StrCat("x", i));
  std::vector<FormulaPtr> disjuncts;
  for (size_t r = 0; r < program.rules().size(); ++r) {
    if (program.rules()[r].head.predicate == pred) {
      disjuncts.push_back(RuleDisjunct(program, r, tuple_vars));
    }
  }
  return Or(std::move(disjuncts));
}

FormulaPtr BuildFixpointFormula(const Program& program) {
  std::vector<FormulaPtr> conjuncts;
  for (size_t i = 0; i < program.idb_predicates().size(); ++i) {
    const uint32_t pred = program.idb_predicates()[i];
    const size_t arity = program.predicate(pred).arity;
    std::vector<std::string> tuple_vars;
    std::vector<FoTerm> tuple_terms;
    for (size_t k = 0; k < arity; ++k) {
      tuple_vars.push_back(StrCat("x", k));
      tuple_terms.push_back(FoTerm::Var(tuple_vars.back()));
    }
    FormulaPtr lhs = Atom(program.predicate(pred).name, tuple_terms);
    FormulaPtr rhs = BuildOperatorFormula(program, i);
    conjuncts.push_back(Forall(tuple_vars, Iff(lhs, rhs)));
  }
  return And(std::move(conjuncts));
}

Result<bool> FormulaSaysFixpoint(const Program& program, const Database& db,
                                 const IdbState& state) {
  FoModel model;
  model.db = &db;
  const auto& idb = program.idb_predicates();
  INFLOG_CHECK(state.relations.size() == idb.size());
  for (size_t i = 0; i < idb.size(); ++i) {
    model.extra[program.predicate(idb[i]).name] = &state.relations[i];
  }
  return EvalFormula(model, BuildFixpointFormula(program));
}

}  // namespace logic
}  // namespace inflog
