// FO+IFP: inflationary fixpoints of first-order definable operators
// (Gurevich–Shelah [GS86]), and Proposition 1's two translations between
// Inflationary DATALOG and the existential fragment of FO+IFP.
//
// An operator formula φ(x̄, S) with a designated relation name S defines
// H(R) = { ā : D ⊨ φ(ā, R) }; its inflationary iteration
// R ← R ∪ H(R) from ∅ reaches the inductive fixpoint of Ĥ(R) = R ∪ H(R).
// Proposition 1: a query is Inflationary-DATALOG expressible iff it is
// expressible this way with φ existential.

#ifndef INFLOG_LOGIC_IFP_H_
#define INFLOG_LOGIC_IFP_H_

#include <string>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/logic/eval.h"
#include "src/logic/formula.h"

namespace inflog {
namespace logic {

/// A first-order definable operator on k-ary relations.
struct IfpOperator {
  FormulaPtr formula;                    ///< φ(x̄, S)
  std::vector<std::string> tuple_vars;   ///< x̄ (free in φ)
  std::string rel_name;                  ///< S (may occur in φ)
  size_t arity = 0;                      ///< k = |x̄| = arity of S
};

/// Result of an inflationary iteration.
struct IfpResult {
  Relation relation;
  size_t stages = 0;

  explicit IfpResult(size_t arity) : relation(arity) {}
};

/// Computes the inductive fixpoint of Ĥ(R) = R ∪ H(R) over `model`'s
/// universe by stage iteration (polynomially many stages, as in §4).
Result<IfpResult> InflationaryFixpointOfFormula(const FoModel& model,
                                                const IfpOperator& op);

/// Proposition 1, program → formula direction: extracts the existential
/// first-order operator formula of a DATALOG¬ program with a single
/// nondatabase relation (the case the paper's proof treats). Fails with
/// FailedPrecondition on multi-IDB programs.
Result<IfpOperator> ProgramToIfpOperator(const Program& program);

/// Proposition 1, formula → program direction: compiles an existential
/// operator formula into a DATALOG¬ program (one rule per DNF disjunct)
/// whose inflationary semantics equals the formula's inductive fixpoint.
/// Fails if φ is not existential (contains ∀ after NNF).
Result<std::string> IfpOperatorToProgramText(const IfpOperator& op);

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_IFP_H_
