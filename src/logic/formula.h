// First-order and existential second-order formulas over a relational
// vocabulary.
//
// This is the proof machinery of the paper made executable: Fagin's
// theorem connects NP collections to ∃SO sentences (Theorem 1 compiles
// these to DATALOG¬ programs via Skolem normal form), the fixpoint
// formula φ_π of Section 3 characterizes the fixpoints of a program in
// first-order terms, and FO+IFP (Gurevich–Shelah) is the logic whose
// existential fragment Proposition 1 identifies with Inflationary DATALOG.
//
// Variables and predicates are identified by name; transformations
// generate fresh names as needed. Formulas are immutable and shared
// through FormulaPtr.

#ifndef INFLOG_LOGIC_FORMULA_H_
#define INFLOG_LOGIC_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"

namespace inflog {
namespace logic {

/// A first-order term: a variable or a constant (by name; constants are
/// interned against the database's symbol table at evaluation time).
struct FoTerm {
  bool is_var;
  std::string name;

  static FoTerm Var(std::string name) { return FoTerm{true, std::move(name)}; }
  static FoTerm Const(std::string name) {
    return FoTerm{false, std::move(name)};
  }
  bool operator==(const FoTerm& o) const {
    return is_var == o.is_var && name == o.name;
  }
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A first-order formula node.
struct Formula {
  enum class Kind {
    kAtom,    ///< pred(args)
    kEq,      ///< t₁ = t₂ (args has two terms)
    kTrue,    ///< ⊤
    kFalse,   ///< ⊥
    kNot,     ///< ¬ children[0]
    kAnd,     ///< ⋀ children (empty = ⊤)
    kOr,      ///< ⋁ children (empty = ⊥)
    kExists,  ///< ∃ vars children[0]
    kForall,  ///< ∀ vars children[0]
  };

  Kind kind;
  std::string pred;            // kAtom
  std::vector<FoTerm> args;    // kAtom / kEq
  std::vector<FormulaPtr> children;
  std::vector<std::string> vars;  // kExists / kForall

  /// Renders with ∃/∀/∧/∨/¬ symbols, for debugging and goldens.
  std::string ToString() const;
};

// --- Constructors. ---

FormulaPtr Atom(std::string pred, std::vector<FoTerm> args);
FormulaPtr Eq(FoTerm lhs, FoTerm rhs);
FormulaPtr True();
FormulaPtr False();
FormulaPtr Not(FormulaPtr f);
FormulaPtr And(std::vector<FormulaPtr> children);
FormulaPtr Or(std::vector<FormulaPtr> children);
FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
FormulaPtr Iff(FormulaPtr a, FormulaPtr b);
FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);

/// Free variables of `f`, in first-occurrence order.
std::vector<std::string> FreeVariables(const FormulaPtr& f);

/// All predicate names occurring in `f`.
std::vector<std::string> PredicateNames(const FormulaPtr& f);

/// Capture-avoiding substitution of variables by terms.
FormulaPtr SubstituteVars(
    const FormulaPtr& f,
    const std::vector<std::pair<std::string, FoTerm>>& subst);

/// A second-order relation variable.
struct RelVar {
  std::string name;
  size_t arity;
};

/// An existential second-order sentence ∃S₁...∃S_m φ (φ first-order, its
/// free relation names drawn from the database vocabulary and the Sᵢ).
struct EsoSentence {
  std::vector<RelVar> so_vars;
  FormulaPtr matrix;

  std::string ToString() const;
};

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_FORMULA_H_
