// The Theorem 1 compiler: ∃SO sentences → DATALOG¬ programs.
//
// Given Ψ = ∃S̄ φ defining an NP collection C (Fagin), produce the fixed
// program π_C with: one choice rule Sⱼ(ū) ← Sⱼ(ū) per second-order
// relation (including the function-graph relations introduced by
// Skolemization), one rule Q(x̄) ← θᵢ(x̄, ȳ) per disjunct of the Skolem
// normal form, and the guarded toggle T(z) ← ¬Q(ū), ¬T(w). Then for every
// database D:   D ∈ C  ⇔  (π_C, D) has a fixpoint.

#ifndef INFLOG_LOGIC_THM1_H_
#define INFLOG_LOGIC_THM1_H_

#include <memory>
#include <string>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/logic/transform.h"

namespace inflog {
namespace logic {

/// The compiler's output: the normal form it went through, the program
/// text, and the parsed program.
struct Thm1Compilation {
  SkolemNormalForm snf;
  std::string program_text;
  Program program;

  explicit Thm1Compilation(Program p) : program(std::move(p)) {}
};

/// Compiles `sentence` into π_C over `symbols`. The satisfiability
/// predicate is named Q<suffix> and the toggle T<suffix>, with a suffix
/// chosen to avoid clashes with the sentence's relation names.
Result<Thm1Compilation> CompileEsoToDatalog(
    const EsoSentence& sentence, std::shared_ptr<SymbolTable> symbols,
    const SnfOptions& options = {});

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_THM1_H_
