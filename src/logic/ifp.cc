#include "src/logic/ifp.h"

#include "src/base/strings.h"
#include "src/logic/fixpoint_formula.h"
#include "src/logic/transform.h"

namespace inflog {
namespace logic {

Result<IfpResult> InflationaryFixpointOfFormula(const FoModel& model,
                                                const IfpOperator& op) {
  if (op.tuple_vars.size() != op.arity) {
    return Status::InvalidArgument("tuple variable count != arity");
  }
  const std::vector<Value> universe = model.UniverseOrDefault();
  IfpResult out(op.arity);

  // Enumerate A^k once; re-test every tuple not yet in R each stage.
  std::vector<Tuple> candidates;
  if (op.arity == 0) {
    candidates.push_back({});
  } else if (!universe.empty()) {
    std::vector<size_t> digits(op.arity, 0);
    while (true) {
      Tuple t(op.arity);
      for (size_t k = 0; k < op.arity; ++k) t[k] = universe[digits[k]];
      candidates.push_back(std::move(t));
      size_t k = 0;
      while (k < op.arity && ++digits[k] == universe.size()) {
        digits[k] = 0;
        ++k;
      }
      if (k == op.arity) break;
    }
  }

  FoModel stage_model = model;
  stage_model.extra[op.rel_name] = &out.relation;
  while (true) {
    std::vector<Tuple> new_tuples;
    for (const Tuple& t : candidates) {
      if (out.relation.Contains(t)) continue;
      FoBinding binding;
      for (size_t k = 0; k < op.arity; ++k) {
        binding[op.tuple_vars[k]] = t[k];
      }
      INFLOG_ASSIGN_OR_RETURN(const bool holds,
                              EvalFormula(stage_model, op.formula, binding));
      if (holds) new_tuples.push_back(t);
    }
    if (new_tuples.empty()) break;
    // Inflationary stage semantics: all of H(Rⁿ) joins at once.
    for (const Tuple& t : new_tuples) out.relation.Insert(t);
    ++out.stages;
  }
  return out;
}

Result<IfpOperator> ProgramToIfpOperator(const Program& program) {
  if (program.idb_predicates().size() != 1) {
    return Status::FailedPrecondition(
        "ProgramToIfpOperator handles programs with a single nondatabase "
        "relation (the case treated in Proposition 1)");
  }
  const uint32_t pred = program.idb_predicates()[0];
  IfpOperator op;
  op.rel_name = program.predicate(pred).name;
  op.arity = program.predicate(pred).arity;
  for (size_t i = 0; i < op.arity; ++i) {
    op.tuple_vars.push_back(StrCat("x", i));
  }
  // Section 2's analysis: Θ's component is existential first-order.
  op.formula = BuildOperatorFormula(program, 0);
  return op;
}

Result<std::string> IfpOperatorToProgramText(const IfpOperator& op) {
  // Bring φ into ∃-prenex DNF; reject universal quantification.
  int counter = 0;
  FormulaPtr nnf = RenameBoundApart(ToNnf(op.formula), &counter);
  PrenexForm prenex = ToPrenex(nnf);
  for (const auto& [is_forall, var] : prenex.prefix) {
    if (is_forall) {
      return Status::FailedPrecondition(
          "operator formula is not existential; Proposition 1's converse "
          "applies to the existential fragment of FO+IFP");
    }
  }
  EsoSentence wrapper;
  wrapper.matrix = prenex.matrix;
  INFLOG_ASSIGN_OR_RETURN(SkolemNormalForm snf,
                          ToSkolemNormalForm(wrapper));

  // Variable renaming: tuple vars become X0..; everything else V<i>.
  std::map<std::string, std::string> var_names;
  for (size_t i = 0; i < op.tuple_vars.size(); ++i) {
    var_names[op.tuple_vars[i]] = StrCat("X", i);
  }
  auto map_var = [&var_names](const std::string& v) {
    auto [it, inserted] =
        var_names.emplace(v, StrCat("V", var_names.size()));
    return it->second;
  };
  auto render_term = [&](const FoTerm& t) {
    return t.is_var ? map_var(t.name) : StrCat("'", t.name, "'");
  };

  std::string head = op.rel_name;
  if (op.arity > 0) {
    head += "(";
    for (size_t i = 0; i < op.arity; ++i) {
      head += StrCat(i > 0 ? "," : "", "X", i);
    }
    head += ")";
  }

  std::string text;
  for (const auto& disjunct : snf.disjuncts) {
    std::vector<std::string> body;
    for (const SnfLiteral& lit : disjunct) {
      if (lit.is_eq) {
        body.push_back(StrCat(render_term(lit.args[0]),
                              lit.negated ? " != " : " = ",
                              render_term(lit.args[1])));
        continue;
      }
      std::string atom = StrCat(lit.negated ? "!" : "", lit.pred, "(");
      for (size_t i = 0; i < lit.args.size(); ++i) {
        atom += StrCat(i > 0 ? "," : "", render_term(lit.args[i]));
      }
      body.push_back(atom + ")");
    }
    if (body.empty()) {
      text += StrCat(head, ".\n");
    } else {
      text += StrCat(head, " :- ", StrJoin(body, ", "), ".\n");
    }
  }
  if (snf.disjuncts.empty()) {
    // φ ≡ false: a program whose single rule can never fire.
    text += StrCat(head, " :- ", head, ", !", head, ".\n");
  }
  return text;
}

}  // namespace logic
}  // namespace inflog
