// The fixpoint formula φ_π of Section 3.
//
// For a program π with nondatabase relations S̄, φ_π(S̄) is the first-order
// sentence  ⋀ᵢ ∀x̄ᵢ [Sᵢ(x̄ᵢ) ↔ φᵢ(x̄ᵢ, S̄)]  where φᵢ is the existential
// formula defining the i-th component of the operator Θ. For every
// database D and IDB values S̄:
//
//     S̄ is a fixpoint of (π, D)   ⇔   D ⊨ φ_π(S̄).
//
// The paper uses φ_π twice: to put π-UNIQUE-FIXPOINT into the
// (∃! S̄)φ(S̄) logical form, and (with second-order relativization) to put
// least-fixpoint existence into FONP (Theorem 3).

#ifndef INFLOG_LOGIC_FIXPOINT_FORMULA_H_
#define INFLOG_LOGIC_FIXPOINT_FORMULA_H_

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/idb_state.h"
#include "src/logic/eval.h"
#include "src/logic/formula.h"

namespace inflog {
namespace logic {

/// Builds φ_π. Free relation names: the program's EDB and IDB predicate
/// names.
FormulaPtr BuildFixpointFormula(const Program& program);

/// Builds the existential first-order formula φᵢ(x̄, S̄) defining component
/// `idb_index` of Θ (Section 2's analysis: Θ is existential-first-order
/// definable). The tuple variables are named x0..x_{k-1}.
FormulaPtr BuildOperatorFormula(const Program& program, size_t idb_index);

/// Convenience: checks D ⊨ φ_π(state) by overlaying the state's relations
/// — semantically identical to ThetaOperator::IsFixpoint, via the logic
/// path.
Result<bool> FormulaSaysFixpoint(const Program& program, const Database& db,
                                 const IdbState& state);

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_FIXPOINT_FORMULA_H_
