// Model checking of first-order and ∃SO formulas over finite databases.
//
// Quantifiers range over the database universe (plus any extra elements
// the caller supplies). Relation names resolve first against the caller's
// overlay (IDB values, second-order witnesses) and then against the
// database — mirroring how the paper's formulas mix σ-relations with the
// quantified S̄.

#ifndef INFLOG_LOGIC_EVAL_H_
#define INFLOG_LOGIC_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/logic/formula.h"
#include "src/relation/database.h"

namespace inflog {
namespace logic {

/// A finite structure: the database plus an overlay of named relations.
struct FoModel {
  const Database* db = nullptr;
  /// Overlay relations (shadow same-named database relations).
  std::map<std::string, const Relation*> extra;

  /// The universe quantifiers range over (defaults to db->universe()).
  std::vector<Value> UniverseOrDefault() const {
    return db->universe();
  }
};

/// A variable assignment.
using FoBinding = std::map<std::string, Value>;

/// Decides model ⊨ f [binding]. Fails on unknown relations, unknown
/// constants, arity mismatches, or unbound free variables.
Result<bool> EvalFormula(const FoModel& model, const FormulaPtr& f,
                         const FoBinding& binding = {});

/// Decides model ⊨ ∃S̄ φ by enumerating all witness relations over the
/// universe — exponential, usable only when Σ |A|^arity is tiny. This is
/// the independent oracle the Theorem 1 compiler is tested against.
/// `max_atoms` caps the total witness atom count (2^max_atoms states).
Result<bool> EvalEsoBruteForce(const FoModel& model,
                               const EsoSentence& sentence,
                               size_t max_atoms = 20);

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_EVAL_H_
