#include "src/logic/thm1.h"

#include <map>
#include <set>

#include "src/ast/parser.h"
#include "src/base/strings.h"

namespace inflog {
namespace logic {
namespace {

/// Maps formula-level names into parser-safe tokens. Variables become
/// V<i>; relation names pass through when already safe, otherwise get a
/// sanitized R<i> alias (formula names like "X$0" are not identifiers).
class NameMapper {
 public:
  std::string Var(const std::string& formula_var) {
    auto [it, inserted] =
        vars_.emplace(formula_var, StrCat("V", vars_.size()));
    return it->second;
  }

  std::string Rel(const std::string& formula_rel) {
    auto it = rels_.find(formula_rel);
    if (it != rels_.end()) return it->second;
    std::string safe = Sanitize(formula_rel);
    while (used_rels_.count(safe) > 0) safe += "x";
    used_rels_.insert(safe);
    rels_.emplace(formula_rel, safe);
    return rels_.at(formula_rel);
  }

  /// Picks an unused relation name starting from `base`.
  std::string Fresh(const std::string& base) {
    std::string name = base;
    while (used_rels_.count(name) > 0) name += "q";
    used_rels_.insert(name);
    return name;
  }

 private:
  static std::string Sanitize(const std::string& name) {
    std::string out;
    for (char c : name) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        out += c;
      } else {
        out += '_';
      }
    }
    if (out.empty() || !std::isalpha(static_cast<unsigned char>(out[0]))) {
      out = "R" + out;
    }
    return out;
  }

  std::map<std::string, std::string> vars_;
  std::map<std::string, std::string> rels_;
  std::set<std::string> used_rels_;
};

std::string RenderTerm(NameMapper* names, const FoTerm& t) {
  if (t.is_var) return names->Var(t.name);
  // Quote constants so that capitalized constant names stay constants.
  return StrCat("'", t.name, "'");
}

std::string RenderLiteral(NameMapper* names, const SnfLiteral& lit) {
  if (lit.is_eq) {
    return StrCat(RenderTerm(names, lit.args[0]),
                  lit.negated ? " != " : " = ",
                  RenderTerm(names, lit.args[1]));
  }
  std::string out = lit.negated ? "!" : "";
  out += names->Rel(lit.pred);
  out += "(";
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (i > 0) out += ",";
    out += RenderTerm(names, lit.args[i]);
  }
  return out + ")";
}

}  // namespace

Result<Thm1Compilation> CompileEsoToDatalog(
    const EsoSentence& sentence, std::shared_ptr<SymbolTable> symbols,
    const SnfOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(SkolemNormalForm snf,
                          ToSkolemNormalForm(sentence, options));

  NameMapper names;
  // Reserve the σ-relation and S̄ names first so they keep their spelling.
  for (const RelVar& rv : snf.so_vars) names.Rel(rv.name);
  for (const auto& disjunct : snf.disjuncts) {
    for (const SnfLiteral& lit : disjunct) {
      if (!lit.is_eq) names.Rel(lit.pred);
    }
  }
  const std::string q = names.Fresh("Q");
  const std::string t = names.Fresh("T");

  std::string text;
  // Choice rules Sⱼ(ū) ← Sⱼ(ū) make the S̄ nondatabase relations.
  for (const RelVar& rv : snf.so_vars) {
    std::string head = names.Rel(rv.name) + "(";
    for (size_t i = 0; i < rv.arity; ++i) {
      head += StrCat(i > 0 ? "," : "", "U", i);
    }
    head += ")";
    if (rv.arity == 0) head = names.Rel(rv.name);
    text += StrCat(head, " :- ", head, ".\n");
  }

  // Q(x̄) ← θᵢ: the universal variables are the head.
  std::string q_head = q;
  if (!snf.universal_vars.empty()) {
    q_head += "(";
    for (size_t i = 0; i < snf.universal_vars.size(); ++i) {
      if (i > 0) q_head += ",";
      q_head += names.Var(snf.universal_vars[i]);
    }
    q_head += ")";
  }
  for (const auto& disjunct : snf.disjuncts) {
    std::vector<std::string> body;
    for (const SnfLiteral& lit : disjunct) {
      body.push_back(RenderLiteral(&names, lit));
    }
    text += StrCat(q_head, " :- ", StrJoin(body, ", "), ".\n");
  }
  if (snf.disjuncts.empty()) {
    // The matrix simplified to false. Q must still be a nondatabase
    // relation, with no support in any fixpoint: give it a single rule
    // whose body is unsatisfiable.
    text += StrCat(q_head, " :- ", q_head, ", !", q_head, ".\n");
  }

  // The guarded toggle T(z) ← ¬Q(ū), ¬T(w).
  std::string q_neg = StrCat("!", q);
  if (!snf.universal_vars.empty()) {
    q_neg += "(";
    for (size_t i = 0; i < snf.universal_vars.size(); ++i) {
      q_neg += StrCat(i > 0 ? "," : "", "QU", i);
    }
    q_neg += ")";
  }
  text += StrCat(t, "(TZ) :- ", q_neg, ", !", t, "(TW).\n");

  INFLOG_ASSIGN_OR_RETURN(Program program,
                          ParseProgram(text, std::move(symbols)));
  Thm1Compilation out(std::move(program));
  out.snf = std::move(snf);
  out.program_text = std::move(text);
  return out;
}

}  // namespace logic
}  // namespace inflog
