// Formula transformations feeding the Theorem 1 compiler.
//
// The pipeline is exactly the proof's: bring the first-order part of an
// ∃SO sentence into prenex normal form, repeatedly eliminate ∀…∃
// alternations with the paper's function-graph rewrite
//
//   (∀ū)(∃v)χ(ū,v) ⇔ (∃X){(∀ū)(∀v)[X(ū,v) → χ(ū,v)] ∧ (∀ū)(∃v)X(ū,v)}
//
// until the prefix is ∀*∃* (each application turns one offending ∃ into a
// ∀ and emits one already-conforming conjunct, so the loop terminates),
// then put the matrix into disjunctive normal form. The result is the
// paper's Skolem normal form ∃S̄ ∀x̄ ∃ȳ (θ₁ ∨ ... ∨ θ_k) with each θᵢ a
// conjunction of literals.

#ifndef INFLOG_LOGIC_TRANSFORM_H_
#define INFLOG_LOGIC_TRANSFORM_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/logic/formula.h"

namespace inflog {
namespace logic {

/// Negation normal form: negations pushed onto atoms/equalities,
/// implications already expanded by the constructors.
FormulaPtr ToNnf(const FormulaPtr& f);

/// Renames every bound variable to a fresh name "q$<n>" (capture-free
/// prenexing requires globally distinct bound variables). `counter`
/// carries freshness across calls.
FormulaPtr RenameBoundApart(const FormulaPtr& f, int* counter);

/// A prenex-form formula: quantifier prefix over a quantifier-free matrix.
struct PrenexForm {
  /// (is_forall, variable) pairs, outermost first.
  std::vector<std::pair<bool, std::string>> prefix;
  FormulaPtr matrix;

  bool IsForallExists() const {
    bool seen_exists = false;
    for (const auto& [is_forall, var] : prefix) {
      if (!is_forall) {
        seen_exists = true;
      } else if (seen_exists) {
        return false;
      }
    }
    return true;
  }
};

/// Prenexes an NNF, renamed-apart formula. Sibling prefixes are merged
/// ∀-greedily (sound because bound variables are pairwise distinct, so
/// quantifiers from different subformulas commute).
PrenexForm ToPrenex(const FormulaPtr& f);

/// One literal of a Skolem-normal-form disjunct.
struct SnfLiteral {
  bool negated = false;
  bool is_eq = false;         ///< equality literal (pred unused)
  std::string pred;
  std::vector<FoTerm> args;   ///< two terms for equalities
};

/// The paper's Skolem normal form.
struct SkolemNormalForm {
  std::vector<RelVar> so_vars;  ///< original ∃S̄ plus introduced graphs X
  std::vector<std::string> universal_vars;
  std::vector<std::string> existential_vars;
  /// The DNF matrix: each disjunct is a conjunction of literals.
  std::vector<std::vector<SnfLiteral>> disjuncts;

  std::string ToString() const;
};

/// Options bounding the (worst-case exponential) DNF step.
struct SnfOptions {
  size_t max_disjuncts = 100'000;
};

/// Runs the full pipeline on an ∃SO sentence.
Result<SkolemNormalForm> ToSkolemNormalForm(const EsoSentence& sentence,
                                            const SnfOptions& options = {});

}  // namespace logic
}  // namespace inflog

#endif  // INFLOG_LOGIC_TRANSFORM_H_
