// Optimizer pass selection: which plan-optimizer passes run between rule
// lowering and FixpointDriver dispatch (src/opt/pass_manager.h).
//
// This header is dependency-free below base/ so EvalContextOptions can
// embed the selection without the eval layer depending on the optimizer
// implementation. Every pass preserves the evaluated semantics (relations,
// stage sizes, TupleStage) exactly; the selection only moves plan cost.

#ifndef INFLOG_OPT_PASSES_H_
#define INFLOG_OPT_PASSES_H_

#include <string>
#include <string_view>

#include "src/base/result.h"

namespace inflog {

/// Per-pass enable flags for the plan optimizer pipeline. The pipeline
/// runs the enabled passes in the fixed order dead-rule elimination →
/// join reordering → subplan sharing.
struct OptimizerPasses {
  /// Drop rules whose head predicate cannot reach any output predicate
  /// in the dependency graph. Inert unless output predicates are named
  /// (EvalContextOptions::output_predicates): with no declared outputs
  /// every IDB predicate is an output and every rule is live.
  bool eliminate_dead_rules = true;
  /// Replace the greedy bound-column atom order with a cost-based one
  /// (DP over bodies of up to kMaxDpAtoms atoms, driven by relation row
  /// counts and sampled posting-list lengths; greedy beyond that).
  bool reorder_joins = true;
  /// Compute structurally equal join prefixes shared by several plans of
  /// a stage once per stage into a cached intermediate.
  bool share_subplans = true;

  static OptimizerPasses All() { return OptimizerPasses{}; }
  static OptimizerPasses None() { return {false, false, false}; }

  bool any() const {
    return eliminate_dead_rules || reorder_joins || share_subplans;
  }

  bool operator==(const OptimizerPasses& o) const {
    return eliminate_dead_rules == o.eliminate_dead_rules &&
           reorder_joins == o.reorder_joins &&
           share_subplans == o.share_subplans;
  }
  bool operator!=(const OptimizerPasses& o) const { return !(*this == o); }

  /// Join reordering searches orders exhaustively (DP over subsets) up to
  /// this many positive body atoms and keeps the greedy order beyond.
  static constexpr size_t kMaxDpAtoms = 8;
};

/// Parses a pass list: "all", "none", or a comma-separated subset of
/// {dce, reorder, share} enabling exactly the named passes.
/// InvalidArgument on unknown names.
Result<OptimizerPasses> ParseOptimizerPasses(std::string_view text);

/// Canonical rendering: "all", "none", or the comma-joined enabled pass
/// names — ParseOptimizerPasses round-trips it.
std::string OptimizerPassesName(const OptimizerPasses& passes);

}  // namespace inflog

#endif  // INFLOG_OPT_PASSES_H_
