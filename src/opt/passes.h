// Optimizer pass selection: which optimizer passes run between parsing
// and FixpointDriver dispatch.
//
// Two families share this selection:
//  - Plan-level passes (dce / reorder / share, src/opt/pass_manager.h)
//    run between rule lowering and fixpoint dispatch. Every plan pass
//    preserves the evaluated semantics (relations, stage sizes,
//    TupleStage) exactly; the selection only moves plan cost.
//  - Program-level rewrites (magic / inline, src/opt/program_rewrite.h)
//    run before lowering and only when output predicates are declared
//    (EvalContextOptions::output_predicates). They preserve the declared
//    output predicates' relations as SETS; non-output relations and
//    stage bookkeeping of a rewritten run are unspecified, mirroring the
//    dead-rule-elimination contract.
//
// This header is dependency-free below base/ so EvalContextOptions can
// embed the selection without the eval layer depending on the optimizer
// implementation.

#ifndef INFLOG_OPT_PASSES_H_
#define INFLOG_OPT_PASSES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace inflog {

/// Per-pass enable flags for the optimizer pipeline. Program rewrites
/// run first (inline → magic), then the plan pipeline runs the enabled
/// plan passes in the fixed order dead-rule elimination → join
/// reordering → subplan sharing.
struct OptimizerPasses {
  /// Drop rules whose head predicate cannot reach any output predicate
  /// in the dependency graph. Inert unless output predicates are named
  /// (EvalContextOptions::output_predicates): with no declared outputs
  /// every IDB predicate is an output and every rule is live.
  bool eliminate_dead_rules = true;
  /// Replace the greedy bound-column atom order with a cost-based one
  /// (DP over bodies of up to kMaxDpAtoms atoms, driven by relation row
  /// counts and sampled posting-list lengths; greedy beyond that).
  bool reorder_joins = true;
  /// Compute structurally equal join prefixes shared by several plans of
  /// a stage once per stage into a cached intermediate.
  bool share_subplans = true;
  /// Magic-sets / demand transformation: adorn the program from the
  /// declared outputs' binding patterns and guard rule bodies with
  /// magic_P_α seed predicates so fixpoints only derive demanded
  /// tuples. Inert without outputs; bails out (unrewritten program)
  /// when negation would cross a magic guard. See
  /// src/opt/program_rewrite.h for the exact applicability gates.
  bool magic_sets = true;
  /// Inline single-use non-recursive predicates into their one call
  /// site (body substitution with fresh-variable renaming); the inlined
  /// rule then disappears. Inert without outputs.
  bool inline_rules = true;

  static OptimizerPasses All() { return OptimizerPasses{}; }
  static OptimizerPasses None() { return {false, false, false, false, false}; }

  bool any() const {
    return eliminate_dead_rules || reorder_joins || share_subplans ||
           magic_sets || inline_rules;
  }

  bool operator==(const OptimizerPasses& o) const {
    return eliminate_dead_rules == o.eliminate_dead_rules &&
           reorder_joins == o.reorder_joins &&
           share_subplans == o.share_subplans && magic_sets == o.magic_sets &&
           inline_rules == o.inline_rules;
  }
  bool operator!=(const OptimizerPasses& o) const { return !(*this == o); }

  /// Join reordering searches orders exhaustively (DP over subsets) up to
  /// this many positive body atoms and keeps the greedy order beyond.
  static constexpr size_t kMaxDpAtoms = 8;
};

/// Parses a pass list: "all", "none", or a comma-separated subset of
/// OptimizerPassTokens() enabling exactly the named passes.
/// InvalidArgument on unknown names.
Result<OptimizerPasses> ParseOptimizerPasses(std::string_view text);

/// Canonical rendering: "all", "none", or the comma-joined enabled pass
/// names — ParseOptimizerPasses round-trips it.
std::string OptimizerPassesName(const OptimizerPasses& passes);

/// The individual pass tokens ParseOptimizerPasses accepts (excluding
/// the "all"/"none" aggregates), in canonical rendering order. Single
/// source of truth for CLI/bench token validation
/// (inflog_cli --list-optimize-passes, bench/run_all.sh).
std::vector<std::string_view> OptimizerPassTokens();

}  // namespace inflog

#endif  // INFLOG_OPT_PASSES_H_
