#include "src/opt/pass_manager.h"

#include <numeric>

#include "src/base/logging.h"
#include "src/opt/dead_rules.h"
#include "src/opt/join_reorder.h"
#include "src/opt/subplan_share.h"

namespace inflog {
namespace {

/// The idb_index of the predicate a delta plan's delta-scan op reads.
int DeltaScanIdb(const Program& program, const RulePlan& plan) {
  for (const PlanOp& op : plan.ops) {
    if (op.kind == PlanOp::Kind::kMatch && op.is_delta_scan) {
      return program.predicate(op.predicate).idb_index;
    }
  }
  // A never_fires plan may have no ops; slicing then degenerates to one
  // empty task.
  return -1;
}

}  // namespace

PassManager MakeStandardPipeline(const OptimizerPasses& passes) {
  PassManager manager;
  if (passes.eliminate_dead_rules) {
    manager.Add(std::make_unique<DeadRulePass>());
  }
  if (passes.reorder_joins) {
    manager.Add(std::make_unique<JoinReorderPass>());
  }
  if (passes.share_subplans) {
    manager.Add(std::make_unique<SubplanSharePass>());
  }
  return manager;
}

StagePlans CompileStagePlans(const EvalContext& ctx, const IdbState& state,
                             const std::vector<size_t>& rule_subset,
                             bool use_deltas, OptCounters* counters) {
  const Program& program = ctx.program();
  const size_t num_idb = program.idb_predicates().size();

  std::vector<size_t> rules = rule_subset;
  if (rules.empty()) {
    rules.resize(program.rules().size());
    std::iota(rules.begin(), rules.end(), 0);
  }

  PassContext pctx;
  pctx.ctx = &ctx;
  pctx.state = &state;
  pctx.use_deltas = use_deltas;
  pctx.dynamic_idb.assign(num_idb, false);
  for (size_t i = 0; i < num_idb; ++i) {
    pctx.dynamic_idb[i] = ctx.IsDynamic(program.idb_predicates()[i]);
  }

  // Greedy lowering: a full plan per rule (stage 0 / naive passes), and
  // one delta plan per (rule, dynamic positive literal) for later stages.
  StagePlans plans;
  plans.rules.reserve(rules.size());
  for (size_t r : rules) {
    const Rule& rule = program.rules()[r];
    const int idb = program.predicate(rule.head.predicate).idb_index;
    INFLOG_CHECK(idb >= 0 && pctx.dynamic_idb[idb])
        << "fixpoint rule subset must have dynamic head predicates";
    CompiledRulePlans c;
    c.rule_index = r;
    c.head_idb = idb;
    c.full = PlanRule(program, r, pctx.dynamic_idb, -1);
    if (use_deltas) {
      for (int lit : DeltaCandidates(program, rule, pctx.dynamic_idb)) {
        RulePlan plan = PlanRule(program, r, pctx.dynamic_idb, lit);
        const int delta_idb = DeltaScanIdb(program, plan);
        c.deltas.push_back(CompiledDeltaPlan{std::move(plan), delta_idb});
      }
    }
    plans.rules.push_back(std::move(c));
  }

  OptCounters local;
  MakeStandardPipeline(ctx.optimizer_passes())
      .Run(pctx, &plans, counters != nullptr ? counters : &local);
  return plans;
}

}  // namespace inflog
