// The plan-optimizer pass pipeline: a PlanPass interface, the PassManager
// that runs passes in order, and CompileStagePlans — the one entry point
// the fixpoint driver calls to lower a rule subset into optimized plans.
//
// Pipeline position: parsing → EvalContext binding → CompileStagePlans
// (greedy lowering, then the enabled passes in the fixed order dead-rule
// elimination → join reordering → subplan sharing) → RelationalConsequence
// dispatch. Every pass preserves the evaluated relations, stage count,
// per-stage sizes, and tuple stages exactly; only plan cost moves.
// (The magic/inline *program* rewrites — program_rewrite.h — act a
// level above this pipeline, rewriting the rule set before lowering;
// they carry the weaker outputs-as-sets contract of passes.h, not the
// exact one here.)
//
// Determinism: a pass may read only shard-invariant statistics (relation
// sizes, shard-summed posting totals, content-ordered samples — see
// cost_model.h) and must not consult the thread count, shard count,
// scheduler, or use_join_indexes, so one (program, database, pass
// selection) always compiles to one plan set.

#ifndef INFLOG_OPT_PASS_MANAGER_H_
#define INFLOG_OPT_PASS_MANAGER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/eval/context.h"
#include "src/opt/plan_ir.h"

namespace inflog {

/// Read-only compile-time inputs shared by every pass.
struct PassContext {
  const EvalContext* ctx = nullptr;
  /// The IdbState the plans will run against, at compile time: fixed IDB
  /// strata and EDB relations carry their real contents (the cost
  /// model's statistics); dynamic relations are usually still empty.
  const IdbState* state = nullptr;
  /// Per idb_index, whether the predicate evolves in this run.
  std::vector<bool> dynamic_idb;
  bool use_deltas = true;
};

/// One plan transformation. Run() rewrites `plans` in place and records
/// what it did in `counters`.
class PlanPass {
 public:
  virtual ~PlanPass() = default;
  virtual std::string_view name() const = 0;
  virtual void Run(const PassContext& pctx, StagePlans* plans,
                   OptCounters* counters) = 0;
};

/// Runs registered passes in registration order.
class PassManager {
 public:
  void Add(std::unique_ptr<PlanPass> pass) {
    passes_.push_back(std::move(pass));
  }

  void Run(const PassContext& pctx, StagePlans* plans,
           OptCounters* counters) const {
    for (const std::unique_ptr<PlanPass>& pass : passes_) {
      pass->Run(pctx, plans, counters);
    }
  }

  size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<PlanPass>> passes_;
};

/// The standard pipeline for `passes`: dead-rule elimination, join
/// reordering, subplan sharing — each present iff enabled.
PassManager MakeStandardPipeline(const OptimizerPasses& passes);

/// Lowers `rule_subset` (indices into program.rules(); empty = all rules)
/// with the greedy planner, then runs the pipeline selected by
/// ctx.optimizer_passes(). Every rule's head predicate must be dynamic in
/// `ctx`. `counters` may be null.
StagePlans CompileStagePlans(const EvalContext& ctx, const IdbState& state,
                             const std::vector<size_t>& rule_subset,
                             bool use_deltas, OptCounters* counters);

}  // namespace inflog

#endif  // INFLOG_OPT_PASS_MANAGER_H_
