// The IR the plan-optimizer pipeline transforms: every compiled plan of
// one fixpoint stage operator, as lowered from the rules by the greedy
// planner (src/eval/plan.h) and consumed by RelationalConsequence.
//
// A StagePlans value is a pure function of (program, rule subset,
// use_deltas, pass selection, compile-time relation contents); none of
// its fields depends on the thread count, shard count, or scheduler —
// which is what lets the optimized plans keep the engine's bit-identical
// determinism guarantee across the parallel sweep.

#ifndef INFLOG_OPT_PLAN_IR_H_
#define INFLOG_OPT_PLAN_IR_H_

#include <cstddef>
#include <vector>

#include "src/eval/plan.h"

namespace inflog {

/// One semi-naive delta plan of a rule.
struct CompiledDeltaPlan {
  RulePlan plan;
  /// idb_index of the predicate whose delta rows the plan scans, or -1
  /// when the plan has no delta-scan op (subplan-sharing consumers whose
  /// delta scan moved into the shared prefix, and never-fires plans).
  int delta_idb = -1;
};

/// All plans of one rule: the full plan (stage 0 / naive passes) and one
/// delta plan per dynamic positive body literal.
struct CompiledRulePlans {
  size_t rule_index = 0;
  /// idb_index of the rule's head predicate.
  int head_idb = -1;
  RulePlan full;
  std::vector<CompiledDeltaPlan> deltas;
};

/// A shared join prefix materialized once per stage (subplan sharing).
/// The plan has has_projection set: executing it stages the projected
/// prefix bindings into an intermediate relation of arity `arity`, which
/// consumer plans read through kMatch ops whose shared_source holds this
/// subplan's index.
struct SharedSubplan {
  RulePlan plan;
  /// As in CompiledDeltaPlan; ≥ 0 only when delta_pass.
  int delta_idb = -1;
  /// True when the prefix contains a delta scan: the intermediate is
  /// recomputed before every delta stage and read by delta plans. False
  /// for full-pass prefixes, recomputed before every full pass.
  bool delta_pass = false;
  /// Arity of the intermediate (number of projected variables).
  size_t arity = 0;
};

/// The full plan set of one stage operator — what the passes transform
/// and the fixpoint driver executes.
struct StagePlans {
  std::vector<CompiledRulePlans> rules;
  /// Shared intermediates, indexed by PlanOp::shared_source.
  std::vector<SharedSubplan> shared;
};

/// What each pass did, surfaced as the EvalStats opt_* counters.
struct OptCounters {
  uint64_t rules_eliminated = 0;
  uint64_t plans_reordered = 0;
  uint64_t subplans_shared = 0;
  uint64_t shared_prefixes = 0;
};

}  // namespace inflog

#endif  // INFLOG_OPT_PLAN_IR_H_
