// Common-subplan sharing: structurally equal join prefixes appearing in
// several plans of a stage are computed once per stage into a cached
// intermediate relation (GVN for joins).
//
// Plans are fingerprinted prefix by prefix under canonical variable
// renaming; a prefix is shareable when it ends at an op boundary before a
// kMatch (or at the plan's end), holds at least two kMatch ops, and holds
// no kEnumerate. For each group of ≥ 2 plans agreeing on a prefix, the
// pass emits one donor plan — the prefix plus a projection of every
// variable any member's suffix or head still needs — and rewrites each
// member to scan the donor's intermediate (a kMatch with shared_source
// set) followed by its own suffix. Full-pass and delta-pass prefixes
// group separately (the delta scan is part of the fingerprint); a delta
// plan whose delta scan moves into the prefix becomes delta-less
// (delta_idb -1) and re-reads the fresh intermediate each stage.
//
// Soundness: the suffix and head read only projected variables, and the
// per-stage head-tuple SET is invariant under deduplicating the prefix
// assignments — so relations, stage sizes, and tuple stages are exactly
// those of the unshared plans (EvalStats::derivations alone can drop).

#ifndef INFLOG_OPT_SUBPLAN_SHARE_H_
#define INFLOG_OPT_SUBPLAN_SHARE_H_

#include "src/opt/pass_manager.h"

namespace inflog {

class SubplanSharePass : public PlanPass {
 public:
  std::string_view name() const override { return "share"; }
  void Run(const PassContext& pctx, StagePlans* plans,
           OptCounters* counters) override;
};

}  // namespace inflog

#endif  // INFLOG_OPT_SUBPLAN_SHARE_H_
