// Magic-sets / demand transformation (Bancilhon–Maier–Sagiv–Ullman;
// Beeri–Ramakrishnan "magic templates"), restricted to programs whose
// needed part is negation-free on IDB predicates (the driver in
// src/opt/program_rewrite.h checks the gate).
//
// Starting from the declared outputs with the all-free adornment, a
// worklist propagates binding patterns through rule bodies with the
// left-to-right sideways-information-passing strategy (constants and
// head-bound variables are bound; a positive atom binds its variables
// for the literals to its right; an equality with one side bound binds
// the other). Each demanded (predicate, adornment α ≠ all-free) pair
// gets an adorned predicate P_α (same arity) whose rules are the
// original rules guarded by magic_P_α(bound args), and each call site
// contributes a magic rule deriving the demand from the consumer's
// guard plus its body prefix. All-free demand keeps the original
// predicate name, so output relations keep their names and full
// contents. Rules not needed from the outputs are copied verbatim.

#ifndef INFLOG_OPT_MAGIC_H_
#define INFLOG_OPT_MAGIC_H_

#include <cstdint>
#include <vector>

#include "src/opt/program_rewrite.h"

namespace inflog {

/// Applies the transformation to `ws` for output predicate ids
/// `outputs`. Returns the number of magic (demand) rules generated;
/// 0 means no call site had a bound argument and `ws` was left
/// untouched.
uint64_t ApplyMagicSets(const std::vector<uint32_t>& outputs,
                        RewriteWorkspace* ws);

}  // namespace inflog

#endif  // INFLOG_OPT_MAGIC_H_
