#include "src/opt/join_reorder.h"

#include <algorithm>
#include <limits>

#include "src/base/logging.h"
#include "src/opt/cost_model.h"
#include "src/opt/passes.h"

namespace inflog {
namespace {

/// Cap keeping DP cardinalities finite under deep joins.
constexpr double kMaxCard = 1e24;

/// Marks the variables of every literal term in `bound`.
void BindLiteralVars(const Literal& lit, std::vector<bool>* bound) {
  for (const Term& t : lit.args) {
    if (t.IsVariable()) (*bound)[t.id] = true;
  }
}

/// Mirrors the planner's pre-join equality flushing: repeatedly binds the
/// unbound side of every body equality whose other side is a constant or
/// an already-bound variable, so the DP sees the same initially known
/// variables the replanned plan will.
void FlushEqualities(const Rule& rule, std::vector<bool>* bound) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kEq) continue;
      const Term& a = lit.args[0];
      const Term& b = lit.args[1];
      const bool a_known = a.IsConstant() || (*bound)[a.id];
      const bool b_known = b.IsConstant() || (*bound)[b.id];
      if (a_known && !b_known) {
        (*bound)[b.id] = true;
        changed = true;
      } else if (b_known && !a_known) {
        (*bound)[a.id] = true;
        changed = true;
      }
    }
  }
}

/// One plan's DP. Returns true (and fills `order`, body indices) when a
/// strictly cheaper order than `plan.atom_order` exists.
bool FindCheaperOrder(const PassContext& pctx, const CostModel& model,
                      const RulePlan& plan, std::vector<size_t>* order) {
  const size_t n = plan.atom_order.size();
  if (plan.never_fires || n < 2 || n > OptimizerPasses::kMaxDpAtoms) {
    return false;
  }
  const Rule& rule = pctx.ctx->program().rules()[plan.rule_index];

  // Canonical atom numbering: ascending body index, independent of the
  // greedy placement order.
  std::vector<size_t> atoms = plan.atom_order;
  std::sort(atoms.begin(), atoms.end());

  std::vector<bool> bound0(rule.num_vars, false);
  if (plan.delta_literal >= 0) {
    BindLiteralVars(rule.body[plan.delta_literal], &bound0);
  }
  FlushEqualities(rule, &bound0);

  const size_t full = (size_t{1} << n) - 1;
  auto bound_of = [&](size_t mask) {
    std::vector<bool> bound = bound0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) BindLiteralVars(rule.body[atoms[i]], &bound);
    }
    return bound;
  };

  // card[mask]: estimated rows of the partial join over `mask`, computed
  // by always expanding the lowest atom of the mask — a pure function of
  // the set, shared by every order the DP compares.
  std::vector<double> card(full + 1, 1.0);
  for (size_t mask = 1; mask <= full; ++mask) {
    size_t low = 0;
    while (!(mask & (size_t{1} << low))) ++low;
    const size_t prev = mask & ~(size_t{1} << low);
    const std::vector<bool> bound = bound_of(prev);
    card[mask] = std::min(
        kMaxCard,
        card[prev] * model.EstimateMatches(rule.body[atoms[low]], bound));
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(full + 1, kInf);
  std::vector<int> parent(full + 1, -1);
  cost[0] = 0.0;
  for (size_t mask = 1; mask <= full; ++mask) {
    for (size_t last = 0; last < n; ++last) {
      if (!(mask & (size_t{1} << last))) continue;
      const size_t prev = mask & ~(size_t{1} << last);
      const std::vector<bool> bound = bound_of(prev);
      const double c =
          cost[prev] +
          card[prev] * model.EstimateProbeCost(rule.body[atoms[last]], bound);
      if (c < cost[mask]) {  // strict: first-minimal last wins ties
        cost[mask] = c;
        parent[mask] = static_cast<int>(last);
      }
    }
  }

  // Cost of the greedy order under the same model; only a strictly
  // cheaper DP order justifies replanning.
  double greedy_cost = 0.0;
  {
    std::vector<bool> bound = bound0;
    double rows = 1.0;
    for (size_t body_index : plan.atom_order) {
      const Literal& atom = rule.body[body_index];
      greedy_cost += rows * model.EstimateProbeCost(atom, bound);
      rows = std::min(kMaxCard, rows * model.EstimateMatches(atom, bound));
      BindLiteralVars(atom, &bound);
    }
  }
  if (!(cost[full] < greedy_cost)) return false;

  order->clear();
  order->resize(n);
  size_t mask = full;
  for (size_t i = n; i-- > 0;) {
    const int last = parent[mask];
    INFLOG_CHECK(last >= 0);
    (*order)[i] = atoms[last];
    mask &= ~(size_t{1} << last);
  }
  return *order != plan.atom_order;
}

void MaybeReorder(const PassContext& pctx, const CostModel& model,
                  RulePlan* plan, int delta_literal, OptCounters* counters) {
  std::vector<size_t> order;
  if (!FindCheaperOrder(pctx, model, *plan, &order)) return;
  *plan = PlanRuleWithOrder(pctx.ctx->program(), plan->rule_index,
                            pctx.dynamic_idb, delta_literal, order);
  ++counters->plans_reordered;
}

}  // namespace

void JoinReorderPass::Run(const PassContext& pctx, StagePlans* plans,
                          OptCounters* counters) {
  const CostModel model(*pctx.ctx, *pctx.state);
  for (CompiledRulePlans& c : plans->rules) {
    MaybeReorder(pctx, model, &c.full, -1, counters);
    for (CompiledDeltaPlan& d : c.deltas) {
      MaybeReorder(pctx, model, &d.plan, d.plan.delta_literal, counters);
    }
  }
}

}  // namespace inflog
