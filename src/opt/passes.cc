#include "src/opt/passes.h"

#include "src/base/strings.h"

namespace inflog {

namespace {

struct TokenEntry {
  std::string_view name;
  bool OptimizerPasses::* member;
};

// Canonical token table: parse, render, and --list-optimize-passes all
// walk this, so a new pass cannot be selectable but unlisted (or vice
// versa).
constexpr TokenEntry kTokens[] = {
    {"dce", &OptimizerPasses::eliminate_dead_rules},
    {"reorder", &OptimizerPasses::reorder_joins},
    {"share", &OptimizerPasses::share_subplans},
    {"magic", &OptimizerPasses::magic_sets},
    {"inline", &OptimizerPasses::inline_rules},
};

}  // namespace

Result<OptimizerPasses> ParseOptimizerPasses(std::string_view text) {
  if (text == "all") return OptimizerPasses::All();
  if (text == "none") return OptimizerPasses::None();
  OptimizerPasses passes = OptimizerPasses::None();
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string_view name =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    bool known = false;
    for (const TokenEntry& entry : kTokens) {
      if (name == entry.name) {
        passes.*entry.member = true;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          StrCat("unknown optimizer pass: '", std::string(name),
                 "' (expected all|none or a comma list of "
                 "dce|reorder|share|magic|inline)"));
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return passes;
}

std::string OptimizerPassesName(const OptimizerPasses& passes) {
  if (passes == OptimizerPasses::All()) return "all";
  if (!passes.any()) return "none";
  std::string out;
  for (const TokenEntry& entry : kTokens) {
    if (passes.*entry.member) {
      if (!out.empty()) out += ",";
      out += entry.name;
    }
  }
  return out;
}

std::vector<std::string_view> OptimizerPassTokens() {
  std::vector<std::string_view> names;
  for (const TokenEntry& entry : kTokens) names.push_back(entry.name);
  return names;
}

}  // namespace inflog
