#include "src/opt/passes.h"

#include "src/base/strings.h"

namespace inflog {

Result<OptimizerPasses> ParseOptimizerPasses(std::string_view text) {
  if (text == "all") return OptimizerPasses::All();
  if (text == "none") return OptimizerPasses::None();
  OptimizerPasses passes = OptimizerPasses::None();
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string_view name =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    if (name == "dce") {
      passes.eliminate_dead_rules = true;
    } else if (name == "reorder") {
      passes.reorder_joins = true;
    } else if (name == "share") {
      passes.share_subplans = true;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown optimizer pass: '", std::string(name),
                 "' (expected all|none or a comma list of dce|reorder|share)"));
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return passes;
}

std::string OptimizerPassesName(const OptimizerPasses& passes) {
  if (passes == OptimizerPasses::All()) return "all";
  if (!passes.any()) return "none";
  std::string out;
  auto append = [&](std::string_view name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (passes.eliminate_dead_rules) append("dce");
  if (passes.reorder_joins) append("reorder");
  if (passes.share_subplans) append("share");
  return out;
}

}  // namespace inflog
