#include "src/opt/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace inflog {
namespace {

/// Discount applied per known column of a dynamic (still empty at compile
/// time) predicate: each bound column is assumed to shrink the match set
/// by this factor, mirroring a uniform column over a small domain.
constexpr double kDynamicColumnDiscount = 4.0;

struct SampleKey {
  size_t hash;
  Tuple row;

  bool operator<(const SampleKey& o) const {
    if (hash != o.hash) return hash < o.hash;
    return std::lexicographical_compare(row.begin(), row.end(),
                                        o.row.begin(), o.row.end());
  }
};

}  // namespace

double CostModel::ColumnSelectivity(const Relation& rel, size_t col) const {
  const auto key = std::make_pair(&rel, col);
  const auto it = selectivity_cache_.find(key);
  if (it != selectivity_cache_.end()) return it->second;

  // Bottom-k rows by (hash, content): a pure function of the tuple set,
  // so the sample — and every estimate built on it — is identical
  // whatever the shard count or insertion order.
  std::vector<SampleKey> sample;
  sample.reserve(kSelectivitySamples + 1);
  for (size_t s = 0; s < rel.num_shards(); ++s) {
    const Relation::ShardView view = rel.shard(s);
    for (size_t r = 0; r < view.size(); ++r) {
      if (!view.IsLive(r)) continue;
      const TupleView row = view.Row(r);
      SampleKey k{HashTuple(row), Tuple(row.begin(), row.end())};
      if (sample.size() == kSelectivitySamples &&
          !(k < sample.front())) {
        continue;
      }
      sample.push_back(std::move(k));
      std::push_heap(sample.begin(), sample.end());
      if (sample.size() > kSelectivitySamples) {
        std::pop_heap(sample.begin(), sample.end());
        sample.pop_back();
      }
    }
  }

  double selectivity = 1.0;
  if (!sample.empty()) {
    std::vector<std::span<const uint32_t>> spans(rel.num_shards());
    double total = 0;
    for (const SampleKey& k : sample) {
      total += static_cast<double>(
          rel.EqualRowsPerShard(col, k.row[col], spans.data()));
    }
    selectivity =
        std::max(1.0, total / static_cast<double>(sample.size()));
  }
  selectivity_cache_.emplace(key, selectivity);
  return selectivity;
}

std::vector<double> CostModel::KnownColumnSelectivities(
    const Literal& atom, const std::vector<bool>& bound) const {
  std::vector<double> sels;
  const Relation& rel = ctx_->Resolve(atom.predicate, *state_);
  std::vector<std::span<const uint32_t>> spans(rel.num_shards());
  for (size_t col = 0; col < atom.args.size(); ++col) {
    const Term& t = atom.args[col];
    if (t.IsConstant()) {
      // Exact: the posting total for this constant, shard-summed.
      sels.push_back(static_cast<double>(
          rel.EqualRowsPerShard(col, t.id, spans.data())));
    } else if (bound[t.id]) {
      sels.push_back(ColumnSelectivity(rel, col));
    }
  }
  return sels;
}

double CostModel::EstimateMatches(const Literal& atom,
                                  const std::vector<bool>& bound) const {
  INFLOG_DCHECK(atom.IsPositiveAtom());
  size_t known = 0;
  for (const Term& t : atom.args) {
    if (t.IsConstant() || bound[t.id]) ++known;
  }
  if (ctx_->IsDynamic(atom.predicate)) {
    // Dynamic relations are (usually) still empty when plans compile;
    // assume a universe-sized relation that each known column shrinks.
    double est = std::max<double>(1.0, ctx_->universe().size());
    for (size_t i = 0; i < known; ++i) est /= kDynamicColumnDiscount;
    return std::max(est, 1.0);
  }
  const Relation& rel = ctx_->Resolve(atom.predicate, *state_);
  const double rows = static_cast<double>(rel.size());
  if (rows == 0) return 0.0;
  // Independence assumption: each known column keeps sel_c / rows of the
  // rows, so matches = rows · Π (sel_c / rows).
  double est = rows;
  for (double sel : KnownColumnSelectivities(atom, bound)) {
    est *= sel / rows;
  }
  return est;
}

double CostModel::EstimateProbeCost(const Literal& atom,
                                    const std::vector<bool>& bound) const {
  INFLOG_DCHECK(atom.IsPositiveAtom());
  if (ctx_->IsDynamic(atom.predicate)) {
    return std::max(EstimateMatches(atom, bound), 1.0);
  }
  const Relation& rel = ctx_->Resolve(atom.predicate, *state_);
  const double rows = static_cast<double>(rel.size());
  if (rows == 0) return 1.0;
  const std::vector<double> sels = KnownColumnSelectivities(atom, bound);
  if (sels.empty()) return rows;  // no known column: full scan
  // The executor walks the shortest posting list of the known columns.
  double shortest = sels[0];
  for (double sel : sels) shortest = std::min(shortest, sel);
  return std::max(shortest, 1.0);
}

}  // namespace inflog
