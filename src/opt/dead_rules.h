// Dead-rule elimination: drop rules whose head predicate cannot reach any
// declared output predicate in the program's dependency graph.
//
// Inert unless the run names output predicates
// (EvalContextOptions::output_predicates → EvalContext::output_preds):
// with no declared outputs every IDB predicate is observable and every
// rule is live. Reachability runs over the whole program — not just the
// compiled subset — so a stratified stratum keeps exactly the rules some
// later (or its own) stratum's queried predicate still needs. Negated
// body atoms count as dependencies: deriving fewer P-facts would change
// ¬P, so P's rules stay live whenever P is needed.

#ifndef INFLOG_OPT_DEAD_RULES_H_
#define INFLOG_OPT_DEAD_RULES_H_

#include "src/opt/pass_manager.h"

namespace inflog {

class DeadRulePass : public PlanPass {
 public:
  std::string_view name() const override { return "dce"; }
  void Run(const PassContext& pctx, StagePlans* plans,
           OptCounters* counters) override;
};

}  // namespace inflog

#endif  // INFLOG_OPT_DEAD_RULES_H_
