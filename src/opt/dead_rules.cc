#include "src/opt/dead_rules.h"

#include <algorithm>

namespace inflog {

void DeadRulePass::Run(const PassContext& pctx, StagePlans* plans,
                       OptCounters* counters) {
  const std::vector<uint32_t>& outputs = pctx.ctx->output_preds();
  if (outputs.empty()) return;
  const Program& program = pctx.ctx->program();

  // Predicate-level reachability closure from the outputs: a predicate is
  // needed iff an output (transitively) depends on it through any rule —
  // positively or under negation.
  std::vector<bool> needed(program.num_predicates(), false);
  std::vector<uint32_t> frontier;
  for (uint32_t pred : outputs) {
    if (!needed[pred]) {
      needed[pred] = true;
      frontier.push_back(pred);
    }
  }
  while (!frontier.empty()) {
    std::vector<uint32_t> next;
    for (const Rule& rule : program.rules()) {
      if (!needed[rule.head.predicate]) continue;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegAtom) {
          continue;
        }
        if (!needed[lit.predicate]) {
          needed[lit.predicate] = true;
          next.push_back(lit.predicate);
        }
      }
    }
    frontier = std::move(next);
  }

  const size_t before = plans->rules.size();
  plans->rules.erase(
      std::remove_if(plans->rules.begin(), plans->rules.end(),
                     [&](const CompiledRulePlans& c) {
                       const Rule& rule = program.rules()[c.rule_index];
                       return !needed[rule.head.predicate];
                     }),
      plans->rules.end());
  counters->rules_eliminated += before - plans->rules.size();
}

}  // namespace inflog
