// Cost-based join reordering: replace the greedy bound-column atom order
// with the cheapest one found by dynamic programming over atom subsets.
//
// For each plan with 2..OptimizerPasses::kMaxDpAtoms orderable atoms the
// pass runs the classic DP: cost(S) = min over last ∈ S of
// cost(S∖last) + card(S∖last) · probe_cost(last | bound(S∖last)), with
// cardinalities and probe costs from the CostModel and card(S) computed
// by a canonical decomposition (always expanding the lowest-index atom)
// so the estimate is a function of the set, not of the search path. The
// delta-literal pin is kept — the delta is always scanned first and its
// variables seed the bound set — as are equality bindings checkable
// before any join. Bodies beyond kMaxDpAtoms keep the greedy order.
//
// The plan is replanned (PlanRuleWithOrder) only when the DP order is
// strictly cheaper than the greedy one, so --optimize=none and cost ties
// reproduce today's plans exactly. Ties inside the DP break toward the
// lowest atom index; all inputs are shard-invariant, so one program +
// database always reorders the same way.

#ifndef INFLOG_OPT_JOIN_REORDER_H_
#define INFLOG_OPT_JOIN_REORDER_H_

#include "src/opt/pass_manager.h"

namespace inflog {

class JoinReorderPass : public PlanPass {
 public:
  std::string_view name() const override { return "reorder"; }
  void Run(const PassContext& pctx, StagePlans* plans,
           OptCounters* counters) override;
};

}  // namespace inflog

#endif  // INFLOG_OPT_JOIN_REORDER_H_
