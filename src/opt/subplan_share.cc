#include "src/opt/subplan_share.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace inflog {
namespace {

/// First-occurrence variable renaming, so prefixes differing only in
/// variable ids fingerprint identically.
class Canonicalizer {
 public:
  uint32_t Canon(uint32_t var) {
    const auto [it, inserted] = map_.emplace(var, next_);
    if (inserted) {
      inverse_.push_back(var);
      ++next_;
    }
    return it->second;
  }

  void AppendTerm(const Term& t, std::string* out) {
    if (t.IsConstant()) {
      *out += StrCat("c", t.id);
    } else {
      *out += StrCat("v", Canon(t.id));
    }
  }

  /// Canon id of `var`, or -1 when the prefix never mentioned it.
  int CanonOf(uint32_t var) const {
    const auto it = map_.find(var);
    return it == map_.end() ? -1 : static_cast<int>(it->second);
  }

  /// The member's own variable id for canon id `c`.
  uint32_t Original(uint32_t c) const { return inverse_[c]; }

  size_t size() const { return inverse_.size(); }

 private:
  std::unordered_map<uint32_t, uint32_t> map_;
  std::vector<uint32_t> inverse_;
  uint32_t next_ = 0;
};

/// One plan eligible for rewriting, with the bookkeeping a rewrite needs.
struct PlanRef {
  RulePlan* plan = nullptr;
  /// The stored delta_idb to clear when the delta scan moves into the
  /// prefix; null for full plans.
  int* delta_idb = nullptr;
  bool delta_pass = false;
};

/// One (plan, cut) prefix candidate.
struct Candidate {
  size_t plan_id;
  size_t cut;      ///< Prefix is ops[0, cut).
  size_t matches;  ///< kMatch ops in the prefix.
  std::string fp;
};

/// Serializes one op into the running fingerprint. Key columns are
/// implied by the op sequence (known-ness is a function of the preceding
/// ops), so they are not serialized.
void AppendOp(const PlanOp& op, Canonicalizer* canon, std::string* fp) {
  switch (op.kind) {
    case PlanOp::Kind::kMatch:
      *fp += StrCat(op.is_delta_scan ? "|D" : "|M", op.predicate);
      for (const Term& t : op.args) canon->AppendTerm(t, fp);
      break;
    case PlanOp::Kind::kBindEq:
      *fp += "|B";
      canon->AppendTerm(Term::Var(op.target_var), fp);
      canon->AppendTerm(op.source, fp);
      break;
    case PlanOp::Kind::kFilterEq:
      *fp += "|E";
      canon->AppendTerm(op.lhs, fp);
      canon->AppendTerm(op.rhs, fp);
      break;
    case PlanOp::Kind::kFilterNeq:
      *fp += "|N";
      canon->AppendTerm(op.lhs, fp);
      canon->AppendTerm(op.rhs, fp);
      break;
    case PlanOp::Kind::kFilterNegAtom:
      *fp += StrCat("|G", op.predicate);
      for (const Term& t : op.args) canon->AppendTerm(t, fp);
      break;
    case PlanOp::Kind::kEnumerate:
      *fp += "|U";  // never shared; kept for completeness
      break;
  }
}

/// Rebuilds the canonical renaming of `plan`'s prefix ops[0, cut).
Canonicalizer PrefixCanon(const RulePlan& plan, size_t cut) {
  Canonicalizer canon;
  std::string sink;
  for (size_t i = 0; i < cut; ++i) AppendOp(plan.ops[i], &canon, &sink);
  return canon;
}

/// Canon ids of the prefix variables the suffix ops[cut, ...) or the rule
/// head still reads.
std::vector<uint32_t> NeededCanonVars(const Rule& rule, const RulePlan& plan,
                                      size_t cut,
                                      const Canonicalizer& canon) {
  std::unordered_set<uint32_t> needed;
  auto use = [&](const Term& t) {
    if (!t.IsVariable()) return;
    const int c = canon.CanonOf(t.id);
    if (c >= 0) needed.insert(static_cast<uint32_t>(c));
  };
  for (size_t i = cut; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    switch (op.kind) {
      case PlanOp::Kind::kMatch:
      case PlanOp::Kind::kFilterNegAtom:
        for (const Term& t : op.args) use(t);
        break;
      case PlanOp::Kind::kBindEq:
        use(op.source);
        break;
      case PlanOp::Kind::kFilterEq:
      case PlanOp::Kind::kFilterNeq:
        use(op.lhs);
        use(op.rhs);
        break;
      case PlanOp::Kind::kEnumerate:
        break;  // enumerated variables are unbound by construction
    }
  }
  for (const Term& t : rule.head.args) use(t);
  std::vector<uint32_t> out(needed.begin(), needed.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// The idb_index scanned by the plan's delta op, or -1.
int PrefixDeltaIdb(const Program& program, const RulePlan& plan,
                   size_t cut) {
  for (size_t i = 0; i < cut; ++i) {
    const PlanOp& op = plan.ops[i];
    if (op.kind == PlanOp::Kind::kMatch && op.is_delta_scan) {
      return program.predicate(op.predicate).idb_index;
    }
  }
  return -1;
}

}  // namespace

void SubplanSharePass::Run(const PassContext& pctx, StagePlans* plans,
                           OptCounters* counters) {
  const Program& program = pctx.ctx->program();

  // Every rewritable plan, in program order (rules, then full before
  // deltas) — the deterministic tie-break order for everything below.
  std::vector<PlanRef> refs;
  for (CompiledRulePlans& c : plans->rules) {
    refs.push_back(PlanRef{&c.full, nullptr, false});
    for (CompiledDeltaPlan& d : c.deltas) {
      refs.push_back(PlanRef{&d.plan, &d.delta_idb, true});
    }
  }

  // Enumerate eligible prefixes: cuts at op boundaries before a kMatch or
  // at the plan's end, with ≥ 2 matches and no kEnumerate inside.
  std::vector<Candidate> candidates;
  for (size_t p = 0; p < refs.size(); ++p) {
    const RulePlan& plan = *refs[p].plan;
    if (plan.never_fires || plan.has_projection) continue;
    Canonicalizer canon;
    std::string fp(refs[p].delta_pass ? "d" : "f");
    size_t matches = 0;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      const PlanOp& op = plan.ops[i];
      if (op.kind == PlanOp::Kind::kEnumerate) break;
      if (op.kind == PlanOp::Kind::kMatch && matches >= 2) {
        candidates.push_back(Candidate{p, i, matches, fp});
      }
      if (op.kind == PlanOp::Kind::kMatch) ++matches;
      AppendOp(op, &canon, &fp);
      if (i + 1 == plan.ops.size() && matches >= 2) {
        candidates.push_back(Candidate{p, i + 1, matches, fp});
      }
    }
  }

  // Group by fingerprint, keeping first-seen order for the final
  // tie-break.
  std::map<std::string, std::vector<size_t>> by_fp;
  std::vector<const std::string*> fp_order;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto [it, inserted] = by_fp.try_emplace(candidates[i].fp);
    if (inserted) fp_order.push_back(&it->first);
    it->second.push_back(i);
  }
  struct Group {
    size_t first_seen;
    const std::vector<size_t>* members;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < fp_order.size(); ++i) {
    const std::vector<size_t>& members = by_fp[*fp_order[i]];
    if (members.size() >= 2) groups.push_back(Group{i, &members});
  }
  // Prefer the biggest shared joins: more matches first, then longer
  // prefixes, then wider groups, then first seen.
  std::sort(groups.begin(), groups.end(), [&](const Group& a, const Group& b) {
    const Candidate& ca = candidates[(*a.members)[0]];
    const Candidate& cb = candidates[(*b.members)[0]];
    if (ca.matches != cb.matches) return ca.matches > cb.matches;
    if (ca.cut != cb.cut) return ca.cut > cb.cut;
    if (a.members->size() != b.members->size()) {
      return a.members->size() > b.members->size();
    }
    return a.first_seen < b.first_seen;
  });

  // Greedy selection: each plan is rewritten at most once, by the best
  // group (in the order above) that still has ≥ 2 unclaimed members.
  std::vector<bool> claimed(refs.size(), false);
  for (const Group& g : groups) {
    std::vector<size_t> live;
    for (size_t ci : *g.members) {
      if (!claimed[candidates[ci].plan_id]) live.push_back(ci);
    }
    if (live.size() < 2) continue;

    // Union of the canon variables any member still needs, in canon
    // order — the intermediate's column layout.
    std::vector<uint32_t> needed;
    {
      std::unordered_set<uint32_t> all;
      for (size_t ci : live) {
        const Candidate& cand = candidates[ci];
        const RulePlan& plan = *refs[cand.plan_id].plan;
        const Rule& rule = program.rules()[plan.rule_index];
        const Canonicalizer canon = PrefixCanon(plan, cand.cut);
        for (uint32_t c : NeededCanonVars(rule, plan, cand.cut, canon)) {
          all.insert(c);
        }
      }
      needed.assign(all.begin(), all.end());
      std::sort(needed.begin(), needed.end());
    }

    // Donor: the first member's prefix, projecting the needed variables.
    const size_t shared_id = plans->shared.size();
    {
      const Candidate& cand = candidates[live[0]];
      const RulePlan& plan = *refs[cand.plan_id].plan;
      const Canonicalizer canon = PrefixCanon(plan, cand.cut);
      SharedSubplan sp;
      sp.plan.rule_index = plan.rule_index;
      sp.plan.delta_literal = plan.delta_literal;
      sp.plan.ops.assign(plan.ops.begin(), plan.ops.begin() + cand.cut);
      sp.plan.has_projection = true;
      for (uint32_t c : needed) {
        sp.plan.projection.push_back(Term::Var(canon.Original(c)));
      }
      sp.delta_pass = refs[cand.plan_id].delta_pass;
      sp.delta_idb = PrefixDeltaIdb(program, plan, cand.cut);
      sp.arity = needed.size();
      plans->shared.push_back(std::move(sp));
    }

    // Rewrite every member: scan the intermediate, then its own suffix.
    for (size_t ci : live) {
      const Candidate& cand = candidates[ci];
      PlanRef& ref = refs[cand.plan_id];
      RulePlan& plan = *ref.plan;
      const Canonicalizer canon = PrefixCanon(plan, cand.cut);
      PlanOp scan;
      scan.kind = PlanOp::Kind::kMatch;
      scan.shared_source = static_cast<int>(shared_id);
      for (uint32_t c : needed) {
        scan.args.push_back(Term::Var(canon.Original(c)));
      }
      std::vector<PlanOp> ops;
      ops.reserve(plan.ops.size() - cand.cut + 1);
      ops.push_back(std::move(scan));
      ops.insert(ops.end(), plan.ops.begin() + cand.cut, plan.ops.end());
      plan.ops = std::move(ops);
      plan.delta_literal = -1;
      plan.atom_order.clear();
      if (ref.delta_idb != nullptr) *ref.delta_idb = -1;
      claimed[cand.plan_id] = true;
      ++counters->subplans_shared;
    }
    ++counters->shared_prefixes;
  }
}

}  // namespace inflog
