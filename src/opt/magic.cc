#include "src/opt/magic.h"

#include <map>
#include <string>
#include <utility>

namespace inflog {

namespace {

using Mask = uint32_t;

/// Call sites on predicates wider than this get the all-free adornment
/// (Mask has 32 bits; real programs never get close).
constexpr size_t kMaxAdornArity = 20;

std::string AdornSuffix(Mask mask, size_t arity) {
  std::string s;
  for (size_t i = 0; i < arity; ++i) s += ((mask >> i) & 1) ? 'b' : 'f';
  return s;
}

size_t Popcount(Mask mask) {
  size_t n = 0;
  for (; mask != 0; mask &= mask - 1) ++n;
  return n;
}

/// The synthetic predicates of one demanded (predicate, adornment).
struct Adorned {
  uint32_t adorned_pred = kNoPredicate;  ///< == the original pred if free.
  uint32_t magic_pred = kNoPredicate;    ///< unset for the all-free case.
};

}  // namespace

uint64_t ApplyMagicSets(const std::vector<uint32_t>& outputs,
                        RewriteWorkspace* ws) {
  const size_t num_preds = ws->names.size();
  std::vector<std::vector<size_t>> rules_of(num_preds);
  for (size_t r = 0; r < ws->rules.size(); ++r) {
    rules_of[ws->rules[r].head.predicate].push_back(r);
  }
  // A body atom is rewritten (and carries demand) iff its predicate is
  // derived here; rule-less IDB leftovers behave like empty EDB.
  auto derived = [&](uint32_t pred) {
    return pred < num_preds && ws->is_idb[pred] && !rules_of[pred].empty();
  };

  std::map<std::pair<uint32_t, Mask>, Adorned> demanded;
  std::vector<std::pair<uint32_t, Mask>> worklist;
  auto demand = [&](uint32_t pred, Mask mask) -> Adorned {
    auto it = demanded.find({pred, mask});
    if (it != demanded.end()) return it->second;
    Adorned a;
    if (mask == 0) {
      a.adorned_pred = pred;
    } else {
      const std::string base = ws->names[pred];
      const size_t arity = ws->arities[pred];
      const std::string suffix = AdornSuffix(mask, arity);
      a.adorned_pred = ws->AddPredicate(base + "_" + suffix, arity);
      a.magic_pred =
          ws->AddPredicate("magic_" + base + "_" + suffix, Popcount(mask));
    }
    demanded.emplace(std::make_pair(pred, mask), a);
    worklist.emplace_back(pred, mask);
    return a;
  };

  for (uint32_t out : outputs) demand(out, 0);

  // adorned_rules[(original rule index, head mask)] = rewritten rule;
  // the map order makes the final rule order deterministic.
  std::map<std::pair<size_t, Mask>, Rule> adorned_rules;
  std::vector<Rule> magic_rules;

  for (size_t wi = 0; wi < worklist.size(); ++wi) {
    const auto [pred, mask] = worklist[wi];
    const Adorned self = demanded.at({pred, mask});
    for (const size_t r : rules_of[pred]) {
      const Rule& rule = ws->rules[r];
      Rule out;
      out.num_vars = rule.num_vars;
      out.var_names = rule.var_names;
      out.head.predicate = self.adorned_pred;
      out.head.args = rule.head.args;
      std::vector<bool> bound(rule.num_vars, false);
      if (mask != 0) {
        std::vector<Term> guard_args;
        for (size_t j = 0; j < rule.head.args.size(); ++j) {
          if (((mask >> j) & 1) == 0) continue;
          const Term& t = rule.head.args[j];
          guard_args.push_back(t);
          if (t.IsVariable()) bound[t.id] = true;
        }
        out.body.push_back(Literal::Pos(self.magic_pred, guard_args));
      }
      // Left-to-right SIPS: constants and earlier positive atoms bind;
      // an equality with one side bound binds the other; negated atoms
      // and inequalities bind nothing.
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kEq) {
          const Term& a = lit.args[0];
          const Term& b = lit.args[1];
          const bool a_bound = a.IsConstant() || bound[a.id];
          const bool b_bound = b.IsConstant() || bound[b.id];
          if (a_bound && !b_bound) bound[b.id] = true;
          if (b_bound && !a_bound) bound[a.id] = true;
          out.body.push_back(lit);
          continue;
        }
        const bool rewritable = lit.IsPositiveAtom() && derived(lit.predicate);
        if (!rewritable) {
          out.body.push_back(lit);
          if (lit.IsPositiveAtom()) {
            for (const Term& t : lit.args) {
              if (t.IsVariable()) bound[t.id] = true;
            }
          }
          continue;
        }
        Mask call = 0;
        if (ws->arities[lit.predicate] <= kMaxAdornArity) {
          for (size_t j = 0; j < lit.args.size(); ++j) {
            const Term& t = lit.args[j];
            if (t.IsConstant() || bound[t.id]) call |= Mask(1) << j;
          }
        }
        const Adorned callee = demand(lit.predicate, call);
        if (call != 0) {
          // Demand rule: magic_Q_β(bound args) ← guard, body prefix.
          Rule m;
          m.num_vars = rule.num_vars;
          m.var_names = rule.var_names;
          m.head.predicate = callee.magic_pred;
          for (size_t j = 0; j < lit.args.size(); ++j) {
            if ((call >> j) & 1) m.head.args.push_back(lit.args[j]);
          }
          m.body = out.body;
          CompactRuleVariables(&m);
          // Skip the trivial self-demand magic_Q_β(x̄) ← magic_Q_β(x̄).
          const bool self_loop = m.body.size() == 1 &&
                                 m.body[0].IsPositiveAtom() &&
                                 m.body[0].predicate == m.head.predicate &&
                                 m.body[0].args == m.head.args;
          if (!self_loop) magic_rules.push_back(std::move(m));
        }
        Literal adorned_call = lit;
        adorned_call.predicate = callee.adorned_pred;
        out.body.push_back(std::move(adorned_call));
        for (const Term& t : lit.args) {
          if (t.IsVariable()) bound[t.id] = true;
        }
      }
      adorned_rules.emplace(std::make_pair(r, mask), std::move(out));
    }
  }

  // No call site had a bound argument: the adorned program would be the
  // original one; leave the workspace untouched.
  if (magic_rules.empty()) return 0;

  std::vector<bool> pred_demanded(num_preds, false);
  for (const auto& [key, adorned] : demanded) pred_demanded[key.first] = true;

  std::vector<Rule> out_rules;
  out_rules.reserve(adorned_rules.size() + magic_rules.size() +
                    ws->rules.size());
  for (size_t r = 0; r < ws->rules.size(); ++r) {
    if (!pred_demanded[ws->rules[r].head.predicate]) {
      // Not needed from the outputs: copied verbatim (dead-rule
      // elimination, not magic, is the pass that drops dead rules).
      out_rules.push_back(std::move(ws->rules[r]));
      continue;
    }
    for (auto it = adorned_rules.lower_bound({r, 0});
         it != adorned_rules.end() && it->first.first == r; ++it) {
      out_rules.push_back(std::move(it->second));
    }
  }
  const uint64_t generated = magic_rules.size();
  for (Rule& m : magic_rules) out_rules.push_back(std::move(m));
  ws->rules = std::move(out_rules);
  return generated;
}

}  // namespace inflog
