// Program-level optimizer rewrites: rule inlining and the magic-sets /
// demand transformation, both driven by the declared output predicates
// (EvalContextOptions::output_predicates, the CLI's --query).
//
// Unlike the plan-level passes (src/opt/pass_manager.h), which preserve
// relations, stage counts and tuple stages exactly, these rewrites
// replace the program before lowering and guarantee only that the
// declared output predicates' relations are preserved as SETS — the
// same contract dead-rule elimination already documents for non-output
// predicates. Without declared outputs both rewrites are inert.
//
// Applicability gates (RewriteProgramForOutputs bails out and leaves
// the program unrewritten when they fail):
//  - Magic sets requires the needed part (rules reachable from the
//    outputs in the dependency graph) to be free of negated IDB
//    literals, under either semantics: a magic guard on a rule whose
//    body negates a derived predicate would shrink the negated
//    relation and flip the negation's meaning. Negated EDB literals
//    are fine — they are constant during evaluation and never carry
//    demand.
//  - Inlining under the stratified semantics allows IDB negation
//    (unfolding a positive atom preserves the perfect model), but
//    under the inflationary semantics it also requires the needed
//    part to be free of negated IDB literals: Θ^∞ reads stage timing,
//    and collapsing a rule chain can change the stage at which a
//    negated predicate is consulted.
//
// The rewritten program mentions every constant of the original (a
// self-recursive anchor rule re-introduces any that the rewrite would
// drop), so active-domain-dependent rules keep their universe.

#ifndef INFLOG_OPT_PROGRAM_REWRITE_H_
#define INFLOG_OPT_PROGRAM_REWRITE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/opt/passes.h"

namespace inflog {

/// Which evaluator the rewritten program will run under; decides the
/// inlining negation gate (see the header comment).
enum class RewriteSemantics { kInflationary, kStratified };

/// A mutable (catalog, rules) workspace the rewrites operate on.
/// Predicate ids are indices into names/arities; ids of the source
/// program are preserved and synthetic predicates (magic_P_α, P_α) are
/// appended, so rules can be edited without renumbering.
struct RewriteWorkspace {
  std::vector<std::string> names;
  std::vector<size_t> arities;
  /// True iff the predicate heads some rule (IDB). Synthetic predicates
  /// are IDB by construction; a predicate inlined away keeps its flag
  /// but is no longer referenced.
  std::vector<bool> is_idb;
  std::vector<Rule> rules;

  /// Builds the workspace view of `program`.
  explicit RewriteWorkspace(const Program& program);

  /// Appends a synthetic IDB predicate, uniquifying `name` against the
  /// catalog ("name", "name_2", "name_3", ...). Returns its id.
  uint32_t AddPredicate(std::string name, size_t arity);
};

/// Renumbers a rule's variables to exactly those appearing in its head
/// or body (dropping unused indices), keeping names. Rewrites that
/// splice literals out of a body call this so no rule carries a
/// variable the evaluator would have to enumerate over the universe.
void CompactRuleVariables(Rule* rule);

/// Result of RewriteProgramForOutputs.
struct ProgramRewriteResult {
  /// False = nothing rewritten; evaluate the original program.
  bool active = false;
  /// The rewritten program (set iff active). Its predicate catalog is
  /// rebuilt from the surviving rules, so callers must remap IDB state
  /// back to the original program's layout by predicate name.
  std::shared_ptr<Program> program;
  uint64_t magic_rules_generated = 0;
  uint64_t rules_inlined = 0;
};

/// Applies the enabled program rewrites (inline first, then magic) for
/// the declared outputs. Inert (active = false) when `outputs` is
/// empty, when a name is unknown or not IDB (the unrewritten
/// evaluation then reports the existing binding error), when the gates
/// above fail, or when neither rewrite changes anything.
ProgramRewriteResult RewriteProgramForOutputs(
    const Program& program, const std::vector<std::string>& outputs,
    const OptimizerPasses& passes, RewriteSemantics semantics);

/// For each IDB predicate of `original` (by idb_index), the idb_index
/// of the same-named predicate in `rewritten`, or -1 when the rewrite
/// dropped it (its relation is then empty / unspecified). Used by the
/// evaluators to remap a rewritten run's state back to the original
/// program's layout.
std::vector<int> MapIdbIndices(const Program& original,
                               const Program& rewritten);

}  // namespace inflog

#endif  // INFLOG_OPT_PROGRAM_REWRITE_H_
