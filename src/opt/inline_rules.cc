#include "src/opt/inline_rules.h"

#include <string>

namespace inflog {

namespace {

/// True iff `pred` can (transitively) derive through itself: DFS over
/// head → body-predicate edges starting from the bodies of `pred`'s
/// rules.
bool IsRecursive(const RewriteWorkspace& ws, uint32_t pred) {
  std::vector<bool> visited(ws.names.size(), false);
  std::vector<uint32_t> stack = {pred};
  bool first = true;
  while (!stack.empty()) {
    const uint32_t p = stack.back();
    stack.pop_back();
    if (!first) {
      if (p == pred) return true;
      if (visited[p]) continue;
      visited[p] = true;
    }
    first = false;
    for (const Rule& rule : ws.rules) {
      if (rule.head.predicate != p) continue;
      for (const Literal& lit : rule.body) {
        if (lit.predicate != kNoPredicate) stack.push_back(lit.predicate);
      }
    }
  }
  return false;
}

/// The single inlining step: substitutes defining rule `def` (of
/// predicate `pred`) into the one consumer rule at `use_rule`,
/// body position `use_pos`.
void InlineInto(const Rule& def, Rule* consumer, size_t use_pos) {
  const std::vector<Term>& use_args = consumer->body[use_pos].args;
  // Map the definition's variables to consumer terms: head variables to
  // the call-site arguments, locals to fresh consumer variables.
  std::vector<Term> var_map(def.num_vars, Term::Var(0));
  std::vector<bool> mapped(def.num_vars, false);
  for (size_t j = 0; j < def.head.args.size(); ++j) {
    var_map[def.head.args[j].id] = use_args[j];
    mapped[def.head.args[j].id] = true;
  }
  for (uint32_t v = 0; v < def.num_vars; ++v) {
    if (mapped[v]) continue;
    const uint32_t fresh = consumer->num_vars++;
    // Keep the source name readable but unique within the consumer
    // (variable names must stay uppercase/underscore-initial).
    std::string name = v < def.var_names.size() ? def.var_names[v] : "V";
    while (true) {
      bool clash = false;
      for (const std::string& existing : consumer->var_names) {
        if (existing == name) {
          clash = true;
          break;
        }
      }
      if (!clash) break;
      name += "_i";
    }
    consumer->var_names.push_back(name);
    var_map[v] = Term::Var(fresh);
    mapped[v] = true;
  }
  auto map_term = [&](const Term& t) {
    return t.IsVariable() ? var_map[t.id] : t;
  };
  std::vector<Literal> inlined;
  inlined.reserve(def.body.size());
  for (const Literal& lit : def.body) {
    Literal copy = lit;
    for (Term& t : copy.args) t = map_term(t);
    inlined.push_back(std::move(copy));
  }
  consumer->body.erase(consumer->body.begin() + use_pos);
  consumer->body.insert(consumer->body.begin() + use_pos, inlined.begin(),
                        inlined.end());
  // The spliced-out atom may have been the only mention of some
  // consumer variable.
  CompactRuleVariables(consumer);
}

}  // namespace

uint64_t InlineSingleUseRules(const std::vector<bool>& is_output,
                              RewriteWorkspace* ws) {
  uint64_t inlined = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t pred = 0; pred < ws->names.size(); ++pred) {
      if (!ws->is_idb[pred]) continue;
      if (pred < is_output.size() && is_output[pred]) continue;
      // Exactly one defining rule with an all-distinct-variable head.
      int def_rule = -1;
      bool eligible = true;
      size_t use_rule = 0, use_pos = 0, uses = 0;
      for (size_t r = 0; r < ws->rules.size() && eligible; ++r) {
        const Rule& rule = ws->rules[r];
        if (rule.head.predicate == pred) {
          if (def_rule >= 0) eligible = false;
          def_rule = static_cast<int>(r);
          std::vector<bool> seen(rule.num_vars, false);
          for (const Term& t : rule.head.args) {
            if (!t.IsVariable() || seen[t.id]) eligible = false;
            if (t.IsVariable()) seen[t.id] = true;
          }
        }
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const Literal& lit = rule.body[i];
          if (lit.predicate != pred) continue;
          if (lit.IsNegatedAtom()) {
            eligible = false;
          } else {
            use_rule = r;
            use_pos = i;
            ++uses;
          }
        }
      }
      if (!eligible || def_rule < 0 || uses != 1 ||
          use_rule == static_cast<size_t>(def_rule)) {
        continue;
      }
      if (IsRecursive(*ws, pred)) continue;
      InlineInto(ws->rules[def_rule], &ws->rules[use_rule], use_pos);
      ws->rules.erase(ws->rules.begin() + def_rule);
      ++inlined;
      changed = true;
      break;  // Restart: rule indices shifted.
    }
  }
  return inlined;
}

}  // namespace inflog
