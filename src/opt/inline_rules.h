// Rule inlining: a predicate defined by exactly one non-recursive rule
// and consumed by exactly one positive body atom is substituted into
// its call site (with fresh-variable renaming for its local variables),
// and the defining rule disappears. Cascades until no candidate is
// left. See src/opt/program_rewrite.h for the applicability gates the
// driver enforces before calling this.

#ifndef INFLOG_OPT_INLINE_RULES_H_
#define INFLOG_OPT_INLINE_RULES_H_

#include <cstdint>
#include <vector>

#include "src/opt/program_rewrite.h"

namespace inflog {

/// Inlines every candidate predicate in `ws` (lowest predicate id
/// first, cascading). A candidate is IDB, not an output, defined by
/// exactly one rule whose head arguments are distinct variables, not
/// (transitively) recursive, consumed by exactly one positive body
/// atom across all rules, and never negated. Returns the number of
/// predicates inlined (= defining rules removed).
uint64_t InlineSingleUseRules(const std::vector<bool>& is_output,
                              RewriteWorkspace* ws);

}  // namespace inflog

#endif  // INFLOG_OPT_INLINE_RULES_H_
