#include "src/opt/program_rewrite.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/ast/analysis.h"
#include "src/opt/inline_rules.h"
#include "src/opt/magic.h"

namespace inflog {

RewriteWorkspace::RewriteWorkspace(const Program& program) {
  const size_t n = program.num_predicates();
  names.reserve(n);
  arities.reserve(n);
  is_idb.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    const PredicateInfo& info = program.predicate(p);
    names.push_back(info.name);
    arities.push_back(info.arity);
    is_idb.push_back(info.is_idb);
  }
  rules = program.rules();
}

uint32_t RewriteWorkspace::AddPredicate(std::string name, size_t arity) {
  auto taken = [&](const std::string& candidate) {
    return std::find(names.begin(), names.end(), candidate) != names.end();
  };
  std::string candidate = name;
  int suffix = 2;
  while (taken(candidate)) candidate = name + "_" + std::to_string(suffix++);
  names.push_back(std::move(candidate));
  arities.push_back(arity);
  is_idb.push_back(true);
  return static_cast<uint32_t>(names.size() - 1);
}

void CompactRuleVariables(Rule* rule) {
  std::vector<uint32_t> remap(rule->num_vars, kNoPredicate);
  uint32_t next = 0;
  auto visit = [&](const Term& t) {
    if (t.IsVariable() && remap[t.id] == kNoPredicate) remap[t.id] = next++;
  };
  for (const Term& t : rule->head.args) visit(t);
  for (const Literal& lit : rule->body) {
    for (const Term& t : lit.args) visit(t);
  }
  std::vector<std::string> names(next);
  for (uint32_t v = 0; v < rule->num_vars; ++v) {
    if (remap[v] == kNoPredicate) continue;
    names[remap[v]] =
        v < rule->var_names.size() ? rule->var_names[v] : "V" + std::to_string(v);
  }
  auto apply = [&](Term& t) {
    if (t.IsVariable()) t.id = remap[t.id];
  };
  for (Term& t : rule->head.args) apply(t);
  for (Literal& lit : rule->body) {
    for (Term& t : lit.args) apply(t);
  }
  rule->num_vars = next;
  rule->var_names = std::move(names);
}

namespace {

/// Predicates reachable from the outputs over head → body edges
/// (positive and negated), i.e. the rules magic/inline must keep
/// semantically exact.
std::vector<bool> NeededPredicates(const RewriteWorkspace& ws,
                                   const std::vector<uint32_t>& outputs) {
  std::vector<bool> needed(ws.names.size(), false);
  std::vector<uint32_t> stack;
  for (uint32_t out : outputs) {
    if (!needed[out]) {
      needed[out] = true;
      stack.push_back(out);
    }
  }
  while (!stack.empty()) {
    const uint32_t pred = stack.back();
    stack.pop_back();
    for (const Rule& rule : ws.rules) {
      if (rule.head.predicate != pred) continue;
      for (const Literal& lit : rule.body) {
        if (lit.predicate == kNoPredicate) continue;
        if (!needed[lit.predicate]) {
          needed[lit.predicate] = true;
          stack.push_back(lit.predicate);
        }
      }
    }
  }
  return needed;
}

/// True iff some rule whose head the outputs need negates a derived
/// (IDB) predicate — the bail-out condition for magic under either
/// semantics and for inlining under the inflationary one.
bool NeededPartNegatesIdb(const RewriteWorkspace& ws,
                          const std::vector<bool>& needed) {
  for (const Rule& rule : ws.rules) {
    if (!needed[rule.head.predicate]) continue;
    for (const Literal& lit : rule.body) {
      if (lit.IsNegatedAtom() && ws.is_idb[lit.predicate]) return true;
    }
  }
  return false;
}

/// Drops rules that reference a predicate which heads no rule yet is
/// not an (original) EDB predicate, to fixpoint. Such references arise
/// when magic replaces a predicate's original-name rules with adorned
/// versions while a non-needed rule still mentions the original name;
/// a positive atom over the now rule-less predicate can derive nothing
/// and the affected heads are non-needed (unspecified), so dropping is
/// sound.
void DropDanglingRules(RewriteWorkspace* ws) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<bool> has_rule(ws->names.size(), false);
    for (const Rule& rule : ws->rules) has_rule[rule.head.predicate] = true;
    std::vector<Rule> kept;
    kept.reserve(ws->rules.size());
    for (Rule& rule : ws->rules) {
      bool dangling = false;
      for (const Literal& lit : rule.body) {
        if (lit.predicate == kNoPredicate) continue;
        if (ws->is_idb[lit.predicate] && !has_rule[lit.predicate]) {
          dangling = true;
          break;
        }
      }
      if (dangling) {
        changed = true;
      } else {
        kept.push_back(std::move(rule));
      }
    }
    ws->rules = std::move(kept);
  }
}

/// Re-introduces any original-program constant the rewrite dropped via
/// a self-recursive anchor rule (derives nothing, keeps the active
/// domain — and hence the meaning of unsafe or negated rules — intact).
void AnchorDroppedConstants(const Program& original, RewriteWorkspace* ws) {
  std::set<Value> present;
  auto collect = [&](const Term& t) {
    if (t.IsConstant()) present.insert(t.id);
  };
  for (const Rule& rule : ws->rules) {
    for (const Term& t : rule.head.args) collect(t);
    for (const Literal& lit : rule.body) {
      for (const Term& t : lit.args) collect(t);
    }
  }
  std::vector<Value> missing;
  for (const Value v : original.Constants()) {
    if (present.find(v) == present.end()) missing.push_back(v);
  }
  if (missing.empty()) return;
  const uint32_t anchor =
      ws->AddPredicate("__const_anchor", missing.size());
  Rule rule;
  rule.head.predicate = anchor;
  for (const Value v : missing) rule.head.args.push_back(Term::Const(v));
  rule.body.push_back(Literal::Pos(anchor, rule.head.args));
  ws->rules.push_back(std::move(rule));
}

/// Builds a fresh Program over the original symbol table from the
/// workspace rules; predicates are registered on first reference, so
/// only referenced ones survive and IDB-ness follows the rule heads.
std::shared_ptr<Program> Materialize(const Program& original,
                                     const RewriteWorkspace& ws) {
  auto program = std::make_shared<Program>(original.shared_symbols());
  std::vector<uint32_t> id_map(ws.names.size(), kNoPredicate);
  auto map_pred = [&](uint32_t pred) {
    if (id_map[pred] == kNoPredicate) {
      Result<uint32_t> id =
          program->GetOrAddPredicate(ws.names[pred], ws.arities[pred]);
      INFLOG_CHECK(id.ok()) << id.status().ToString();
      id_map[pred] = *id;
    }
    return id_map[pred];
  };
  for (const Rule& rule : ws.rules) {
    Rule copy = rule;
    copy.head.predicate = map_pred(rule.head.predicate);
    for (Literal& lit : copy.body) {
      if (lit.predicate != kNoPredicate) lit.predicate = map_pred(lit.predicate);
    }
    const Status added = program->AddRule(std::move(copy));
    INFLOG_CHECK(added.ok()) << added.ToString();
  }
  return program;
}

}  // namespace

ProgramRewriteResult RewriteProgramForOutputs(
    const Program& program, const std::vector<std::string>& outputs,
    const OptimizerPasses& passes, RewriteSemantics semantics) {
  ProgramRewriteResult result;
  if (outputs.empty() || !(passes.magic_sets || passes.inline_rules)) {
    return result;
  }
  std::vector<uint32_t> out_ids;
  std::vector<bool> is_output(program.num_predicates(), false);
  for (const std::string& name : outputs) {
    const Result<uint32_t> id = program.FindPredicate(name);
    // Unknown / non-IDB outputs: stay inert so the unrewritten
    // evaluation reports the existing binding error.
    if (!id.ok() || !program.predicate(*id).is_idb) return result;
    if (!is_output[*id]) {
      is_output[*id] = true;
      out_ids.push_back(*id);
    }
  }

  // A non-stratifiable program must keep producing the stratified
  // evaluator's FailedPrecondition; the dangling-rule cleanup below
  // could otherwise drop the offending cycle and mask the error.
  if (semantics == RewriteSemantics::kStratified &&
      !AnalyzeProgram(program).stratifiable) {
    return result;
  }

  RewriteWorkspace ws(program);
  uint64_t rules_inlined = 0;
  if (passes.inline_rules) {
    const std::vector<bool> needed = NeededPredicates(ws, out_ids);
    const bool inline_ok = semantics == RewriteSemantics::kStratified ||
                           !NeededPartNegatesIdb(ws, needed);
    if (inline_ok) rules_inlined = InlineSingleUseRules(is_output, &ws);
  }
  uint64_t magic_rules = 0;
  if (passes.magic_sets) {
    // Recompute the gate on the (possibly inlined) rules.
    const std::vector<bool> needed = NeededPredicates(ws, out_ids);
    if (!NeededPartNegatesIdb(ws, needed)) {
      magic_rules = ApplyMagicSets(out_ids, &ws);
    }
  }
  if (rules_inlined == 0 && magic_rules == 0) return result;

  DropDanglingRules(&ws);
  // Every output must survive as an IDB predicate (the dangling-rule
  // cascade can only strip an output's rules when the output is
  // genuinely underivable, but bailing out keeps the binding contract
  // byte-identical to the unrewritten path).
  for (const uint32_t out : out_ids) {
    bool has_rule = false;
    for (const Rule& rule : ws.rules) {
      if (rule.head.predicate == out) {
        has_rule = true;
        break;
      }
    }
    if (!has_rule) return ProgramRewriteResult{};
  }
  AnchorDroppedConstants(program, &ws);

  result.program = Materialize(program, ws);
  if (semantics == RewriteSemantics::kStratified &&
      !AnalyzeProgram(*result.program).stratifiable) {
    // Defense in depth: the gates argued above keep stratifiability,
    // but a non-stratifiable rewrite must never replace a stratifiable
    // program.
    return ProgramRewriteResult{};
  }
  result.active = true;
  result.magic_rules_generated = magic_rules;
  result.rules_inlined = rules_inlined;
  return result;
}

std::vector<int> MapIdbIndices(const Program& original,
                               const Program& rewritten) {
  const std::vector<uint32_t>& idb = original.idb_predicates();
  std::vector<int> map(idb.size(), -1);
  for (size_t i = 0; i < idb.size(); ++i) {
    const Result<uint32_t> id =
        rewritten.FindPredicate(original.predicate(idb[i]).name);
    if (id.ok() && rewritten.predicate(*id).is_idb) {
      map[i] = rewritten.predicate(*id).idb_index;
    }
  }
  return map;
}

}  // namespace inflog
