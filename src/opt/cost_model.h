// Compile-time join cost model for the plan optimizer.
//
// Estimates, for one positive body atom and a set of already-bound
// variables, how many rows a match would produce (EstimateMatches) and
// how much work one probe costs (EstimateProbeCost). The statistics are
// all shard-invariant pure functions of relation content:
//
//   * relation cardinality — size(), summed over shards;
//   * exact posting totals for constant-keyed columns —
//     Relation::EqualRowsPerShard, shard-summed;
//   * a sampled mean posting length for variable-keyed columns — the
//     sample is the bottom-k rows ordered by (HashTuple(row), row
//     lexicographically), so which rows are sampled depends on content
//     only, never on shard layout or insertion order;
//   * dynamic IDB predicates (empty at compile time) fall back to a
//     universe-sized prior discounted per bound column.
//
// This keeps compiled plans identical across the {threads × shards ×
// scheduler} sweep: same contents, same estimates, same plans.

#ifndef INFLOG_OPT_COST_MODEL_H_
#define INFLOG_OPT_COST_MODEL_H_

#include <map>
#include <utility>
#include <vector>

#include "src/eval/context.h"

namespace inflog {

class CostModel {
 public:
  /// `ctx` and `state` must outlive the model; `state` supplies the
  /// compile-time contents of fixed IDB predicates.
  CostModel(const EvalContext& ctx, const IdbState& state)
      : ctx_(&ctx), state_(&state) {}

  /// Estimated number of rows of `atom`'s relation matching one probe in
  /// which exactly the argument positions holding constants or variables
  /// set in `bound` (indexed by variable id) are known.
  double EstimateMatches(const Literal& atom,
                         const std::vector<bool>& bound) const;

  /// Estimated work of one such probe: the shortest posting list walked
  /// when a column is known (the executor iterates it and re-checks the
  /// rest), the full cardinality when the match degenerates to a scan.
  /// Always ≥ 1 for non-empty relations.
  double EstimateProbeCost(const Literal& atom,
                           const std::vector<bool>& bound) const;

  /// Rows sampled per (relation, column) for the variable-keyed
  /// selectivity estimate.
  static constexpr size_t kSelectivitySamples = 64;

 private:
  /// Mean posting-list length of column `col` over the content-ordered
  /// bottom-kSelectivitySamples rows (≥ 1 for non-empty relations);
  /// cached per (relation, column).
  double ColumnSelectivity(const Relation& rel, size_t col) const;

  /// Per-position key knowledge of one probe: for every argument
  /// position whose term is known, the estimated matches of keying on
  /// that column alone.
  std::vector<double> KnownColumnSelectivities(
      const Literal& atom, const std::vector<bool>& bound) const;

  const EvalContext* ctx_;
  const IdbState* state_;
  mutable std::map<std::pair<const Relation*, size_t>, double>
      selectivity_cache_;
};

}  // namespace inflog

#endif  // INFLOG_OPT_COST_MODEL_H_
