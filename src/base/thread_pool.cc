#include "src/base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <utility>

namespace inflog {

ThreadPool::ThreadPool(size_t extra_workers) {
  workers_.reserve(extra_workers);
  for (size_t i = 0; i < extra_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Finish queued work even when stopping, so ~ThreadPool never
      // abandons a loop mid-barrier.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

namespace {

/// First-exception capture shared by both loops: a flag checked before
/// running a body (so remaining work drains without executing after a
/// failure) plus the captured exception, written once under a mutex and
/// rethrown on the calling thread after the barrier.
struct FailureSlot {
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr eptr;

  /// Records the in-flight exception if it is the first one.
  void Capture() {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed.exchange(true)) eptr = std::current_exception();
  }

  /// Rethrows the captured exception, if any. Call only after the
  /// barrier: every worker that could write `eptr` has finished.
  void Rethrow() {
    if (failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(eptr);
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline path: exceptions propagate to the caller naturally.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared loop state: `next` hands out indices, `done` counts finished
  // body calls; the caller blocks until done == n. Helpers hold a
  // shared_ptr so a helper scheduled after the barrier released (because
  // caller + earlier helpers drained all indices) still finds live state.
  struct Loop {
    explicit Loop(size_t total, const std::function<void(size_t)>& b)
        : n(total), body(b) {}
    const size_t n;
    const std::function<void(size_t)>& body;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    FailureSlot failure;
  };
  auto loop = std::make_shared<Loop>(n, body);

  auto run = [](const std::shared_ptr<Loop>& l) {
    while (true) {
      const size_t i = l->next.fetch_add(1);
      if (i >= l->n) return;
      // After a failure the remaining indices are still claimed and
      // counted (the barrier must reach n) but their bodies are skipped:
      // the loop's result is abandoned anyway once it throws.
      if (!l->failure.failed.load(std::memory_order_relaxed)) {
        try {
          l->body(i);
        } catch (...) {
          l->failure.Capture();
        }
      }
      if (l->done.fetch_add(1) + 1 == l->n) {
        // Lock before notifying so the caller cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(l->mu);
        l->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([loop, run] { run(loop); });
  }
  run(loop);
  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] { return loop->done.load() == n; });
  }
  loop->failure.Rethrow();
}

namespace {

/// One splittable unit of a dynamic loop: rows [begin, end) of an item.
struct Chunk {
  size_t item;
  size_t begin;
  size_t end;
};

/// A participant's chunk deque. The owner pushes and pops at the back
/// (LIFO keeps it working on the halves it just shed, which are hot in
/// cache); thieves take from the front, where the oldest — and therefore
/// largest — chunks sit. One mutex per deque: chunks are coarse, so the
/// lock is uncontended in practice.
struct WorkDeque {
  std::mutex mu;
  std::deque<Chunk> q;
};

/// Shared state of one ParallelForDynamic run.
struct DynLoop {
  DynLoop(const std::vector<size_t>& rows_in, size_t grain,
          size_t num_participants, const ThreadPool::DynamicBody& b)
      : rows(rows_in),
        min_grain(std::max<size_t>(grain, 1)),
        participants(num_participants),
        body(b),
        deques(num_participants) {}

  const std::vector<size_t>& rows;
  const size_t min_grain;
  const size_t participants;
  const ThreadPool::DynamicBody& body;
  std::vector<WorkDeque> deques;
  /// Chunks created but not yet fully processed. Splits increment it
  /// before the parent chunk's decrement, so it cannot reach 0 while any
  /// chunk exists; the final decrement releases the caller.
  std::atomic<size_t> unfinished{0};
  /// Participants currently looking for work; owners of oversized chunks
  /// shed halves while this is nonzero.
  std::atomic<size_t> hungry{0};
  std::atomic<size_t> next_id{1};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> parks{0};
  /// Bumped whenever work appears (a shed half) or the loop drains; a
  /// hungry participant whose steal sweep found nothing parks until it
  /// changes, instead of spinning through yield.
  std::atomic<uint64_t> work_version{0};
  /// Participants currently blocked in Steal's park; publishers skip the
  /// park mutex entirely while it is zero.
  std::atomic<size_t> parked{0};
  std::mutex park_mu;
  std::condition_variable park_cv;
  FailureSlot failure;

  /// Publishes a work/drain event to parked participants. The version
  /// bump happens first, so a participant that re-checks it before
  /// blocking never sleeps through this event; the mutex is only taken
  /// when someone is actually parked (see Steal for the ordering
  /// argument — the seq_cst version/parked pair makes the unlocked
  /// fast path safe).
  void Publish() {
    work_version.fetch_add(1);
    if (parked.load() > 0) {
      std::lock_guard<std::mutex> lock(park_mu);
      park_cv.notify_all();
    }
  }

  bool PopOwn(size_t id, Chunk* out) {
    WorkDeque& d = deques[id];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.q.empty()) return false;
    *out = d.q.back();
    d.q.pop_back();
    return true;
  }

  /// Scans the other deques round-robin until a chunk is stolen or the
  /// loop drains; between failed sweeps the participant parks on the
  /// loop's condition variable instead of spinning, so the tail of a
  /// stage with one long unsplittable chunk costs no idle CPU (profiles
  /// of oversubscribed runs showed the old yield loop competing with the
  /// one participant that still had work). Wakeups come from Publish():
  /// every shed half and the final chunk completion bump `work_version`
  /// first, so the version snapshot taken before the sweep makes the
  /// unlocked publish path race-free — if the publisher's bump is not
  /// visible to the wait predicate, its `parked` read (later in seq_cst
  /// order) sees this participant registered and takes the locked path.
  bool Steal(size_t id, Chunk* out) {
    while (true) {
      const uint64_t version = work_version.load();
      for (size_t k = 1; k < participants; ++k) {
        WorkDeque& d = deques[(id + k) % participants];
        std::lock_guard<std::mutex> lock(d.mu);
        if (d.q.empty()) continue;
        *out = d.q.front();
        d.q.pop_front();
        steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (unfinished.load(std::memory_order_acquire) == 0) return false;
      std::unique_lock<std::mutex> lock(park_mu);
      auto ready = [&] {
        return work_version.load() != version ||
               unfinished.load(std::memory_order_acquire) == 0;
      };
      if (!ready()) {
        parked.fetch_add(1);
        parks.fetch_add(1, std::memory_order_relaxed);
        park_cv.wait(lock, ready);
        parked.fetch_sub(1);
      }
    }
  }

  /// Executes one acquired chunk, shedding its upper half back onto the
  /// participant's own deque while the chunk is oversized (over the
  /// per-item baseline grain, which matches the static slicer's slice
  /// size) or while another participant is hungry — down to 2*min_grain,
  /// below which a slice's staging overhead outweighs the parallelism.
  void Process(size_t id, Chunk c) {
    size_t size = c.end - c.begin;
    const size_t baseline =
        std::max(2 * min_grain, rows[c.item] / (4 * participants));
    while (size > 2 * min_grain &&
           (size > baseline ||
            hungry.load(std::memory_order_relaxed) > 0)) {
      const size_t mid = c.begin + size / 2;
      unfinished.fetch_add(1, std::memory_order_relaxed);
      {
        WorkDeque& d = deques[id];
        std::lock_guard<std::mutex> lock(d.mu);
        d.q.push_back(Chunk{c.item, mid, c.end});
      }
      splits.fetch_add(1, std::memory_order_relaxed);
      Publish();  // a parked participant can steal the shed half
      c.end = mid;
      size = c.end - c.begin;
    }
    if (!failure.failed.load(std::memory_order_relaxed)) {
      try {
        body(c.item, c.begin, c.end, id);
      } catch (...) {
        failure.Capture();
      }
    }
    if (unfinished.fetch_sub(1, std::memory_order_release) == 1) {
      Publish();  // loop drained: release any parked participants
    }
  }

  /// The participant loop: drain own deque, then steal; exit when the
  /// whole run has drained.
  void Run(size_t id) {
    while (true) {
      Chunk c;
      if (!PopOwn(id, &c)) {
        if (unfinished.load(std::memory_order_acquire) == 0) return;
        hungry.fetch_add(1, std::memory_order_relaxed);
        const bool got = Steal(id, &c);
        hungry.fetch_sub(1, std::memory_order_relaxed);
        if (!got) return;
      }
      Process(id, c);
    }
  }
};

}  // namespace

ThreadPool::DynamicLoopStats ThreadPool::ParallelForDynamic(
    const std::vector<size_t>& item_rows, size_t min_grain,
    const DynamicBody& body) {
  return ParallelForDynamic(item_rows, {}, min_grain, body);
}

ThreadPool::DynamicLoopStats ThreadPool::ParallelForDynamic(
    const std::vector<size_t>& item_rows,
    const std::vector<uint64_t>& item_weights, size_t min_grain,
    const DynamicBody& body) {
  DynamicLoopStats stats;
  const size_t n = item_rows.size();
  if (n == 0) return stats;
  if (workers_.empty()) {
    // Inline path: whole items in order — the serial execution order.
    for (size_t i = 0; i < n; ++i) body(i, 0, item_rows[i], 0);
    return stats;
  }

  const size_t participants = workers_.size() + 1;
  auto loop =
      std::make_shared<DynLoop>(item_rows, min_grain, participants, body);
  loop->unfinished.store(n, std::memory_order_relaxed);
  if (item_weights.size() == n && n > 1) {
    // LPT deal: heaviest item first onto the least-loaded deque. All tie
    // breaks are deterministic, so the deal (though not the stealing that
    // follows) is reproducible run to run.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return item_weights[a] != item_weights[b]
                 ? item_weights[a] > item_weights[b]
                 : a < b;
    });
    std::vector<uint64_t> load(participants, 0);
    for (const size_t i : order) {
      size_t best = 0;
      for (size_t p = 1; p < participants; ++p) {
        if (load[p] < load[best]) best = p;
      }
      loop->deques[best].q.push_back(Chunk{i, 0, item_rows[i]});
      load[best] += std::max<uint64_t>(item_weights[i], 1);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      loop->deques[i % participants].q.push_back(Chunk{i, 0, item_rows[i]});
    }
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    Submit([loop] {
      loop->Run(loop->next_id.fetch_add(1, std::memory_order_relaxed));
    });
  }
  loop->Run(0);
  // The caller's Run returned only after observing unfinished == 0 with
  // acquire order, so every body call (and its writes) has finished;
  // straggler helpers can only observe empty deques and exit.
  stats.steals = loop->steals.load(std::memory_order_relaxed);
  stats.splits = loop->splits.load(std::memory_order_relaxed);
  stats.parks = loop->parks.load(std::memory_order_relaxed);
  loop->failure.Rethrow();
  return stats;
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace inflog
