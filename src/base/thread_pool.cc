#include "src/base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace inflog {

ThreadPool::ThreadPool(size_t extra_workers) {
  workers_.reserve(extra_workers);
  for (size_t i = 0; i < extra_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Finish queued work even when stopping, so ~ThreadPool never
      // abandons a ParallelFor mid-barrier.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared loop state: `next` hands out indices, `done` counts finished
  // body calls; the caller blocks until done == n. Helpers hold a
  // shared_ptr so a helper scheduled after the barrier released (because
  // caller + earlier helpers drained all indices) still finds live state.
  struct Loop {
    explicit Loop(size_t total, const std::function<void(size_t)>& b)
        : n(total), body(b) {}
    const size_t n;
    const std::function<void(size_t)>& body;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto loop = std::make_shared<Loop>(n, body);

  auto run = [](const std::shared_ptr<Loop>& l) {
    while (true) {
      const size_t i = l->next.fetch_add(1);
      if (i >= l->n) return;
      l->body(i);
      if (l->done.fetch_add(1) + 1 == l->n) {
        // Lock before notifying so the caller cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(l->mu);
        l->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([loop, run] { run(loop); });
  }
  run(loop);
  std::unique_lock<std::mutex> lock(loop->mu);
  loop->cv.wait(lock, [&] { return loop->done.load() == n; });
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace inflog
