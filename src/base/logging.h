// Checked-invariant macros. INFLOG_CHECK aborts on violation with a
// file:line-tagged message; it is for internal invariants, not user errors
// (user errors surface as Status). Supports streaming extra context:
//
//   INFLOG_CHECK(arity == tuple.size()) << "inserting into " << name;

#ifndef INFLOG_BASE_LOGGING_H_
#define INFLOG_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace inflog {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Instantiated only on the failure path of INFLOG_CHECK.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Returns *this as an lvalue so the macro's temporary can feed
  /// operator& (the glog idiom).
  CheckFailureStream& self() { return *this; }

 private:
  std::ostringstream stream_;
};

/// Makes the failure branch of the CHECK ternary have type void while
/// binding looser than operator<<, so streamed context attaches to the
/// failure stream first.
struct Voidify {
  void operator&(CheckFailureStream&) {}
};

}  // namespace internal
}  // namespace inflog

#define INFLOG_CHECK(condition)                                      \
  (condition) ? (void)0                                              \
              : ::inflog::internal::Voidify() &                      \
                    ::inflog::internal::CheckFailureStream(          \
                        #condition, __FILE__, __LINE__)              \
                        .self()

// Debug checks are kept on in all build types: the workloads are symbolic
// and the invariants cheap relative to joins and SAT search.
#define INFLOG_DCHECK(condition) INFLOG_CHECK(condition)

#endif  // INFLOG_BASE_LOGGING_H_
