#include "src/base/strings.h"

namespace inflog {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kSpace = " \t\r\n\v\f";
  const size_t first = text.find_first_not_of(kSpace);
  if (first == std::string_view::npos) return std::string_view();
  const size_t last = text.find_last_not_of(kSpace);
  return text.substr(first, last - first + 1);
}

}  // namespace inflog
