// ThreadPool: a fixed set of worker threads draining one FIFO task queue,
// plus ParallelFor, the fork/join primitive the parallel fixpoint stage is
// built on.
//
// Design constraints (see RelationalConsequence::Step):
//   * ParallelFor(n, body) runs body(0..n-1) exactly once each and returns
//     only when every call has finished — a full barrier, so the caller can
//     merge per-task results immediately afterwards.
//   * The calling thread participates in the loop, so a pool built with
//     `extra_workers` workers gives ParallelFor a concurrency of
//     extra_workers + 1. Total threads used for "--threads=N" is therefore
//     a pool of N-1 workers.
//   * Indices are claimed from a shared atomic counter, which load-balances
//     uneven tasks; determinism is the *caller's* job (tasks must write to
//     disjoint, index-addressed outputs and be merged in index order).
//   * All queue operations synchronize through one mutex and ParallelFor
//     completion through an atomic join counter, so writes made by task i
//     happen-before the post-barrier reads of task i's output.

#ifndef INFLOG_BASE_THREAD_POOL_H_
#define INFLOG_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace inflog {

/// A fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `extra_workers` worker threads. 0 is legal and spawns none:
  /// every ParallelFor then runs inline on the calling thread, which is the
  /// exact serial execution order.
  explicit ThreadPool(size_t extra_workers);

  /// Drops nothing: pending tasks are completed before the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of spawned worker threads (0 when running inline).
  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task for any worker to run. With no workers the task
  /// runs immediately on the calling thread.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns once all n calls finished.
  /// Not reentrant from inside a task body.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace inflog

#endif  // INFLOG_BASE_THREAD_POOL_H_
