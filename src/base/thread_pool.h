// ThreadPool: a fixed set of worker threads draining one FIFO task queue,
// plus the two fork/join primitives the parallel fixpoint stage is built
// on — ParallelFor (static index claiming) and ParallelForDynamic
// (per-worker deques with work stealing and chunk splitting).
//
// Design constraints (see RelationalConsequence::Step):
//   * Both loops return only when every body call has finished — a full
//     barrier, so the caller can merge per-task results immediately
//     afterwards.
//   * The calling thread participates in the loop, so a pool built with
//     `extra_workers` workers gives the loops a concurrency of
//     extra_workers + 1. Total threads used for "--threads=N" is therefore
//     a pool of N-1 workers.
//   * ParallelFor claims indices from a shared atomic counter, which
//     load-balances uneven tasks; ParallelForDynamic additionally splits
//     oversized chunks while other participants are hungry, so one
//     pathologically expensive item cannot serialize the loop.
//     Determinism is the *caller's* job in both cases (tasks must write to
//     disjoint outputs and be merged in a deterministic key order).
//   * All queue operations synchronize through one mutex and loop
//     completion through atomic counters, so writes made by a body call
//     happen-before the post-barrier reads of its output.
//   * A body that throws does not take the process down: the first
//     exception is captured, the barrier completes (remaining bodies may
//     be skipped), and the exception is rethrown on the calling thread.

#ifndef INFLOG_BASE_THREAD_POOL_H_
#define INFLOG_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace inflog {

/// A fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `extra_workers` worker threads. 0 is legal and spawns none:
  /// every loop then runs inline on the calling thread, which is the exact
  /// serial execution order.
  explicit ThreadPool(size_t extra_workers);

  /// Drops nothing: pending tasks are completed before the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of spawned worker threads (0 when running inline).
  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task for any worker to run. With no workers the task
  /// runs immediately on the calling thread. The task must not throw.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns once all n calls finished.
  /// Not reentrant from inside a task body. If a body throws, the first
  /// exception is rethrown here after the barrier (indices not yet claimed
  /// when the exception was captured may run no body at all).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Counters of one ParallelForDynamic run.
  struct DynamicLoopStats {
    uint64_t steals = 0;  ///< Chunks taken from another participant.
    uint64_t splits = 0;  ///< Chunk halves shed back for others to steal.
    uint64_t parks = 0;   ///< Times a hungry participant blocked on the
                          ///< loop's condition variable awaiting work.
  };

  /// Body of a dynamic loop: process rows [begin, end) of item `item`.
  /// `worker` identifies the executing participant (0 = the calling
  /// thread, 1..num_workers() = pool workers), so bodies can write to
  /// per-participant outputs without locks. Items declared with 0 rows are
  /// atomic: they get exactly one body(item, 0, 0, worker) call.
  using DynamicBody = std::function<void(size_t item, size_t begin,
                                         size_t end, size_t worker)>;

  /// Work-stealing loop over splittable items. `item_rows[i]` is the row
  /// count of item i; the loop covers every row of every item exactly once
  /// with body calls over disjoint, ascending ranges, in unspecified
  /// order and distribution. Scheduling: every participant owns a deque
  /// (initial chunks are dealt round-robin in item order — or by the
  /// weighted LPT deal of the overload below), pops its own
  /// work LIFO, and steals FIFO from others when empty; an acquired chunk
  /// sheds its upper half back onto the owner's deque while it exceeds
  /// both 2*min_grain and the per-item baseline grain, or while another
  /// participant is hungry — so skewed items split exactly as finely as
  /// the observed imbalance demands and no finer. A participant whose
  /// steal sweep finds every deque empty parks on a condition variable
  /// (counted in DynamicLoopStats::parks) until a shed half or the loop's
  /// completion wakes it, so long single-chunk stage tails burn no CPU
  /// spinning. Full barrier; first body exception is rethrown on the
  /// calling thread after the barrier.
  DynamicLoopStats ParallelForDynamic(const std::vector<size_t>& item_rows,
                                      size_t min_grain,
                                      const DynamicBody& body);

  /// ParallelForDynamic with per-item work estimates steering the initial
  /// deal: instead of dealing chunks round-robin by index, items are
  /// assigned largest-weight-first to the least-loaded deque (classic LPT
  /// list scheduling; ties break deterministically — equal weights by
  /// ascending item index, equal loads by lowest participant id). A good
  /// deal means the stealing machinery starts balanced and steals only to
  /// correct estimation error, instead of spending the ramp-up correcting
  /// a weight-oblivious deal. `item_weights` must be empty (round-robin
  /// fallback) or have one entry per item; the row coverage contract and
  /// the barrier are identical to the unweighted overload, and results
  /// are unaffected either way (the caller merges deterministically).
  DynamicLoopStats ParallelForDynamic(const std::vector<size_t>& item_rows,
                                      const std::vector<uint64_t>& item_weights,
                                      size_t min_grain,
                                      const DynamicBody& body);

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace inflog

#endif  // INFLOG_BASE_THREAD_POOL_H_
