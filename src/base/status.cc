#include "src/base/status.h"

namespace inflog {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace inflog
