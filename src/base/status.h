// Status: lightweight error propagation without exceptions.
//
// The library follows the RocksDB/Arrow idiom: fallible operations return a
// Status (or a Result<T>, see result.h) instead of throwing. Statuses carry a
// coarse error code plus a human-readable message assembled at the failure
// site.

#ifndef INFLOG_BASE_STATUS_H_
#define INFLOG_BASE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace inflog {

/// Coarse classification of failures. Mirrors the subset of canonical codes
/// this library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Malformed input (parse errors, arity mismatches).
  kNotFound,           ///< Named entity (relation, predicate) does not exist.
  kFailedPrecondition, ///< Operation applied to an object in the wrong state.
  kResourceExhausted,  ///< A configured limit (atoms, conflicts) was hit.
  kUnimplemented,      ///< Feature intentionally not supported.
  kInternal,           ///< Invariant violation; indicates a library bug.
};

/// Returns the canonical spelling of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses are built through the
/// named factory functions. Statuses are cheap to copy in the OK case (empty
/// message) and are intended to be returned by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory: the OK status.
  static Status OK() { return Status(); }
  /// Factory: malformed input.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Factory: missing named entity.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Factory: object in the wrong state for the requested operation.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Factory: configured limit exceeded.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Factory: feature not supported.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Factory: internal invariant violation.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The failure message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace inflog

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define INFLOG_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::inflog::Status _inflog_status = (expr);         \
    if (!_inflog_status.ok()) return _inflog_status;  \
  } while (0)

#endif  // INFLOG_BASE_STATUS_H_
