// Result<T>: a value or an error Status (StatusOr-style).

#ifndef INFLOG_BASE_RESULT_H_
#define INFLOG_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "src/base/logging.h"
#include "src/base/status.h"

namespace inflog {

/// Holds either a value of type T or an error Status.
///
/// Construction from a T (or anything convertible) yields an OK result;
/// construction from a non-OK Status yields an error result. Accessing the
/// value of an error result is a checked failure (aborts), matching the
/// library's no-exceptions policy.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    INFLOG_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is present.
  const Status& status() const { return status_; }

  /// Returns the held value. Requires ok().
  const T& value() const& {
    INFLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    INFLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  /// Moves the held value out. Requires ok().
  T&& value() && {
    INFLOG_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace inflog

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define INFLOG_ASSIGN_OR_RETURN(lhs, expr)                      \
  INFLOG_ASSIGN_OR_RETURN_IMPL_(                                \
      INFLOG_CONCAT_(_inflog_result, __LINE__), lhs, expr)
#define INFLOG_CONCAT_INNER_(a, b) a##b
#define INFLOG_CONCAT_(a, b) INFLOG_CONCAT_INNER_(a, b)
#define INFLOG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // INFLOG_BASE_RESULT_H_
