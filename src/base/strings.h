// Small string helpers used across the library (no dependency on absl).

#ifndef INFLOG_BASE_STRINGS_H_
#define INFLOG_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace inflog {

namespace internal {
inline void StrAppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppendPieces(std::ostringstream& out, const T& head,
                     const Rest&... rest) {
  out << head;
  StrAppendPieces(out, rest...);
}
}  // namespace internal

/// Concatenates the streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  internal::StrAppendPieces(out, args...);
  return out.str();
}

/// Joins the elements of `parts` with `sep`, using operator<< to render
/// each element.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    out << part;
  }
  return out.str();
}

/// Splits `text` on `delim`, dropping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

}  // namespace inflog

#endif  // INFLOG_BASE_STRINGS_H_
