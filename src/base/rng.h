// Deterministic pseudo-random number generation for workload generators.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomized workloads (random CNF, random digraphs, random circuits) draw
// from this explicitly-seeded generator rather than std::random_device.

#ifndef INFLOG_BASE_RNG_H_
#define INFLOG_BASE_RNG_H_

#include <cstdint>
#include <vector>

#include "src/base/logging.h"

namespace inflog {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Small, fast, and with well-understood statistical quality; more than
/// adequate for generating test workloads.
class Rng {
 public:
  /// Creates a generator with the given seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state, per the
    // xoshiro authors' recommendation.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    INFLOG_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    while (true) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    INFLOG_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace inflog

#endif  // INFLOG_BASE_RNG_H_
