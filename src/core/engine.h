// Engine: the one-stop public API of the library.
//
// Wraps the full pipeline — parse program text, load facts, analyze
// (EDB/IDB, stratifiability, safety), evaluate under any of the four
// semantics, and run fixpoint analysis — behind a single object sharing
// one symbol table. This is the interface the examples and downstream
// users program against; the lower-level modules remain usable directly.
//
// Typical use:
//
//   inflog::Engine engine;
//   INFLOG_RETURN_IF_ERROR(engine.LoadProgramText(
//       "T(X) :- E(Y,X), !T(Y)."));
//   INFLOG_RETURN_IF_ERROR(engine.LoadDatabaseText("E(1,2). E(2,3)."));
//   auto result = engine.Inflationary();          // Θ^∞, total semantics
//   auto analyzer = engine.MakeAnalyzer();        // Section 3 questions
//   auto unique = analyzer->UniqueFixpoint();     // US-complete question

#ifndef INFLOG_CORE_ENGINE_H_
#define INFLOG_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/ast/analysis.h"
#include "src/ast/parser.h"
#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/eval/incremental.h"
#include "src/eval/inflationary.h"
#include "src/eval/stable.h"
#include "src/eval/stratified.h"
#include "src/eval/wellfounded.h"
#include "src/fixpoint/analysis.h"
#include "src/opt/passes.h"
#include "src/relation/database.h"
#include "src/serve/serving.h"

namespace inflog {

/// The four semantics the engine can evaluate a program under.
enum class SemanticsKind {
  kInflationary,  ///< Θ^∞ — the paper's proposal; total and PTIME.
  kStratified,    ///< Stratum-by-stratum least fixpoints; partial.
  kWellFounded,   ///< Three-valued alternating fixpoint; total.
  kStable,        ///< Gelfond–Lifschitz answer sets; 0..2^k models.
};

/// Canonical lowercase name ("inflationary", ...), for CLIs and logs.
std::string_view SemanticsKindName(SemanticsKind kind);

/// Parses a SemanticsKindName back; InvalidArgument on unknown names.
Result<SemanticsKind> ParseSemanticsKind(std::string_view name);

/// Options for the unified Evaluate entry point; only the member matching
/// the requested kind is consulted (plus the cross-cutting num_threads).
struct EvalOptions {
  /// Worker threads for the relational fixpoint stages (1 = the exact
  /// serial path, 0 = hardware concurrency). Authoritative for Evaluate():
  /// it overrides the per-semantics context options below. The grounded
  /// pipelines (well-founded, stable) are unaffected — their results never
  /// depend on it.
  size_t num_threads = 1;
  /// Hash shards per IDB relation for the relational fixpoint stages
  /// (1 = unsharded, 0 = auto: one shard per resolved thread).
  /// Authoritative for Evaluate(), like num_threads; results are
  /// identical for every (threads, shards) combination.
  size_t num_shards = 1;
  /// How parallel fixpoint stages partition their delta rows: kAuto (the
  /// default — per stage, pick the static slicer or work stealing from
  /// the estimated slice-work variance), kStatic (up-front equal-row
  /// slices) or kStealing (per-worker deques with dynamic chunk
  /// splitting, for skewed stages). Authoritative for Evaluate(); inert
  /// at num_threads == 1 and for the grounded pipelines. Results are
  /// identical under every scheduler.
  StageScheduler scheduler = StageScheduler::kAuto;
  /// Minimum delta rows per stage task (serial cutoff, static slice
  /// floor, stealing split grain, tiny-plan batching threshold); 0 = the
  /// built-in default (64). Authoritative for Evaluate(); results are
  /// identical for every value.
  size_t min_slice_rows = 0;
  /// The auto scheduler's flip threshold: a stage switches to work
  /// stealing when the coefficient of variation of its estimated
  /// per-task work exceeds this; 0 = the built-in default (1.0).
  /// Authoritative for Evaluate(); inert for the explicit schedulers;
  /// results are identical for every value.
  double steal_variance = 0;
  /// If true, Evaluate fails with InvalidArgument when a rule has an
  /// unbound variable under negation (CheckNegationSafety) instead of
  /// evaluating it under the active-domain reading. Applies to all four
  /// semantics.
  bool reject_unsafe_negation = false;
  /// Which plan-optimizer passes run between rule lowering and fixpoint
  /// dispatch (default: all). Authoritative for Evaluate() on the
  /// relational pipelines (inflationary, stratified); inert for the
  /// grounded pipelines. Results are identical for every selection.
  OptimizerPasses optimizer_passes = OptimizerPasses::All();
  /// Queried/output IDB predicate names. Empty (the default) means every
  /// IDB predicate is an output. When non-empty and dead-rule elimination
  /// is enabled, rules unreachable from these predicates are dropped, so
  /// only the listed predicates' relations are specified. Evaluate fails
  /// with InvalidArgument on names that are unknown or not IDB.
  std::vector<std::string> output_predicates;
  /// Cross-check every incrementally maintained ApplyUpdate against a
  /// from-scratch evaluation (the recompute oracle); a mismatch fails the
  /// update with an Internal error. Consulted by BeginIncremental only —
  /// expensive (each update costs a full evaluation), meant for tests and
  /// the E13 oracle sweeps.
  bool verify_incremental = false;
  /// Serving-layer tuning (query cache, periodic compaction, update
  /// coalescing). Consulted by BeginServing only; the query answers are
  /// bit-identical for every setting.
  serve::ServingTuning serving;
  /// CDCL solver configuration for the SAT-backed stable pipeline
  /// (preprocessing, learnt-clause deletion, portfolio width, budgets).
  /// Authoritative for Evaluate(): it overrides the solver options nested
  /// in `stable`. Results are identical for every configuration —
  /// enumeration is canonicalized — only the search statistics vary.
  sat::SolverOptions sat;
  InflationaryOptions inflationary;
  StratifiedOptions stratified;
  GrounderOptions wellfounded;
  StableOptions stable;
};

/// Result of the unified Evaluate entry point: the full semantics-specific
/// result plus a uniform view of the canonical two-valued answer.
struct EvalOutcome {
  SemanticsKind kind;
  std::variant<InflationaryResult, StratifiedResult, WellFoundedResult,
               StableResult>
      detail;

  /// The "true" part of the answer: Θ^∞ (inflationary), the stratified
  /// model, the well-founded true atoms, or the first stable model found
  /// (a relation-less empty state when there is none). Borrowed from
  /// `detail`: valid while this outcome is alive.
  const IdbState& state() const;

  /// The executor counters of the run, or nullptr for the grounded
  /// pipelines (well-founded, stable), which do not run the relational
  /// executor. Borrowed from `detail`.
  const EvalStats* stats() const;
};

/// Facade over the parsing, evaluation and analysis pipeline.
class Engine {
 public:
  /// Creates an engine with a fresh shared symbol table and empty
  /// database.
  Engine();

  /// Parses and installs a DATALOG¬ program (replaces any previous one).
  Status LoadProgramText(std::string_view text);

  /// Installs an already-built program. Its symbol table must be this
  /// engine's (use symbols()).
  Status LoadProgram(Program program);

  /// Parses facts / @universe declarations into the database (additive).
  Status LoadDatabaseText(std::string_view text);

  /// The shared symbol table (pass to builders that intern constants).
  std::shared_ptr<SymbolTable> symbols() const { return symbols_; }

  /// Mutable database access for programmatic fact loading.
  Database* mutable_database() { return &database_; }
  const Database& database() const { return database_; }

  /// The loaded program; FailedPrecondition before LoadProgram*.
  Result<const Program*> program() const;

  /// Static analysis of the loaded program.
  Result<ProgramAnalysis> Analyze() const;

  /// Human-readable summary: rules, EDB/IDB split, strata, warnings.
  Result<std::string> Describe() const;

  // --- Semantics (Section 4 and baselines). ---

  /// Unified dispatch over the four semantics. Callers that don't care
  /// which semantics runs (CLIs, benches, sweep harnesses) program against
  /// this; the typed entry points below remain for callers that do.
  Result<EvalOutcome> Evaluate(SemanticsKind kind,
                               const EvalOptions& options = {}) const;

  /// Inflationary DATALOG: the paper's proposal. Total and PTIME.
  Result<InflationaryResult> Inflationary(
      const InflationaryOptions& options = {}) const;

  /// Stratified semantics; fails on non-stratifiable programs.
  Result<StratifiedResult> Stratified(
      const StratifiedOptions& options = {}) const;

  /// Well-founded (three-valued) semantics; always defined.
  Result<WellFoundedResult> WellFounded(
      const GrounderOptions& options = {}) const;

  /// Stable models (answer sets).
  Result<StableResult> StableModels(const StableOptions& options = {}) const;

  // --- Incremental view maintenance. ---

  /// Evaluates the loaded program once under `kind` and switches the
  /// engine into incremental mode: subsequent ApplyUpdate calls maintain
  /// the materialized result in O(delta) (counting for non-recursive
  /// predicates, DRed for recursive ones) instead of re-evaluating.
  /// Replaces any previous session. The relational semantics maintain
  /// incrementally (inflationary requires a positive program); the
  /// grounded semantics recompute per update but share the same API.
  Status BeginIncremental(SemanticsKind kind, const EvalOptions& options = {});

  /// Applies one batch of EDB changes to the database and brings the
  /// maintained state up to date. In serving mode this also publishes
  /// the next epoch snapshot and advances the query cache.
  /// FailedPrecondition before BeginIncremental/BeginServing.
  Result<UpdateResult> ApplyUpdate(const UpdateBatch& batch);

  /// Convenience overload building the batch in place.
  Result<UpdateResult> ApplyUpdate(
      std::vector<std::pair<std::string, Tuple>> inserts,
      std::vector<std::pair<std::string, Tuple>> deletes);

  /// The maintained IDB state (valid until the next ApplyUpdate or
  /// EndIncremental). FailedPrecondition when no session is active.
  Result<const IdbState*> IncrementalState() const;

  /// Counters accumulated across the session's updates.
  Result<const EvalStats*> IncrementalStats() const;

  bool HasIncrementalSession() const { return incremental_ != nullptr; }

  /// Drops the incremental session (the database keeps every applied
  /// update). Loading a new program or database text also drops it: the
  /// session borrows the engine's program and the text loaders mutate
  /// state behind its back.
  void EndIncremental() { incremental_.reset(); }

  // --- Serving (epoch snapshots + concurrent readers). ---

  /// Evaluates the loaded program once under `kind` and switches the
  /// engine into serving mode: the materialized result is published as
  /// epoch snapshot 0, ApplyUpdate maintains it incrementally and
  /// publishes the next epoch, and any number of threads may Open pinned
  /// snapshots and Query them concurrently with the writer. Replaces any
  /// previous serving or incremental session. Tuning (query cache,
  /// periodic compaction, update coalescing) comes from
  /// `options.serving`.
  Status BeginServing(SemanticsKind kind, const EvalOptions& options = {});

  /// Pins the current epoch snapshot; the epoch stays alive while the
  /// handle does. Safe from any thread. FailedPrecondition when no
  /// serving session is active.
  Result<serve::SnapshotHandle> Open() const;

  /// Parses and evaluates one `?...` query line against `snap` (from
  /// Open), consulting the serving cache. Safe from any thread.
  Result<serve::QueryOutcome> Query(std::string_view line,
                                    const serve::SnapshotHandle& snap) const;

  /// Convenience: Open() + Query against the current epoch.
  Result<serve::QueryOutcome> Query(std::string_view line) const;

  /// The serving session, for callers that drive coalescing/flush or
  /// read the registry directly. FailedPrecondition when inactive.
  Result<serve::ServingSession*> serving() const;

  bool HasServingSession() const { return serving_ != nullptr; }

  /// Drops the serving session. Outstanding snapshot handles stay valid
  /// (they own their sealed state); only publication stops.
  void EndServing() { serving_.reset(); }

  // --- Fixpoint analysis (Section 3). ---

  /// Builds a fixpoint analyzer for the loaded (program, database). The
  /// analyzer borrows the engine's program and database: keep the engine
  /// alive while using it.
  Result<FixpointAnalyzer> MakeAnalyzer(AnalyzeOptions options = {}) const;

  /// Looks up an IDB relation by predicate name inside a state produced
  /// by one of the semantics.
  Result<const Relation*> RelationOf(const IdbState& state,
                                     std::string_view predicate) const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  Database database_;
  std::optional<Program> program_;
  std::unique_ptr<IncrementalSession> incremental_;
  std::unique_ptr<serve::ServingSession> serving_;
};

}  // namespace inflog

#endif  // INFLOG_CORE_ENGINE_H_
