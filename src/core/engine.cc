#include "src/core/engine.h"

#include "src/base/strings.h"

namespace inflog {

Engine::Engine()
    : symbols_(std::make_shared<SymbolTable>()), database_(symbols_) {}

Status Engine::LoadProgramText(std::string_view text) {
  INFLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, symbols_));
  program_.emplace(std::move(program));
  return Status::OK();
}

Status Engine::LoadProgram(Program program) {
  if (program.shared_symbols() != symbols_) {
    return Status::InvalidArgument(
        "program was built over a different symbol table; construct it "
        "with Engine::symbols()");
  }
  program_.emplace(std::move(program));
  return Status::OK();
}

Status Engine::LoadDatabaseText(std::string_view text) {
  return ParseDatabaseInto(text, &database_);
}

Result<const Program*> Engine::program() const {
  if (!program_.has_value()) {
    return Status::FailedPrecondition("no program loaded");
  }
  return &*program_;
}

Result<ProgramAnalysis> Engine::Analyze() const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return AnalyzeProgram(*p);
}

Result<std::string> Engine::Describe() const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  const ProgramAnalysis analysis = AnalyzeProgram(*p);
  std::string out = StrCat("program with ", p->rules().size(), " rule(s)\n");
  out += p->ToString();
  out += "EDB:";
  for (uint32_t pred : p->edb_predicates()) {
    out += StrCat(" ", p->predicate(pred).name, "/",
                  p->predicate(pred).arity);
  }
  out += "\nIDB:";
  for (uint32_t pred : p->idb_predicates()) {
    out += StrCat(" ", p->predicate(pred).name, "/",
                  p->predicate(pred).arity);
  }
  out += StrCat("\npositive DATALOG: ", p->IsPositive() ? "yes" : "no");
  out += StrCat("\nstratifiable: ", analysis.stratifiable ? "yes" : "no");
  if (analysis.stratifiable) {
    out += StrCat(" (", analysis.num_strata, " strata)");
  }
  out += "\n";
  for (const std::string& warning : analysis.warnings) {
    out += StrCat("warning: ", warning, "\n");
  }
  return out;
}

Result<InflationaryResult> Engine::Inflationary(
    const InflationaryOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalInflationary(*p, database_, options);
}

Result<StratifiedResult> Engine::Stratified(
    const StratifiedOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalStratified(*p, database_, options);
}

Result<WellFoundedResult> Engine::WellFounded(
    const GrounderOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalWellFounded(*p, database_, options);
}

Result<StableResult> Engine::StableModels(
    const StableOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EnumerateStableModels(*p, database_, options);
}

Result<FixpointAnalyzer> Engine::MakeAnalyzer(AnalyzeOptions options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return FixpointAnalyzer::Create(p, &database_, std::move(options));
}

Result<const Relation*> Engine::RelationOf(
    const IdbState& state, std::string_view predicate) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  INFLOG_ASSIGN_OR_RETURN(const uint32_t pred, p->FindPredicate(predicate));
  const int idb = p->predicate(pred).idb_index;
  if (idb < 0) {
    return Status::InvalidArgument(
        StrCat(predicate, " is a database relation, not IDB"));
  }
  if (static_cast<size_t>(idb) >= state.relations.size()) {
    return Status::InvalidArgument("state does not match the program");
  }
  return &state.relations[idb];
}

}  // namespace inflog
