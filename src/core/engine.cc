#include "src/core/engine.h"

#include "src/base/strings.h"

namespace inflog {

std::string_view SemanticsKindName(SemanticsKind kind) {
  switch (kind) {
    case SemanticsKind::kInflationary:
      return "inflationary";
    case SemanticsKind::kStratified:
      return "stratified";
    case SemanticsKind::kWellFounded:
      return "wellfounded";
    case SemanticsKind::kStable:
      return "stable";
  }
  INFLOG_CHECK(false) << "bad SemanticsKind";
  return "";
}

Result<SemanticsKind> ParseSemanticsKind(std::string_view name) {
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    if (name == SemanticsKindName(kind)) return kind;
  }
  return Status::InvalidArgument(
      StrCat("unknown semantics: ", std::string(name),
             " (expected inflationary|stratified|wellfounded|stable)"));
}

Engine::Engine()
    : symbols_(std::make_shared<SymbolTable>()), database_(symbols_) {}

Status Engine::LoadProgramText(std::string_view text) {
  INFLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(text, symbols_));
  incremental_.reset();  // the sessions borrow the program being replaced
  serving_.reset();
  program_.emplace(std::move(program));
  return Status::OK();
}

Status Engine::LoadProgram(Program program) {
  if (program.shared_symbols() != symbols_) {
    return Status::InvalidArgument(
        "program was built over a different symbol table; construct it "
        "with Engine::symbols()");
  }
  incremental_.reset();  // the sessions borrow the program being replaced
  serving_.reset();
  program_.emplace(std::move(program));
  return Status::OK();
}

Status Engine::LoadDatabaseText(std::string_view text) {
  incremental_.reset();  // facts added behind ApplyUpdate go unmaintained
  serving_.reset();
  return ParseDatabaseInto(text, &database_);
}

Result<const Program*> Engine::program() const {
  if (!program_.has_value()) {
    return Status::FailedPrecondition("no program loaded");
  }
  return &*program_;
}

Result<ProgramAnalysis> Engine::Analyze() const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return AnalyzeProgram(*p);
}

Result<std::string> Engine::Describe() const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  const ProgramAnalysis analysis = AnalyzeProgram(*p);
  std::string out = StrCat("program with ", p->rules().size(), " rule(s)\n");
  out += p->ToString();
  out += "EDB:";
  for (uint32_t pred : p->edb_predicates()) {
    out += StrCat(" ", p->predicate(pred).name, "/",
                  p->predicate(pred).arity);
  }
  out += "\nIDB:";
  for (uint32_t pred : p->idb_predicates()) {
    out += StrCat(" ", p->predicate(pred).name, "/",
                  p->predicate(pred).arity);
  }
  out += StrCat("\npositive DATALOG: ", p->IsPositive() ? "yes" : "no");
  out += StrCat("\nstratifiable: ", analysis.stratifiable ? "yes" : "no");
  if (analysis.stratifiable) {
    out += StrCat(" (", analysis.num_strata, " strata)");
  }
  out += "\n";
  for (const std::string& warning : analysis.warnings) {
    out += StrCat("warning: ", warning, "\n");
  }
  return out;
}

const IdbState& EvalOutcome::state() const {
  switch (kind) {
    case SemanticsKind::kInflationary:
      return std::get<InflationaryResult>(detail).state;
    case SemanticsKind::kStratified:
      return std::get<StratifiedResult>(detail).state;
    case SemanticsKind::kWellFounded:
      return std::get<WellFoundedResult>(detail).true_state;
    case SemanticsKind::kStable: {
      const std::vector<IdbState>& models =
          std::get<StableResult>(detail).models;
      static const IdbState kNoModel;
      return models.empty() ? kNoModel : models.front();
    }
  }
  INFLOG_CHECK(false) << "bad SemanticsKind";
  static const IdbState kUnreachable;
  return kUnreachable;
}

const EvalStats* EvalOutcome::stats() const {
  switch (kind) {
    case SemanticsKind::kInflationary:
      return &std::get<InflationaryResult>(detail).stats;
    case SemanticsKind::kStratified:
      return &std::get<StratifiedResult>(detail).stats;
    case SemanticsKind::kStable:
      // The stable pipeline bypasses the executor but carries the CDCL
      // counters of its supported-model enumeration.
      return &std::get<StableResult>(detail).stats;
    case SemanticsKind::kWellFounded:
      return nullptr;  // grounded pipeline, bypasses the executor
  }
  return nullptr;
}

Result<EvalOutcome> Engine::Evaluate(SemanticsKind kind,
                                     const EvalOptions& options) const {
  if (options.reject_unsafe_negation) {
    // Checked here for every semantics: the grounded pipelines never
    // build an EvalContext, so they would otherwise accept such rules
    // silently (the relational pipelines re-check through their context).
    INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
    INFLOG_RETURN_IF_ERROR(CheckNegationSafety(*p));
  }
  EvalOutcome out;
  out.kind = kind;
  switch (kind) {
    case SemanticsKind::kInflationary: {
      InflationaryOptions opts = options.inflationary;
      opts.context.num_threads = options.num_threads;
      opts.context.num_shards = options.num_shards;
      opts.context.scheduler = options.scheduler;
      opts.context.min_slice_rows = options.min_slice_rows;
      opts.context.steal_variance = options.steal_variance;
      opts.context.reject_unsafe_negation = options.reject_unsafe_negation;
      opts.context.optimizer_passes = options.optimizer_passes;
      opts.context.output_predicates = options.output_predicates;
      INFLOG_ASSIGN_OR_RETURN(InflationaryResult r, Inflationary(opts));
      out.detail = std::move(r);
      return out;
    }
    case SemanticsKind::kStratified: {
      StratifiedOptions opts = options.stratified;
      opts.context.num_threads = options.num_threads;
      opts.context.num_shards = options.num_shards;
      opts.context.scheduler = options.scheduler;
      opts.context.min_slice_rows = options.min_slice_rows;
      opts.context.steal_variance = options.steal_variance;
      opts.context.reject_unsafe_negation = options.reject_unsafe_negation;
      opts.context.optimizer_passes = options.optimizer_passes;
      opts.context.output_predicates = options.output_predicates;
      INFLOG_ASSIGN_OR_RETURN(StratifiedResult r, Stratified(opts));
      out.detail = std::move(r);
      return out;
    }
    case SemanticsKind::kWellFounded: {
      INFLOG_ASSIGN_OR_RETURN(WellFoundedResult r,
                              WellFounded(options.wellfounded));
      out.detail = std::move(r);
      return out;
    }
    case SemanticsKind::kStable: {
      StableOptions opts = options.stable;
      opts.analyze.solver = options.sat;
      INFLOG_ASSIGN_OR_RETURN(StableResult r, StableModels(opts));
      out.detail = std::move(r);
      return out;
    }
  }
  return Status::InvalidArgument("bad SemanticsKind");
}

Result<InflationaryResult> Engine::Inflationary(
    const InflationaryOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalInflationary(*p, database_, options);
}

Result<StratifiedResult> Engine::Stratified(
    const StratifiedOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalStratified(*p, database_, options);
}

Result<WellFoundedResult> Engine::WellFounded(
    const GrounderOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EvalWellFounded(*p, database_, options);
}

Result<StableResult> Engine::StableModels(
    const StableOptions& options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return EnumerateStableModels(*p, database_, options);
}

namespace {

/// The shared EvalOptions -> IncrementalOptions mapping of
/// BeginIncremental and BeginServing.
IncrementalOptions MakeIncrementalOptions(SemanticsKind kind,
                                          const EvalOptions& options) {
  IncrementalOptions opts;
  switch (kind) {
    case SemanticsKind::kInflationary:
      opts.semantics = MaintainedSemantics::kInflationary;
      opts.use_seminaive = options.inflationary.use_seminaive;
      break;
    case SemanticsKind::kStratified:
      opts.semantics = MaintainedSemantics::kStratified;
      opts.use_seminaive = options.stratified.use_seminaive;
      break;
    case SemanticsKind::kWellFounded:
      opts.semantics = MaintainedSemantics::kWellFounded;
      break;
    case SemanticsKind::kStable:
      opts.semantics = MaintainedSemantics::kStable;
      break;
  }
  opts.verify = options.verify_incremental;
  opts.context.num_threads = options.num_threads;
  opts.context.num_shards = options.num_shards;
  opts.context.scheduler = options.scheduler;
  opts.context.min_slice_rows = options.min_slice_rows;
  opts.context.steal_variance = options.steal_variance;
  opts.context.reject_unsafe_negation = options.reject_unsafe_negation;
  opts.context.optimizer_passes = options.optimizer_passes;
  opts.wellfounded = options.wellfounded;
  opts.stable = options.stable;
  opts.stable.analyze.solver = options.sat;
  return opts;
}

}  // namespace

Status Engine::BeginIncremental(SemanticsKind kind,
                                const EvalOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  if (options.reject_unsafe_negation) {
    INFLOG_RETURN_IF_ERROR(CheckNegationSafety(*p));
  }
  serving_.reset();  // both sessions borrow the same live database
  INFLOG_ASSIGN_OR_RETURN(
      incremental_,
      IncrementalSession::Create(*p, &database_,
                                 MakeIncrementalOptions(kind, options)));
  return Status::OK();
}

Status Engine::BeginServing(SemanticsKind kind, const EvalOptions& options) {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  if (options.reject_unsafe_negation) {
    INFLOG_RETURN_IF_ERROR(CheckNegationSafety(*p));
  }
  incremental_.reset();  // both sessions borrow the same live database
  INFLOG_ASSIGN_OR_RETURN(
      serving_,
      serve::ServingSession::Create(*p, &database_,
                                    MakeIncrementalOptions(kind, options),
                                    options.serving));
  return Status::OK();
}

Result<serve::SnapshotHandle> Engine::Open() const {
  if (serving_ == nullptr) {
    return Status::FailedPrecondition(
        "no serving session; call BeginServing first");
  }
  return serving_->Pin();
}

Result<serve::QueryOutcome> Engine::Query(
    std::string_view line, const serve::SnapshotHandle& snap) const {
  if (serving_ == nullptr) {
    return Status::FailedPrecondition(
        "no serving session; call BeginServing first");
  }
  return serving_->Query(line, snap);
}

Result<serve::QueryOutcome> Engine::Query(std::string_view line) const {
  if (serving_ == nullptr) {
    return Status::FailedPrecondition(
        "no serving session; call BeginServing first");
  }
  return serving_->Query(line);
}

Result<serve::ServingSession*> Engine::serving() const {
  if (serving_ == nullptr) {
    return Status::FailedPrecondition(
        "no serving session; call BeginServing first");
  }
  return serving_.get();
}

Result<UpdateResult> Engine::ApplyUpdate(const UpdateBatch& batch) {
  if (serving_ != nullptr) return serving_->ApplyUpdate(batch);
  if (incremental_ == nullptr) {
    return Status::FailedPrecondition(
        "no incremental session; call BeginIncremental first");
  }
  return incremental_->ApplyUpdate(batch);
}

Result<UpdateResult> Engine::ApplyUpdate(
    std::vector<std::pair<std::string, Tuple>> inserts,
    std::vector<std::pair<std::string, Tuple>> deletes) {
  UpdateBatch batch;
  batch.inserts = std::move(inserts);
  batch.deletes = std::move(deletes);
  return ApplyUpdate(batch);
}

Result<const IdbState*> Engine::IncrementalState() const {
  if (serving_ != nullptr) return &serving_->incremental().state();
  if (incremental_ == nullptr) {
    return Status::FailedPrecondition("no incremental session");
  }
  return &incremental_->state();
}

Result<const EvalStats*> Engine::IncrementalStats() const {
  if (serving_ != nullptr) return &serving_->incremental().cumulative_stats();
  if (incremental_ == nullptr) {
    return Status::FailedPrecondition("no incremental session");
  }
  return &incremental_->cumulative_stats();
}

Result<FixpointAnalyzer> Engine::MakeAnalyzer(AnalyzeOptions options) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  return FixpointAnalyzer::Create(p, &database_, std::move(options));
}

Result<const Relation*> Engine::RelationOf(
    const IdbState& state, std::string_view predicate) const {
  INFLOG_ASSIGN_OR_RETURN(const Program* p, program());
  INFLOG_ASSIGN_OR_RETURN(const uint32_t pred, p->FindPredicate(predicate));
  const int idb = p->predicate(pred).idb_index;
  if (idb < 0) {
    return Status::InvalidArgument(
        StrCat(predicate, " is a database relation, not IDB"));
  }
  if (static_cast<size_t>(idb) >= state.relations.size()) {
    return Status::InvalidArgument("state does not match the program");
  }
  return &state.relations[idb];
}

}  // namespace inflog
