#include "src/sat/solver.h"

#include <algorithm>

namespace inflog {
namespace sat {

Solver::Solver(SolverOptions options) : options_(options) {
  rng_ = Rng(options_.seed);
}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(kUndef);
  levels_.push_back(0);
  reasons_.push_back(kNullClauseRef);
  activity_.push_back(0.0);
  phase_.push_back(options_.init_phase_true ? 1 : 0);
  seen_.push_back(0);
  frozen_.push_back(0);
  eliminated_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  lbd_seen_.resize(assigns_.size() + 1, 0);  // indexed by decision level
  HeapInsert(v);
  return v;
}

void Solver::FreezeVar(Var v) {
  INFLOG_CHECK(v >= 0 && v < num_vars());
  frozen_[v] = 1;
}

bool Solver::AddClause(Clause clause) {
  if (!ok_) return false;
  CancelUntil(0);
  // Root-level simplification: drop satisfied clauses and false literals,
  // detect tautologies and duplicates.
  std::sort(clause.begin(), clause.end());
  Clause simplified;
  Lit prev;
  for (const Lit& lit : clause) {
    INFLOG_CHECK(lit.var() >= 0 && lit.var() < num_vars())
        << "clause uses unallocated variable";
    INFLOG_CHECK(!eliminated_[lit.var()])
        << "clause mentions a preprocessing-eliminated variable; "
           "FreezeVar it before the first Solve";
    if (LitValue(lit) == 1) return true;            // already satisfied
    if (LitValue(lit) == 0) continue;               // false at root: drop
    if (!simplified.empty() && lit == prev) continue;  // duplicate
    if (!simplified.empty() && lit == ~prev) return true;  // tautology
    simplified.push_back(lit);
    prev = lit;
  }
  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    Enqueue(simplified[0], kNullClauseRef);
    if (Propagate() != kNullClauseRef) ok_ = false;
    return ok_;
  }
  const ClauseRef cref = arena_.Alloc(
      simplified.data(), static_cast<uint32_t>(simplified.size()),
      /*learned=*/false, /*lbd=*/0);
  clauses_.push_back(cref);
  AttachClause(cref);
  return true;
}

bool Solver::AddCnf(const Cnf& cnf) {
  while (num_vars() < cnf.num_vars) NewVar();
  for (const Clause& clause : cnf.clauses) {
    if (!AddClause(clause)) return false;
  }
  return true;
}

void Solver::AttachClause(ClauseRef cref) {
  const Lit* lits = arena_.lits(cref);
  INFLOG_DCHECK(arena_.size(cref) >= 2);
  watches_[lits[0].code].push_back(Watch{cref, lits[1]});
  watches_[lits[1].code].push_back(Watch{cref, lits[0]});
}

void Solver::DetachClause(ClauseRef cref) {
  const Lit* lits = arena_.lits(cref);
  for (int i = 0; i < 2; ++i) {
    std::vector<Watch>& ws = watches_[lits[i].code];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == cref) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::Enqueue(Lit l, ClauseRef reason) {
  INFLOG_DCHECK(LitValue(l) == kUndef);
  const Var v = l.var();
  assigns_[v] = l.negated() ? 0 : 1;
  levels_[v] = DecisionLevel();
  reasons_[v] = reason;
  trail_.push_back(l);
}

ClauseRef Solver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    // p became true; visit clauses watching ~p.
    const Lit false_lit = ~p;
    std::vector<Watch>& ws = watches_[false_lit.code];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watch w = ws[i];
      if (LitValue(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      Lit* lits = arena_.lits(w.clause);
      const uint32_t size = arena_.size(w.clause);
      // Normalize: the false literal sits at position 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      INFLOG_DCHECK(lits[1] == false_lit);
      const Lit first = lits[0];
      if (LitValue(first) == 1) {
        ws[keep++] = Watch{w.clause, first};
        continue;
      }
      // Find a replacement watch.
      bool found = false;
      for (uint32_t k = 2; k < size; ++k) {
        if (LitValue(lits[k]) != 0) {
          std::swap(lits[1], lits[k]);
          watches_[lits[1].code].push_back(Watch{w.clause, first});
          found = true;
          break;
        }
      }
      if (found) continue;  // watch moved to another list
      // Unit or conflicting.
      ws[keep++] = Watch{w.clause, first};
      if (LitValue(first) == 0) {
        // Conflict: restore the remaining watches and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      Enqueue(first, w.clause);
    }
    ws.resize(keep);
  }
  return kNullClauseRef;
}

uint32_t Solver::ComputeLbd(const Lit* lits, uint32_t size) {
  uint32_t count = 0;
  for (uint32_t i = 0; i < size; ++i) {
    const int level = levels_[lits[i].var()];
    if (level == 0) continue;  // root literals carry no glue
    if (lbd_seen_[level] == 0) {
      lbd_seen_[level] = 1;
      ++count;
    }
  }
  for (uint32_t i = 0; i < size; ++i) lbd_seen_[levels_[lits[i].var()]] = 0;
  return count;
}

void Solver::Analyze(ClauseRef conflict, Clause* learnt, int* backtrack_level,
                     uint32_t* lbd) {
  learnt->clear();
  learnt->push_back(Lit());  // slot for the asserting literal
  int counter = 0;
  Lit p;
  bool have_p = false;
  size_t index = trail_.size();
  ClauseRef reason = conflict;
  do {
    INFLOG_DCHECK(reason != kNullClauseRef) << "analysis reached a decision";
    if (arena_.learned(reason)) {
      BumpClause(reason);
      // LBD update on use: a reason clause participating in a conflict
      // gets its glue refreshed (only ever lowered).
      const uint32_t cur = ComputeLbd(arena_.lits(reason), arena_.size(reason));
      if (cur < arena_.lbd(reason)) arena_.set_lbd(reason, cur);
    }
    const Lit* lits = arena_.lits(reason);
    const uint32_t size = arena_.size(reason);
    for (uint32_t i = 0; i < size; ++i) {
      const Lit q = lits[i];
      if (have_p && q == p) continue;
      const Var v = q.var();
      if (seen_[v] || levels_[v] == 0) continue;
      seen_[v] = 1;
      BumpVar(v);
      if (levels_[v] >= DecisionLevel()) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    have_p = true;
    reason = reasons_[p.var()];
    seen_[p.var()] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = ~p;

  // Backtrack level: the highest level among the non-asserting literals.
  *backtrack_level = 0;
  size_t max_pos = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    if (levels_[(*learnt)[i].var()] > *backtrack_level) {
      *backtrack_level = levels_[(*learnt)[i].var()];
      max_pos = i;
    }
  }
  if (learnt->size() > 1) {
    std::swap((*learnt)[1], (*learnt)[max_pos]);
  }
  *lbd = ComputeLbd(learnt->data(), static_cast<uint32_t>(learnt->size()));
  for (size_t i = 0; i < learnt->size(); ++i) {
    seen_[(*learnt)[i].var()] = 0;
  }
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  const size_t bound = trail_lim_[level];
  for (size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    phase_[v] = assigns_[v];  // phase saving
    assigns_[v] = kUndef;
    reasons_[v] = kNullClauseRef;
    if (!HeapContains(v)) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

void Solver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapContains(v)) HeapSiftUp(heap_pos_[v]);
}

void Solver::BumpClause(ClauseRef cref) {
  const float a = arena_.activity(cref) + cla_inc_;
  arena_.set_activity(cref, a);
  if (a > 1e20f) {
    for (const ClauseRef lr : learnts_) {
      arena_.set_activity(lr, arena_.activity(lr) * 1e-20f);
    }
    cla_inc_ *= 1e-20f;
  }
}

Lit Solver::PickBranchLit() {
  // Diversified portfolio members sprinkle random decisions.
  if (options_.seed != 0 && options_.random_decision_freq > 0.0 &&
      !heap_.empty() && rng_.Bernoulli(options_.random_decision_freq)) {
    const Var v = heap_[rng_.Uniform(heap_.size())];
    if (assigns_[v] == kUndef && !eliminated_[v]) {
      return Lit(v, phase_[v] != 1);
    }
  }
  while (!heap_.empty()) {
    const Var v = HeapPopMax();
    if (assigns_[v] == kUndef && !eliminated_[v]) {
      return Lit(v, phase_[v] != 1);
    }
  }
  return Lit();  // no unassigned variable remains
}

void Solver::HeapInsert(Var v) {
  heap_pos_[v] = static_cast<int32_t>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(heap_.size() - 1);
}

void Solver::HeapSiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!HeapLess(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    heap_pos_[heap_[parent]] = static_cast<int32_t>(parent);
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = parent;
  }
}

void Solver::HeapSiftDown(size_t i) {
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t largest = i;
    if (left < heap_.size() && HeapLess(heap_[largest], heap_[left])) {
      largest = left;
    }
    if (right < heap_.size() && HeapLess(heap_[largest], heap_[right])) {
      largest = right;
    }
    if (largest == i) break;
    std::swap(heap_[i], heap_[largest]);
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    heap_pos_[heap_[largest]] = static_cast<int32_t>(largest);
    i = largest;
  }
}

Var Solver::HeapPopMax() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

uint64_t Solver::Luby(uint64_t i) {
  // Finds the i-th term (1-based) of the Luby sequence 1,1,2,1,1,2,4,...
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

void Solver::RunPreprocess() {
  preprocessed_ = true;
  INFLOG_DCHECK(DecisionLevel() == 0);
  preprocessor_ = std::make_unique<Preprocessor>(num_vars(),
                                                 options_.preprocess_options);
  for (Var v = 0; v < num_vars(); ++v) {
    if (frozen_[v]) preprocessor_->FreezeVar(v);
  }
  // Feed the preprocessor the root state: implied units plus every problem
  // clause currently attached.
  std::vector<Clause> clauses;
  clauses.reserve(clauses_.size() + trail_.size());
  for (const Lit& l : trail_) clauses.push_back(Clause{l});
  for (const ClauseRef cref : clauses_) {
    const Lit* lits = arena_.lits(cref);
    clauses.emplace_back(lits, lits + arena_.size(cref));
  }
  if (!preprocessor_->Run(std::move(clauses))) {
    ok_ = false;
    return;
  }
  const PreprocessStats& ps = preprocessor_->stats();
  stats_.preprocess_vars_eliminated = ps.pure_eliminated + ps.bve_eliminated;
  stats_.preprocess_clauses_removed = ps.clauses_removed;
  RebuildFromClauses(preprocessor_->clauses());
}

void Solver::RebuildFromClauses(const std::vector<Clause>& clauses) {
  arena_.Clear();
  clauses_.clear();
  learnts_.clear();
  for (std::vector<Watch>& ws : watches_) ws.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  std::fill(assigns_.begin(), assigns_.end(), kUndef);
  std::fill(reasons_.begin(), reasons_.end(), kNullClauseRef);
  std::fill(levels_.begin(), levels_.end(), 0);
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);

  const std::vector<int8_t>& forced = preprocessor_->forced();
  for (Var v = 0; v < num_vars(); ++v) {
    eliminated_[v] = preprocessor_->IsEliminated(v) ? 1 : 0;
    if (eliminated_[v]) continue;
    if (forced[v] >= 0) {
      Enqueue(Lit(v, /*negated=*/forced[v] == 0), kNullClauseRef);
      continue;
    }
    HeapInsert(v);
  }
  // The preprocessor reached a BCP fixpoint: no surviving clause mentions
  // a forced variable, so there is nothing to propagate.
  qhead_ = trail_.size();

  for (const Clause& c : clauses) {
    INFLOG_DCHECK(c.size() >= 2);
    const ClauseRef cref =
        arena_.Alloc(c.data(), static_cast<uint32_t>(c.size()),
                     /*learned=*/false, /*lbd=*/0);
    clauses_.push_back(cref);
    AttachClause(cref);
  }
}

void Solver::ReduceDB() {
  INFLOG_DCHECK(DecisionLevel() == 0);
  ++stats_.db_reductions;
  // Keep every glue-2-or-better clause plus the better half of the rest,
  // ranked by (LBD ascending, activity descending).
  std::sort(learnts_.begin(), learnts_.end(),
            [this](ClauseRef a, ClauseRef b) {
              const uint32_t la = arena_.lbd(a);
              const uint32_t lb = arena_.lbd(b);
              if (la != lb) return la < lb;
              return arena_.activity(a) > arena_.activity(b);
            });
  const size_t keep_rank = learnts_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  for (size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef cref = learnts_[i];
    if (arena_.lbd(cref) <= 2 || i < keep_rank) {
      kept.push_back(cref);
      continue;
    }
    arena_.set_mark(cref);
    ++stats_.deleted_clauses;
  }
  learnts_.swap(kept);
  GarbageCollect();
}

void Solver::RemoveRootSatisfied(std::vector<ClauseRef>* list) {
  size_t keep = 0;
  for (const ClauseRef cref : *list) {
    const Lit* lits = arena_.lits(cref);
    const uint32_t size = arena_.size(cref);
    bool satisfied = false;
    for (uint32_t i = 0; i < size; ++i) {
      if (LitValue(lits[i]) == 1) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) {
      if (arena_.learned(cref)) ++stats_.deleted_clauses;
    } else {
      (*list)[keep++] = cref;
    }
  }
  list->resize(keep);
}

void Solver::GarbageCollect() {
  INFLOG_DCHECK(DecisionLevel() == 0);
  // Analysis never reads the reason of a level-0 literal, so clearing root
  // reasons here frees every clause to move or die.
  for (const Lit& l : trail_) reasons_[l.var()] = kNullClauseRef;
  RemoveRootSatisfied(&clauses_);
  RemoveRootSatisfied(&learnts_);
  ClauseArena fresh;
  for (std::vector<ClauseRef>* list : {&clauses_, &learnts_}) {
    for (ClauseRef& cref : *list) {
      // Watches are rebuilt below, so positions 0 and 1 must be non-false
      // literals; at a root BCP fixpoint every clause not satisfied at the
      // root has at least two.
      Lit* lits = arena_.lits(cref);
      const uint32_t size = arena_.size(cref);
      uint32_t w = 0;
      for (uint32_t i = 0; i < size && w < 2; ++i) {
        if (LitValue(lits[i]) != 0) std::swap(lits[w++], lits[i]);
      }
      INFLOG_DCHECK(w == 2);
      cref = arena_.CopyClause(cref, &fresh);
    }
  }
  arena_.Swap(&fresh);
  for (std::vector<Watch>& ws : watches_) ws.clear();
  for (const ClauseRef cref : clauses_) AttachClause(cref);
  for (const ClauseRef cref : learnts_) AttachClause(cref);
}

void Solver::ExtendModel() {
  if (preprocessor_ == nullptr) return;
  preprocessor_->Extend(&model_);
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  CancelUntil(0);
  if (Propagate() != kNullClauseRef) {
    ok_ = false;
    return SolveResult::kUnsat;
  }
  if (options_.preprocess && !preprocessed_) {
    RunPreprocess();
    if (!ok_) return SolveResult::kUnsat;
  }
  for (const Lit& a : assumptions) {
    INFLOG_CHECK(a.var() >= 0 && a.var() < num_vars());
    INFLOG_CHECK(!eliminated_[a.var()])
        << "assumption on a preprocessing-eliminated variable; FreezeVar "
           "it before the first Solve";
  }

  uint64_t restart_count = 0;
  uint64_t conflicts_until_restart =
      options_.restart_base == 0
          ? UINT64_MAX
          : options_.restart_base * Luby(restart_count);
  uint64_t conflicts_this_restart = 0;
  const uint64_t reduce_base =
      options_.reduce_base == 0 ? 2000 : options_.reduce_base;

  while (true) {
    const ClauseRef conflict = Propagate();
    if (conflict != kNullClauseRef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      Clause learnt;
      int backtrack_level = 0;
      uint32_t lbd = 0;
      Analyze(conflict, &learnt, &backtrack_level, &lbd);
      CancelUntil(backtrack_level);
      if (learnt.size() == 1) {
        CancelUntil(0);
        if (LitValue(learnt[0]) == 0) {
          ok_ = false;
          return SolveResult::kUnsat;
        }
        if (LitValue(learnt[0]) == kUndef) Enqueue(learnt[0], kNullClauseRef);
      } else {
        const ClauseRef cref = arena_.Alloc(
            learnt.data(), static_cast<uint32_t>(learnt.size()),
            /*learned=*/true, lbd);
        learnts_.push_back(cref);
        AttachClause(cref);
        BumpClause(cref);
        Enqueue(learnt[0], cref);
        ++stats_.learned_clauses;
      }
      DecayActivities();
      if (options_.max_conflicts != 0 &&
          stats_.conflicts >= options_.max_conflicts) {
        CancelUntil(0);
        return SolveResult::kUnknown;
      }
      if (StopRequested()) {
        CancelUntil(0);
        return SolveResult::kUnknown;
      }
      continue;
    }

    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      ++restart_count;
      conflicts_this_restart = 0;
      conflicts_until_restart =
          options_.restart_base * Luby(restart_count);
      CancelUntil(0);
      // Learnt-database reduction piggybacks on restarts: the trail is at
      // the root, so no learnt clause is locked as a reason.
      if (options_.reduce_db &&
          stats_.conflicts >= reduce_conflicts_ + reduce_base +
                                  stats_.db_reductions * options_.reduce_inc) {
        ReduceDB();
        reduce_conflicts_ = stats_.conflicts;
      }
      continue;
    }

    // Apply assumptions as pseudo-decisions, one level each.
    if (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      if (LitValue(a) == 0) {
        // Assumption conflicts with the current (root-implied) state.
        CancelUntil(0);
        return SolveResult::kUnsat;
      }
      NewDecisionLevel();
      if (LitValue(a) == kUndef) Enqueue(a, kNullClauseRef);
      continue;
    }

    if (StopRequested()) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    ++stats_.decisions;
    const Lit next = PickBranchLit();
    if (next.code == -1) {
      // Every live variable is assigned: a model. Preprocessing-eliminated
      // variables are reconstructed by ExtendModel.
      model_.assign(assigns_.begin(), assigns_.end());
      ExtendModel();
      CancelUntil(0);
      return SolveResult::kSat;
    }
    NewDecisionLevel();
    Enqueue(next, kNullClauseRef);
  }
}

}  // namespace sat
}  // namespace inflog
