#include "src/sat/solver.h"

#include <algorithm>

namespace inflog {
namespace sat {

Solver::Solver(SolverOptions options) : options_(options) {}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(kUndef);
  levels_.push_back(0);
  reasons_.push_back(kNoReason);
  activity_.push_back(0.0);
  phase_.push_back(0);  // default polarity: false (negative phase)
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(v);
  return v;
}

bool Solver::AddClause(Clause clause) {
  if (!ok_) return false;
  CancelUntil(0);
  // Root-level simplification: drop satisfied clauses and false literals,
  // detect tautologies and duplicates.
  std::sort(clause.begin(), clause.end());
  Clause simplified;
  Lit prev;
  for (const Lit& lit : clause) {
    INFLOG_CHECK(lit.var() >= 0 && lit.var() < num_vars())
        << "clause uses unallocated variable";
    if (LitValue(lit) == 1) return true;            // already satisfied
    if (LitValue(lit) == 0) continue;               // false at root: drop
    if (!simplified.empty() && lit == prev) continue;  // duplicate
    if (!simplified.empty() && lit == ~prev) return true;  // tautology
    simplified.push_back(lit);
    prev = lit;
  }
  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    Enqueue(simplified[0], kNoReason);
    if (Propagate() != kNoReason) ok_ = false;
    return ok_;
  }
  const uint32_t cref = static_cast<uint32_t>(clauses_.size());
  clauses_.push_back(InternalClause{std::move(simplified), false});
  AttachClause(cref);
  return true;
}

bool Solver::AddCnf(const Cnf& cnf) {
  while (num_vars() < cnf.num_vars) NewVar();
  for (const Clause& clause : cnf.clauses) {
    if (!AddClause(clause)) return false;
  }
  return true;
}

void Solver::AttachClause(uint32_t cref) {
  const InternalClause& c = clauses_[cref];
  INFLOG_DCHECK(c.lits.size() >= 2);
  watches_[c.lits[0].code].push_back(Watch{cref, c.lits[1]});
  watches_[c.lits[1].code].push_back(Watch{cref, c.lits[0]});
}

void Solver::Enqueue(Lit l, int32_t reason) {
  INFLOG_DCHECK(LitValue(l) == kUndef);
  const Var v = l.var();
  assigns_[v] = l.negated() ? 0 : 1;
  levels_[v] = DecisionLevel();
  reasons_[v] = reason;
  trail_.push_back(l);
}

int32_t Solver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    // p became true; visit clauses watching ~p.
    const Lit false_lit = ~p;
    std::vector<Watch>& ws = watches_[false_lit.code];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watch w = ws[i];
      if (LitValue(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      InternalClause& c = clauses_[w.clause];
      // Normalize: the false literal sits at position 1.
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      INFLOG_DCHECK(c.lits[1] == false_lit);
      if (LitValue(c.lits[0]) == 1) {
        ws[keep++] = Watch{w.clause, c.lits[0]};
        continue;
      }
      // Find a replacement watch.
      bool found = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (LitValue(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1].code].push_back(Watch{w.clause, c.lits[0]});
          found = true;
          break;
        }
      }
      if (found) continue;  // watch moved to another list
      // Unit or conflicting.
      ws[keep++] = w;
      if (LitValue(c.lits[0]) == 0) {
        // Conflict: restore the remaining watches and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return static_cast<int32_t>(w.clause);
      }
      Enqueue(c.lits[0], static_cast<int32_t>(w.clause));
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::Analyze(int32_t conflict, Clause* learnt, int* backtrack_level) {
  learnt->clear();
  learnt->push_back(Lit());  // slot for the asserting literal
  int counter = 0;
  Lit p;
  bool have_p = false;
  size_t index = trail_.size();
  int32_t reason = conflict;
  do {
    INFLOG_DCHECK(reason != kNoReason) << "analysis reached a decision";
    const InternalClause& c = clauses_[reason];
    for (const Lit& q : c.lits) {
      if (have_p && q == p) continue;
      const Var v = q.var();
      if (seen_[v] || levels_[v] == 0) continue;
      seen_[v] = 1;
      BumpVar(v);
      if (levels_[v] >= DecisionLevel()) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    have_p = true;
    reason = reasons_[p.var()];
    seen_[p.var()] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = ~p;

  // Backtrack level: the highest level among the non-asserting literals.
  *backtrack_level = 0;
  size_t max_pos = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    if (levels_[(*learnt)[i].var()] > *backtrack_level) {
      *backtrack_level = levels_[(*learnt)[i].var()];
      max_pos = i;
    }
  }
  if (learnt->size() > 1) {
    std::swap((*learnt)[1], (*learnt)[max_pos]);
  }
  for (size_t i = 0; i < learnt->size(); ++i) {
    seen_[(*learnt)[i].var()] = 0;
  }
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  const size_t bound = trail_lim_[level];
  for (size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    phase_[v] = assigns_[v];  // phase saving
    assigns_[v] = kUndef;
    reasons_[v] = kNoReason;
    if (!HeapContains(v)) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

void Solver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapContains(v)) HeapSiftUp(heap_pos_[v]);
}

Lit Solver::PickBranchLit() {
  while (!heap_.empty()) {
    const Var v = HeapPopMax();
    if (assigns_[v] == kUndef) {
      return Lit(v, phase_[v] != 1);
    }
  }
  return Lit();  // no unassigned variable remains
}

void Solver::HeapInsert(Var v) {
  heap_pos_[v] = static_cast<int32_t>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(heap_.size() - 1);
}

void Solver::HeapSiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!HeapLess(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    heap_pos_[heap_[parent]] = static_cast<int32_t>(parent);
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = parent;
  }
}

void Solver::HeapSiftDown(size_t i) {
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t largest = i;
    if (left < heap_.size() && HeapLess(heap_[largest], heap_[left])) {
      largest = left;
    }
    if (right < heap_.size() && HeapLess(heap_[largest], heap_[right])) {
      largest = right;
    }
    if (largest == i) break;
    std::swap(heap_[i], heap_[largest]);
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    heap_pos_[heap_[largest]] = static_cast<int32_t>(largest);
    i = largest;
  }
}

Var Solver::HeapPopMax() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

uint64_t Solver::Luby(uint64_t i) {
  // Finds the i-th term (1-based) of the Luby sequence 1,1,2,1,1,2,4,...
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  CancelUntil(0);
  if (Propagate() != kNoReason) {
    ok_ = false;
    return SolveResult::kUnsat;
  }

  uint64_t restart_count = 0;
  uint64_t conflicts_until_restart =
      options_.restart_base == 0
          ? UINT64_MAX
          : options_.restart_base * Luby(restart_count);
  uint64_t conflicts_this_restart = 0;

  while (true) {
    const int32_t conflict = Propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      Clause learnt;
      int backtrack_level = 0;
      Analyze(conflict, &learnt, &backtrack_level);
      CancelUntil(backtrack_level);
      if (learnt.size() == 1) {
        CancelUntil(0);
        if (LitValue(learnt[0]) == 0) {
          ok_ = false;
          return SolveResult::kUnsat;
        }
        if (LitValue(learnt[0]) == kUndef) Enqueue(learnt[0], kNoReason);
      } else {
        const uint32_t cref = static_cast<uint32_t>(clauses_.size());
        clauses_.push_back(InternalClause{learnt, true});
        AttachClause(cref);
        Enqueue(learnt[0], static_cast<int32_t>(cref));
        ++stats_.learned_clauses;
      }
      DecayActivities();
      if (options_.max_conflicts != 0 &&
          stats_.conflicts >= options_.max_conflicts) {
        CancelUntil(0);
        return SolveResult::kUnknown;
      }
      continue;
    }

    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      ++restart_count;
      conflicts_this_restart = 0;
      conflicts_until_restart =
          options_.restart_base * Luby(restart_count);
      CancelUntil(0);
      continue;
    }

    // Apply assumptions as pseudo-decisions, one level each.
    if (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      INFLOG_CHECK(a.var() >= 0 && a.var() < num_vars());
      if (LitValue(a) == 0) {
        // Assumption conflicts with the current (root-implied) state.
        CancelUntil(0);
        return SolveResult::kUnsat;
      }
      NewDecisionLevel();
      if (LitValue(a) == kUndef) Enqueue(a, kNoReason);
      continue;
    }

    ++stats_.decisions;
    const Lit next = PickBranchLit();
    if (next.code == -1) {
      // Every variable is assigned: a model.
      model_.assign(assigns_.begin(), assigns_.end());
      CancelUntil(0);
      return SolveResult::kSat;
    }
    NewDecisionLevel();
    Enqueue(next, kNoReason);
  }
}

}  // namespace sat
}  // namespace inflog
