// Propositional CNF: variables, literals, clauses.
//
// Variables are dense 0-based ints; a literal packs a variable and a sign
// into one int (MiniSat encoding: code = 2·var + sign, sign 1 = negated).
// This module is shared by the CDCL solver, the DIMACS reader, the Clark
// completion encoder, and the SAT↔database reductions of Example 1.

#ifndef INFLOG_SAT_CNF_H_
#define INFLOG_SAT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/logging.h"

namespace inflog {
namespace sat {

/// A propositional variable (0-based).
using Var = int32_t;

/// A literal: a variable with a sign.
struct Lit {
  int32_t code = -1;

  Lit() = default;
  Lit(Var var, bool negated) : code(2 * var + (negated ? 1 : 0)) {
    INFLOG_DCHECK(var >= 0);
  }

  Var var() const { return code >> 1; }
  bool negated() const { return (code & 1) != 0; }
  /// The complementary literal.
  Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  bool operator==(const Lit& o) const { return code == o.code; }
  bool operator!=(const Lit& o) const { return code != o.code; }
  bool operator<(const Lit& o) const { return code < o.code; }
};

/// Positive literal of `v`.
inline Lit Pos(Var v) { return Lit(v, false); }
/// Negative literal of `v`.
inline Lit Neg(Var v) { return Lit(v, true); }

/// A clause: a disjunction of literals.
using Clause = std::vector<Lit>;

/// A CNF formula under construction.
struct Cnf {
  int32_t num_vars = 0;
  std::vector<Clause> clauses;

  /// Allocates a fresh variable.
  Var NewVar() { return num_vars++; }

  /// Appends a clause; literals must reference allocated variables.
  void AddClause(Clause clause) {
    for (const Lit& lit : clause) {
      INFLOG_DCHECK(lit.var() >= 0 && lit.var() < num_vars);
    }
    clauses.push_back(std::move(clause));
  }
  void AddClause(std::initializer_list<Lit> lits) {
    AddClause(Clause(lits));
  }

  /// True iff `assignment` (indexed by var) satisfies every clause. Used
  /// as the brute-force oracle in solver tests.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const {
    for (const Clause& clause : clauses) {
      bool sat = false;
      for (const Lit& lit : clause) {
        if (assignment[lit.var()] != lit.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) return false;
    }
    return true;
  }

  /// Renders in DIMACS-like text (for debugging).
  std::string ToString() const;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_CNF_H_
