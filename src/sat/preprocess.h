// CNF preprocessing front-end for the CDCL solver.
//
// Simplifies a root-level clause database before search:
//
//   * tautology and duplicate-literal cleanup, duplicate-clause removal;
//   * boolean constraint propagation (root BCP) to fixpoint;
//   * pure-literal elimination;
//   * NiVER-style bounded variable elimination (Subbarayan & Pradhan):
//     a variable is resolved away only when the resolvents hold no more
//     literals than the clauses they replace.
//
// Every transformation computes an exact existential projection: the set
// of models restricted to the surviving variables is unchanged. Frozen
// variables are exempt from elimination (BCP may still fix them), so a
// caller that will reference a variable later — blocking clauses over the
// completion's atom variables, assumptions — freezes it and stays sound,
// including under model enumeration.
//
// Eliminated variables are reconstructed by Extend(): the clauses removed
// at each elimination are replayed in reverse order, flipping the
// eliminated variable wherever a saved clause would otherwise be false.
// A model of the simplified formula so extends to a model of the
// original one.

#ifndef INFLOG_SAT_PREPROCESS_H_
#define INFLOG_SAT_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "src/sat/cnf.h"

namespace inflog {
namespace sat {

/// Preprocessing knobs.
struct PreprocessOptions {
  bool bcp = true;   ///< Root unit propagation to fixpoint.
  bool pure = true;  ///< Pure-literal elimination (non-frozen vars).
  bool bve = true;   ///< NiVER bounded variable elimination.
  /// Simplification rounds (each runs BCP, pure, BVE once); the loop also
  /// stops as soon as a round changes nothing.
  uint32_t max_rounds = 12;
  /// BVE skips variables with more occurrences than this on either
  /// polarity (quadratic resolvent generation stays bounded).
  uint32_t bve_occurrence_cap = 24;
};

/// Counters of one Run.
struct PreprocessStats {
  uint64_t units_propagated = 0;   ///< Root literals fixed by BCP.
  uint64_t pure_eliminated = 0;    ///< Variables removed as pure.
  uint64_t bve_eliminated = 0;     ///< Variables resolved away by NiVER.
  uint64_t clauses_removed = 0;    ///< Net clause count drop (input after
                                   ///< normalization minus output).
  uint64_t tautologies_removed = 0;
  uint64_t duplicates_removed = 0;
  uint64_t rounds = 0;
};

/// One-shot preprocessor over a clause database in a fixed variable
/// numbering (eliminated variables keep their indices; they simply stop
/// occurring in the output clauses).
class Preprocessor {
 public:
  Preprocessor(int32_t num_vars, PreprocessOptions options = {});

  /// Marks `v` as not eliminable (still fixable by BCP).
  void FreezeVar(Var v);

  /// Simplifies `clauses` (consumed). Returns false when the database is
  /// unsatisfiable at the root. Callable once.
  bool Run(std::vector<Clause> clauses);

  /// Simplified clauses; valid after Run. No clause mentions an
  /// eliminated or root-forced variable.
  const std::vector<Clause>& clauses() const { return out_clauses_; }

  /// By var: -1 free, else the root-forced value (0/1).
  const std::vector<int8_t>& forced() const { return forced_; }

  bool IsEliminated(Var v) const { return eliminated_[v] != 0; }

  /// Extends `model` (by var; -1 unassigned) over the eliminated and
  /// forced variables so it satisfies the original clause database.
  /// Surviving variables must already carry their solver values.
  void Extend(std::vector<int8_t>* model) const;

  const PreprocessStats& stats() const { return stats_; }

 private:
  // One elimination record: `lit` was removed; for BVE, `saved` holds the
  // original clauses containing the variable (either polarity) to replay
  // during reconstruction. Pure literals need no clauses: setting the
  // literal true satisfies everything that was removed.
  struct Elimination {
    Lit lit;
    bool pure = false;
    std::vector<Clause> saved;
  };

  int8_t LitValueAtRoot(Lit l) const {
    const int8_t f = forced_[l.var()];
    if (f < 0) return -1;
    return (f == 1) != l.negated() ? 1 : 0;
  }

  bool PropagateUnits();  // returns false on root conflict
  bool EliminatePure();   // returns true when something changed
  bool EliminateByResolution(bool* unsat);

  void RemoveClause(uint32_t idx);
  bool AddDerivedClause(Clause clause, bool* unsat);
  void DetachVar(Var v, std::vector<Clause>* saved);

  PreprocessOptions options_;
  PreprocessStats stats_;
  int32_t num_vars_;
  std::vector<int8_t> frozen_;
  std::vector<int8_t> eliminated_;
  std::vector<int8_t> forced_;

  // Live clause database with per-literal occurrence lists (clause ids;
  // stale ids are skipped via alive_).
  std::vector<Clause> db_;
  std::vector<int8_t> alive_;
  std::vector<std::vector<uint32_t>> occur_;  // by literal code
  std::vector<uint32_t> occur_count_;         // live occurrences, by code
  std::vector<Var> unit_queue_;

  std::vector<Elimination> eliminations_;
  std::vector<Clause> out_clauses_;
  bool ran_ = false;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_PREPROCESS_H_
