// Portfolio parallel SAT solving.
//
// A PortfolioSolver runs K diversified CDCL instances (different seeds,
// polarities, restart schedules and activity decays) on the same formula
// and takes the first definitive answer; the winner raises a shared
// atomic stop flag and the losers return at their next conflict or
// decision. Clause additions and freezes are broadcast to every member,
// so the portfolio is a drop-in for the incremental Solver API
// (blocking-clause model enumeration works unchanged).
//
// Determinism: with `portfolio_threads = 1` the single member is
// configured exactly like a plain Solver — no randomness, no stop flag
// races — so results are bit-identical to the sequential engine by
// construction. With K > 1 the *verdict* (SAT/UNSAT) is still
// deterministic — it is a property of the formula — but which member's
// model is reported depends on timing; engine layers that need stable
// output across widths canonicalize (sort) what they derive from models.

#ifndef INFLOG_SAT_PORTFOLIO_H_
#define INFLOG_SAT_PORTFOLIO_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/sat/solver.h"

namespace inflog {
namespace sat {

/// K-way portfolio over diversified Solver instances. K comes from
/// SolverOptions::portfolio_threads (clamped to >= 1).
class PortfolioSolver {
 public:
  explicit PortfolioSolver(SolverOptions options = {});

  Var NewVar();
  int32_t num_vars() const { return members_[0]->num_vars(); }

  /// Broadcast FreezeVar (see Solver::FreezeVar).
  void FreezeVar(Var v);

  /// Adds a clause to every member. Returns false when the formula is
  /// known unsatisfiable at the root.
  bool AddClause(Clause clause);
  bool AddCnf(const Cnf& cnf);

  /// Races the members; first definitive answer wins. With one member
  /// this is exactly Solver::Solve. An external SolverOptions::stop flag
  /// is honored mid-search with one member and checked between solves
  /// otherwise.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Model access after kSat: the winning member's model.
  bool ModelValue(Var v) const { return members_[winner_]->ModelValue(v); }
  std::vector<bool> Model() const { return members_[winner_]->Model(); }

  /// Aggregated statistics across every member.
  SolverStats stats() const;

  /// True while the root state is consistent: a member that derives the
  /// empty clause (under no assumptions) makes the whole portfolio unsat.
  bool ok() const {
    if (!ok_) return false;
    for (const auto& m : members_) {
      if (!m->ok()) return false;
    }
    return true;
  }

  size_t num_members() const { return members_.size(); }

 private:
  static SolverOptions MemberOptions(const SolverOptions& base, size_t i,
                                     const std::atomic<bool>* stop);

  SolverOptions options_;
  bool ok_ = true;
  // Heap-held so members can keep a stable pointer across moves.
  std::unique_ptr<std::atomic<bool>> stop_;
  std::vector<std::unique_ptr<Solver>> members_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily, K > 1 only
  size_t winner_ = 0;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_PORTFOLIO_H_
