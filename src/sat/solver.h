// CDCL SAT solver (MiniSat-style).
//
// Conflict-driven clause learning with two-literal watches, first-UIP
// conflict analysis, VSIDS variable activities with phase saving, Luby
// restarts, incremental clause addition, and solving under assumptions.
//
// This is the NP engine behind the paper's Theorems 1–3: fixpoint
// existence, uniqueness and least-fixpoint queries are all answered
// through Clark-completion encodings solved here. It is also used as the
// independent satisfiability oracle for the Example 1 reduction tests.

#ifndef INFLOG_SAT_SOLVER_H_
#define INFLOG_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "src/sat/cnf.h"

namespace inflog {
namespace sat {

/// Outcome of a Solve call.
enum class SolveResult {
  kSat,
  kUnsat,
  kUnknown,  ///< Conflict budget exhausted.
};

/// Tuning knobs and budgets.
struct SolverOptions {
  /// Abort with kUnknown after this many conflicts (0 = unlimited).
  uint64_t max_conflicts = 0;
  /// Luby restart unit (conflicts); 0 disables restarts.
  uint64_t restart_base = 100;
  /// VSIDS decay factor.
  double activity_decay = 0.95;
};

/// Run statistics.
struct SolverStats {
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
};

/// Incremental CDCL solver.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Allocates a fresh variable and returns it.
  Var NewVar();

  /// Number of allocated variables.
  int32_t num_vars() const { return static_cast<int32_t>(assigns_.size()); }

  /// Adds a clause (callable between Solve calls). Returns false when the
  /// solver is already in an unsatisfiable root state.
  bool AddClause(Clause clause);

  /// Loads every clause of `cnf` (allocating variables as needed).
  bool AddCnf(const Cnf& cnf);

  /// Decides satisfiability under the given assumption literals.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Model access after kSat: the value of `v` in the satisfying
  /// assignment.
  bool ModelValue(Var v) const {
    INFLOG_CHECK(v >= 0 && static_cast<size_t>(v) < model_.size());
    return model_[v] == 1;
  }

  /// The model as a bool vector indexed by var.
  std::vector<bool> Model() const {
    std::vector<bool> m(model_.size());
    for (size_t i = 0; i < model_.size(); ++i) m[i] = model_[i] == 1;
    return m;
  }

  const SolverStats& stats() const { return stats_; }

  /// True while the root state is consistent (no empty clause derived).
  bool ok() const { return ok_; }

 private:
  static constexpr int8_t kUndef = -1;
  static constexpr int32_t kNoReason = -1;

  struct InternalClause {
    std::vector<Lit> lits;
    bool learned = false;
  };
  struct Watch {
    uint32_t clause;
    Lit blocker;
  };

  // Assignment access.
  int8_t VarValue(Var v) const { return assigns_[v]; }
  /// -1 unassigned, 1 literal true, 0 literal false.
  int8_t LitValue(Lit l) const {
    const int8_t a = assigns_[l.var()];
    if (a == kUndef) return kUndef;
    return (a == 1) != l.negated() ? 1 : 0;
  }

  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(trail_.size()); }

  void AttachClause(uint32_t cref);
  void Enqueue(Lit l, int32_t reason);
  int32_t Propagate();  // returns conflicting clause index or kNoReason
  void Analyze(int32_t conflict, Clause* learnt, int* backtrack_level);
  void CancelUntil(int level);
  void BumpVar(Var v);
  void DecayActivities() { var_inc_ /= options_.activity_decay; }
  Lit PickBranchLit();

  // Activity-ordered decision heap (max-heap on activity_).
  bool HeapLess(Var a, Var b) const { return activity_[a] < activity_[b]; }
  void HeapInsert(Var v);
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  Var HeapPopMax();
  bool HeapContains(Var v) const { return heap_pos_[v] >= 0; }

  static uint64_t Luby(uint64_t i);

  SolverOptions options_;
  SolverStats stats_;
  bool ok_ = true;

  std::vector<InternalClause> clauses_;
  std::vector<std::vector<Watch>> watches_;  // by literal code
  std::vector<int8_t> assigns_;              // by var
  std::vector<int> levels_;                  // by var
  std::vector<int32_t> reasons_;             // by var
  std::vector<double> activity_;             // by var
  std::vector<int8_t> phase_;                // by var (saved polarity)
  std::vector<char> seen_;                   // by var (analyze scratch)
  std::vector<Lit> trail_;
  std::vector<size_t> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;

  std::vector<Var> heap_;
  std::vector<int32_t> heap_pos_;  // by var; -1 = not in heap

  std::vector<int8_t> model_;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_SOLVER_H_
