// CDCL SAT solver (MiniSat/Glucose-style).
//
// Conflict-driven clause learning with two-literal watches over a
// contiguous clause arena, first-UIP conflict analysis, LBD-scored
// learnt-clause database reduction, VSIDS variable activities with phase
// saving, Luby restarts, an optional preprocessing front-end (root BCP,
// pure literals, NiVER bounded variable elimination) with model
// reconstruction, incremental clause addition, and solving under
// assumptions.
//
// This is the NP engine behind the paper's Theorems 1–3: fixpoint
// existence, uniqueness and least-fixpoint queries are all answered
// through Clark-completion encodings solved here. It is also used as the
// independent satisfiability oracle for the Example 1 reduction tests.
//
// Incremental use with preprocessing: the preprocessor runs once, at the
// first Solve. Variables that later clauses or assumptions will mention
// must be frozen (FreezeVar) before that first Solve — the analyzer
// freezes every completion atom variable, which keeps blocking-clause
// model enumeration exact (elimination computes the existential
// projection onto the surviving variables, so the model set over frozen
// variables is unchanged).

#ifndef INFLOG_SAT_SOLVER_H_
#define INFLOG_SAT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/sat/arena.h"
#include "src/sat/cnf.h"
#include "src/sat/preprocess.h"

namespace inflog {
namespace sat {

/// Outcome of a Solve call.
enum class SolveResult {
  kSat,
  kUnsat,
  kUnknown,  ///< Conflict budget exhausted or stop flag raised.
};

/// Tuning knobs and budgets.
struct SolverOptions {
  /// Abort with kUnknown after this many conflicts (0 = unlimited).
  uint64_t max_conflicts = 0;
  /// Luby restart unit (conflicts); 0 disables restarts.
  uint64_t restart_base = 100;
  /// VSIDS decay factor.
  double activity_decay = 0.95;

  /// Run the preprocessing front-end once, at the first Solve. Callers
  /// that add clauses or assumptions over existing variables after that
  /// must FreezeVar them first.
  bool preprocess = false;
  PreprocessOptions preprocess_options;

  /// LBD-scored learnt-clause database reduction (checked at restarts;
  /// glue <= 2 clauses and the better half by (LBD, activity) survive,
  /// the arena is garbage-collected after each reduction).
  bool reduce_db = true;
  /// Conflicts before the first reduction; 0 = the default (2000).
  uint64_t reduce_base = 0;
  /// Extra conflicts added to the gap after each reduction (default 300).
  uint64_t reduce_inc = 300;

  /// Portfolio width used by PortfolioSolver (a plain Solver ignores it);
  /// 1 = a single undiversified instance, deterministic by construction.
  size_t portfolio_threads = 1;

  /// Diversification (used by portfolio instances): 0 keeps the
  /// deterministic base behavior; nonzero seeds random decisions.
  uint64_t seed = 0;
  /// Probability of a random branch decision (needs seed != 0).
  double random_decision_freq = 0.0;
  /// Initial saved phase for every variable (false = MiniSat default).
  bool init_phase_true = false;

  /// Cooperative cancellation: when set and the pointee becomes true, the
  /// search returns kUnknown at the next conflict or decision.
  const std::atomic<bool>* stop = nullptr;
};

/// Run statistics.
struct SolverStats {
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
  uint64_t deleted_clauses = 0;   ///< Learnt clauses dropped by ReduceDB.
  uint64_t db_reductions = 0;     ///< ReduceDB passes (each ends in a GC).
  uint64_t preprocess_vars_eliminated = 0;
  uint64_t preprocess_clauses_removed = 0;

  void Add(const SolverStats& o) {
    conflicts += o.conflicts;
    decisions += o.decisions;
    propagations += o.propagations;
    restarts += o.restarts;
    learned_clauses += o.learned_clauses;
    deleted_clauses += o.deleted_clauses;
    db_reductions += o.db_reductions;
    preprocess_vars_eliminated += o.preprocess_vars_eliminated;
    preprocess_clauses_removed += o.preprocess_clauses_removed;
  }
};

/// Incremental CDCL solver.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Allocates a fresh variable and returns it.
  Var NewVar();

  /// Number of allocated variables.
  int32_t num_vars() const { return static_cast<int32_t>(assigns_.size()); }

  /// Marks `v` as referenced by future clauses or assumptions: the
  /// preprocessor will not eliminate it. Call before the first Solve.
  void FreezeVar(Var v);

  /// Adds a clause (callable between Solve calls). Returns false when the
  /// solver is already in an unsatisfiable root state. Must not mention
  /// preprocessing-eliminated variables (freeze them instead).
  bool AddClause(Clause clause);

  /// Loads every clause of `cnf` (allocating variables as needed).
  bool AddCnf(const Cnf& cnf);

  /// Decides satisfiability under the given assumption literals.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Model access after kSat: the value of `v` in the satisfying
  /// assignment (eliminated variables reconstructed).
  bool ModelValue(Var v) const {
    INFLOG_CHECK(v >= 0 && static_cast<size_t>(v) < model_.size());
    return model_[v] == 1;
  }

  /// The model as a bool vector indexed by var.
  std::vector<bool> Model() const {
    std::vector<bool> m(model_.size());
    for (size_t i = 0; i < model_.size(); ++i) m[i] = model_[i] == 1;
    return m;
  }

  const SolverStats& stats() const { return stats_; }

  /// True while the root state is consistent (no empty clause derived).
  bool ok() const { return ok_; }

  /// Live learnt-clause count (ReduceDB observability for tests).
  size_t num_learnts() const { return learnts_.size(); }
  /// Arena buffer size in words (GC observability for tests).
  size_t arena_words() const { return arena_.words(); }

 private:
  static constexpr int8_t kUndef = -1;

  struct Watch {
    ClauseRef clause;
    Lit blocker;
  };

  // Assignment access.
  int8_t VarValue(Var v) const { return assigns_[v]; }
  /// -1 unassigned, 1 literal true, 0 literal false.
  int8_t LitValue(Lit l) const {
    const int8_t a = assigns_[l.var()];
    if (a == kUndef) return kUndef;
    return (a == 1) != l.negated() ? 1 : 0;
  }

  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(trail_.size()); }

  void AttachClause(ClauseRef cref);
  void DetachClause(ClauseRef cref);
  void Enqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();  // kNullClauseRef = no conflict
  void Analyze(ClauseRef conflict, Clause* learnt, int* backtrack_level,
               uint32_t* lbd);
  uint32_t ComputeLbd(const Lit* lits, uint32_t size);
  void CancelUntil(int level);
  void BumpVar(Var v);
  void BumpClause(ClauseRef cref);
  void DecayActivities() {
    var_inc_ /= options_.activity_decay;
    cla_inc_ *= 1.001f;
  }
  Lit PickBranchLit();

  void RunPreprocess();
  void RebuildFromClauses(const std::vector<Clause>& clauses);
  void ReduceDB();
  void RemoveRootSatisfied(std::vector<ClauseRef>* list);
  void GarbageCollect();
  void ExtendModel();
  bool StopRequested() const {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  }

  // Activity-ordered decision heap (max-heap on activity_).
  bool HeapLess(Var a, Var b) const { return activity_[a] < activity_[b]; }
  void HeapInsert(Var v);
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  Var HeapPopMax();
  bool HeapContains(Var v) const { return heap_pos_[v] >= 0; }

  static uint64_t Luby(uint64_t i);

  SolverOptions options_;
  SolverStats stats_;
  bool ok_ = true;

  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watch>> watches_;  // by literal code
  std::vector<int8_t> assigns_;              // by var
  std::vector<int> levels_;                  // by var
  std::vector<ClauseRef> reasons_;           // by var
  std::vector<double> activity_;             // by var
  std::vector<int8_t> phase_;                // by var (saved polarity)
  std::vector<char> seen_;                   // by var (analyze scratch)
  std::vector<int> lbd_seen_;                // by level (ComputeLbd scratch)
  std::vector<int8_t> frozen_;               // by var
  std::vector<int8_t> eliminated_;           // by var
  std::vector<Lit> trail_;
  std::vector<size_t> trail_lim_;
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;

  bool preprocessed_ = false;
  std::unique_ptr<Preprocessor> preprocessor_;  // kept for Extend
  uint64_t reduce_conflicts_ = 0;  // conflicts at the last reduction
  Rng rng_{0};

  std::vector<Var> heap_;
  std::vector<int32_t> heap_pos_;  // by var; -1 = not in heap

  std::vector<int8_t> model_;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_SOLVER_H_
