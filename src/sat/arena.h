// ClauseArena: contiguous clause storage for the CDCL hot path.
//
// Clauses live in one flat uint32_t buffer and are addressed by ClauseRef
// (an offset into that buffer), so a propagation pass walks memory
// sequentially instead of chasing one heap allocation per clause. Layout:
//
//   problem clause:  [header][lit0][lit1]...            (1 header word)
//   learnt clause:   [header][lbd][activity][lit0]...   (3 header words)
//
// The header packs the literal count with a learned bit and a mark bit
// (mark = scheduled for deletion; the solver's ReduceDB sets it, and the
// following garbage-collection pass drops marked clauses while compacting
// the buffer). Learnt clauses carry their LBD ("glue": the number of
// distinct decision levels in the clause when it was learned — Audemard &
// Simon's quality measure) and a float activity for the deletion policy's
// tie-breaks.
//
// The arena never shrinks in place; the solver compacts by copying live
// clauses into a fresh arena (CopyClause) and patching its refs through
// the relocation map it builds while copying.

#ifndef INFLOG_SAT_ARENA_H_
#define INFLOG_SAT_ARENA_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/logging.h"
#include "src/sat/cnf.h"

namespace inflog {
namespace sat {

/// Offset of a clause inside a ClauseArena buffer.
using ClauseRef = uint32_t;
constexpr ClauseRef kNullClauseRef = 0xFFFFFFFFu;

/// Flat clause allocator. All accessors take the ref returned by Alloc.
class ClauseArena {
 public:
  /// Allocates a clause; `lits` must hold `size` >= 1 literals.
  ClauseRef Alloc(const Lit* lits, uint32_t size, bool learned,
                  uint32_t lbd) {
    INFLOG_DCHECK(size >= 1);
    const ClauseRef ref = static_cast<ClauseRef>(buffer_.size());
    buffer_.push_back((size << 2) | (learned ? kLearnedBit : 0u));
    if (learned) {
      buffer_.push_back(lbd);
      buffer_.push_back(FloatBits(0.0f));
    }
    for (uint32_t i = 0; i < size; ++i) {
      buffer_.push_back(static_cast<uint32_t>(lits[i].code));
    }
    ++num_clauses_;
    return ref;
  }

  uint32_t size(ClauseRef ref) const { return buffer_[ref] >> 2; }
  bool learned(ClauseRef ref) const {
    return (buffer_[ref] & kLearnedBit) != 0;
  }
  bool marked(ClauseRef ref) const { return (buffer_[ref] & kMarkBit) != 0; }
  void set_mark(ClauseRef ref) { buffer_[ref] |= kMarkBit; }

  uint32_t lbd(ClauseRef ref) const {
    INFLOG_DCHECK(learned(ref));
    return buffer_[ref + 1];
  }
  void set_lbd(ClauseRef ref, uint32_t lbd) {
    INFLOG_DCHECK(learned(ref));
    buffer_[ref + 1] = lbd;
  }
  float activity(ClauseRef ref) const {
    INFLOG_DCHECK(learned(ref));
    return BitsFloat(buffer_[ref + 2]);
  }
  void set_activity(ClauseRef ref, float a) {
    INFLOG_DCHECK(learned(ref));
    buffer_[ref + 2] = FloatBits(a);
  }

  /// Mutable literal array of the clause (size(ref) entries).
  Lit* lits(ClauseRef ref) {
    return reinterpret_cast<Lit*>(buffer_.data() + ref + HeaderWords(ref));
  }
  const Lit* lits(ClauseRef ref) const {
    return reinterpret_cast<const Lit*>(buffer_.data() + ref +
                                        HeaderWords(ref));
  }
  Lit lit(ClauseRef ref, uint32_t i) const { return lits(ref)[i]; }

  /// Copies the clause (header metadata and literals, mark cleared) into
  /// `to`, returning its ref there. Used by the solver's GC pass.
  ClauseRef CopyClause(ClauseRef ref, ClauseArena* to) const {
    const ClauseRef nref =
        to->Alloc(lits(ref), size(ref), learned(ref),
                  learned(ref) ? lbd(ref) : 0);
    if (learned(ref)) to->set_activity(nref, activity(ref));
    return nref;
  }

  size_t num_clauses() const { return num_clauses_; }
  size_t words() const { return buffer_.size(); }

  void Clear() {
    buffer_.clear();
    num_clauses_ = 0;
  }

  /// Trades buffers with `other` (used to install a compacted arena).
  void Swap(ClauseArena* other) {
    buffer_.swap(other->buffer_);
    std::swap(num_clauses_, other->num_clauses_);
  }

 private:
  static constexpr uint32_t kLearnedBit = 0x1;
  static constexpr uint32_t kMarkBit = 0x2;

  uint32_t HeaderWords(ClauseRef ref) const {
    return (buffer_[ref] & kLearnedBit) ? 3 : 1;
  }

  static uint32_t FloatBits(float f) {
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
  }
  static float BitsFloat(uint32_t u) {
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
  }

  std::vector<uint32_t> buffer_;
  size_t num_clauses_ = 0;
};

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_ARENA_H_
