#include "src/sat/dimacs.h"

#include <sstream>

#include "src/base/strings.h"

namespace inflog {
namespace sat {

Result<Cnf> ParseDimacs(std::string_view text) {
  Cnf cnf;
  std::istringstream in{std::string(text)};
  std::string line;
  bool seen_header = false;
  int64_t declared_clauses = 0;
  Clause current;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == 'c') continue;
    if (stripped[0] == 'p') {
      std::istringstream header{std::string(stripped)};
      std::string p, fmt;
      int64_t vars = 0;
      header >> p >> fmt >> vars >> declared_clauses;
      if (fmt != "cnf" || vars < 0) {
        return Status::InvalidArgument(
            StrCat("bad DIMACS header: ", line));
      }
      cnf.num_vars = static_cast<int32_t>(vars);
      seen_header = true;
      continue;
    }
    if (!seen_header) {
      return Status::InvalidArgument("DIMACS clause before 'p cnf' header");
    }
    std::istringstream body{std::string(stripped)};
    int64_t v;
    while (body >> v) {
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
        continue;
      }
      const Var var = static_cast<Var>((v < 0 ? -v : v) - 1);
      if (var >= cnf.num_vars) {
        return Status::InvalidArgument(
            StrCat("DIMACS literal ", v, " exceeds declared variables"));
      }
      current.push_back(Lit(var, v < 0));
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("DIMACS file ends mid-clause (missing 0)");
  }
  return cnf;
}

std::string ToDimacs(const Cnf& cnf) {
  std::string out =
      StrCat("p cnf ", cnf.num_vars, " ", cnf.clauses.size(), "\n");
  for (const Clause& clause : cnf.clauses) {
    for (const Lit& lit : clause) {
      out += StrCat(lit.negated() ? "-" : "", lit.var() + 1, " ");
    }
    out += "0\n";
  }
  return out;
}

std::string Cnf::ToString() const { return ToDimacs(*this); }

}  // namespace sat
}  // namespace inflog
