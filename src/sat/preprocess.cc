#include "src/sat/preprocess.h"

#include <algorithm>
#include <unordered_set>

namespace inflog {
namespace sat {

namespace {

// Canonical-form hash of a sorted clause, for duplicate detection.
struct ClauseHash {
  size_t operator()(const Clause& c) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Lit& l : c) {
      h ^= static_cast<size_t>(l.code) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

}  // namespace

Preprocessor::Preprocessor(int32_t num_vars, PreprocessOptions options)
    : options_(options),
      num_vars_(num_vars),
      frozen_(num_vars, 0),
      eliminated_(num_vars, 0),
      forced_(num_vars, -1),
      occur_(2 * static_cast<size_t>(num_vars)),
      occur_count_(2 * static_cast<size_t>(num_vars), 0) {}

void Preprocessor::FreezeVar(Var v) {
  INFLOG_CHECK(v >= 0 && v < num_vars_);
  frozen_[v] = 1;
}

void Preprocessor::RemoveClause(uint32_t idx) {
  INFLOG_DCHECK(alive_[idx]);
  alive_[idx] = 0;
  for (const Lit& l : db_[idx]) --occur_count_[l.code];
}

bool Preprocessor::AddDerivedClause(Clause clause, bool* unsat) {
  // Clause is sorted and tautology-free by construction (callers
  // normalize). Root-simplify against forced values.
  Clause simplified;
  for (const Lit& l : clause) {
    const int8_t v = LitValueAtRoot(l);
    if (v == 1) return false;  // satisfied: not added
    if (v == 0) continue;
    simplified.push_back(l);
  }
  if (simplified.empty()) {
    *unsat = true;
    return false;
  }
  if (simplified.size() == 1) {
    const Lit u = simplified[0];
    if (LitValueAtRoot(u) == 0) {
      *unsat = true;
      return false;
    }
    if (forced_[u.var()] < 0) {
      forced_[u.var()] = u.negated() ? 0 : 1;
      unit_queue_.push_back(u.var());
      ++stats_.units_propagated;
    }
    return false;
  }
  const uint32_t idx = static_cast<uint32_t>(db_.size());
  for (const Lit& l : simplified) {
    occur_[l.code].push_back(idx);
    ++occur_count_[l.code];
  }
  db_.push_back(std::move(simplified));
  alive_.push_back(1);
  return true;
}

bool Preprocessor::PropagateUnits() {
  while (!unit_queue_.empty()) {
    const Var v = unit_queue_.back();
    unit_queue_.pop_back();
    for (const bool neg : {false, true}) {
      const Lit l(v, neg);
      const bool lit_true = LitValueAtRoot(l) == 1;
      // Copy: RemoveClause / unit enqueue mutate the lists we walk.
      const std::vector<uint32_t> occ = occur_[l.code];
      for (const uint32_t idx : occ) {
        if (!alive_[idx]) continue;
        if (lit_true) {
          RemoveClause(idx);
          continue;
        }
        // l is false: shrink the clause.
        Clause& c = db_[idx];
        c.erase(std::remove(c.begin(), c.end(), l), c.end());
        --occur_count_[l.code];
        if (c.empty()) return false;
        if (c.size() == 1) {
          const Lit u = c[0];
          if (LitValueAtRoot(u) == 0) return false;
          if (forced_[u.var()] < 0) {
            forced_[u.var()] = u.negated() ? 0 : 1;
            unit_queue_.push_back(u.var());
            ++stats_.units_propagated;
          }
          RemoveClause(idx);
        }
      }
    }
  }
  return true;
}

bool Preprocessor::EliminatePure() {
  bool changed = false;
  for (Var v = 0; v < num_vars_; ++v) {
    if (frozen_[v] || eliminated_[v] || forced_[v] >= 0) continue;
    const uint32_t pos = occur_count_[Pos(v).code];
    const uint32_t neg = occur_count_[Neg(v).code];
    if (pos == 0 && neg == 0) continue;  // unconstrained: leave to search
    if (pos != 0 && neg != 0) continue;
    const Lit pure = pos != 0 ? Pos(v) : Neg(v);
    eliminated_[v] = 1;
    eliminations_.push_back(Elimination{pure, /*pure=*/true, {}});
    ++stats_.pure_eliminated;
    const std::vector<uint32_t> occ = occur_[pure.code];
    for (const uint32_t idx : occ) {
      if (alive_[idx]) RemoveClause(idx);
    }
    changed = true;
  }
  return changed;
}

void Preprocessor::DetachVar(Var v, std::vector<Clause>* saved) {
  for (const bool neg : {false, true}) {
    const Lit l(v, neg);
    for (const uint32_t idx : occur_[l.code]) {
      if (!alive_[idx]) continue;
      saved->push_back(db_[idx]);
      RemoveClause(idx);
    }
  }
}

bool Preprocessor::EliminateByResolution(bool* unsat) {
  bool changed = false;
  for (Var v = 0; v < num_vars_; ++v) {
    if (frozen_[v] || eliminated_[v] || forced_[v] >= 0) continue;
    const uint32_t pos_count = occur_count_[Pos(v).code];
    const uint32_t neg_count = occur_count_[Neg(v).code];
    if (pos_count == 0 || neg_count == 0) continue;  // pure pass's job
    if (pos_count > options_.bve_occurrence_cap ||
        neg_count > options_.bve_occurrence_cap) {
      continue;
    }
    // Collect the live clauses of each polarity.
    std::vector<uint32_t> pos_idx, neg_idx;
    size_t original_literals = 0;
    for (const uint32_t idx : occur_[Pos(v).code]) {
      if (!alive_[idx]) continue;
      pos_idx.push_back(idx);
      original_literals += db_[idx].size();
    }
    for (const uint32_t idx : occur_[Neg(v).code]) {
      if (!alive_[idx]) continue;
      neg_idx.push_back(idx);
      original_literals += db_[idx].size();
    }
    // Build all non-tautological resolvents; bail out (NiVER criterion)
    // as soon as they carry more literals than the clauses they replace.
    std::vector<Clause> resolvents;
    size_t resolvent_literals = 0;
    bool within_budget = true;
    for (const uint32_t pi : pos_idx) {
      for (const uint32_t ni : neg_idx) {
        Clause r;
        for (const Lit& l : db_[pi]) {
          if (l.var() != v) r.push_back(l);
        }
        for (const Lit& l : db_[ni]) {
          if (l.var() != v) r.push_back(l);
        }
        std::sort(r.begin(), r.end());
        bool tautology = false;
        Clause dedup;
        for (const Lit& l : r) {
          if (!dedup.empty() && l == dedup.back()) continue;
          if (!dedup.empty() && l == ~dedup.back()) {
            tautology = true;
            break;
          }
          dedup.push_back(l);
        }
        if (tautology) continue;
        resolvent_literals += dedup.size();
        if (resolvent_literals > original_literals) {
          within_budget = false;
          break;
        }
        resolvents.push_back(std::move(dedup));
      }
      if (!within_budget) break;
    }
    if (!within_budget) continue;

    // Commit: remove the originals (saving them for reconstruction), add
    // the resolvents.
    Elimination elim;
    elim.lit = Pos(v);
    DetachVar(v, &elim.saved);
    eliminated_[v] = 1;
    ++stats_.bve_eliminated;
    eliminations_.push_back(std::move(elim));
    for (Clause& r : resolvents) {
      AddDerivedClause(std::move(r), unsat);
      if (*unsat) return changed;
    }
    changed = true;
  }
  return changed;
}

bool Preprocessor::Run(std::vector<Clause> clauses) {
  INFLOG_CHECK(!ran_) << "Preprocessor::Run is one-shot";
  ran_ = true;

  // Normalize: sort, drop duplicate literals and tautologies, drop
  // duplicate clauses, seed units.
  std::unordered_set<Clause, ClauseHash> seen;
  bool unsat = false;
  size_t input_clauses = 0;
  for (Clause& c : clauses) {
    std::sort(c.begin(), c.end());
    Clause dedup;
    bool tautology = false;
    for (const Lit& l : c) {
      INFLOG_CHECK(l.var() >= 0 && l.var() < num_vars_);
      if (!dedup.empty() && l == dedup.back()) {
        ++stats_.duplicates_removed;
        continue;
      }
      if (!dedup.empty() && l == ~dedup.back()) {
        tautology = true;
        break;
      }
      dedup.push_back(l);
    }
    if (tautology) {
      ++stats_.tautologies_removed;
      continue;
    }
    if (!dedup.empty() && !seen.insert(dedup).second) {
      ++stats_.duplicates_removed;
      continue;
    }
    ++input_clauses;
    AddDerivedClause(std::move(dedup), &unsat);
    if (unsat) return false;
  }

  // Simplification rounds to fixpoint.
  for (uint32_t round = 0; round < options_.max_rounds; ++round) {
    ++stats_.rounds;
    bool changed = false;
    if (options_.bcp) {
      if (!PropagateUnits()) return false;
    }
    if (options_.pure) changed |= EliminatePure();
    if (options_.bve) {
      changed |= EliminateByResolution(&unsat);
      if (unsat) return false;
    }
    if (options_.bcp && !unit_queue_.empty()) {
      changed = true;
      continue;  // resolvent units pending: next round propagates them
    }
    if (!changed) break;
  }
  if (options_.bcp && !PropagateUnits()) return false;

  // Export the surviving clauses (re-simplified against late units).
  for (uint32_t idx = 0; idx < db_.size(); ++idx) {
    if (!alive_[idx]) continue;
    Clause c;
    bool satisfied = false;
    for (const Lit& l : db_[idx]) {
      const int8_t v = LitValueAtRoot(l);
      if (v == 1) {
        satisfied = true;
        break;
      }
      if (v == 0) continue;
      c.push_back(l);
    }
    if (satisfied) continue;
    INFLOG_CHECK(!c.empty());
    out_clauses_.push_back(std::move(c));
  }
  if (input_clauses > out_clauses_.size()) {
    stats_.clauses_removed = input_clauses - out_clauses_.size();
  }
  return true;
}

void Preprocessor::Extend(std::vector<int8_t>* model) const {
  INFLOG_CHECK(model->size() >= static_cast<size_t>(num_vars_));
  for (Var v = 0; v < num_vars_; ++v) {
    if (forced_[v] >= 0) (*model)[v] = forced_[v];
  }
  // Reverse elimination order: clauses saved when variable x was removed
  // mention only variables still alive at that time — later-eliminated
  // variables are reconstructed first, so every other literal already has
  // a value when x is processed.
  for (auto it = eliminations_.rbegin(); it != eliminations_.rend(); ++it) {
    const Var v = it->lit.var();
    // Default to the polarity that satisfies removed clauses outright
    // (the pure polarity; for BVE an arbitrary start, fixed up below).
    (*model)[v] = it->lit.negated() ? 0 : 1;
    if (it->pure) continue;
    for (const Clause& c : it->saved) {
      bool sat = false;
      Lit own;
      for (const Lit& l : c) {
        if (l.var() == v) {
          own = l;
          if (((*model)[v] == 1) != l.negated()) sat = true;
          continue;
        }
        const int8_t a = (*model)[l.var()];
        if (a >= 0 && (a == 1) != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        // Only the eliminated variable can rescue this clause.
        (*model)[v] = own.negated() ? 0 : 1;
      }
    }
  }
}

}  // namespace sat
}  // namespace inflog
