#include "src/sat/portfolio.h"

#include <algorithm>

namespace inflog {
namespace sat {

SolverOptions PortfolioSolver::MemberOptions(const SolverOptions& base,
                                             size_t i,
                                             const std::atomic<bool>* stop) {
  SolverOptions o = base;
  o.portfolio_threads = 1;
  o.stop = stop;
  if (i == 0) return o;  // member 0 is the undiversified reference
  // Diversification: distinct seeds for random decisions, alternating
  // initial polarity, spread restart schedules and activity decays.
  o.seed = base.seed + 0x9e3779b97f4a7c15ULL * i;
  if (o.seed == 0) o.seed = i;
  o.random_decision_freq = 0.02;
  o.init_phase_true = (i % 2) == 1;
  if (o.restart_base != 0) {
    static constexpr uint64_t kRestartScale[4] = {1, 2, 4, 8};
    o.restart_base = base.restart_base * kRestartScale[i % 4];
  }
  static constexpr double kDecay[4] = {0.95, 0.85, 0.99, 0.90};
  o.activity_decay = kDecay[i % 4];
  return o;
}

PortfolioSolver::PortfolioSolver(SolverOptions options)
    : options_(options),
      stop_(std::make_unique<std::atomic<bool>>(false)) {
  const size_t k = std::max<size_t>(1, options_.portfolio_threads);
  members_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    // A single member honors the caller's stop flag directly (exact
    // single-solver behavior); a real portfolio routes members through the
    // shared internal flag that the winner raises.
    const std::atomic<bool>* stop = k == 1 ? options_.stop : stop_.get();
    members_.push_back(
        std::make_unique<Solver>(MemberOptions(options_, i, stop)));
  }
}

Var PortfolioSolver::NewVar() {
  const Var v = members_[0]->NewVar();
  for (size_t i = 1; i < members_.size(); ++i) {
    const Var w = members_[i]->NewVar();
    INFLOG_CHECK(w == v);
  }
  return v;
}

void PortfolioSolver::FreezeVar(Var v) {
  for (auto& m : members_) m->FreezeVar(v);
}

bool PortfolioSolver::AddClause(Clause clause) {
  if (!ok_) return false;
  bool all_ok = true;
  for (auto& m : members_) {
    if (!m->AddClause(clause)) all_ok = false;
  }
  if (!all_ok) ok_ = false;
  return all_ok;
}

bool PortfolioSolver::AddCnf(const Cnf& cnf) {
  while (num_vars() < cnf.num_vars) NewVar();
  for (const Clause& clause : cnf.clauses) {
    if (!AddClause(clause)) return false;
  }
  return true;
}

SolveResult PortfolioSolver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveResult::kUnsat;
  if (members_.size() == 1) {
    winner_ = 0;
    return members_[0]->Solve(assumptions);
  }
  if (options_.stop != nullptr &&
      options_.stop->load(std::memory_order_relaxed)) {
    return SolveResult::kUnknown;
  }
  stop_->store(false, std::memory_order_relaxed);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(members_.size() - 1);
  }
  std::atomic<int> winner{-1};
  std::vector<SolveResult> results(members_.size(), SolveResult::kUnknown);
  pool_->ParallelFor(members_.size(), [&](size_t i) {
    const SolveResult r = members_[i]->Solve(assumptions);
    results[i] = r;
    if (r != SolveResult::kUnknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
        stop_->store(true, std::memory_order_relaxed);
      }
    }
  });
  const int w = winner.load();
  if (w < 0) return SolveResult::kUnknown;  // every member hit a budget
  winner_ = static_cast<size_t>(w);
  return results[winner_];
}

SolverStats PortfolioSolver::stats() const {
  SolverStats total;
  for (const auto& m : members_) total.Add(m->stats());
  return total;
}

}  // namespace sat
}  // namespace inflog
