// DIMACS CNF reader / writer.

#ifndef INFLOG_SAT_DIMACS_H_
#define INFLOG_SAT_DIMACS_H_

#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/sat/cnf.h"

namespace inflog {
namespace sat {

/// Parses DIMACS text ("c" comments, "p cnf V C" header, 0-terminated
/// clauses). External 1-based variables map to internal vars 0..V-1.
Result<Cnf> ParseDimacs(std::string_view text);

/// Renders `cnf` as DIMACS text (1-based externals).
std::string ToDimacs(const Cnf& cnf);

}  // namespace sat
}  // namespace inflog

#endif  // INFLOG_SAT_DIMACS_H_
