#include "src/ast/program.h"

#include <set>

#include "src/ast/printer.h"
#include "src/base/strings.h"

namespace inflog {

Result<uint32_t> Program::GetOrAddPredicate(std::string_view name,
                                            size_t arity) {
  auto it = pred_ids_.find(std::string(name));
  if (it != pred_ids_.end()) {
    const PredicateInfo& info = preds_[it->second];
    if (info.arity != arity) {
      return Status::InvalidArgument(
          StrCat("predicate ", name, " used with arity ", arity,
                 " but declared with arity ", info.arity));
    }
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(preds_.size());
  preds_.push_back(PredicateInfo{std::string(name), arity, false, -1});
  pred_ids_.emplace(std::string(name), id);
  return id;
}

Result<uint32_t> Program::FindPredicate(std::string_view name) const {
  auto it = pred_ids_.find(std::string(name));
  if (it == pred_ids_.end()) {
    return Status::NotFound(StrCat("no predicate named ", name));
  }
  return it->second;
}

namespace {

Status ValidateTerm(const Term& term, const Rule& rule) {
  if (term.IsVariable() && term.id >= rule.num_vars) {
    return Status::InvalidArgument(
        StrCat("variable index ", term.id, " out of range (num_vars=",
               rule.num_vars, ")"));
  }
  return Status::OK();
}

}  // namespace

Status Program::AddRule(Rule rule) {
  // Validate the head.
  if (rule.head.predicate >= preds_.size()) {
    return Status::InvalidArgument("head predicate id out of range");
  }
  PredicateInfo& head_info = preds_[rule.head.predicate];
  if (rule.head.args.size() != head_info.arity) {
    return Status::InvalidArgument(
        StrCat("head of rule for ", head_info.name, " has ",
               rule.head.args.size(), " args, expected ", head_info.arity));
  }
  for (const Term& t : rule.head.args) {
    INFLOG_RETURN_IF_ERROR(ValidateTerm(t, rule));
  }
  // Validate the body.
  for (const Literal& lit : rule.body) {
    switch (lit.kind) {
      case Literal::Kind::kAtom:
      case Literal::Kind::kNegAtom: {
        if (lit.predicate >= preds_.size()) {
          return Status::InvalidArgument("body predicate id out of range");
        }
        const PredicateInfo& info = preds_[lit.predicate];
        if (lit.args.size() != info.arity) {
          return Status::InvalidArgument(
              StrCat("literal on ", info.name, " has ", lit.args.size(),
                     " args, expected ", info.arity));
        }
        break;
      }
      case Literal::Kind::kEq:
      case Literal::Kind::kNeq:
        if (lit.args.size() != 2) {
          return Status::InvalidArgument(
              "equality literal must have exactly two terms");
        }
        break;
    }
    for (const Term& t : lit.args) {
      INFLOG_RETURN_IF_ERROR(ValidateTerm(t, rule));
    }
  }
  if (rule.var_names.size() != rule.num_vars) {
    // Synthesize names if the caller did not provide them.
    rule.var_names.resize(rule.num_vars);
    for (uint32_t v = 0; v < rule.num_vars; ++v) {
      if (rule.var_names[v].empty()) {
        rule.var_names[v] = StrCat("V", v);
      }
    }
  }
  // The head predicate becomes a nondatabase (IDB) relation.
  if (!head_info.is_idb) {
    head_info.is_idb = true;
    head_info.idb_index = static_cast<int>(idb_preds_.size());
    idb_preds_.push_back(rule.head.predicate);
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

std::vector<uint32_t> Program::edb_predicates() const {
  std::vector<uint32_t> edbs;
  for (uint32_t p = 0; p < preds_.size(); ++p) {
    if (!preds_[p].is_idb) edbs.push_back(p);
  }
  return edbs;
}

bool Program::IsPositive() const {
  for (const Rule& rule : rules_) {
    if (!rule.IsPositive()) return false;
  }
  return true;
}

bool Program::HasNegation() const {
  for (const Rule& rule : rules_) {
    for (const Literal& lit : rule.body) {
      if (lit.IsNegatedAtom()) return true;
    }
  }
  return false;
}

std::vector<Value> Program::Constants() const {
  std::set<Value> seen;
  for (const Rule& rule : rules_) {
    for (const Term& t : rule.head.args) {
      if (t.IsConstant()) seen.insert(t.id);
    }
    for (const Literal& lit : rule.body) {
      for (const Term& t : lit.args) {
        if (t.IsConstant()) seen.insert(t.id);
      }
    }
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += FormatRule(*this, rule);
    out += "\n";
  }
  return out;
}

}  // namespace inflog
