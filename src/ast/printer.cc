#include "src/ast/printer.h"

#include "src/ast/program.h"
#include "src/base/strings.h"

namespace inflog {

std::string FormatTerm(const Program& program, const Rule& rule,
                       const Term& term) {
  if (term.IsVariable()) {
    if (term.id < rule.var_names.size() && !rule.var_names[term.id].empty()) {
      return rule.var_names[term.id];
    }
    return StrCat("V", term.id);
  }
  return program.symbols().Name(term.id);
}

namespace {

std::string FormatArgs(const Program& program, const Rule& rule,
                       const std::vector<Term>& args) {
  std::string out = "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += FormatTerm(program, rule, args[i]);
  }
  out += ")";
  return out;
}

}  // namespace

std::string FormatLiteral(const Program& program, const Rule& rule,
                          const Literal& literal) {
  switch (literal.kind) {
    case Literal::Kind::kAtom:
      return StrCat(program.predicate(literal.predicate).name,
                    FormatArgs(program, rule, literal.args));
    case Literal::Kind::kNegAtom:
      return StrCat("!", program.predicate(literal.predicate).name,
                    FormatArgs(program, rule, literal.args));
    case Literal::Kind::kEq:
      return StrCat(FormatTerm(program, rule, literal.args[0]), " = ",
                    FormatTerm(program, rule, literal.args[1]));
    case Literal::Kind::kNeq:
      return StrCat(FormatTerm(program, rule, literal.args[0]), " != ",
                    FormatTerm(program, rule, literal.args[1]));
  }
  return "<bad literal>";
}

std::string FormatRule(const Program& program, const Rule& rule) {
  std::string out = StrCat(program.predicate(rule.head.predicate).name,
                           FormatArgs(program, rule, rule.head.args));
  if (!rule.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatLiteral(program, rule, rule.body[i]);
    }
  }
  out += ".";
  return out;
}

}  // namespace inflog
