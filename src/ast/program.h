// Program: a finite set of DATALOG¬ rules plus the predicate catalog.
//
// Predicates are classified per the paper: those appearing in some rule
// head are nondatabase (IDB) relations; the rest are database (EDB)
// relations supplied by the Database at evaluation time. IDB predicates
// get dense indices (idb_index) used by the evaluators' state vectors.

#ifndef INFLOG_AST_PROGRAM_H_
#define INFLOG_AST_PROGRAM_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/relation/value.h"

namespace inflog {

/// Catalog entry for one predicate symbol.
struct PredicateInfo {
  std::string name;
  size_t arity;
  bool is_idb = false;
  /// Dense index among IDB predicates, or -1 for EDB predicates.
  int idb_index = -1;
};

/// A DATALOG¬ program over a shared symbol table (for its constants).
class Program {
 public:
  explicit Program(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {
    INFLOG_CHECK(symbols_ != nullptr);
  }

  /// Returns the id of predicate `name`, creating it with `arity` if new.
  /// Fails if it exists with a different arity.
  Result<uint32_t> GetOrAddPredicate(std::string_view name, size_t arity);

  /// Returns the id of an existing predicate, or NotFound.
  Result<uint32_t> FindPredicate(std::string_view name) const;

  /// Appends a rule after validating predicate arities, variable indices,
  /// and equality shapes. Marks the head predicate as IDB.
  Status AddRule(Rule rule);

  /// All rules, in insertion order.
  const std::vector<Rule>& rules() const { return rules_; }

  /// Number of predicates in the catalog.
  size_t num_predicates() const { return preds_.size(); }

  /// Catalog entry for predicate `pred`.
  const PredicateInfo& predicate(uint32_t pred) const {
    INFLOG_CHECK(pred < preds_.size());
    return preds_[pred];
  }

  /// IDB predicate ids in first-head-appearance order; idb_index follows
  /// this order.
  const std::vector<uint32_t>& idb_predicates() const { return idb_preds_; }

  /// EDB predicate ids in first-appearance order.
  std::vector<uint32_t> edb_predicates() const;

  /// True iff every rule is positive — the paper's DATALOG fragment, whose
  /// operator Θ is monotone and has a least fixpoint (Tarski).
  bool IsPositive() const;

  /// True iff any rule body mentions a negated atom.
  bool HasNegation() const;

  /// The shared symbol table holding the program's constants.
  const SymbolTable& symbols() const { return *symbols_; }
  std::shared_ptr<SymbolTable> shared_symbols() const { return symbols_; }

  /// All constants appearing in rules (they join the active domain).
  std::vector<Value> Constants() const;

  /// Renders the program in parsable concrete syntax.
  std::string ToString() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<PredicateInfo> preds_;
  std::unordered_map<std::string, uint32_t> pred_ids_;
  std::vector<uint32_t> idb_preds_;
  std::vector<Rule> rules_;
};

}  // namespace inflog

#endif  // INFLOG_AST_PROGRAM_H_
