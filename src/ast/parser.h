// Text parser for DATALOG¬ programs and database fact files.
//
// Program syntax (one clause per '.'; '%' or '//' start line comments):
//
//   T(X)        :- E(Y,X), !T(Y).        % the paper's program π₁
//   S2(X,Y)     :- E(X,Z), S2(Z,Y).
//   Q(X,Y,Z,W)  :- S1(X,Y), not S1(Z,W). % 'not' and '!' both negate
//   P(X)        :- !R(X), !B(X), !G(X).
//   G1(Z1,1,Z2).                         % bodyless rule (universal head)
//   Eq(X,Y)     :- D(X), D(Y), X = Y.    % equality / inequality literals
//
// Variables start with an uppercase letter or '_'; constants are lowercase
// identifiers, numbers, or 'quoted strings'. Unsafe rules (head or negated
// variables not bound by any positive body literal) are legal and evaluate
// over the active domain, as in the paper.
//
// Database syntax: ground facts plus optional universe declarations:
//
//   E(1,2). E(2,3).
//   @universe 1 2 3 4.

#ifndef INFLOG_AST_PARSER_H_
#define INFLOG_AST_PARSER_H_

#include <memory>
#include <string_view>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/relation/database.h"

namespace inflog {

/// Parses a program, interning constants into `symbols`.
Result<Program> ParseProgram(std::string_view text,
                             std::shared_ptr<SymbolTable> symbols);

/// Convenience overload with a fresh symbol table.
Result<Program> ParseProgram(std::string_view text);

/// Parses facts and @universe declarations into an existing database.
Status ParseDatabaseInto(std::string_view text, Database* db);

/// Parses a database with a fresh symbol table.
Result<Database> ParseDatabase(std::string_view text);

}  // namespace inflog

#endif  // INFLOG_AST_PARSER_H_
