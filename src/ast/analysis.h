// Static analysis of DATALOG¬ programs: predicate dependency graph,
// stratifiability (Chandra–Harel / Apt–Blair–Walker layering), and safety
// (range restriction) diagnostics.
//
// Stratifiability matters because the paper contrasts its proposal with the
// stratified semantics, which "cannot assign meaning to all DATALOG¬
// programs"; the analysis decides which of the two applies. Safety is
// advisory only: the paper's own programs (the toggle rule, the succinct
// input-gate rules) are unsafe and are evaluated over the active domain.

#ifndef INFLOG_AST_ANALYSIS_H_
#define INFLOG_AST_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/base/status.h"

namespace inflog {

/// One edge of the predicate dependency graph: `head` depends on `body`
/// through some rule; `negative` if through a negated literal.
struct DependencyEdge {
  uint32_t head;
  uint32_t body;
  bool negative;
};

/// Result of AnalyzeProgram.
struct ProgramAnalysis {
  /// Dependency edges, deduplicated (an edge is negative if ANY rule uses
  /// the body predicate negatively under that head).
  std::vector<DependencyEdge> edges;

  /// True iff no cycle of dependencies passes through a negative edge.
  bool stratifiable = false;

  /// Stratum per predicate id. EDB predicates are stratum 0; IDB strata
  /// start at 0 as well (an IDB predicate with no negative dependencies can
  /// share stratum 0). Meaningful only if `stratifiable`.
  std::vector<int> stratum;

  /// Number of strata (max stratum + 1). Meaningful only if `stratifiable`.
  int num_strata = 0;

  /// Per-rule safety: for each rule, the list of variable indices that are
  /// not range-restricted (bound by no positive body literal, directly or
  /// through equalities). Empty inner vectors mean the rule is safe.
  std::vector<std::vector<uint32_t>> unsafe_vars;

  /// Per-rule negation safety: the subset of unsafe_vars that occurs in a
  /// negated body literal. These are the dangerous ones — an unbound
  /// variable under negation reads as "some universe element is absent",
  /// and what that means differs across the four semantics (the grounded
  /// pipelines instantiate the negated atom per universe element, the
  /// relational executor enumerates and filters), so the paper's
  /// active-domain reading is the only guard against surprises.
  /// CheckNegationSafety turns a nonempty entry into a hard error.
  std::vector<std::vector<uint32_t>> negation_unsafe_vars;

  /// Human-readable warnings (one per unsafe rule).
  std::vector<std::string> warnings;

  /// True iff every rule is safe.
  bool AllSafe() const {
    for (const auto& v : unsafe_vars) {
      if (!v.empty()) return false;
    }
    return true;
  }

  /// True iff no rule has an unbound variable under negation.
  bool NegationSafe() const {
    for (const auto& v : negation_unsafe_vars) {
      if (!v.empty()) return false;
    }
    return true;
  }
};

/// Runs all analyses over `program`.
ProgramAnalysis AnalyzeProgram(const Program& program);

/// Rejects (InvalidArgument) programs with a rule whose negated literal
/// carries a variable bound by no positive body literal (directly or
/// through the equality closure), naming every offending rule and
/// variable. OK when every rule is negation-safe. Head variables that are
/// merely unsafe (range over the active domain) do not trip this check —
/// only unbound variables under negation do. Callers opt in through
/// EvalContextOptions / EvalOptions::reject_unsafe_negation; the default
/// keeps the paper's active-domain reading available.
Status CheckNegationSafety(const Program& program);

/// Computes the range-restriction closure for one rule: variables bound by
/// positive body atoms, closed under equalities with constants or bound
/// variables. Exposed for testing.
std::vector<bool> BoundVariables(const Rule& rule);

}  // namespace inflog

#endif  // INFLOG_AST_ANALYSIS_H_
