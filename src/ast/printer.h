// Pretty-printing of rules and literals in the parser's concrete syntax,
// so that ToString output round-trips through the parser.

#ifndef INFLOG_AST_PRINTER_H_
#define INFLOG_AST_PRINTER_H_

#include <string>

#include "src/ast/ast.h"

namespace inflog {

class Program;

/// Renders a term: the rule's variable name or the constant's symbol.
std::string FormatTerm(const Program& program, const Rule& rule,
                       const Term& term);

/// Renders a body literal, e.g. "E(X,Y)", "!T(Y)", "X != Y".
std::string FormatLiteral(const Program& program, const Rule& rule,
                          const Literal& literal);

/// Renders a full rule, e.g. "T(X) :- E(Y,X), !T(Y).".
std::string FormatRule(const Program& program, const Rule& rule);

}  // namespace inflog

#endif  // INFLOG_AST_PRINTER_H_
