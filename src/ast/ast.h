// Abstract syntax for DATALOG¬ programs (Section 2 of the paper).
//
// A rule is  S(x̄) ← t₁, ..., t_q  where each body literal is an atomic
// formula Q(x̄), a negated atomic formula ¬Q(x̄), an equality x = y, or an
// inequality x ≠ y, and the head is an atomic formula. Terms are variables
// (rule-scoped, dense indices) or constants (interned Values). Constants
// may appear anywhere a variable may, including rule heads (the succinct
// 3-coloring compiler emits input-gate rules like G(z₁,1,z₂) ← .).

#ifndef INFLOG_AST_AST_H_
#define INFLOG_AST_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/relation/value.h"

namespace inflog {

/// Sentinel predicate id for literals that have none (equalities).
inline constexpr uint32_t kNoPredicate = static_cast<uint32_t>(-1);

/// A term: a rule-scoped variable or an interned constant.
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };

  Kind kind;
  /// Variable index within the enclosing rule, or the constant's Value.
  uint32_t id;

  static Term Var(uint32_t index) { return Term{Kind::kVariable, index}; }
  static Term Const(Value value) { return Term{Kind::kConstant, value}; }

  bool IsVariable() const { return kind == Kind::kVariable; }
  bool IsConstant() const { return kind == Kind::kConstant; }

  bool operator==(const Term& other) const {
    return kind == other.kind && id == other.id;
  }
};

/// A body literal.
struct Literal {
  enum class Kind : uint8_t {
    kAtom,     ///< Q(t̄)
    kNegAtom,  ///< ¬Q(t̄)
    kEq,       ///< t₁ = t₂   (args has exactly two terms)
    kNeq,      ///< t₁ ≠ t₂   (args has exactly two terms)
  };

  Kind kind = Kind::kAtom;
  /// Predicate id for kAtom/kNegAtom; kNoPredicate otherwise.
  uint32_t predicate = kNoPredicate;
  std::vector<Term> args;

  static Literal Pos(uint32_t pred, std::vector<Term> args) {
    return Literal{Kind::kAtom, pred, std::move(args)};
  }
  static Literal Neg(uint32_t pred, std::vector<Term> args) {
    return Literal{Kind::kNegAtom, pred, std::move(args)};
  }
  static Literal Eq(Term lhs, Term rhs) {
    return Literal{Kind::kEq, kNoPredicate, {lhs, rhs}};
  }
  static Literal Neq(Term lhs, Term rhs) {
    return Literal{Kind::kNeq, kNoPredicate, {lhs, rhs}};
  }

  bool IsPositiveAtom() const { return kind == Kind::kAtom; }
  bool IsNegatedAtom() const { return kind == Kind::kNegAtom; }
};

/// A rule head: an atomic formula over the rule's terms.
struct HeadAtom {
  uint32_t predicate = kNoPredicate;
  std::vector<Term> args;
};

/// A DATALOG¬ rule. Variables are indexed 0..num_vars-1; var_names maps
/// indices back to source names for printing.
struct Rule {
  HeadAtom head;
  std::vector<Literal> body;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;

  /// True iff no body literal is a negated atom or an inequality — the
  /// paper's definition of a (positive) DATALOG rule.
  bool IsPositive() const {
    for (const Literal& lit : body) {
      if (lit.kind == Literal::Kind::kNegAtom ||
          lit.kind == Literal::Kind::kNeq) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace inflog

#endif  // INFLOG_AST_AST_H_
