#include "src/ast/analysis.h"

#include <map>
#include <utility>

#include "src/ast/printer.h"
#include "src/base/strings.h"

namespace inflog {

std::vector<bool> BoundVariables(const Rule& rule) {
  std::vector<bool> bound(rule.num_vars, false);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kAtom) continue;
    for (const Term& t : lit.args) {
      if (t.IsVariable()) bound[t.id] = true;
    }
  }
  // Close under equalities: x = c binds x; x = y with one side bound binds
  // the other. Iterate to a fixpoint (chains like x=y, y=z).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kEq) continue;
      const Term& a = lit.args[0];
      const Term& b = lit.args[1];
      const bool a_bound = a.IsConstant() || bound[a.id];
      const bool b_bound = b.IsConstant() || bound[b.id];
      if (a_bound && !b_bound && b.IsVariable()) {
        bound[b.id] = true;
        changed = true;
      }
      if (b_bound && !a_bound && a.IsVariable()) {
        bound[a.id] = true;
        changed = true;
      }
    }
  }
  return bound;
}

namespace {

/// The variables of `rule` that occur in a negated body literal but are
/// not range-restricted, in ascending variable order. The single source
/// of truth behind both the AnalyzeProgram diagnostics and the
/// CheckNegationSafety hard error — the two must never disagree on what
/// counts as negation-unsafe.
std::vector<uint32_t> NegationUnsafeVars(const Rule& rule,
                                         const std::vector<bool>& bound) {
  std::vector<bool> negated(rule.num_vars, false);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kNegAtom) continue;
    for (const Term& t : lit.args) {
      if (t.IsVariable()) negated[t.id] = true;
    }
  }
  std::vector<uint32_t> out;
  for (uint32_t v = 0; v < rule.num_vars; ++v) {
    if (negated[v] && !bound[v]) out.push_back(v);
  }
  return out;
}

}  // namespace

ProgramAnalysis AnalyzeProgram(const Program& program) {
  ProgramAnalysis out;
  const size_t num_preds = program.num_predicates();

  // --- Dependency graph (deduplicated, negative-dominant). ---
  std::map<std::pair<uint32_t, uint32_t>, bool> edge_map;
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom &&
          lit.kind != Literal::Kind::kNegAtom) {
        continue;
      }
      auto key = std::make_pair(rule.head.predicate, lit.predicate);
      const bool neg = lit.IsNegatedAtom();
      auto [it, inserted] = edge_map.emplace(key, neg);
      if (!inserted) it->second = it->second || neg;
    }
  }
  for (const auto& [key, neg] : edge_map) {
    out.edges.push_back(DependencyEdge{key.first, key.second, neg});
  }

  // --- Stratification by relaxation (Ullman's algorithm): ---
  //   stratum(head) >= stratum(body)        for positive dependencies,
  //   stratum(head) >= stratum(body) + 1    for negative dependencies.
  // If a stratum value exceeds the number of predicates, some cycle goes
  // through a negative edge and the program is not stratifiable.
  out.stratum.assign(num_preds, 0);
  out.stratifiable = true;
  bool changed = true;
  while (changed && out.stratifiable) {
    changed = false;
    for (const auto& [key, neg] : edge_map) {
      const int need = out.stratum[key.second] + (neg ? 1 : 0);
      if (out.stratum[key.first] < need) {
        out.stratum[key.first] = need;
        changed = true;
        if (out.stratum[key.first] > static_cast<int>(num_preds)) {
          out.stratifiable = false;
          break;
        }
      }
    }
  }
  if (out.stratifiable) {
    int max_stratum = 0;
    for (int s : out.stratum) max_stratum = std::max(max_stratum, s);
    out.num_strata = max_stratum + 1;
  } else {
    out.stratum.assign(num_preds, -1);
    out.num_strata = 0;
  }

  // --- Safety (range restriction) diagnostics. ---
  out.unsafe_vars.resize(program.rules().size());
  out.negation_unsafe_vars.resize(program.rules().size());
  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    const std::vector<bool> bound = BoundVariables(rule);
    // A rule is safe when every variable appearing in the head, in a
    // negated literal, or in an inequality is range-restricted. Unbound
    // variables under negation are tracked separately: they are the ones
    // whose reading is semantics-dependent (CheckNegationSafety).
    std::vector<bool> needs(rule.num_vars, false);
    for (const Term& t : rule.head.args) {
      if (t.IsVariable()) needs[t.id] = true;
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegAtom ||
          lit.kind == Literal::Kind::kNeq) {
        for (const Term& t : lit.args) {
          if (t.IsVariable()) needs[t.id] = true;
        }
      }
    }
    for (uint32_t v = 0; v < rule.num_vars; ++v) {
      if (needs[v] && !bound[v]) out.unsafe_vars[r].push_back(v);
    }
    out.negation_unsafe_vars[r] = NegationUnsafeVars(rule, bound);
    if (!out.unsafe_vars[r].empty()) {
      std::vector<std::string> names;
      for (uint32_t v : out.unsafe_vars[r]) names.push_back(rule.var_names[v]);
      std::string warning =
          StrCat("rule `", FormatRule(program, rule), "` is unsafe: ",
                 "variable(s) ", StrJoin(names, ", "),
                 " range over the active domain");
      if (!out.negation_unsafe_vars[r].empty()) {
        std::vector<std::string> neg_names;
        for (uint32_t v : out.negation_unsafe_vars[r]) {
          neg_names.push_back(rule.var_names[v]);
        }
        warning += StrCat("; variable(s) ", StrJoin(neg_names, ", "),
                          " occur under negation unbound, so their meaning "
                          "is semantics-dependent");
      }
      out.warnings.push_back(std::move(warning));
    }
  }
  return out;
}

Status CheckNegationSafety(const Program& program) {
  std::vector<std::string> errors;
  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    const std::vector<uint32_t> vars =
        NegationUnsafeVars(rule, BoundVariables(rule));
    if (vars.empty()) continue;
    std::vector<std::string> names;
    for (uint32_t v : vars) names.push_back(rule.var_names[v]);
    errors.push_back(
        StrCat("rule `", FormatRule(program, rule),
               "` is negation-unsafe: variable(s) ", StrJoin(names, ", "),
               " occur in a negated literal but are bound by no positive "
               "body literal"));
  }
  if (errors.empty()) return Status::OK();
  return Status::InvalidArgument(StrJoin(errors, "; "));
}

}  // namespace inflog
