#include "src/ast/parser.h"

#include <cctype>
#include <unordered_map>

#include "src/base/strings.h"

namespace inflog {
namespace {

enum class TokenKind {
  kIdent,     // lowercase-initial identifier or number or quoted string
  kVariable,  // uppercase- or underscore-initial identifier
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kColonDash,  // :-
  kBang,       // !
  kEq,         // =
  kNeq,        // != or <>
  kAt,         // @
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%' || (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", line_});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", line_});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", line_});
          ++pos_;
          continue;
        case '.':
          tokens.push_back({TokenKind::kPeriod, ".", line_});
          ++pos_;
          continue;
        case '@':
          tokens.push_back({TokenKind::kAt, "@", line_});
          ++pos_;
          continue;
        case '=':
          tokens.push_back({TokenKind::kEq, "=", line_});
          ++pos_;
          continue;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kNeq, "!=", line_});
            pos_ += 2;
          } else {
            tokens.push_back({TokenKind::kBang, "!", line_});
            ++pos_;
          }
          continue;
        case '<':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            tokens.push_back({TokenKind::kNeq, "<>", line_});
            pos_ += 2;
            continue;
          }
          return Err("unexpected '<'");
        case ':':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
            tokens.push_back({TokenKind::kColonDash, ":-", line_});
            pos_ += 2;
            continue;
          }
          return Err("expected ':-'");
        case '\'': {
          const size_t start = ++pos_;
          while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
          if (pos_ >= text_.size()) return Err("unterminated quoted constant");
          tokens.push_back({TokenKind::kIdent,
                            std::string(text_.substr(start, pos_ - start)),
                            line_});
          ++pos_;
          continue;
        }
        default:
          break;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        std::string word(text_.substr(start, pos_ - start));
        const bool is_var = std::isupper(static_cast<unsigned char>(c)) ||
                            c == '_';
        tokens.push_back(
            {is_var ? TokenKind::kVariable : TokenKind::kIdent,
             std::move(word), line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(text_.substr(start, pos_ - start)),
                          line_});
        continue;
      }
      return Err(StrCat("unexpected character '", std::string(1, c), "'"));
    }
    tokens.push_back({TokenKind::kEof, "", line_});
    return tokens;
  }

 private:
  Status Err(std::string message) {
    return Status::InvalidArgument(
        StrCat("line ", line_, ": ", message));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// Recursive-descent parser over the token stream.
class ProgramParser {
 public:
  ProgramParser(std::vector<Token> tokens,
                std::shared_ptr<SymbolTable> symbols)
      : tokens_(std::move(tokens)), program_(std::move(symbols)) {}

  Result<Program> Parse() {
    while (Peek().kind != TokenKind::kEof) {
      INFLOG_RETURN_IF_ERROR(ParseClause());
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const Token& tok, std::string message) {
    return Status::InvalidArgument(
        StrCat("line ", tok.line, ": ", message, " (at '", tok.text, "')"));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Err(Peek(), StrCat("expected ", what));
    Take();
    return Status::OK();
  }

  // clause := atom ( ":-" literal ("," literal)* )? "."
  Status ParseClause() {
    var_ids_.clear();
    var_names_.clear();
    HeadAtom head;
    INFLOG_RETURN_IF_ERROR(ParseHead(&head));
    std::vector<Literal> body;
    if (Peek().kind == TokenKind::kColonDash) {
      Take();
      // Allow an empty body before the period ("H :- ." as in the paper's
      // input-gate rules), as well as a non-empty literal list.
      if (Peek().kind != TokenKind::kPeriod) {
        while (true) {
          Literal lit;
          INFLOG_RETURN_IF_ERROR(ParseLiteral(&lit));
          body.push_back(std::move(lit));
          if (Peek().kind != TokenKind::kComma) break;
          Take();
        }
      }
    }
    INFLOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    rule.num_vars = static_cast<uint32_t>(var_names_.size());
    rule.var_names = var_names_;
    return program_.AddRule(std::move(rule));
  }

  // Predicate names may be capitalized (the paper writes T, E, S₁) or
  // lowercase; the syntactic position — not the case — decides whether an
  // identifier is a predicate. Case only disambiguates terms.
  static bool IsNameToken(const Token& tok) {
    return tok.kind == TokenKind::kIdent || tok.kind == TokenKind::kVariable;
  }

  Status ParseHead(HeadAtom* head) {
    if (!IsNameToken(Peek())) {
      return Err(Peek(), "expected predicate name in rule head");
    }
    const Token name = Take();
    std::vector<Term> args;
    INFLOG_RETURN_IF_ERROR(ParseArgList(&args));
    INFLOG_ASSIGN_OR_RETURN(
        head->predicate,
        program_.GetOrAddPredicate(name.text, args.size()));
    head->args = std::move(args);
    return Status::OK();
  }

  // literal := atom | "!" atom | "not" atom | term ("="|"!=") term
  Status ParseLiteral(Literal* lit) {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kBang ||
        (tok.kind == TokenKind::kIdent && tok.text == "not" &&
         IsNameToken(Peek(1)))) {
      Take();  // consume '!' or 'not'
      uint32_t pred;
      std::vector<Term> args;
      INFLOG_RETURN_IF_ERROR(ParseAtom(&pred, &args));
      *lit = Literal::Neg(pred, std::move(args));
      return Status::OK();
    }
    // Could be an atom or the left term of an (in)equality. An atom starts
    // with an identifier followed by '(' or by a delimiter (arity 0); a
    // term position followed by '='/'!=' is an equality literal instead.
    if (IsNameToken(tok) &&
        (Peek(1).kind == TokenKind::kLParen ||
         Peek(1).kind == TokenKind::kComma ||
         Peek(1).kind == TokenKind::kPeriod)) {
      uint32_t pred;
      std::vector<Term> args;
      INFLOG_RETURN_IF_ERROR(ParseAtom(&pred, &args));
      *lit = Literal::Pos(pred, std::move(args));
      return Status::OK();
    }
    Term lhs;
    INFLOG_RETURN_IF_ERROR(ParseTerm(&lhs));
    if (Peek().kind == TokenKind::kEq) {
      Take();
      Term rhs;
      INFLOG_RETURN_IF_ERROR(ParseTerm(&rhs));
      *lit = Literal::Eq(lhs, rhs);
      return Status::OK();
    }
    if (Peek().kind == TokenKind::kNeq) {
      Take();
      Term rhs;
      INFLOG_RETURN_IF_ERROR(ParseTerm(&rhs));
      *lit = Literal::Neq(lhs, rhs);
      return Status::OK();
    }
    return Err(Peek(), "expected '=', '!=' or an atom");
  }

  Status ParseAtom(uint32_t* pred, std::vector<Term>* args) {
    if (!IsNameToken(Peek())) {
      return Err(Peek(), "expected predicate name");
    }
    const Token name = Take();
    INFLOG_RETURN_IF_ERROR(ParseArgList(args));
    INFLOG_ASSIGN_OR_RETURN(
        *pred, program_.GetOrAddPredicate(name.text, args->size()));
    return Status::OK();
  }

  // arg_list := "(" term ("," term)* ")" | "(" ")" | empty (arity 0)
  Status ParseArgList(std::vector<Term>* args) {
    args->clear();
    if (Peek().kind != TokenKind::kLParen) return Status::OK();
    Take();
    if (Peek().kind == TokenKind::kRParen) {
      Take();
      return Status::OK();
    }
    while (true) {
      Term term;
      INFLOG_RETURN_IF_ERROR(ParseTerm(&term));
      args->push_back(term);
      if (Peek().kind == TokenKind::kComma) {
        Take();
        continue;
      }
      break;
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  Status ParseTerm(Term* term) {
    const Token tok = Peek();
    if (tok.kind == TokenKind::kVariable) {
      Take();
      auto [it, inserted] =
          var_ids_.emplace(tok.text, static_cast<uint32_t>(var_names_.size()));
      if (inserted) var_names_.push_back(tok.text);
      *term = Term::Var(it->second);
      return Status::OK();
    }
    if (tok.kind == TokenKind::kIdent) {
      Take();
      *term = Term::Const(program_.shared_symbols()->Intern(tok.text));
      return Status::OK();
    }
    return Err(tok, "expected a term");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program program_;
  std::unordered_map<std::string, uint32_t> var_ids_;
  std::vector<std::string> var_names_;
};

// Parser for database files: ground facts and @universe declarations.
class DatabaseParser {
 public:
  DatabaseParser(std::vector<Token> tokens, Database* db)
      : tokens_(std::move(tokens)), db_(db) {}

  Status Parse() {
    while (Peek().kind != TokenKind::kEof) {
      if (Peek().kind == TokenKind::kAt) {
        INFLOG_RETURN_IF_ERROR(ParseUniverseDecl());
      } else {
        INFLOG_RETURN_IF_ERROR(ParseFact());
      }
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const Token& tok, std::string message) {
    return Status::InvalidArgument(
        StrCat("line ", tok.line, ": ", message, " (at '", tok.text, "')"));
  }

  // "@" "universe" constant* "."
  Status ParseUniverseDecl() {
    Take();  // '@'
    if (Peek().kind != TokenKind::kIdent || Peek().text != "universe") {
      return Err(Peek(), "expected 'universe' after '@'");
    }
    Take();
    while (Peek().kind == TokenKind::kIdent) {
      db_->AddUniverseSymbol(Take().text);
    }
    if (Peek().kind != TokenKind::kPeriod) {
      return Err(Peek(), "expected '.' after @universe declaration");
    }
    Take();
    return Status::OK();
  }

  // fact := NAME ( "(" constant ("," constant)* ")" )? "."
  // Relation names may be capitalized (the paper's E, V, P, N).
  Status ParseFact() {
    if (Peek().kind != TokenKind::kIdent &&
        Peek().kind != TokenKind::kVariable) {
      return Err(Peek(), "expected relation name");
    }
    const Token name = Take();
    Tuple tuple;
    if (Peek().kind == TokenKind::kLParen) {
      Take();
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          if (Peek().kind == TokenKind::kVariable) {
            return Err(Peek(), "facts must be ground (no variables)");
          }
          if (Peek().kind != TokenKind::kIdent) {
            return Err(Peek(), "expected a constant");
          }
          tuple.push_back(db_->symbols().Intern(Take().text));
          if (Peek().kind == TokenKind::kComma) {
            Take();
            continue;
          }
          break;
        }
      }
      if (Peek().kind != TokenKind::kRParen) return Err(Peek(), "expected ')'");
      Take();
    }
    if (Peek().kind != TokenKind::kPeriod) {
      return Err(Peek(), "expected '.' after fact");
    }
    Take();
    return db_->AddFact(name.text, tuple);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text,
                             std::shared_ptr<SymbolTable> symbols) {
  Lexer lexer(text);
  INFLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return ProgramParser(std::move(tokens), std::move(symbols)).Parse();
}

Result<Program> ParseProgram(std::string_view text) {
  return ParseProgram(text, std::make_shared<SymbolTable>());
}

Status ParseDatabaseInto(std::string_view text, Database* db) {
  Lexer lexer(text);
  INFLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return DatabaseParser(std::move(tokens), db).Parse();
}

Result<Database> ParseDatabase(std::string_view text) {
  Database db;
  INFLOG_RETURN_IF_ERROR(ParseDatabaseInto(text, &db));
  return db;
}

}  // namespace inflog
