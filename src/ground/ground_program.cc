#include "src/ground/ground_program.h"

#include "src/base/strings.h"

namespace inflog {

uint32_t AtomTable::GetOrAdd(uint32_t predicate, TupleView args) {
  Key key{predicate, Tuple(args.begin(), args.end())};
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(atoms_.size());
  atoms_.push_back(GroundAtom{predicate, key.args});
  ids_.emplace(std::move(key), id);
  return id;
}

int64_t AtomTable::Find(uint32_t predicate, TupleView args) const {
  Key key{predicate, Tuple(args.begin(), args.end())};
  auto it = ids_.find(key);
  if (it == ids_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

uint32_t BodyTable::GetOrAdd(GroundBody body) {
  // Flat key: [pos size, pos atoms..., neg atoms...].
  std::vector<uint32_t> key;
  key.reserve(body.pos.size() + body.neg.size() + 1);
  key.push_back(static_cast<uint32_t>(body.pos.size()));
  key.insert(key.end(), body.pos.begin(), body.pos.end());
  key.insert(key.end(), body.neg.begin(), body.neg.end());
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(bodies_.size());
  bodies_.push_back(std::move(body));
  ids_.emplace(std::move(key), id);
  return id;
}

void GroundProgram::IndexHeads() {
  rules_by_head.assign(atoms.size(), {});
  for (uint32_t r = 0; r < rules.size(); ++r) {
    rules_by_head[rules[r].head].push_back(r);
  }
}

IdbState GroundProgram::DecodeState(const Program& program,
                                    const std::vector<bool>& true_atoms) const {
  INFLOG_CHECK(true_atoms.size() == atoms.size());
  IdbState state = MakeEmptyIdbState(program);
  for (uint32_t id = 0; id < atoms.size(); ++id) {
    if (!true_atoms[id]) continue;
    const GroundAtom& atom = atoms.atom(id);
    const int idb = program.predicate(atom.predicate).idb_index;
    INFLOG_CHECK(idb >= 0);
    state.relations[idb].Insert(atom.args);
  }
  return state;
}

std::string GroundProgram::ToString(const Program& program) const {
  std::string out;
  auto format_atom = [&](uint32_t id) {
    const GroundAtom& a = atoms.atom(id);
    return StrCat(program.predicate(a.predicate).name,
                  FormatTuple(program.symbols(), a.args));
  };
  for (const GroundRule& rule : rules) {
    out += format_atom(rule.head);
    const GroundBody& body = RuleBody(rule);
    if (!body.empty()) {
      out += " :- ";
      bool first = true;
      for (uint32_t a : body.pos) {
        if (!first) out += ", ";
        first = false;
        out += format_atom(a);
      }
      for (uint32_t a : body.neg) {
        if (!first) out += ", ";
        first = false;
        out += StrCat("!", format_atom(a));
      }
    }
    out += ".\n";
  }
  return out;
}

}  // namespace inflog
