#include "src/ground/grounder.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/strings.h"

namespace inflog {
namespace {

/// Grounding op codes, mirroring the evaluation planner but with IDB
/// literals treated as opaque (they are instantiated, never joined).
struct GroundOp {
  enum class Kind {
    kMatchEdb,      // join with a positive EDB atom (scan + pattern match)
    kBindEq,        // bind a variable from an equality
    kFilterEq,      // both sides bound
    kFilterNeq,     // both sides bound
    kFilterNegEdb,  // fully bound negated EDB atom: fail if present
    kEnumerate,     // bind a variable to each universe element
  };
  Kind kind;
  const Relation* relation = nullptr;  // kMatchEdb / kFilterNegEdb
  std::vector<Term> args;              // kMatchEdb / kFilterNegEdb
  uint32_t target_var = 0;             // kBindEq
  Term source = Term::Const(0);        // kBindEq
  Term lhs = Term::Const(0), rhs = Term::Const(0);  // filters
  uint32_t enum_var = 0;               // kEnumerate
};

class RuleGrounder {
 public:
  RuleGrounder(const Program& program, const Rule& rule,
               const std::vector<const Relation*>& edb_relations,
               const std::vector<Value>& universe,
               const GrounderOptions& options,
               std::unordered_set<uint64_t>* seen_rules, GroundProgram* out)
      : program_(program),
        rule_(rule),
        edb_relations_(edb_relations),
        universe_(universe),
        options_(options),
        seen_rules_(seen_rules),
        out_(out) {}

  Status Ground() {
    bound_.assign(rule_.num_vars, false);
    if (!PlanOps()) return Status::OK();  // statically unsatisfiable body
    bindings_.assign(rule_.num_vars, kNoValue);
    return Step(0);
  }

 private:
  bool TermKnown(const Term& t) const {
    return t.IsConstant() || bound_[t.id];
  }

  bool IsEdb(uint32_t pred) const {
    return !program_.predicate(pred).is_idb;
  }

  /// Builds the op order. Returns false when the body is statically
  /// unsatisfiable (constant (in)equalities).
  bool PlanOps() {
    std::vector<size_t> edb_atoms;
    std::vector<size_t> filters;  // eq / neq / negated EDB atoms
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      const Literal& lit = rule_.body[i];
      switch (lit.kind) {
        case Literal::Kind::kAtom:
          if (IsEdb(lit.predicate)) edb_atoms.push_back(i);
          break;
        case Literal::Kind::kNegAtom:
          if (IsEdb(lit.predicate)) filters.push_back(i);
          break;
        case Literal::Kind::kEq:
        case Literal::Kind::kNeq:
          filters.push_back(i);
          break;
      }
    }
    if (!FlushFilters(&filters)) return false;
    while (!edb_atoms.empty()) {
      const size_t best = PopBestAtom(&edb_atoms);
      EmitMatch(rule_.body[best]);
      if (!FlushFilters(&filters)) return false;
    }
    // Residual: every remaining rule variable must be bound to instantiate
    // the head and the IDB literals.
    while (true) {
      if (!FlushFilters(&filters)) return false;
      int var = -1;
      for (size_t f : filters) {
        for (const Term& t : rule_.body[f].args) {
          if (t.IsVariable() && !bound_[t.id]) {
            var = static_cast<int>(t.id);
            break;
          }
        }
        if (var >= 0) break;
      }
      if (var < 0) {
        for (uint32_t v = 0; v < rule_.num_vars; ++v) {
          if (!bound_[v]) {
            var = static_cast<int>(v);
            break;
          }
        }
      }
      if (var < 0) break;
      GroundOp op;
      op.kind = GroundOp::Kind::kEnumerate;
      op.enum_var = static_cast<uint32_t>(var);
      ops_.push_back(op);
      bound_[var] = true;
    }
    INFLOG_CHECK(filters.empty());
    return true;
  }

  void EmitMatch(const Literal& lit) {
    GroundOp op;
    op.kind = GroundOp::Kind::kMatchEdb;
    op.relation = edb_relations_[lit.predicate];
    op.args = lit.args;
    ops_.push_back(op);
    for (const Term& t : lit.args) {
      if (t.IsVariable()) bound_[t.id] = true;
    }
  }

  bool FlushFilters(std::vector<size_t>* filters) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = filters->begin(); it != filters->end();) {
        const Literal& lit = rule_.body[*it];
        bool placed = false;
        if (lit.kind == Literal::Kind::kEq) {
          const Term &a = lit.args[0], &b = lit.args[1];
          if (a.IsConstant() && b.IsConstant()) {
            if (a.id != b.id) return false;
            placed = true;
          } else if (TermKnown(a) && TermKnown(b)) {
            ops_.push_back(
                GroundOp{GroundOp::Kind::kFilterEq, nullptr, {}, 0,
                         Term::Const(0), a, b, 0});
            placed = true;
          } else if (TermKnown(a) && b.IsVariable()) {
            EmitBind(b.id, a);
            placed = true;
          } else if (TermKnown(b) && a.IsVariable()) {
            EmitBind(a.id, b);
            placed = true;
          }
        } else if (lit.kind == Literal::Kind::kNeq) {
          const Term &a = lit.args[0], &b = lit.args[1];
          if (a.IsConstant() && b.IsConstant()) {
            if (a.id == b.id) return false;
            placed = true;
          } else if (TermKnown(a) && TermKnown(b)) {
            ops_.push_back(
                GroundOp{GroundOp::Kind::kFilterNeq, nullptr, {}, 0,
                         Term::Const(0), a, b, 0});
            placed = true;
          }
        } else {  // negated EDB atom
          bool all_known = true;
          for (const Term& t : lit.args) all_known &= TermKnown(t);
          if (all_known) {
            GroundOp op;
            op.kind = GroundOp::Kind::kFilterNegEdb;
            op.relation = edb_relations_[lit.predicate];
            op.args = lit.args;
            ops_.push_back(std::move(op));
            placed = true;
          }
        }
        if (placed) {
          it = filters->erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    return true;
  }

  void EmitBind(uint32_t var, const Term& source) {
    GroundOp op;
    op.kind = GroundOp::Kind::kBindEq;
    op.target_var = var;
    op.source = source;
    ops_.push_back(std::move(op));
    bound_[var] = true;
  }

  size_t PopBestAtom(std::vector<size_t>* atoms) {
    size_t best_pos = 0;
    int best_known = -1;
    for (size_t pos = 0; pos < atoms->size(); ++pos) {
      const Literal& lit = rule_.body[(*atoms)[pos]];
      int known = 0;
      for (const Term& t : lit.args) known += TermKnown(t) ? 1 : 0;
      if (known > best_known) {
        best_known = known;
        best_pos = pos;
      }
    }
    const size_t body_index = (*atoms)[best_pos];
    atoms->erase(atoms->begin() + best_pos);
    return body_index;
  }

  Value TermValue(const Term& t) const {
    if (t.IsConstant()) return t.id;
    INFLOG_DCHECK(bindings_[t.id] != kNoValue);
    return bindings_[t.id];
  }

  Status Step(size_t op_index) {
    if (op_index == ops_.size()) return EmitGroundRule();
    const GroundOp& op = ops_[op_index];
    switch (op.kind) {
      case GroundOp::Kind::kMatchEdb: {
        const Relation& rel = *op.relation;
        std::vector<uint32_t> trail;
        for (size_t s = 0; s < rel.num_shards(); ++s) {
          const Relation::ShardView view = rel.shard(s);
          for (size_t r = 0; r < view.size(); ++r) {
            if (!view.IsLive(r)) continue;  // EDB facts erased by updates
            if (MatchRow(op.args, view.Row(r), &trail)) {
              INFLOG_RETURN_IF_ERROR(Step(op_index + 1));
              for (uint32_t v : trail) bindings_[v] = kNoValue;
              trail.clear();
            }
          }
        }
        return Status::OK();
      }
      case GroundOp::Kind::kBindEq: {
        bindings_[op.target_var] = TermValue(op.source);
        INFLOG_RETURN_IF_ERROR(Step(op_index + 1));
        bindings_[op.target_var] = kNoValue;
        return Status::OK();
      }
      case GroundOp::Kind::kFilterEq:
        if (TermValue(op.lhs) == TermValue(op.rhs)) return Step(op_index + 1);
        return Status::OK();
      case GroundOp::Kind::kFilterNeq:
        if (TermValue(op.lhs) != TermValue(op.rhs)) return Step(op_index + 1);
        return Status::OK();
      case GroundOp::Kind::kFilterNegEdb: {
        scratch_.clear();
        for (const Term& t : op.args) scratch_.push_back(TermValue(t));
        if (!op.relation->Contains(scratch_)) return Step(op_index + 1);
        return Status::OK();
      }
      case GroundOp::Kind::kEnumerate: {
        for (Value v : universe_) {
          bindings_[op.enum_var] = v;
          INFLOG_RETURN_IF_ERROR(Step(op_index + 1));
        }
        bindings_[op.enum_var] = kNoValue;
        return Status::OK();
      }
    }
    return Status::Internal("unreachable ground op");
  }

  bool MatchRow(const std::vector<Term>& args, TupleView row,
                std::vector<uint32_t>* trail) {
    for (size_t i = 0; i < args.size(); ++i) {
      const Term& t = args[i];
      if (t.IsConstant()) {
        if (row[i] != t.id) return Undo(trail);
      } else if (bindings_[t.id] != kNoValue) {
        if (row[i] != bindings_[t.id]) return Undo(trail);
      } else {
        bindings_[t.id] = row[i];
        trail->push_back(t.id);
      }
    }
    return true;
  }

  bool Undo(std::vector<uint32_t>* trail) {
    for (uint32_t v : *trail) bindings_[v] = kNoValue;
    trail->clear();
    return false;
  }

  Status EmitGroundRule() {
    scratch_.clear();
    for (const Term& t : rule_.head.args) scratch_.push_back(TermValue(t));
    const uint32_t head = out_->atoms.GetOrAdd(rule_.head.predicate,
                                               scratch_);
    GroundBody body;
    for (const Literal& lit : rule_.body) {
      if (lit.kind != Literal::Kind::kAtom &&
          lit.kind != Literal::Kind::kNegAtom) {
        continue;
      }
      if (IsEdb(lit.predicate)) continue;  // already evaluated away
      scratch_.clear();
      for (const Term& t : lit.args) scratch_.push_back(TermValue(t));
      const uint32_t atom = out_->atoms.GetOrAdd(lit.predicate, scratch_);
      if (lit.kind == Literal::Kind::kAtom) {
        body.pos.push_back(atom);
      } else {
        body.neg.push_back(atom);
      }
    }
    auto canonicalize = [](std::vector<uint32_t>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    canonicalize(&body.pos);
    canonicalize(&body.neg);
    // A body with a ∧ ¬a is unsatisfiable; drop the instantiation.
    for (uint32_t a : body.pos) {
      if (std::binary_search(body.neg.begin(), body.neg.end(), a)) {
        return Status::OK();
      }
    }
    const uint32_t body_id = out_->bodies.GetOrAdd(std::move(body));
    // Deduplicate (head, body) pairs cheaply.
    const uint64_t key = (uint64_t{head} << 32) | body_id;
    if (!seen_rules_->insert(key).second) return Status::OK();
    out_->rules.push_back(GroundRule{head, body_id});
    if (out_->rules.size() > options_.max_ground_rules) {
      return Status::ResourceExhausted(
          StrCat("grounding exceeded ", options_.max_ground_rules,
                 " rules"));
    }
    return Status::OK();
  }

  const Program& program_;
  const Rule& rule_;
  const std::vector<const Relation*>& edb_relations_;
  const std::vector<Value>& universe_;
  const GrounderOptions& options_;
  std::unordered_set<uint64_t>* seen_rules_;
  GroundProgram* out_;

  std::vector<GroundOp> ops_;
  std::vector<bool> bound_;
  std::vector<Value> bindings_;
  Tuple scratch_;
};

}  // namespace

Result<GroundProgram> GroundProgramFor(const Program& program,
                                       const Database& database,
                                       const GrounderOptions& options) {
  // Resolve EDB relations (by predicate id).
  static const Relation kEmpty0(0);
  std::vector<std::unique_ptr<Relation>> empties;
  std::vector<const Relation*> edb(program.num_predicates(), nullptr);
  for (uint32_t pred = 0; pred < program.num_predicates(); ++pred) {
    const PredicateInfo& info = program.predicate(pred);
    if (info.is_idb) continue;
    auto rel = database.GetRelation(info.name);
    if (!rel.ok()) {
      if (!options.allow_missing_edb) {
        return Status::NotFound(
            StrCat("EDB relation ", info.name,
                   " is not present in the database"));
      }
      empties.push_back(std::make_unique<Relation>(info.arity));
      edb[pred] = empties.back().get();
      continue;
    }
    if ((*rel)->arity() != info.arity) {
      return Status::InvalidArgument(
          StrCat("EDB relation ", info.name, " has arity ", (*rel)->arity(),
                 " in the database but ", info.arity, " in the program"));
    }
    edb[pred] = *rel;
  }

  // Evaluation universe: active domain plus program constants.
  std::vector<Value> universe = database.universe();
  {
    std::unordered_set<Value> seen(universe.begin(), universe.end());
    for (Value v : program.Constants()) {
      if (seen.insert(v).second) universe.push_back(v);
    }
  }

  GroundProgram out;
  std::unordered_set<uint64_t> seen_rules;
  for (const Rule& rule : program.rules()) {
    RuleGrounder grounder(program, rule, edb, universe, options,
                          &seen_rules, &out);
    INFLOG_RETURN_IF_ERROR(grounder.Ground());
  }
  out.IndexHeads();
  return out;
}

}  // namespace inflog
