// Grounder: instantiates (π, D) into a GroundProgram.
//
// Every rule is instantiated over the evaluation universe (active domain ∪
// program constants) with the paper's semantics: all variables, including
// head-only and negation-only variables, range over the universe. The EDB
// part of each instantiation is evaluated against the database (positive
// EDB atoms drive the enumeration as joins; negated EDB atoms, equalities
// and inequalities filter); instantiations whose EDB part fails are
// dropped, and the surviving IDB literals form the ground rule.

#ifndef INFLOG_GROUND_GROUNDER_H_
#define INFLOG_GROUND_GROUNDER_H_

#include <cstdint>

#include "src/ast/program.h"
#include "src/base/result.h"
#include "src/ground/ground_program.h"
#include "src/relation/database.h"

namespace inflog {

/// Limits for the grounding phase.
struct GrounderOptions {
  /// Abort with ResourceExhausted beyond this many ground rules (the
  /// combined-complexity instances of Theorem 4 genuinely explode; this
  /// keeps benchmarks honest instead of hanging).
  uint64_t max_ground_rules = 5'000'000;
  /// If true, EDB predicates missing from the database are treated as
  /// empty relations.
  bool allow_missing_edb = false;
};

/// Grounds `program` against `database`.
Result<GroundProgram> GroundProgramFor(const Program& program,
                                       const Database& database,
                                       const GrounderOptions& options = {});

}  // namespace inflog

#endif  // INFLOG_GROUND_GROUNDER_H_
