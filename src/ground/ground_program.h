// Ground programs: the propositional residue of (π, D).
//
// The grounder instantiates every rule over the evaluation universe,
// evaluates away the EDB and (in)equality literals, and keeps the IDB
// literals as ground atoms. What remains — ground rules with positive and
// negated IDB body atoms — is the object on which fixpoint analysis (Clark
// completion / supported models), the well-founded semantics, and the
// stable-model check all operate.
//
// Bodies are interned: rules whose variables do not all occur in the head
// (the toggle rule T(z) ← ¬Q(u), ¬T(w) instantiates |A|³ rules over only
// |A|² distinct bodies) share one GroundBody record, and a rule is just a
// (head atom, body id) pair. This keeps the cubic rule lists cheap and
// lets the completion encoder reuse one Tseitin definition per body.

#ifndef INFLOG_GROUND_GROUND_PROGRAM_H_
#define INFLOG_GROUND_GROUND_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/program.h"
#include "src/eval/idb_state.h"
#include "src/relation/tuple.h"

namespace inflog {

/// A ground IDB atom: predicate id plus a constant tuple.
struct GroundAtom {
  uint32_t predicate;
  Tuple args;
};

/// Dense numbering of the ground IDB atoms seen during grounding.
class AtomTable {
 public:
  /// Returns the id of (pred, args), interning it if new.
  uint32_t GetOrAdd(uint32_t predicate, TupleView args);

  /// Returns the id of (pred, args), or -1 if never interned.
  int64_t Find(uint32_t predicate, TupleView args) const;

  size_t size() const { return atoms_.size(); }
  const GroundAtom& atom(uint32_t id) const {
    INFLOG_CHECK(id < atoms_.size());
    return atoms_[id];
  }

 private:
  struct Key {
    uint32_t predicate;
    Tuple args;
    bool operator==(const Key& o) const {
      return predicate == o.predicate && args == o.args;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashTuple(k.args) * 1000003u + k.predicate;
    }
  };

  std::vector<GroundAtom> atoms_;
  std::unordered_map<Key, uint32_t, KeyHash> ids_;
};

/// One ground rule body: positive and negated IDB atoms (sorted,
/// deduplicated atom ids). The EDB part has already been checked true;
/// bodies containing some atom both positively and negatively were
/// dropped as unsatisfiable before interning.
struct GroundBody {
  std::vector<uint32_t> pos;
  std::vector<uint32_t> neg;

  bool empty() const { return pos.empty() && neg.empty(); }
};

/// Dense numbering of distinct ground bodies.
class BodyTable {
 public:
  /// Interns a canonical (sorted/deduplicated) body.
  uint32_t GetOrAdd(GroundBody body);

  size_t size() const { return bodies_.size(); }
  const GroundBody& body(uint32_t id) const {
    INFLOG_CHECK(id < bodies_.size());
    return bodies_[id];
  }

 private:
  std::vector<GroundBody> bodies_;
  std::unordered_map<std::vector<uint32_t>, uint32_t, TupleHash> ids_;
};

/// One ground rule: head ← bodies.body(body).
struct GroundRule {
  uint32_t head;
  uint32_t body;
};

/// The grounding of (π, D).
struct GroundProgram {
  AtomTable atoms;
  BodyTable bodies;
  std::vector<GroundRule> rules;

  /// rule indices by head atom id (atoms with no entry are unsupported and
  /// false in every fixpoint).
  std::vector<std::vector<uint32_t>> rules_by_head;

  const GroundBody& RuleBody(const GroundRule& rule) const {
    return bodies.body(rule.body);
  }

  /// Rebuilds rules_by_head from `rules`.
  void IndexHeads();

  /// Decodes a set of true atoms (by atom id) into an IdbState for
  /// `program` (all other atoms false).
  IdbState DecodeState(const Program& program,
                       const std::vector<bool>& true_atoms) const;

  /// Debug rendering "Pred(a,b) :- Pred2(c), !Pred3(d)." per rule.
  std::string ToString(const Program& program) const;
};

}  // namespace inflog

#endif  // INFLOG_GROUND_GROUND_PROGRAM_H_
