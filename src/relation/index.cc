#include "src/relation/index.h"

#include <utility>

#include "src/base/logging.h"

namespace inflog {

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> key_cols)
    : key_cols_(std::move(key_cols)), built_at_version_(rel.version()) {
  for (size_t col : key_cols_) {
    INFLOG_CHECK(col < rel.arity()) << "index column out of range";
  }
  Tuple key(key_cols_.size());
  for (size_t row = 0; row < rel.size(); ++row) {
    TupleView tuple = rel.Row(row);
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      key[i] = tuple[key_cols_[i]];
    }
    map_[key].push_back(static_cast<uint32_t>(row));
  }
}

std::span<const uint32_t> HashIndex::Lookup(TupleView key) const {
  INFLOG_DCHECK(key.size() == key_cols_.size());
  auto it = map_.find(key);
  if (it == map_.end()) return {};
  return std::span<const uint32_t>(it->second.data(), it->second.size());
}

}  // namespace inflog
