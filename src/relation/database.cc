#include "src/relation/database.h"

#include "src/base/strings.h"

namespace inflog {

Status Database::DeclareRelation(std::string_view name, size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          StrCat("relation ", name, " re-declared with arity ", arity,
                 " (was ", it->second.arity(), ")"));
    }
    return Status::OK();
  }
  relations_.emplace(std::string(name), Relation(arity));
  return Status::OK();
}

void Database::AddUniverseValue(Value value) {
  if (universe_set_.insert(value).second) {
    universe_.push_back(value);
  }
}

Value Database::AddUniverseSymbol(std::string_view name) {
  const Value v = symbols_->Intern(name);
  AddUniverseValue(v);
  return v;
}

Status Database::AddFact(std::string_view relation, TupleView tuple) {
  INFLOG_RETURN_IF_ERROR(DeclareRelation(relation, tuple.size()));
  for (Value v : tuple) {
    INFLOG_CHECK(v < symbols_->size()) << "fact uses un-interned value";
    AddUniverseValue(v);
  }
  relations_.find(relation)->second.Insert(tuple);
  return Status::OK();
}

Status Database::AddFactNamed(std::string_view relation,
                              const std::vector<std::string>& constants) {
  Tuple tuple;
  tuple.reserve(constants.size());
  for (const std::string& c : constants) {
    tuple.push_back(symbols_->Intern(c));
  }
  return AddFact(relation, tuple);
}

Status Database::MergeFrom(const Database& other) {
  if (&other == this) return Status::OK();
  const bool same_symbols = other.symbols_ == symbols_;
  if (same_symbols) {
    for (Value v : other.universe_) AddUniverseValue(v);
  } else {
    for (Value v : other.universe_) {
      AddUniverseValue(symbols_->Intern(other.symbols_->Name(v)));
    }
  }
  for (const auto& [name, rel] : other.relations_) {
    INFLOG_RETURN_IF_ERROR(DeclareRelation(name, rel.arity()));
    Relation& dst = relations_.find(name)->second;
    if (same_symbols) {
      dst.InsertAll(rel);
      continue;
    }
    // Re-intern tuple values name-by-name into this table.
    Tuple tuple(rel.arity());
    for (size_t s = 0; s < rel.num_shards(); ++s) {
      const Relation::ShardView view = rel.shard(s);
      for (size_t r = 0; r < view.size(); ++r) {
        if (!view.IsLive(r)) continue;
        const TupleView row = view.Row(r);
        for (size_t i = 0; i < row.size(); ++i) {
          tuple[i] = symbols_->Intern(other.symbols_->Name(row[i]));
        }
        dst.Insert(tuple);
      }
    }
  }
  return Status::OK();
}

Result<const Relation*> Database::GetRelation(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("no relation named ", name));
  }
  return &it->second;
}

Result<Relation*> Database::MutableRelation(std::string_view name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("no relation named ", name));
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::string Database::ToString() const {
  std::string out = "universe: {";
  for (size_t i = 0; i < universe_.size(); ++i) {
    if (i > 0) out += ",";
    out += symbols_->Name(universe_[i]);
  }
  out += "}\n";
  for (const auto& [name, rel] : relations_) {
    out += StrCat(name, "/", rel.arity(), " = ", rel.ToString(*symbols_),
                  "\n");
  }
  return out;
}

}  // namespace inflog
