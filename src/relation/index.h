// HashIndex: an equi-join index over a subset of a relation's columns.
//
// Built eagerly from a relation snapshot; maps each projection of the key
// columns to the row ids having that projection. The evaluator builds these
// on demand (per bound-column mask) and caches them keyed by the relation's
// version, rebuilding only when the relation has grown.

#ifndef INFLOG_RELATION_INDEX_H_
#define INFLOG_RELATION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/relation/relation.h"
#include "src/relation/tuple.h"

namespace inflog {

/// Immutable equi-lookup index over `key_cols` of a relation snapshot.
class HashIndex {
 public:
  /// Builds the index over the first `rel.size()` rows of `rel`.
  /// Requires every column in key_cols to be < rel.arity().
  HashIndex(const Relation& rel, std::vector<size_t> key_cols);

  /// Row ids whose key-column projection equals `key` (same length as
  /// key_cols). Returns an empty span when no row matches.
  std::span<const uint32_t> Lookup(TupleView key) const;

  /// The indexed columns.
  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// The relation version at build time.
  uint64_t built_at_version() const { return built_at_version_; }

 private:
  std::vector<size_t> key_cols_;
  uint64_t built_at_version_;
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash, TupleEq> map_;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_INDEX_H_
