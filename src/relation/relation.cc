#include "src/relation/relation.h"

#include <algorithm>

namespace inflog {

bool Relation::Insert(TupleView tuple) {
  INFLOG_DCHECK(tuple.size() == arity_)
      << "arity mismatch: " << tuple.size() << " vs " << arity_;
  const size_t hash = HashTuple(tuple);
  std::vector<uint32_t>& bucket = buckets_[hash];
  for (uint32_t row : bucket) {
    if (TupleEq()(Row(row), tuple)) return false;
  }
  const uint32_t row = static_cast<uint32_t>(size_);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  ++size_;
  bucket.push_back(row);
  ++version_;
  return true;
}

bool Relation::Contains(TupleView tuple) const {
  return Find(tuple) >= 0;
}

int64_t Relation::Find(TupleView tuple) const {
  INFLOG_DCHECK(tuple.size() == arity_);
  auto it = buckets_.find(HashTuple(tuple));
  if (it == buckets_.end()) return -1;
  for (uint32_t row : it->second) {
    if (TupleEq()(Row(row), tuple)) return row;
  }
  return -1;
}

size_t Relation::InsertAll(const Relation& other) {
  INFLOG_DCHECK(other.arity_ == arity_);
  size_t added = 0;
  for (size_t i = 0; i < other.size(); ++i) {
    if (Insert(other.Row(i))) ++added;
  }
  return added;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  if (size_ > other.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (!other.Contains(Row(i))) return false;
  }
  return true;
}

bool Relation::operator==(const Relation& other) const {
  return arity_ == other.arity_ && size_ == other.size_ && IsSubsetOf(other);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> rows;
  rows.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    TupleView row = Row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& row : SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += FormatTuple(symbols, row);
  }
  out += "}";
  return out;
}

}  // namespace inflog
