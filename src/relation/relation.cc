#include "src/relation/relation.h"

#include <algorithm>

namespace inflog {
namespace {

/// Smallest power of two ≥ n (and ≥ 16).
size_t SlotCapacityFor(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      size_(other.size_),
      data_(other.data_),
      row_hash_(other.row_hash_),
      slots_(other.slots_),
      version_(other.version_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  size_ = other.size_;
  data_ = other.data_;
  row_hash_ = other.row_hash_;
  slots_ = other.slots_;
  version_ = other.version_;
  col_indexes_.clear();
  return *this;
}

void Relation::Rehash(size_t new_capacity) {
  INFLOG_DCHECK((new_capacity & (new_capacity - 1)) == 0);
  slots_.assign(new_capacity, kEmptySlot);
  const size_t mask = new_capacity - 1;
  for (uint32_t row = 0; row < size_; ++row) {
    size_t slot = row_hash_[row] & mask;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    slots_[slot] = row;
  }
}

bool Relation::Insert(TupleView tuple) {
  INFLOG_DCHECK(tuple.size() == arity_)
      << "arity mismatch: " << tuple.size() << " vs " << arity_;
  // Grow at 7/8 load so probe chains stay short.
  if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
    Rehash(SlotCapacityFor((size_ + 1) * 2));
  }
  const size_t hash = HashTuple(tuple);
  const size_t mask = slots_.size() - 1;
  size_t slot = hash & mask;
  while (slots_[slot] != kEmptySlot) {
    const uint32_t row = slots_[slot];
    if (row_hash_[row] == hash && TupleEq()(Row(row), tuple)) return false;
    slot = (slot + 1) & mask;
  }
  slots_[slot] = static_cast<uint32_t>(size_);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  row_hash_.push_back(hash);
  ++size_;
  ++version_;
  return true;
}

bool Relation::Contains(TupleView tuple) const {
  return Find(tuple) >= 0;
}

int64_t Relation::Find(TupleView tuple) const {
  INFLOG_DCHECK(tuple.size() == arity_);
  if (slots_.empty()) return -1;
  const size_t hash = HashTuple(tuple);
  const size_t mask = slots_.size() - 1;
  size_t slot = hash & mask;
  while (slots_[slot] != kEmptySlot) {
    const uint32_t row = slots_[slot];
    if (row_hash_[row] == hash && TupleEq()(Row(row), tuple)) return row;
    slot = (slot + 1) & mask;
  }
  return -1;
}

void Relation::EnsureIndexed(size_t col) const {
  INFLOG_DCHECK(col < arity_) << "index column out of range";
  if (col_indexes_.size() != arity_) col_indexes_.resize(arity_);
  std::unique_ptr<ColumnIndex>& index = col_indexes_[col];
  if (index == nullptr) index = std::make_unique<ColumnIndex>();
  // When the index is current, this is a pure read — concurrent callers on
  // a frozen relation never write (the guard below is what makes the
  // parallel stage's lock-free reads data-race-free).
  if (index->rows_indexed == size_) return;
  // Append-only: fold in just the rows added since the last call.
  for (size_t row = index->rows_indexed; row < size_; ++row) {
    index->postings[data_[row * arity_ + col]].push_back(
        static_cast<uint32_t>(row));
  }
  index->rows_indexed = size_;
}

std::span<const uint32_t> Relation::EqualRows(size_t col, Value value) const {
  EnsureIndexed(col);
  const ColumnIndex& index = *col_indexes_[col];
  auto it = index.postings.find(value);
  if (it == index.postings.end()) return {};
  return std::span<const uint32_t>(it->second.data(), it->second.size());
}

size_t Relation::InsertAll(const Relation& other) {
  INFLOG_DCHECK(other.arity_ == arity_);
  size_t added = 0;
  for (size_t i = 0; i < other.size(); ++i) {
    if (Insert(other.Row(i))) ++added;
  }
  return added;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  if (size_ > other.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (!other.Contains(Row(i))) return false;
  }
  return true;
}

bool Relation::operator==(const Relation& other) const {
  return arity_ == other.arity_ && size_ == other.size_ && IsSubsetOf(other);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> rows;
  rows.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    TupleView row = Row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& row : SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += FormatTuple(symbols, row);
  }
  out += "}";
  return out;
}

}  // namespace inflog
