#include "src/relation/relation.h"

#include <algorithm>

namespace inflog {
namespace {

/// Smallest power of two ≥ n (and ≥ 16).
size_t SlotCapacityFor(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

Relation::Relation(size_t arity, size_t num_shards)
    : arity_(arity),
      shard_bits_(ShardBitsFor(num_shards == 0 ? 1 : num_shards)) {
  shards_.resize(size_t{1} << shard_bits_);
}

void Relation::RehashShard(Shard* shard, size_t new_capacity) {
  INFLOG_DCHECK((new_capacity & (new_capacity - 1)) == 0);
  shard->slots.assign(new_capacity, kEmptySlot);
  const size_t mask = new_capacity - 1;
  for (uint32_t row = 0; row < shard->size; ++row) {
    // Dead rows keep their physical slot in the buffer but drop out of
    // the membership table (their tombstone slots are not carried over).
    if (shard->num_dead != 0 && shard->dead[row] != 0) continue;
    size_t slot = shard->row_hash[row] & mask;
    while (shard->slots[slot] != kEmptySlot) slot = (slot + 1) & mask;
    shard->slots[slot] = row;
  }
  shard->slots_used = shard->size - shard->num_dead;
}

bool Relation::InsertIntoShard(Shard* shard, TupleView tuple, size_t hash) {
  // Grow at 7/8 load so probe chains stay short. Tombstone slots count
  // toward load: they lengthen probe chains just like occupied ones.
  if (shard->slots.empty() ||
      (shard->slots_used + 1) * 8 > shard->slots.size() * 7) {
    RehashShard(shard,
                SlotCapacityFor((shard->size - shard->num_dead + 1) * 2));
  }
  const size_t mask = shard->slots.size() - 1;
  size_t slot = hash & mask;
  size_t reuse_slot = kEmptySlot;
  while (shard->slots[slot] != kEmptySlot) {
    const uint32_t row = shard->slots[slot];
    if (row == kTombstoneSlot) {
      // Remember the first reusable slot but keep probing: the tuple may
      // sit further along the chain.
      if (reuse_slot == kEmptySlot) reuse_slot = slot;
    } else if (shard->row_hash[row] == hash &&
               TupleEq()(TupleView(shard->data.data() + size_t{row} * arity_,
                                   arity_),
                         tuple)) {
      return false;
    }
    slot = (slot + 1) & mask;
  }
  if (reuse_slot != kEmptySlot) {
    slot = reuse_slot;  // tombstone turns back into an occupied slot
  } else {
    ++shard->slots_used;
  }
  shard->slots[slot] = static_cast<uint32_t>(shard->size);
  shard->data.insert(shard->data.end(), tuple.begin(), tuple.end());
  shard->row_hash.push_back(hash);
  if (!shard->dead.empty()) shard->dead.push_back(0);
  ++shard->size;
  ++shard->ops;
  return true;
}

bool Relation::Insert(TupleView tuple) {
  INFLOG_DCHECK(tuple.size() == arity_)
      << "arity mismatch: " << tuple.size() << " vs " << arity_;
  const size_t hash = HashTuple(tuple);
  return InsertIntoShard(&shards_[ShardOf(hash)], tuple, hash);
}

bool Relation::Contains(TupleView tuple) const {
  RowRef ref;
  return FindRef(tuple, &ref);
}

bool Relation::FindRef(TupleView tuple, RowRef* ref) const {
  INFLOG_DCHECK(tuple.size() == arity_);
  const size_t hash = HashTuple(tuple);
  const Shard& shard = shards_[ShardOf(hash)];
  if (shard.slots.empty()) return false;
  const size_t mask = shard.slots.size() - 1;
  size_t slot = hash & mask;
  while (shard.slots[slot] != kEmptySlot) {
    const uint32_t row = shard.slots[slot];
    if (row != kTombstoneSlot && shard.row_hash[row] == hash &&
        TupleEq()(TupleView(shard.data.data() + size_t{row} * arity_,
                            arity_),
                  tuple)) {
      ref->shard = ShardOf(hash);
      ref->row = row;
      return true;
    }
    slot = (slot + 1) & mask;
  }
  return false;
}

bool Relation::Erase(TupleView tuple) {
  INFLOG_DCHECK(tuple.size() == arity_);
  const size_t hash = HashTuple(tuple);
  Shard& shard = shards_[ShardOf(hash)];
  if (shard.slots.empty()) return false;
  const size_t mask = shard.slots.size() - 1;
  size_t slot = hash & mask;
  while (shard.slots[slot] != kEmptySlot) {
    const uint32_t row = shard.slots[slot];
    if (row != kTombstoneSlot && shard.row_hash[row] == hash &&
        TupleEq()(TupleView(shard.data.data() + size_t{row} * arity_,
                            arity_),
                  tuple)) {
      shard.slots[slot] = kTombstoneSlot;  // slots_used unchanged: the
                                           // tombstone still loads the chain
      if (shard.dead.empty()) shard.dead.assign(shard.size, 0);
      shard.dead[row] = 1;
      ++shard.num_dead;
      ++shard.ops;
      // Drop the row from every posting that already covers it; postings
      // built later skip dead rows during catch-up (ShardIndex).
      for (size_t col = 0; col < shard.col_indexes.size(); ++col) {
        ColumnIndex* index = shard.col_indexes[col].get();
        if (index == nullptr || index->rows_indexed <= row) continue;
        std::vector<uint32_t>& ids =
            index->postings[shard.data[size_t{row} * arity_ + col]];
        auto it = std::lower_bound(ids.begin(), ids.end(), row);
        if (it != ids.end() && *it == row) ids.erase(it);
      }
      return true;
    }
    slot = (slot + 1) & mask;
  }
  return false;
}

void Relation::CompactDead() {
  for (Shard& shard : shards_) {
    if (shard.num_dead == 0) continue;
    std::vector<Value> data;
    std::vector<size_t> row_hash;
    const size_t live = shard.size - shard.num_dead;
    data.reserve(live * arity_);
    row_hash.reserve(live);
    for (size_t row = 0; row < shard.size; ++row) {
      if (shard.dead[row] != 0) continue;
      const Value* begin = shard.data.data() + row * arity_;
      data.insert(data.end(), begin, begin + arity_);
      row_hash.push_back(shard.row_hash[row]);
    }
    shard.data = std::move(data);
    shard.row_hash = std::move(row_hash);
    shard.dead.clear();
    shard.size = live;
    shard.num_dead = 0;
    shard.col_indexes.clear();
    ++shard.ops;
    RehashShard(&shard, SlotCapacityFor(live * 2));
  }
}

int64_t Relation::Find(TupleView tuple) const {
  RowRef ref;
  if (!FindRef(tuple, &ref)) return -1;
  size_t offset = 0;
  for (uint32_t s = 0; s < ref.shard; ++s) {
    offset += shards_[s].size - shards_[s].num_dead;
  }
  const Shard& shard = shards_[ref.shard];
  if (shard.num_dead == 0) return static_cast<int64_t>(offset + ref.row);
  for (uint32_t row = 0; row < ref.row; ++row) {
    if (shard.dead[row] == 0) ++offset;
  }
  return static_cast<int64_t>(offset);
}

TupleView Relation::Row(size_t i) const {
  for (const Shard& shard : shards_) {
    const size_t live = shard.size - shard.num_dead;
    if (i >= live) {
      i -= live;
      continue;
    }
    if (shard.num_dead == 0) {
      return TupleView(shard.data.data() + i * arity_, arity_);
    }
    for (size_t row = 0; row < shard.size; ++row) {
      if (shard.dead[row] != 0) continue;
      if (i-- == 0) {
        return TupleView(shard.data.data() + row * arity_, arity_);
      }
    }
  }
  INFLOG_CHECK(false) << "row index out of range";
  return {};
}

const Relation::ColumnIndex& Relation::ShardIndex(const Shard& shard,
                                                  size_t col) const {
  INFLOG_DCHECK(col < arity_) << "index column out of range";
  if (shard.col_indexes.size() != arity_) shard.col_indexes.resize(arity_);
  std::unique_ptr<ColumnIndex>& index = shard.col_indexes[col];
  if (index == nullptr) index = std::make_unique<ColumnIndex>();
  // When the index is current, this is a pure read — concurrent callers on
  // a frozen relation never write (the guard below is what makes the
  // parallel stage's lock-free reads data-race-free).
  if (index->rows_indexed == shard.size) return *index;
  // Append-only: fold in just the rows added since the last call
  // (skipping any that were tombstoned before the index caught up).
  for (size_t row = index->rows_indexed; row < shard.size; ++row) {
    if (shard.num_dead != 0 && shard.dead[row] != 0) continue;
    index->postings[shard.data[row * arity_ + col]].push_back(
        static_cast<uint32_t>(row));
  }
  index->rows_indexed = shard.size;
  return *index;
}

void Relation::EnsureIndexed(size_t col) const {
  for (const Shard& shard : shards_) ShardIndex(shard, col);
}

std::span<const uint32_t> Relation::EqualRows(size_t col, Value value) const {
  // Always-on check: compiling this out would silently return only shard
  // 0's postings on a sharded relation (dropped join rows, no crash).
  // The call is not hot — the executor probes via EqualRowsPerShard.
  INFLOG_CHECK(shards_.size() == 1)
      << "EqualRows is single-shard only; use EqualRowsPerShard";
  const ColumnIndex& index = ShardIndex(shards_[0], col);
  auto it = index.postings.find(value);
  if (it == index.postings.end()) return {};
  return std::span<const uint32_t>(it->second.data(), it->second.size());
}

size_t Relation::EqualRowsPerShard(size_t col, Value value,
                                   std::span<const uint32_t>* spans) const {
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ColumnIndex& index = ShardIndex(shards_[s], col);
    auto it = index.postings.find(value);
    if (it == index.postings.end()) {
      spans[s] = {};
      continue;
    }
    spans[s] =
        std::span<const uint32_t>(it->second.data(), it->second.size());
    total += it->second.size();
  }
  return total;
}

size_t Relation::InsertAll(const Relation& other) {
  INFLOG_DCHECK(other.arity_ == arity_);
  if (&other == this) return 0;  // self-union adds nothing (and iterating
                                 // a relation while growing it is UB)
  size_t added = 0;
  for (const Shard& src : other.shards_) {
    for (size_t row = 0; row < src.size; ++row) {
      if (src.num_dead != 0 && src.dead[row] != 0) continue;
      // Tuple hashes are shard-count independent; reuse the source cache.
      const size_t hash = src.row_hash[row];
      const TupleView tuple(src.data.data() + row * arity_, arity_);
      if (InsertIntoShard(&shards_[ShardOf(hash)], tuple, hash)) ++added;
    }
  }
  return added;
}

size_t Relation::MergeShardFrom(const Relation& other, size_t s) {
  INFLOG_DCHECK(other.arity_ == arity_);
  INFLOG_DCHECK(other.shards_.size() == shards_.size())
      << "shard-wise merge requires matching shard counts";
  INFLOG_DCHECK(&other != this);
  const Shard& src = other.shards_[s];
  Shard& dst = shards_[s];
  size_t added = 0;
  for (size_t row = 0; row < src.size; ++row) {
    if (src.num_dead != 0 && src.dead[row] != 0) continue;
    const TupleView tuple(src.data.data() + row * arity_, arity_);
    if (InsertIntoShard(&dst, tuple, src.row_hash[row])) ++added;
  }
  return added;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  if (size() > other.size()) return false;
  for (const Shard& shard : shards_) {
    for (size_t row = 0; row < shard.size; ++row) {
      if (shard.num_dead != 0 && shard.dead[row] != 0) continue;
      if (!other.Contains(
              TupleView(shard.data.data() + row * arity_, arity_))) {
        return false;
      }
    }
  }
  return true;
}

bool Relation::operator==(const Relation& other) const {
  return arity_ == other.arity_ && size() == other.size() &&
         IsSubsetOf(other);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> rows;
  rows.reserve(size());
  for (const Shard& shard : shards_) {
    for (size_t row = 0; row < shard.size; ++row) {
      if (shard.num_dead != 0 && shard.dead[row] != 0) continue;
      const Value* begin = shard.data.data() + row * arity_;
      rows.emplace_back(begin, begin + arity_);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& row : SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += FormatTuple(symbols, row);
  }
  out += "}";
  return out;
}

}  // namespace inflog
