// Domain values and the symbol table that interns them.
//
// All domain elements (graph vertices, propositional variables, clause
// names, bits 0/1, ...) are interned into dense uint32 ids so tuples are
// flat integer arrays and joins are integer comparisons.

#ifndef INFLOG_RELATION_VALUE_H_
#define INFLOG_RELATION_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/logging.h"

namespace inflog {

/// A domain element, represented as an index into a SymbolTable.
using Value = uint32_t;

/// Sentinel for "no value" (used by binding environments).
inline constexpr Value kNoValue = static_cast<Value>(-1);

/// Transparent string hasher: lets unordered containers keyed by
/// std::string answer string_view lookups without materializing a
/// temporary std::string (C++20 heterogeneous lookup).
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Bidirectional mapping between external names and dense Value ids.
///
/// A single SymbolTable is shared by a database and the programs evaluated
/// against it, so that constants appearing in rule bodies denote the same
/// ids as the facts. Interning the same name twice returns the same id.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id for `name`, interning it if new. Only the new-symbol
  /// path allocates; repeat interning is a heterogeneous lookup.
  Value Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const Value id = static_cast<Value>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Interns the decimal rendering of `n`.
  Value InternInt(int64_t n) { return Intern(std::to_string(n)); }

  /// Returns the id for `name` or kNoValue if it was never interned.
  /// Never allocates.
  Value Find(std::string_view name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNoValue : it->second;
  }

  /// The external name of `id`. Requires id < size().
  const std::string& Name(Value id) const {
    INFLOG_CHECK(id < names_.size()) << "symbol id out of range";
    return names_[id];
  }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  // Transparent hash + equality so Find/Intern look up string_views
  // directly against the owned std::string keys.
  std::unordered_map<std::string, Value, StringHash, std::equal_to<>> ids_;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_VALUE_H_
