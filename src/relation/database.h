// Database: a finite structure — a universe (active domain) plus named
// relations over it.
//
// This is the object the paper's definitions quantify over: DATALOG¬
// variables range over the universe A, and the operator Θ maps IDB relation
// values over A to IDB relation values over A. The universe is maintained
// as the active domain (every constant appearing in a fact joins it) plus
// any explicitly declared elements, matching Section 2 of the paper.

#ifndef INFLOG_RELATION_DATABASE_H_
#define INFLOG_RELATION_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/relation/relation.h"
#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {

/// A finite structure over a shared symbol table.
class Database {
 public:
  /// Creates a database with a fresh symbol table.
  Database() : symbols_(std::make_shared<SymbolTable>()) {}

  /// Creates a database sharing an existing symbol table (so program
  /// constants and facts intern to the same ids).
  explicit Database(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {
    INFLOG_CHECK(symbols_ != nullptr);
  }

  /// The shared symbol table.
  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }
  std::shared_ptr<SymbolTable> shared_symbols() const { return symbols_; }

  /// Declares a relation with the given arity. Re-declaring with the same
  /// arity is a no-op; with a different arity it is an error.
  Status DeclareRelation(std::string_view name, size_t arity);

  /// Adds `value` to the universe (idempotent).
  void AddUniverseValue(Value value);

  /// Interns `name` and adds it to the universe.
  Value AddUniverseSymbol(std::string_view name);

  /// Interns the decimal rendering of `n` and adds it to the universe.
  Value AddUniverseInt(int64_t n) {
    const Value v = symbols_->InternInt(n);
    AddUniverseValue(v);
    return v;
  }

  /// Inserts a fact, declaring the relation on first use (with the fact's
  /// arity) and adding the fact's constants to the universe. Returns an
  /// error on arity mismatch with an existing declaration.
  Status AddFact(std::string_view relation, TupleView tuple);

  /// Convenience: AddFact with named constants, interning each.
  Status AddFactNamed(std::string_view relation,
                      const std::vector<std::string>& constants);

  /// Merges `other` into this database: its universe values, relation
  /// declarations (created on first sight), and facts. A relation present
  /// in both with different arities is an error (this database is left
  /// partially merged in that case — snapshot first if that matters).
  /// The databases may use different symbol tables; values are then
  /// re-interned by name.
  Status MergeFrom(const Database& other);

  /// The relation named `name`, or NotFound.
  Result<const Relation*> GetRelation(std::string_view name) const;

  /// Mutable access to the relation named `name`, or NotFound. The
  /// incremental maintainer applies EDB updates through this (AddFact for
  /// inserts so new constants join the universe, Relation::Erase for
  /// deletes — the universe, being the *active domain plus history*,
  /// never shrinks, matching what a from-scratch evaluation of this
  /// database object would quantify over).
  Result<Relation*> MutableRelation(std::string_view name);

  /// True iff a relation named `name` has been declared. Heterogeneous
  /// lookup: never allocates.
  bool HasRelation(std::string_view name) const {
    return relations_.find(name) != relations_.end();
  }

  /// All declared relation names in lexicographic order.
  std::vector<std::string> RelationNames() const;

  /// The universe, in insertion order (deterministic).
  const std::vector<Value>& universe() const { return universe_; }

  /// True iff `value` is in the universe.
  bool InUniverse(Value value) const {
    return universe_set_.find(value) != universe_set_.end();
  }

  /// Renders every relation plus the universe, for debugging and goldens.
  std::string ToString() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Value> universe_;
  std::unordered_set<Value> universe_set_;
  std::map<std::string, Relation, std::less<>> relations_;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_DATABASE_H_
