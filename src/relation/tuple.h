// Tuples of domain values and hashing support.
//
// Relations store rows in a flat buffer; the owning Tuple type is used at
// API boundaries (insertion, enumeration results) and as hash-map keys.

#ifndef INFLOG_RELATION_TUPLE_H_
#define INFLOG_RELATION_TUPLE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/relation/value.h"

namespace inflog {

/// An owning tuple of domain values.
using Tuple = std::vector<Value>;

/// A borrowed view of a tuple (e.g. a row inside a Relation's buffer).
using TupleView = std::span<const Value>;

/// FNV-1a style mixing over a value sequence. Stable across platforms.
inline size_t HashTuple(TupleView tuple) {
  uint64_t h = 1469598103934665603ULL;
  for (Value v : tuple) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

/// Number of shard-index bits for a relation with `num_shards` shards
/// (num_shards is rounded up to a power of two by the Relation ctor).
inline uint32_t ShardBitsFor(size_t num_shards) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < num_shards) ++bits;
  return bits;
}

/// The shard a tuple with hash `hash` belongs to, out of 2^shard_bits.
/// Uses the top bits of a Fibonacci remix so the shard choice is
/// independent of the low bits that open-addressing slots consume; stable
/// across platforms (all arithmetic is explicit 64-bit).
inline uint32_t ShardOfHash(size_t hash, uint32_t shard_bits) {
  if (shard_bits == 0) return 0;
  const uint64_t mixed =
      static_cast<uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
  return static_cast<uint32_t>(mixed >> (64 - shard_bits));
}

/// Transparent hash functor for Tuple/TupleView keys.
struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
  size_t operator()(TupleView t) const { return HashTuple(t); }
};

/// Transparent equality functor for Tuple/TupleView keys.
struct TupleEq {
  using is_transparent = void;
  bool operator()(TupleView a, TupleView b) const {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

/// Renders a tuple as "(a,b,c)" using the symbol table's names.
inline std::string FormatTuple(const SymbolTable& symbols, TupleView tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += symbols.Name(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace inflog

#endif  // INFLOG_RELATION_TUPLE_H_
