// Tuples of domain values and hashing support.
//
// Relations store rows in a flat buffer; the owning Tuple type is used at
// API boundaries (insertion, enumeration results) and as hash-map keys.

#ifndef INFLOG_RELATION_TUPLE_H_
#define INFLOG_RELATION_TUPLE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/relation/value.h"

namespace inflog {

/// An owning tuple of domain values.
using Tuple = std::vector<Value>;

/// A borrowed view of a tuple (e.g. a row inside a Relation's buffer).
using TupleView = std::span<const Value>;

/// FNV-1a style mixing over a value sequence. Stable across platforms.
inline size_t HashTuple(TupleView tuple) {
  uint64_t h = 1469598103934665603ULL;
  for (Value v : tuple) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

/// Transparent hash functor for Tuple/TupleView keys.
struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
  size_t operator()(TupleView t) const { return HashTuple(t); }
};

/// Transparent equality functor for Tuple/TupleView keys.
struct TupleEq {
  using is_transparent = void;
  bool operator()(TupleView a, TupleView b) const {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

/// Renders a tuple as "(a,b,c)" using the symbol table's names.
inline std::string FormatTuple(const SymbolTable& symbols, TupleView tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += symbols.Name(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace inflog

#endif  // INFLOG_RELATION_TUPLE_H_
