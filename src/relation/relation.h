// Relation: an append-only set of equal-arity tuples.
//
// Rows live in one flat row-major buffer; membership is tracked by a hash
// table from tuple hash to row ids (collisions resolved by comparing row
// contents). Rows are never removed or modified once inserted, which keeps
// row ids stable and makes the inflationary evaluator's stage bookkeeping
// (contiguous row ranges per stage) trivial. A monotonically increasing
// version number lets callers (e.g. the join index cache) detect growth.

#ifndef INFLOG_RELATION_RELATION_H_
#define INFLOG_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {

/// A set of tuples of a fixed arity over the interned domain.
class Relation {
 public:
  /// Creates an empty relation of the given arity. Arity 0 is legal: such a
  /// relation is either empty ("false") or contains the empty tuple
  /// ("true").
  explicit Relation(size_t arity) : arity_(arity) {}

  /// The number of columns.
  size_t arity() const { return arity_; }

  /// The number of tuples.
  size_t size() const { return size_; }

  /// True iff the relation holds no tuples.
  bool empty() const { return size_ == 0; }

  /// Inserts a tuple; returns true iff it was not already present.
  /// Requires tuple.size() == arity().
  bool Insert(TupleView tuple);

  /// Membership test. Requires tuple.size() == arity().
  bool Contains(TupleView tuple) const;

  /// Row index of `tuple`, or -1 if absent. Row indices are stable
  /// (insertion order), which lets callers map tuples to the inflationary
  /// stage that introduced them.
  int64_t Find(TupleView tuple) const;

  /// The i-th inserted tuple (insertion order is stable).
  TupleView Row(size_t i) const {
    INFLOG_DCHECK(i < size_);
    return TupleView(data_.data() + i * arity_, arity_);
  }

  /// Inserts every tuple of `other` (same arity); returns the number of
  /// tuples that were new.
  size_t InsertAll(const Relation& other);

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Set equality (insertion order is ignored).
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Bumped on every successful insertion; lets index caches detect growth.
  uint64_t version() const { return version_; }

  /// Rows in a canonical (lexicographically sorted) order, for printing and
  /// deterministic iteration in tests.
  std::vector<Tuple> SortedTuples() const;

  /// Renders "{(a,b), (c,d)}" in canonical order.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  size_t arity_;
  size_t size_ = 0;
  std::vector<Value> data_;
  // Tuple hash -> row ids with that hash. Row contents are compared on
  // lookup, so hash collisions are handled correctly.
  std::unordered_map<size_t, std::vector<uint32_t>> buckets_;
  uint64_t version_ = 0;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_RELATION_H_
