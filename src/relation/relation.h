// Relation: an append-only set of equal-arity tuples.
//
// Rows live in one flat row-major buffer; membership is tracked by a flat
// open-addressing hash table of row ids (linear probing, power-of-two
// capacity, no tombstones — rows are never removed). Per-row tuple hashes
// are cached so probes compare one integer before touching row data.
//
// Each column additionally carries a lazily built secondary index (hash of
// column value → row ids) used by the join executor for equi-lookups. The
// indexes are maintained incrementally: because the relation is
// append-only, an index is brought up to date by scanning only the rows
// appended since it was last touched. A monotonically increasing version
// number lets external callers detect growth.
//
// Thread-safety: const methods are safe to call concurrently EXCEPT that
// EqualRows catches a stale column index up first (a write). Callers that
// share a frozen relation across threads — the parallel fixpoint stage —
// must call EnsureIndexed(col) for every column they will probe before
// fanning out; after that, concurrent EqualRows calls on those columns are
// lock-free pure reads until the next insertion. Any mutation requires
// exclusive access, as usual.
//
// Rows are never removed or modified once inserted, which keeps row ids
// stable and makes the fixpoint driver's stage bookkeeping (contiguous row
// ranges per stage) trivial.

#ifndef INFLOG_RELATION_RELATION_H_
#define INFLOG_RELATION_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {

/// A set of tuples of a fixed arity over the interned domain.
class Relation {
 public:
  /// Creates an empty relation of the given arity. Arity 0 is legal: such a
  /// relation is either empty ("false") or contains the empty tuple
  /// ("true").
  explicit Relation(size_t arity) : arity_(arity) {}

  // Copies transfer rows but not the lazily built column indexes (the copy
  // rebuilds its own on first use); moves transfer everything.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// The number of columns.
  size_t arity() const { return arity_; }

  /// The number of tuples.
  size_t size() const { return size_; }

  /// True iff the relation holds no tuples.
  bool empty() const { return size_ == 0; }

  /// Inserts a tuple; returns true iff it was not already present.
  /// Requires tuple.size() == arity().
  bool Insert(TupleView tuple);

  /// Membership test. Requires tuple.size() == arity().
  bool Contains(TupleView tuple) const;

  /// Row index of `tuple`, or -1 if absent. Row indices are stable
  /// (insertion order), which lets callers map tuples to the inflationary
  /// stage that introduced them.
  int64_t Find(TupleView tuple) const;

  /// The i-th inserted tuple (insertion order is stable).
  TupleView Row(size_t i) const {
    INFLOG_DCHECK(i < size_);
    return TupleView(data_.data() + i * arity_, arity_);
  }

  /// Ids of the rows whose column `col` equals `value`, in ascending row
  /// (= insertion) order, served from the built-in secondary index (built
  /// on first use for each column, then extended incrementally as the
  /// relation grows). The span stays valid while the relation does not
  /// grow; after an Insert/InsertAll the next EqualRows call on the same
  /// column may reallocate it.
  std::span<const uint32_t> EqualRows(size_t col, Value value) const;

  /// Brings column `col`'s index fully up to date now. Once every probed
  /// column is indexed, concurrent EqualRows calls are data-race-free
  /// until the next insertion; the parallel fixpoint stage calls this for
  /// all key columns of a stage's plans before dispatching tasks.
  void EnsureIndexed(size_t col) const;

  /// Inserts every tuple of `other` (same arity); returns the number of
  /// tuples that were new.
  size_t InsertAll(const Relation& other);

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Set equality (insertion order is ignored).
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Bumped on every successful insertion; lets callers detect growth.
  uint64_t version() const { return version_; }

  /// Rows in a canonical (lexicographically sorted) order, for printing and
  /// deterministic iteration in tests.
  std::vector<Tuple> SortedTuples() const;

  /// Renders "{(a,b), (c,d)}" in canonical order.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  /// Slot content marking an empty open-addressing slot.
  static constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);

  /// Doubles the slot array and reinserts every row id.
  void Rehash(size_t new_capacity);

  /// Secondary index over one column: value → ids of rows holding it.
  /// `rows_indexed` is how many leading rows have been folded in; the
  /// relation being append-only, catching up means scanning the suffix.
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<uint32_t>> postings;
    size_t rows_indexed = 0;
  };

  size_t arity_;
  size_t size_ = 0;
  std::vector<Value> data_;
  std::vector<size_t> row_hash_;   // per-row tuple hash (probe fast path)
  std::vector<uint32_t> slots_;    // open-addressing table of row ids
  uint64_t version_ = 0;
  // Lazily created per-column indexes. Mutable: bringing an index up to
  // date does not change the relation's observable value.
  mutable std::vector<std::unique_ptr<ColumnIndex>> col_indexes_;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_RELATION_H_
