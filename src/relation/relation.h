// Relation: an append-mostly set of equal-arity tuples, hash-sharded.
//
// Storage is split into S shards (a power of two, 1 by default) keyed by
// tuple hash (ShardOfHash): each shard owns a flat row-major buffer, a
// flat open-addressing hash table of shard-local row ids (linear probing,
// power-of-two capacity), the per-row tuple-hash cache, and the lazily
// built per-column secondary indexes (hash of column value → local row
// ids) the join executor consumes. Because a tuple's shard is a pure
// function of its content, two relations with the same shard count
// partition any tuple set identically — which is what lets the fixpoint
// stage merge staging relations into the state shard-by-shard with no
// cross-shard writes (MergeShardFrom) and no serial merge step.
//
// Deletion (Erase) tombstones a row in place: the row keeps its physical
// slot in the buffer but is marked dead in a per-shard bitmap, its
// membership slot turns into a probe-chain tombstone, and its ids are
// removed from any already-built postings. Physical row ids therefore
// never shift — the delta-range bookkeeping the incremental maintainer
// shares with the fixpoint driver survives deletions — and CompactDead()
// reclaims the space once a caller knows no row ids are outstanding.
//
// Row identity is (shard, local row); both components are stable because
// shards are append-only (tombstones keep dead rows in place). ShardView
// exposes one shard's physical rows — including dead ones, which scans
// skip via IsLive — and postings to readers; the whole-relation
// Row(i)/Find(i) accessors linearize the *live* rows in shard-major order
// and exist for single-shard relations, tests and printing — their global
// ids are stable only while the relation does not change (and forever
// when num_shards() == 1 and nothing was erased, which preserves the
// pre-sharding contract).
//
// Indexes are maintained incrementally: rows only ever being appended, an
// index is brought up to date by scanning only the rows appended since it
// was last touched (skipping dead ones); Erase eagerly removes the dead
// row from postings that already cover it.
//
// Thread-safety: const methods are safe to call concurrently EXCEPT that
// EqualRows* catches a stale column index up first (a write). Callers
// that share a frozen relation across threads — the parallel fixpoint
// stage — must call EnsureIndexed(col) for every column they will probe
// before fanning out; after that, concurrent EqualRows* calls on those
// columns are lock-free pure reads until the next insertion. Mutation
// requires exclusive access, with one carve-out: MergeShardFrom touches
// only the named shard, so concurrent calls on distinct shards of the
// same relation are race-free — the shard-parallel stage merge is built
// on exactly this.

#ifndef INFLOG_RELATION_RELATION_H_
#define INFLOG_RELATION_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {

/// A set of tuples of a fixed arity over the interned domain.
class Relation {
 private:
  struct Shard;  // defined below; forward-declared for ShardView

 public:
  /// Stable address of a row: shard plus shard-local row id.
  struct RowRef {
    uint32_t shard = 0;
    uint32_t row = 0;
  };

  /// Creates an empty relation of the given arity with `num_shards` hash
  /// shards (rounded up to a power of two; 0 is treated as 1). Arity 0 is
  /// legal: such a relation is either empty ("false") or contains the
  /// empty tuple ("true").
  explicit Relation(size_t arity, size_t num_shards = 1);

  // Copies transfer rows but not the lazily built column indexes (the copy
  // rebuilds its own on first use); moves transfer everything.
  Relation(const Relation& other) = default;
  Relation& operator=(const Relation& other) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// The number of columns.
  size_t arity() const { return arity_; }

  /// The number of hash shards (a power of two, ≥ 1).
  size_t num_shards() const { return shards_.size(); }

  /// The number of live tuples (summed over shards, dead rows excluded).
  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) n += s.size - s.num_dead;
    return n;
  }

  /// True iff the relation holds no live tuples.
  bool empty() const { return size() == 0; }

  /// Physical rows currently in shard `s` (tombstoned rows included —
  /// this is the coordinate the fixpoint delta ranges are expressed in).
  size_t ShardSize(size_t s) const {
    INFLOG_DCHECK(s < shards_.size());
    return shards_[s].size;
  }

  /// Tombstoned rows across all shards.
  size_t dead_rows() const {
    size_t n = 0;
    for (const Shard& s : shards_) n += s.num_dead;
    return n;
  }

  /// Inserts a tuple; returns true iff it was not already present.
  /// Requires tuple.size() == arity().
  bool Insert(TupleView tuple);

  /// Removes a tuple by tombstoning its row in place (physical row ids do
  /// not shift); returns true iff it was present. Requires
  /// tuple.size() == arity().
  bool Erase(TupleView tuple);

  /// Rebuilds every shard without its tombstoned rows, dropping the lazily
  /// built indexes. Invalidates RowRefs, global row ids, and any delta
  /// ranges expressed in this relation's physical offsets — callers must
  /// only compact between fixpoint runs.
  void CompactDead();

  /// Membership test. Requires tuple.size() == arity().
  bool Contains(TupleView tuple) const;

  /// Locates `tuple`; returns false if absent (or tombstoned). The RowRef
  /// is stable until CompactDead (rows are appended or tombstoned in
  /// place, never moved), which lets callers map tuples to the
  /// inflationary stage that introduced them via per-shard stage sizes.
  bool FindRef(TupleView tuple, RowRef* ref) const;

  /// Shard-major global index of `tuple` among the live rows, or -1 if
  /// absent. Stable while the relation does not change; stable forever
  /// when num_shards() == 1 and nothing was erased (insertion order, the
  /// pre-sharding contract).
  int64_t Find(TupleView tuple) const;

  /// The i-th live row in shard-major order. O(1) for single-shard
  /// relations without tombstones, O(shard rows) otherwise; bulk readers
  /// should iterate shards.
  TupleView Row(size_t i) const;

  /// The row at a stable (shard, local) address.
  TupleView RowAt(RowRef ref) const {
    INFLOG_DCHECK(ref.shard < shards_.size());
    INFLOG_DCHECK(ref.row < shards_[ref.shard].size);
    return TupleView(
        shards_[ref.shard].data.data() + size_t{ref.row} * arity_, arity_);
  }

  /// A borrowed, lock-free reader over one shard's rows and postings.
  /// Valid while the relation is alive; spans returned by its EqualRows
  /// follow the Relation::EqualRows invalidation rules.
  class ShardView {
   public:
    /// Physical rows in this shard (tombstoned rows included; full scans
    /// filter with IsLive — postings and delta ranges never name a dead
    /// row, so indexed and delta walks skip the check).
    size_t size() const { return shard_->size; }
    /// True iff local row `row` has not been tombstoned.
    bool IsLive(size_t row) const {
      return dead_ == nullptr || dead_[row] == 0;
    }
    /// The local-id `row` of this shard.
    TupleView Row(size_t row) const {
      INFLOG_DCHECK(row < shard_->size);
      return TupleView(shard_->data.data() + row * arity_, arity_);
    }

   private:
    friend class Relation;
    ShardView(const Shard* shard, size_t arity)
        : shard_(shard),
          dead_(shard->num_dead == 0 ? nullptr : shard->dead.data()),
          arity_(arity) {}
    const Shard* shard_;
    const uint8_t* dead_;
    size_t arity_;
  };

  /// Reader for shard `s`.
  ShardView shard(size_t s) const {
    INFLOG_DCHECK(s < shards_.size());
    return ShardView(&shards_[s], arity_);
  }

  /// Ids of the rows whose column `col` equals `value`, in ascending row
  /// (= insertion) order, served from the built-in secondary index (built
  /// on first use, then extended incrementally). Single-shard relations
  /// only — sharded readers use EqualRowsPerShard. The span stays valid
  /// while the relation does not grow; after an Insert/InsertAll the next
  /// EqualRows* call on the same column may reallocate it.
  std::span<const uint32_t> EqualRows(size_t col, Value value) const;

  /// Per-shard postings for column `col` equal to `value`: fills
  /// `spans[s]` (which must have num_shards() entries) with shard s's
  /// matching local row ids in ascending local order, and returns the
  /// total match count across shards. Lazily indexes `col` under the same
  /// contract as EqualRows.
  size_t EqualRowsPerShard(size_t col, Value value,
                           std::span<const uint32_t>* spans) const;

  /// Brings column `col`'s index fully up to date in every shard. Once
  /// every probed column is indexed, concurrent EqualRows* calls are
  /// data-race-free until the next insertion; the parallel fixpoint stage
  /// calls this for all key columns of a stage's plans before dispatching
  /// tasks.
  void EnsureIndexed(size_t col) const;

  /// Inserts every tuple of `other` (same arity; shard counts may
  /// differ); returns the number of tuples that were new. Inserting a
  /// relation into itself is a no-op.
  size_t InsertAll(const Relation& other);

  /// Inserts shard `s` of `other` into shard `s` of this relation and
  /// returns the number of new tuples. Requires equal arity and equal
  /// shard counts (so the shard partitions agree). Writes only shard `s`:
  /// concurrent calls on distinct shards of the same destination are
  /// race-free, which is what makes the fixpoint stage merge a shard-wise
  /// ParallelFor instead of a serial loop.
  size_t MergeShardFrom(const Relation& other, size_t s);

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Set equality (insertion order and shard counts are ignored).
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Grows monotonically with every successful mutation (insert, erase,
  /// compaction); lets callers detect change.
  uint64_t version() const {
    uint64_t v = 0;
    for (const Shard& s : shards_) v += s.ops;
    return v;
  }

  /// Rows in a canonical (lexicographically sorted) order, for printing
  /// and deterministic iteration in tests. Shard-count independent.
  std::vector<Tuple> SortedTuples() const;

  /// Renders "{(a,b), (c,d)}" in canonical order.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  /// Slot content marking an empty open-addressing slot.
  static constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);
  /// Slot content marking an erased entry. Probe chains walk through it
  /// (so entries displaced past it stay reachable) and insertion reuses
  /// it; rehashing drops tombstone slots along with the dead rows.
  static constexpr uint32_t kTombstoneSlot = static_cast<uint32_t>(-2);

  /// Secondary index over one column of one shard: value → local ids of
  /// rows holding it. `rows_indexed` is how many leading rows have been
  /// folded in; the shard being append-only, catching up means scanning
  /// the suffix.
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<uint32_t>> postings;
    size_t rows_indexed = 0;
  };

  /// One hash shard: rows, probe cache, membership slots, indexes.
  struct Shard {
    Shard() = default;
    // Copies transfer rows but not the lazily built column indexes.
    Shard(const Shard& o)
        : data(o.data),
          row_hash(o.row_hash),
          slots(o.slots),
          dead(o.dead),
          size(o.size),
          num_dead(o.num_dead),
          slots_used(o.slots_used),
          ops(o.ops) {}
    Shard& operator=(const Shard& o) {
      if (this == &o) return *this;
      data = o.data;
      row_hash = o.row_hash;
      slots = o.slots;
      dead = o.dead;
      size = o.size;
      num_dead = o.num_dead;
      slots_used = o.slots_used;
      ops = o.ops;
      col_indexes.clear();
      return *this;
    }
    Shard(Shard&&) = default;
    Shard& operator=(Shard&&) = default;

    std::vector<Value> data;         // row-major tuple buffer
    std::vector<size_t> row_hash;    // per-row tuple hash (probe fast path)
    std::vector<uint32_t> slots;     // open-addressing table of local ids
    std::vector<uint8_t> dead;       // tombstone bitmap; empty until the
                                     // first Erase, then one flag per row
    size_t size = 0;                 // physical rows (dead ones included)
    size_t num_dead = 0;             // tombstoned rows
    size_t slots_used = 0;           // occupied + tombstone slots (load)
    uint64_t ops = 0;                // mutations, feeds version()
    // Lazily created per-column indexes. Mutable: bringing an index up to
    // date does not change the relation's observable value.
    mutable std::vector<std::unique_ptr<ColumnIndex>> col_indexes;
  };

  uint32_t ShardOf(size_t hash) const {
    return ShardOfHash(hash, shard_bits_);
  }

  /// Inserts a tuple with a precomputed hash into `shard` (which must be
  /// the hash's shard); returns true iff new.
  bool InsertIntoShard(Shard* shard, TupleView tuple, size_t hash);

  /// Doubles a shard's slot array and reinserts every local row id.
  static void RehashShard(Shard* shard, size_t new_capacity);

  /// Catches shard `s`'s index on `col` up to the shard's current size.
  /// Pure read when already current (the lock-free-reader guarantee).
  const ColumnIndex& ShardIndex(const Shard& shard, size_t col) const;

  size_t arity_;
  uint32_t shard_bits_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace inflog

#endif  // INFLOG_RELATION_RELATION_H_
