// Tests for the plan-optimizer pass pipeline (src/opt/): pass-selection
// parsing, golden compiled plans per pass (via RulePlan::ToString),
// answer invariance across pass selections on all four semantics,
// dead-rule elimination driven by the engine's output predicates, and
// the scan-fallback delta work estimate the cost model shares with the
// auto scheduler.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/eval/context.h"
#include "src/eval/executor.h"
#include "src/eval/idb_state.h"
#include "src/eval/plan.h"
#include "src/opt/pass_manager.h"
#include "src/opt/passes.h"
#include "src/opt/program_rewrite.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::IdbRelation;
using testing::MustProgram;
using testing::TuplesOf;

TEST(OptimizerPassesTest, ParseAndRenderRoundTrip) {
  auto all = ParseOptimizerPasses("all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, OptimizerPasses::All());
  EXPECT_TRUE(all->eliminate_dead_rules);
  EXPECT_TRUE(all->reorder_joins);
  EXPECT_TRUE(all->share_subplans);

  auto none = ParseOptimizerPasses("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, OptimizerPasses::None());
  EXPECT_FALSE(none->any());

  EXPECT_TRUE(all->magic_sets);
  EXPECT_TRUE(all->inline_rules);

  auto subset = ParseOptimizerPasses("dce,share");
  ASSERT_TRUE(subset.ok());
  EXPECT_TRUE(subset->eliminate_dead_rules);
  EXPECT_FALSE(subset->reorder_joins);
  EXPECT_TRUE(subset->share_subplans);
  EXPECT_FALSE(subset->magic_sets);
  EXPECT_FALSE(subset->inline_rules);

  auto rewrites = ParseOptimizerPasses("magic,inline");
  ASSERT_TRUE(rewrites.ok());
  EXPECT_TRUE(rewrites->magic_sets);
  EXPECT_TRUE(rewrites->inline_rules);
  EXPECT_FALSE(rewrites->eliminate_dead_rules);

  // Every selectable token is exactly one member of the render table.
  EXPECT_EQ(OptimizerPassTokens().size(), 5u);

  for (const char* text :
       {"all", "none", "dce", "reorder", "share", "dce,reorder", "dce,share",
        "reorder,share", "magic", "inline", "magic,inline", "dce,magic",
        "dce,reorder,share,magic,inline"}) {
    auto passes = ParseOptimizerPasses(text);
    ASSERT_TRUE(passes.ok()) << text;
    auto again = ParseOptimizerPasses(OptimizerPassesName(*passes));
    ASSERT_TRUE(again.ok()) << text;
    EXPECT_EQ(*again, *passes) << text;
  }

  EXPECT_FALSE(ParseOptimizerPasses("dse").ok());
  EXPECT_FALSE(ParseOptimizerPasses("").ok());
  EXPECT_FALSE(ParseOptimizerPasses("all,dce").ok());
}

/// Compiles the fixpoint stage plans for an engine-loaded (program,
/// database) under a pass selection, exposing the plans and counters.
struct CompiledProgram {
  std::unique_ptr<EvalContext> ctx;
  IdbState state;
  StagePlans plans;
  OptCounters counters;
};

CompiledProgram CompileFor(const Engine& engine, std::string_view passes,
                           std::vector<std::string> outputs = {}) {
  auto program = engine.program();
  INFLOG_CHECK(program.ok());
  EvalContextOptions opts;
  auto parsed = ParseOptimizerPasses(passes);
  INFLOG_CHECK(parsed.ok()) << parsed.status().ToString();
  opts.optimizer_passes = *parsed;
  opts.output_predicates = std::move(outputs);
  auto ctx = EvalContext::Create(**program, engine.database(), opts);
  INFLOG_CHECK(ctx.ok()) << ctx.status().ToString();
  CompiledProgram out;
  out.ctx = std::make_unique<EvalContext>(std::move(ctx).value());
  out.state = MakeEmptyIdbState(**program, out.ctx->num_shards());
  out.plans = CompileStagePlans(*out.ctx, out.state, {}, /*use_deltas=*/true,
                                &out.counters);
  return out;
}

/// An engine where the greedy planner's bound-column heuristic picks the
/// big scan first (body order breaks its tie), while row counts say the
/// two-row Sel relation should lead.
Engine SkewedJoinEngine() {
  Engine engine;
  INFLOG_CHECK(engine
                   .LoadProgramText("Q(X) :- Big(X,Y), Sel(Y,Z).\n"
                                    "Q2(X) :- Q(X), Big(X,Y), Sel(Y,Z).\n")
                   .ok());
  std::string facts;
  for (int i = 0; i < 400; ++i) {
    facts += "Big(" + std::to_string(i) + "," + std::to_string(i) + ").\n";
  }
  facts += "Sel(3,0). Sel(7,0).\n";
  INFLOG_CHECK(engine.LoadDatabaseText(facts).ok());
  return engine;
}

TEST(JoinReorderTest, GoldenPlanPutsSelectiveAtomFirst) {
  Engine engine = SkewedJoinEngine();

  const CompiledProgram greedy = CompileFor(engine, "none");
  EXPECT_EQ(greedy.counters.plans_reordered, 0u);
  ASSERT_EQ(greedy.plans.rules.size(), 2u);
  const std::string greedy_text =
      greedy.plans.rules[0].full.ToString(*engine.program().value());
  // Greedy order: the 400-row scan leads.
  EXPECT_LT(greedy_text.find("match Big"), greedy_text.find("match Sel"))
      << greedy_text;

  const CompiledProgram opt = CompileFor(engine, "reorder");
  EXPECT_GE(opt.counters.plans_reordered, 1u);
  const std::string opt_text =
      opt.plans.rules[0].full.ToString(*engine.program().value());
  // Cost-based order: the two-row relation leads, Big becomes a probe.
  EXPECT_LT(opt_text.find("match Sel"), opt_text.find("match Big"))
      << opt_text;

  // The delta pin: a delta plan's delta scan stays first whatever the
  // cost model says about the rest of the body.
  ASSERT_FALSE(opt.plans.rules[1].deltas.empty());
  const std::string delta_text =
      opt.plans.rules[1].deltas[0].plan.ToString(*engine.program().value());
  EXPECT_EQ(delta_text.find("delta-scan Q"), delta_text.find("delta-scan"))
      << delta_text;
  EXPECT_NE(delta_text.find("delta-scan Q"), std::string::npos) << delta_text;
}

TEST(SubplanShareTest, GoldenPlanScansSharedIntermediate) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgramText("A(X,Z) :- R(X,Y), S(Y,Z).\n"
                                   "B(X,W) :- R(X,Y), S(Y,Z), T(Z,W).\n")
                  .ok());
  std::string facts;
  for (int i = 0; i < 20; ++i) {
    facts += "R(" + std::to_string(i) + "," + std::to_string(i % 5) + ").\n";
  }
  for (int i = 0; i < 5; ++i) {
    facts += "S(" + std::to_string(i) + "," + std::to_string(i + 100) + ").\n";
  }
  facts += "T(100,7). T(103,9).\n";
  ASSERT_TRUE(engine.LoadDatabaseText(facts).ok());
  const Program& program = *engine.program().value();

  const CompiledProgram shared = CompileFor(engine, "share");
  EXPECT_EQ(shared.counters.shared_prefixes, 1u);
  EXPECT_EQ(shared.counters.subplans_shared, 2u);
  ASSERT_EQ(shared.plans.shared.size(), 1u);

  // The donor: the common R ⋈ S prefix with a projection of the
  // variables any member still needs.
  const SharedSubplan& donor = shared.plans.shared[0];
  const std::string donor_text = donor.plan.ToString(program);
  EXPECT_NE(donor_text.find("match R"), std::string::npos) << donor_text;
  EXPECT_NE(donor_text.find("match S"), std::string::npos) << donor_text;
  EXPECT_NE(donor_text.find("project/"), std::string::npos) << donor_text;
  EXPECT_FALSE(donor.delta_pass);
  EXPECT_EQ(donor.delta_idb, -1);

  // Both members now open with a scan of intermediate #0.
  for (size_t r = 0; r < 2; ++r) {
    const std::string text = shared.plans.rules[r].full.ToString(program);
    EXPECT_NE(text.find("shared-scan #0/"), std::string::npos) << text;
    EXPECT_EQ(text.find("match R"), std::string::npos) << text;
  }

  // Without the pass, no intermediates exist and prefixes stay inline.
  const CompiledProgram greedy = CompileFor(engine, "none");
  EXPECT_TRUE(greedy.plans.shared.empty());
  EXPECT_EQ(greedy.counters.subplans_shared, 0u);
}

TEST(DeadRulePassTest, DropsRulesUnreachableFromOutputs) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgramText("T(X,Y) :- E(X,Y).\n"
                                   "T(X,Z) :- T(X,Y), E(Y,Z).\n"
                                   "Side(X) :- T(X,X).\n"
                                   "Waste(X,Y) :- T(X,Y), E(Y,X).\n")
                  .ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(0,1). E(1,2). E(2,0).").ok());

  // No declared outputs: every rule is live, DCE is inert.
  const CompiledProgram all_live = CompileFor(engine, "dce");
  EXPECT_EQ(all_live.plans.rules.size(), 4u);
  EXPECT_EQ(all_live.counters.rules_eliminated, 0u);

  // Side needs T transitively; Waste is dead.
  const CompiledProgram pruned = CompileFor(engine, "dce", {"Side"});
  EXPECT_EQ(pruned.plans.rules.size(), 3u);
  EXPECT_EQ(pruned.counters.rules_eliminated, 1u);
  for (const CompiledRulePlans& c : pruned.plans.rules) {
    const Rule& rule = engine.program().value()->rules()[c.rule_index];
    EXPECT_NE(engine.program().value()->predicate(rule.head.predicate).name,
              "Waste");
  }

  // Disabled pass: the selection is honored even with outputs named.
  const CompiledProgram kept = CompileFor(engine, "none", {"Side"});
  EXPECT_EQ(kept.plans.rules.size(), 4u);
}

TEST(DeadRulePassTest, EngineOutputPredicatesEndToEnd) {
  const std::string program_text =
      "T(X,Y) :- E(X,Y).\n"
      "T(X,Z) :- T(X,Y), E(Y,Z).\n"
      "Side(X) :- T(X,X).\n"
      "Waste(X,Y) :- T(X,Y), E(Y,X).\n";
  const std::string fact_text = "E(0,1). E(1,2). E(2,0). E(2,3).";

  Engine baseline;
  ASSERT_TRUE(baseline.LoadProgramText(program_text).ok());
  ASSERT_TRUE(baseline.LoadDatabaseText(fact_text).ok());
  EvalOptions base_opts;
  base_opts.optimizer_passes = OptimizerPasses::None();
  auto reference =
      baseline.Evaluate(SemanticsKind::kInflationary, base_opts);
  ASSERT_TRUE(reference.ok());

  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText(program_text).ok());
  ASSERT_TRUE(engine.LoadDatabaseText(fact_text).ok());
  EvalOptions opts;
  opts.output_predicates = {"Side"};
  auto pruned = engine.Evaluate(SemanticsKind::kInflationary, opts);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->stats()->opt_rules_eliminated, 1u);

  // The queried predicate (and everything it depends on) is exact.
  const Program& program = *engine.program().value();
  for (const char* name : {"Side", "T"}) {
    EXPECT_EQ(TuplesOf(*engine.symbols(),
                       IdbRelation(program, pruned->state(), name)),
              TuplesOf(*baseline.symbols(),
                       IdbRelation(program, reference->state(), name)))
        << name;
  }

  // Unknown or EDB names fail loudly instead of silently pruning.
  EvalOptions bad_name;
  bad_name.output_predicates = {"NoSuch"};
  EXPECT_FALSE(
      engine.Evaluate(SemanticsKind::kInflationary, bad_name).ok());
  EvalOptions edb_name;
  edb_name.output_predicates = {"E"};
  EXPECT_FALSE(
      engine.Evaluate(SemanticsKind::kInflationary, edb_name).ok());
}

/// A program exercising all three passes at once: a shared join prefix,
/// a reorderable body, recursion, and negation (stratifiable, so all
/// four semantics accept it).
constexpr char kMixedProgram[] =
    "T(X,Y) :- E(X,Y).\n"
    "T(X,Z) :- T(X,Y), E(Y,Z).\n"
    "P(X,Z) :- E(X,Y), E(Y,Z), S(Z).\n"
    "R(X,Z) :- E(X,Y), E(Y,Z), T(Z,X).\n"
    "N(X) :- S(X), !T(X,X).\n";

std::string MixedFacts() {
  std::string facts;
  for (int i = 0; i < 12; ++i) {
    facts += "E(" + std::to_string(i) + "," + std::to_string((i + 1) % 12) +
             ").\n";
  }
  facts += "E(0,6). E(3,9).\nS(2). S(5). S(11).\n";
  return facts;
}

TEST(OptimizerInvarianceTest, AllFourSemanticsMatchGreedyPlans) {
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgramText(kMixedProgram).ok());
    ASSERT_TRUE(engine.LoadDatabaseText(MixedFacts()).ok());
    const Program& program = *engine.program().value();

    EvalOptions greedy_opts;
    greedy_opts.optimizer_passes = OptimizerPasses::None();
    auto greedy = engine.Evaluate(kind, greedy_opts);
    ASSERT_TRUE(greedy.ok()) << SemanticsKindName(kind);

    // No outputs are declared, so the program rewrites (magic, inline)
    // stay inert and exact state equality must hold for them too.
    for (const char* passes :
         {"all", "dce", "reorder", "share", "reorder,share", "magic",
          "inline", "magic,inline"}) {
      EvalOptions opts;
      opts.optimizer_passes = *ParseOptimizerPasses(passes);
      auto optimized = engine.Evaluate(kind, opts);
      ASSERT_TRUE(optimized.ok())
          << SemanticsKindName(kind) << " " << passes;
      EXPECT_EQ(testing::CanonState(program, greedy->state()),
                testing::CanonState(program, optimized->state()))
          << SemanticsKindName(kind) << " " << passes;
      if (kind == SemanticsKind::kStable) {
        const auto& gm = std::get<StableResult>(greedy->detail);
        const auto& om = std::get<StableResult>(optimized->detail);
        EXPECT_EQ(testing::CanonStates(program, gm.models),
                  testing::CanonStates(program, om.models))
            << passes;
      }
    }
  }
}

TEST(OptimizerInvarianceTest, StagesAndTupleStagesMatchGreedyPlans) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText(kMixedProgram).ok());
  ASSERT_TRUE(engine.LoadDatabaseText(MixedFacts()).ok());

  auto program = engine.program();
  ASSERT_TRUE(program.ok());
  InflationaryOptions greedy_opts;
  greedy_opts.context.optimizer_passes = OptimizerPasses::None();
  auto greedy = EvalInflationary(**program, engine.database(), greedy_opts);
  ASSERT_TRUE(greedy.ok());

  InflationaryOptions opt_opts;  // defaults: all passes
  auto optimized = EvalInflationary(**program, engine.database(), opt_opts);
  ASSERT_TRUE(optimized.ok());

  EXPECT_EQ(greedy->num_stages, optimized->num_stages);
  EXPECT_EQ(greedy->stage_sizes, optimized->stage_sizes);
  for (size_t i = 0; i < greedy->state.relations.size(); ++i) {
    ASSERT_EQ(greedy->state.relations[i].SortedTuples(),
              optimized->state.relations[i].SortedTuples())
        << "relation " << i;
    for (const Tuple& t : greedy->state.relations[i].SortedTuples()) {
      EXPECT_EQ(greedy->TupleStage(i, t), optimized->TupleStage(i, t))
          << "relation " << i;
    }
  }
}

// --- Program rewrites: magic sets and rule inlining. -----------------------

OptimizerPasses MagicOnly() {
  OptimizerPasses passes = OptimizerPasses::None();
  passes.magic_sets = true;
  return passes;
}

OptimizerPasses InlineOnly() {
  OptimizerPasses passes = OptimizerPasses::None();
  passes.inline_rules = true;
  return passes;
}

constexpr char kTcPointQuery[] =
    "TC(X,Y) :- E(X,Y).\n"
    "TC(X,Z) :- TC(X,Y), E(Y,Z).\n"
    "Q(Y) :- TC(c0,Y).\n";

TEST(MagicSetsTest, GoldenTransitiveClosurePointQuery) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(kTcPointQuery, symbols);

  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, {"Q"}, MagicOnly(), RewriteSemantics::kStratified);
  ASSERT_TRUE(rewrite.active);
  EXPECT_EQ(rewrite.magic_rules_generated, 1u);
  EXPECT_EQ(rewrite.rules_inlined, 0u);

  // The classic adorned program: one bound-free adornment of TC, its
  // magic seed from the query constant, and the guarded rules. The
  // recursive call site's self-demand rule magic_TC_bf(X) ←
  // magic_TC_bf(X) is elided.
  const std::string text = rewrite.program->ToString();
  EXPECT_NE(text.find("magic_TC_bf(c0)."), std::string::npos) << text;
  EXPECT_NE(text.find("TC_bf(X,Y) :- magic_TC_bf(X), E(X,Y)."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("TC_bf(X,Z) :- magic_TC_bf(X), TC_bf(X,Y), E(Y,Z)."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("Q(Y) :- TC_bf(c0,Y)."), std::string::npos) << text;
  EXPECT_EQ(rewrite.program->rules().size(), 4u) << text;
}

TEST(MagicSetsTest, WithoutDeclaredOutputsIsANoOp) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(kTcPointQuery, symbols);
  // --optimize=magic without --query: nothing to specialize for.
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, {}, MagicOnly(), RewriteSemantics::kStratified);
  EXPECT_FALSE(rewrite.active);
  EXPECT_EQ(rewrite.magic_rules_generated, 0u);
  EXPECT_EQ(rewrite.rules_inlined, 0u);
  EXPECT_EQ(rewrite.program, nullptr);
}

TEST(MagicSetsTest, AllFreeQueryIsANoOp) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(
      "TC(X,Y) :- E(X,Y).\n"
      "TC(X,Z) :- TC(X,Y), E(Y,Z).\n"
      "Q(X,Y) :- TC(X,Y).\n",
      symbols);
  // No call site ever has a bound argument, so the adorned program would
  // be the original one; the rewrite stays inert.
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, {"Q"}, MagicOnly(), RewriteSemantics::kStratified);
  EXPECT_FALSE(rewrite.active);
  EXPECT_EQ(rewrite.magic_rules_generated, 0u);
}

TEST(MagicSetsTest, NegatedIdbInTheNeededPartBailsOut) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(
      "T(X,Y) :- E(X,Y).\n"
      "T(X,Z) :- T(X,Y), E(Y,Z).\n"
      "Q(X) :- E(c0,X), !T(X,X).\n",
      symbols);
  // The needed part negates the derived T: restricting T to the demanded
  // tuples could flip !T answers, so magic must decline (the documented
  // bail-out in src/opt/magic.h).
  for (const RewriteSemantics semantics :
       {RewriteSemantics::kInflationary, RewriteSemantics::kStratified}) {
    const ProgramRewriteResult rewrite =
        RewriteProgramForOutputs(program, {"Q"}, MagicOnly(), semantics);
    EXPECT_FALSE(rewrite.active);
    EXPECT_EQ(rewrite.magic_rules_generated, 0u);
  }
}

TEST(InlineRulesTest, GoldenSingleUsePredicateIsSubstituted) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(
      "Mid(X,Y) :- E(X,Y), S(Y).\n"
      "Out(X) :- Mid(X,Y), T(Y).\n",
      symbols);
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, {"Out"}, InlineOnly(), RewriteSemantics::kStratified);
  ASSERT_TRUE(rewrite.active);
  EXPECT_EQ(rewrite.rules_inlined, 1u);
  EXPECT_EQ(rewrite.magic_rules_generated, 0u);

  const std::string text = rewrite.program->ToString();
  EXPECT_NE(text.find("Out(X) :- E(X,Y), S(Y), T(Y)."), std::string::npos)
      << text;
  EXPECT_EQ(text.find("Mid"), std::string::npos) << text;
  EXPECT_EQ(rewrite.program->rules().size(), 1u) << text;
}

TEST(InlineRulesTest, RecursiveAndMultiUsePredicatesAreKept) {
  auto symbols = std::make_shared<SymbolTable>();
  // TC is recursive, so inlining it would change the fixpoint; Twice is
  // used at two sites, so inlining would duplicate work. Both must stay.
  Program program = MustProgram(
      "TC(X,Y) :- E(X,Y).\n"
      "TC(X,Z) :- TC(X,Y), E(Y,Z).\n"
      "Twice(X) :- S(X).\n"
      "Q(X) :- TC(X,X), Twice(X).\n"
      "Q(X) :- Twice(X), E(X,X).\n",
      symbols);
  const ProgramRewriteResult rewrite = RewriteProgramForOutputs(
      program, {"Q"}, InlineOnly(), RewriteSemantics::kStratified);
  EXPECT_FALSE(rewrite.active);
  EXPECT_EQ(rewrite.rules_inlined, 0u);
}

TEST(ProgramRewriteTest, EngineEndToEndMatchesBaselineAndReportsCounters) {
  const std::string facts = "E(c0,c1). E(c1,c2). E(c2,c3). E(c7,c8).";
  for (const SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified}) {
    Engine baseline;
    ASSERT_TRUE(baseline.LoadProgramText(kTcPointQuery).ok());
    ASSERT_TRUE(baseline.LoadDatabaseText(facts).ok());
    EvalOptions base_opts;
    base_opts.optimizer_passes = OptimizerPasses::None();
    const auto reference = baseline.Evaluate(kind, base_opts);
    ASSERT_TRUE(reference.ok());

    Engine engine;
    ASSERT_TRUE(engine.LoadProgramText(kTcPointQuery).ok());
    ASSERT_TRUE(engine.LoadDatabaseText(facts).ok());
    EvalOptions opts;
    opts.optimizer_passes = *ParseOptimizerPasses("magic,inline");
    opts.output_predicates = {"Q"};
    const auto rewritten = engine.Evaluate(kind, opts);
    ASSERT_TRUE(rewritten.ok()) << SemanticsKindName(kind);

    EXPECT_EQ(rewritten->stats()->opt_magic_rules_generated, 1u);
    const Program& program = *engine.program().value();
    EXPECT_EQ(TuplesOf(*engine.symbols(),
                       IdbRelation(program, rewritten->state(), "Q")),
              TuplesOf(*baseline.symbols(),
                       IdbRelation(program, reference->state(), "Q")))
        << SemanticsKindName(kind);
  }
}

TEST(EstimateDeltaWorkTest, ScanFallbackUsesRelationCardinality) {
  // The delta plan joins the delta against a keyless scan of E: no index
  // probe is keyed by delta-bound variables, so sample_cost stays empty
  // and uniform_cost must carry E's full cardinality instead of a flat 1.
  auto symbols = std::make_shared<SymbolTable>();
  Program program = MustProgram(
      "W(X,Y) :- D(X), E(Z,Y).\n"
      "D(X) :- Seed(X).\n"
      "D(Y) :- D(X), Next(X,Y).\n",
      symbols);
  Database db(symbols);
  for (int i = 0; i < 37; ++i) {
    INFLOG_CHECK(
        db.AddFactNamed("E", {std::to_string(i), std::to_string(i + 1)})
            .ok());
  }
  INFLOG_CHECK(db.AddFactNamed("Seed", {"0"}).ok());
  INFLOG_CHECK(db.AddFactNamed("Next", {"0", "1"}).ok());
  auto ctx = EvalContext::Create(program, db);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  const std::vector<bool> all_dynamic(program.idb_predicates().size(), true);
  const Rule& rule = program.rules()[0];
  const auto candidates = DeltaCandidates(program, rule, all_dynamic);
  ASSERT_EQ(candidates.size(), 1u);
  RulePlan plan = PlanRule(program, 0, all_dynamic, candidates[0]);

  IdbState state = MakeEmptyIdbState(program);
  const int d_idb =
      program.predicate(*program.FindPredicate("D")).idb_index;
  Relation& d = state.relations[d_idb];
  d.Insert(Tuple{symbols->Intern("0")});
  d.Insert(Tuple{symbols->Intern("1")});

  const std::vector<ShardRange> ranges = {{0, d.size()}};
  const DeltaWorkEstimate est =
      EstimateDeltaWork(*ctx, plan, state, ranges, 16);
  EXPECT_TRUE(est.sample_cost.empty());
  EXPECT_EQ(est.uniform_cost, 1u + 37u);
}

}  // namespace
}  // namespace inflog
