// Database snapshot/merge coverage under mixed-arity predicates.
//
// The evaluators snapshot databases by value (Database's copy semantics:
// relation rows transfer, lazily built column indexes do not) and merge
// fact sets additively (ParseDatabaseInto / AddFact on a live database,
// and Database::MergeFrom for whole-database unions). These paths were
// previously exercised only indirectly through the semantics tests; this
// file pins them down directly with relations of arity 0 through 3.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/relation/database.h"
#include "src/relation/relation.h"

namespace inflog {
namespace {

/// A database holding one relation of each arity 0..3 over a few symbols.
Database MixedArityDb() {
  Database db;
  INFLOG_CHECK(db.AddFact("Flag", Tuple{}).ok());  // arity 0
  INFLOG_CHECK(db.AddFactNamed("V", {"a"}).ok());
  INFLOG_CHECK(db.AddFactNamed("V", {"b"}).ok());
  INFLOG_CHECK(db.AddFactNamed("E", {"a", "b"}).ok());
  INFLOG_CHECK(db.AddFactNamed("E", {"b", "c"}).ok());
  INFLOG_CHECK(db.AddFactNamed("T", {"a", "b", "c"}).ok());
  return db;
}

TEST(DatabaseSnapshotTest, CopyIsDeepAcrossMixedArities) {
  Database db = MixedArityDb();
  Database snapshot = db;  // the evaluators' snapshot path

  // The snapshot sees the same relations and universe...
  for (const char* name : {"Flag", "V", "E", "T"}) {
    auto original = db.GetRelation(name);
    auto copied = snapshot.GetRelation(name);
    ASSERT_TRUE(original.ok() && copied.ok()) << name;
    EXPECT_EQ(**original, **copied) << name;
  }
  EXPECT_EQ(snapshot.universe(), db.universe());
  EXPECT_EQ(snapshot.ToString(), db.ToString());

  // ...but growing one side never leaks into the other.
  ASSERT_TRUE(snapshot.AddFactNamed("E", {"c", "d"}).ok());
  ASSERT_TRUE(db.AddFactNamed("V", {"z"}).ok());
  EXPECT_EQ((*snapshot.GetRelation("E"))->size(), 3u);
  EXPECT_EQ((*db.GetRelation("E"))->size(), 2u);
  EXPECT_EQ((*snapshot.GetRelation("V"))->size(), 2u);
  EXPECT_EQ((*db.GetRelation("V"))->size(), 3u);
  const Value d = db.symbols().Find("d");
  ASSERT_NE(d, kNoValue);  // copies share the symbol table by design
  EXPECT_TRUE(snapshot.InUniverse(d));
  EXPECT_FALSE(db.InUniverse(d));
}

TEST(DatabaseSnapshotTest, CopyAssignReplacesContents) {
  Database db = MixedArityDb();
  Database other;
  ASSERT_TRUE(other.AddFactNamed("X", {"q"}).ok());
  other = db;
  EXPECT_FALSE(other.HasRelation("X"));
  EXPECT_TRUE(other.HasRelation("T"));
  EXPECT_EQ(other.RelationNames(), db.RelationNames());
}

TEST(DatabaseMergeTest, SameSymbolTableUnionsFactsAndUniverse) {
  auto symbols = std::make_shared<SymbolTable>();
  Database a(symbols), b(symbols);
  ASSERT_TRUE(a.AddFactNamed("E", {"x", "y"}).ok());
  ASSERT_TRUE(a.AddFactNamed("V", {"x"}).ok());
  ASSERT_TRUE(b.AddFactNamed("E", {"x", "y"}).ok());  // duplicate fact
  ASSERT_TRUE(b.AddFactNamed("E", {"y", "z"}).ok());
  ASSERT_TRUE(b.AddFact("Flag", Tuple{}).ok());

  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ((*a.GetRelation("E"))->size(), 2u);
  EXPECT_EQ((*a.GetRelation("V"))->size(), 1u);
  EXPECT_EQ((*a.GetRelation("Flag"))->size(), 1u);
  EXPECT_TRUE(a.InUniverse(symbols->Find("z")));
  // b is untouched.
  EXPECT_FALSE(b.HasRelation("V"));
}

TEST(DatabaseMergeTest, CrossSymbolTableReinternsByName) {
  Database a, b;
  ASSERT_TRUE(a.AddFactNamed("E", {"x", "y"}).ok());
  // b interns in a different order, so the raw Value ids disagree.
  ASSERT_TRUE(b.AddFactNamed("V", {"q"}).ok());
  ASSERT_TRUE(b.AddFactNamed("E", {"y", "z"}).ok());

  ASSERT_TRUE(a.MergeFrom(b).ok());
  const Relation& e = **a.GetRelation("E");
  EXPECT_EQ(e.size(), 2u);
  const Value y = a.symbols().Find("y");
  const Value z = a.symbols().Find("z");
  ASSERT_NE(y, kNoValue);
  ASSERT_NE(z, kNoValue);
  EXPECT_TRUE(e.Contains(Tuple{y, z}));
  EXPECT_TRUE(a.InUniverse(a.symbols().Find("q")));
}

TEST(DatabaseMergeTest, ArityConflictIsAnError) {
  Database a, b;
  ASSERT_TRUE(a.AddFactNamed("E", {"x", "y"}).ok());
  ASSERT_TRUE(b.AddFactNamed("E", {"x"}).ok());  // arity 1 vs 2
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(DatabaseMergeTest, SelfMergeAndIdempotence) {
  Database db = MixedArityDb();
  const std::string before = db.ToString();
  ASSERT_TRUE(db.MergeFrom(db).ok());
  EXPECT_EQ(db.ToString(), before);
  Database copy = db;
  ASSERT_TRUE(db.MergeFrom(copy).ok());  // merging a snapshot adds nothing
  EXPECT_EQ(db.ToString(), before);
}

TEST(DatabaseMergeTest, SnapshotThenDivergeThenMergeBack) {
  // The full snapshot/merge round trip the evaluator layers rely on:
  // snapshot, grow both sides independently, merge one into the other.
  Database base = MixedArityDb();
  Database branch = base;
  ASSERT_TRUE(branch.AddFactNamed("E", {"c", "d"}).ok());
  ASSERT_TRUE(branch.AddFactNamed("W", {"c", "d", "a"}).ok());
  ASSERT_TRUE(base.AddFactNamed("E", {"b", "a"}).ok());

  ASSERT_TRUE(base.MergeFrom(branch).ok());
  EXPECT_EQ((*base.GetRelation("E"))->size(), 4u);  // union of both growths
  EXPECT_TRUE(base.HasRelation("W"));
  EXPECT_EQ((*base.GetRelation("T"))->size(), 1u);
  EXPECT_TRUE(base.InUniverse(base.symbols().Find("d")));
}

}  // namespace
}  // namespace inflog
