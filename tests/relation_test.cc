// Unit tests for src/relation: symbol table, tuples, relations, built-in
// column indexes, databases.

#include <gtest/gtest.h>

#include "src/relation/database.h"
#include "src/relation/relation.h"
#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  const Value a = t.Intern("alpha");
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_EQ(t.Name(a), "alpha");
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, FindMissing) {
  SymbolTable t;
  EXPECT_EQ(t.Find("nope"), kNoValue);
  t.Intern("yes");
  EXPECT_NE(t.Find("yes"), kNoValue);
}

TEST(SymbolTableTest, InternIntUsesDecimal) {
  SymbolTable t;
  const Value v = t.InternInt(42);
  EXPECT_EQ(t.Name(v), "42");
  EXPECT_EQ(t.Intern("42"), v);
}

TEST(TupleTest, HashIsOrderSensitive) {
  Tuple a{1, 2}, b{2, 1};
  EXPECT_NE(HashTuple(a), HashTuple(b));
  EXPECT_EQ(HashTuple(a), HashTuple(Tuple{1, 2}));
}

TEST(TupleTest, EqComparesContents) {
  EXPECT_TRUE(TupleEq()(Tuple{1, 2}, Tuple{1, 2}));
  EXPECT_FALSE(TupleEq()(Tuple{1, 2}, Tuple{1, 3}));
  EXPECT_FALSE(TupleEq()(Tuple{1}, Tuple{1, 1}));
}

TEST(RelationTest, InsertAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Tuple{1, 2}));
  EXPECT_FALSE(r.Insert(Tuple{1, 2}));  // duplicate
  EXPECT_TRUE(r.Insert(Tuple{2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple{1, 2}));
  EXPECT_FALSE(r.Contains(Tuple{3, 3}));
}

TEST(RelationTest, FindReturnsInsertionOrderRow) {
  Relation r(1);
  r.Insert(Tuple{5});
  r.Insert(Tuple{7});
  r.Insert(Tuple{6});
  EXPECT_EQ(r.Find(Tuple{5}), 0);
  EXPECT_EQ(r.Find(Tuple{6}), 2);
  EXPECT_EQ(r.Find(Tuple{9}), -1);
}

TEST(RelationTest, ArityZero) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains(Tuple{}));
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_TRUE(r.Contains(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SetEqualityIgnoresOrder) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  a.Insert(Tuple{2});
  b.Insert(Tuple{2});
  b.Insert(Tuple{1});
  EXPECT_EQ(a, b);
  b.Insert(Tuple{3});
  EXPECT_NE(a, b);
}

TEST(RelationTest, SubsetChecks) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  b.Insert(Tuple{1});
  b.Insert(Tuple{2});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(RelationTest, InsertAllCountsNew) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  b.Insert(Tuple{1});
  b.Insert(Tuple{2});
  b.Insert(Tuple{3});
  EXPECT_EQ(a.InsertAll(b), 2u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(RelationTest, VersionBumpsOnlyOnNewTuples) {
  Relation r(1);
  const uint64_t v0 = r.version();
  r.Insert(Tuple{1});
  const uint64_t v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert(Tuple{1});
  EXPECT_EQ(r.version(), v1);
}

TEST(RelationTest, SortedTuplesCanonical) {
  Relation r(2);
  r.Insert(Tuple{3, 1});
  r.Insert(Tuple{1, 2});
  r.Insert(Tuple{1, 1});
  auto rows = r.SortedTuples();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Tuple{1, 1}));
  EXPECT_EQ(rows[1], (Tuple{1, 2}));
  EXPECT_EQ(rows[2], (Tuple{3, 1}));
}

TEST(RelationTest, ManyTuplesStressHashing) {
  Relation r(2);
  for (Value i = 0; i < 50; ++i) {
    for (Value j = 0; j < 50; ++j) {
      EXPECT_TRUE(r.Insert(Tuple{i, j}));
    }
  }
  EXPECT_EQ(r.size(), 2500u);
  for (Value i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.Contains(Tuple{i, i}));
  }
  EXPECT_FALSE(r.Contains(Tuple{50, 0}));
}

TEST(ColumnIndexTest, EqualRowsByColumn) {
  Relation r(2);
  r.Insert(Tuple{1, 10});
  r.Insert(Tuple{1, 11});
  r.Insert(Tuple{2, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 2u);
  EXPECT_EQ(r.EqualRows(0, 2).size(), 1u);
  EXPECT_EQ(r.EqualRows(0, 3).size(), 0u);
  EXPECT_EQ(r.EqualRows(1, 10).size(), 2u);
  EXPECT_EQ(r.EqualRows(1, 11).size(), 1u);
}

TEST(ColumnIndexTest, RowIdsAreInsertionOrder) {
  Relation r(2);
  r.Insert(Tuple{7, 1});
  r.Insert(Tuple{8, 1});
  r.Insert(Tuple{7, 2});
  auto rows = r.EqualRows(0, 7);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
}

TEST(ColumnIndexTest, ExtendsAfterGrowth) {
  Relation r(2);
  r.Insert(Tuple{1, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 1u);  // builds the index
  r.Insert(Tuple{1, 11});
  r.Insert(Tuple{2, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 2u);  // catches up incrementally
  EXPECT_EQ(r.EqualRows(0, 2).size(), 1u);
}

TEST(ColumnIndexTest, CopyDropsIndexButKeepsRows) {
  Relation r(1);
  r.Insert(Tuple{4});
  EXPECT_EQ(r.EqualRows(0, 4).size(), 1u);
  Relation copy = r;
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_TRUE(copy.Contains(Tuple{4}));
  EXPECT_EQ(copy.EqualRows(0, 4).size(), 1u);  // rebuilt lazily
  copy.Insert(Tuple{5});
  EXPECT_EQ(copy.EqualRows(0, 5).size(), 1u);
  EXPECT_EQ(r.size(), 1u);  // original untouched
}

TEST(ColumnIndexTest, AgreesWithScanOnDenseData) {
  Relation r(2);
  for (Value i = 0; i < 40; ++i) {
    for (Value j = 0; j < 10; ++j) r.Insert(Tuple{i % 7, i * 10 + j});
  }
  for (Value v = 0; v < 8; ++v) {
    size_t scan = 0;
    for (size_t row = 0; row < r.size(); ++row) {
      if (r.Row(row)[0] == v) ++scan;
    }
    EXPECT_EQ(r.EqualRows(0, v).size(), scan) << "column value " << v;
  }
}

// --- Sharded relations -----------------------------------------------------

/// Oracle: count of rows with column `col` equal to `v`, by full scan
/// through the shard views.
size_t ScanCount(const Relation& r, size_t col, Value v) {
  size_t count = 0;
  for (size_t s = 0; s < r.num_shards(); ++s) {
    const Relation::ShardView view = r.shard(s);
    for (size_t row = 0; row < view.size(); ++row) {
      if (view.Row(row)[col] == v) ++count;
    }
  }
  return count;
}

TEST(ShardedRelationTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Relation(2, 0).num_shards(), 1u);
  EXPECT_EQ(Relation(2, 1).num_shards(), 1u);
  EXPECT_EQ(Relation(2, 3).num_shards(), 4u);
  EXPECT_EQ(Relation(2, 8).num_shards(), 8u);
}

TEST(ShardedRelationTest, SetBehaviorIsShardCountInvariant) {
  Relation one(2, 1), four(2, 4), eight(2, 8);
  for (Value i = 0; i < 40; ++i) {
    const Tuple t{i % 11, i % 7};
    const bool fresh = one.Insert(t);
    EXPECT_EQ(four.Insert(t), fresh);
    EXPECT_EQ(eight.Insert(t), fresh);
  }
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, eight);
  EXPECT_EQ(one.SortedTuples(), four.SortedTuples());
  EXPECT_EQ(one.SortedTuples(), eight.SortedTuples());
  EXPECT_TRUE(four.Contains(Tuple{3, 3}));
  EXPECT_FALSE(four.Contains(Tuple{12, 0}));
}

TEST(ShardedRelationTest, ShardViewsPartitionRowsByHash) {
  Relation r(2, 8);
  for (Value i = 0; i < 100; ++i) r.Insert(Tuple{i, i + 1});
  size_t total = 0;
  for (size_t s = 0; s < r.num_shards(); ++s) {
    const Relation::ShardView view = r.shard(s);
    EXPECT_EQ(view.size(), r.ShardSize(s));
    total += view.size();
    for (size_t row = 0; row < view.size(); ++row) {
      // Every row sits in the shard its tuple hash names.
      EXPECT_EQ(ShardOfHash(HashTuple(view.Row(row)), ShardBitsFor(8)), s);
    }
  }
  EXPECT_EQ(total, r.size());
  // With 100 rows over 8 shards the hash should populate several shards.
  size_t populated = 0;
  for (size_t s = 0; s < r.num_shards(); ++s) {
    if (r.ShardSize(s) > 0) ++populated;
  }
  EXPECT_GT(populated, 4u);
}

TEST(ShardedRelationTest, FindRefRoundTripsAndFindLinearizes) {
  Relation r(1, 4);
  for (Value i = 0; i < 30; ++i) r.Insert(Tuple{i});
  for (Value i = 0; i < 30; ++i) {
    Relation::RowRef ref;
    ASSERT_TRUE(r.FindRef(Tuple{i}, &ref));
    EXPECT_EQ(r.RowAt(ref)[0], i);
    const int64_t global = r.Find(Tuple{i});
    ASSERT_GE(global, 0);
    EXPECT_EQ(r.Row(static_cast<size_t>(global))[0], i);
  }
  Relation::RowRef ref;
  EXPECT_FALSE(r.FindRef(Tuple{99}, &ref));
  EXPECT_EQ(r.Find(Tuple{99}), -1);
}

TEST(ShardedRelationTest, EqualRowsPerShardMatchesScan) {
  Relation r(2, 8);
  for (Value i = 0; i < 60; ++i) r.Insert(Tuple{i % 5, i});
  std::vector<std::span<const uint32_t>> spans(r.num_shards());
  for (Value v = 0; v < 6; ++v) {
    const size_t total = r.EqualRowsPerShard(0, v, spans.data());
    EXPECT_EQ(total, ScanCount(r, 0, v)) << "value " << v;
    size_t from_spans = 0;
    for (size_t s = 0; s < r.num_shards(); ++s) {
      const Relation::ShardView view = r.shard(s);
      uint32_t prev = 0;
      for (size_t k = 0; k < spans[s].size(); ++k) {
        const uint32_t row = spans[s][k];
        if (k > 0) {
          EXPECT_GT(row, prev);  // ascending local order
        }
        prev = row;
        EXPECT_EQ(view.Row(row)[0], v);
        ++from_spans;
      }
    }
    EXPECT_EQ(from_spans, total);
  }
}

TEST(ShardedRelationTest, MergeShardFromEqualsInsertAll) {
  Relation src(2, 4);
  for (Value i = 0; i < 50; ++i) src.Insert(Tuple{i % 13, i % 9});
  Relation via_insert_all(2, 4), via_shards(2, 4);
  // Pre-populate both destinations identically so the merge sees dups.
  for (Value i = 0; i < 10; ++i) {
    via_insert_all.Insert(Tuple{i, i});
    via_shards.Insert(Tuple{i, i});
  }
  const size_t added_all = via_insert_all.InsertAll(src);
  size_t added_shards = 0;
  for (size_t s = 0; s < 4; ++s) {
    added_shards += via_shards.MergeShardFrom(src, s);
  }
  EXPECT_EQ(added_all, added_shards);
  EXPECT_EQ(via_insert_all, via_shards);
  // Shard-wise merge preserves the per-shard layout exactly.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(via_insert_all.ShardSize(s), via_shards.ShardSize(s));
  }
}

TEST(ShardedRelationTest, InsertAllAcrossShardCounts) {
  Relation src(2, 8);
  for (Value i = 0; i < 40; ++i) src.Insert(Tuple{i, i % 3});
  Relation dst(2, 1);
  EXPECT_EQ(dst.InsertAll(src), 40u);
  EXPECT_EQ(dst, src);
  Relation back(2, 2);
  EXPECT_EQ(back.InsertAll(dst), 40u);
  EXPECT_EQ(back, src);
}

TEST(ShardedRelationTest, CopyDropsIndexesKeepsShards) {
  Relation r(2, 4);
  for (Value i = 0; i < 20; ++i) r.Insert(Tuple{i % 4, i});
  r.EnsureIndexed(0);
  Relation copy = r;
  EXPECT_EQ(copy.num_shards(), 4u);
  EXPECT_EQ(copy, r);
  std::vector<std::span<const uint32_t>> spans(copy.num_shards());
  EXPECT_EQ(copy.EqualRowsPerShard(0, 2, spans.data()),
            ScanCount(copy, 0, 2));  // rebuilt lazily
  copy.Insert(Tuple{100, 100});
  EXPECT_EQ(r.size(), 20u);  // original untouched
}

// --- InsertAll under rehash + incremental index extension ------------------
// (regression coverage for the bulk-insert edge cases: duplicate-heavy
// batches that force open-addressing rehashes and index catch-up in the
// same call, and the formerly undefined self-insert.)

TEST(RelationInsertAllStressTest, SelfInsertIsNoop) {
  Relation r(2, 2);
  for (Value i = 0; i < 100; ++i) r.Insert(Tuple{i, i});
  // Inserting a relation into itself used to iterate rows while growing
  // the underlying buffers (reallocation UB); it is now a guarded no-op.
  EXPECT_EQ(r.InsertAll(r), 0u);
  EXPECT_EQ(r.size(), 100u);
}

TEST(RelationInsertAllStressTest, DuplicateHeavyBulkInsertWithRehash) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    Relation r(2, shards);
    // Seed a few rows and build column 0's index so the bulk insert must
    // extend it incrementally afterwards.
    for (Value i = 0; i < 10; ++i) r.Insert(Tuple{i % 3, i});
    r.EnsureIndexed(0);

    // A duplicate-heavy batch (every tuple appears 4 times) far larger
    // than the seeded capacity: inserting it forces several slot-array
    // rehashes while the column index lags behind.
    Relation batch(2, shards == 1 ? 4 : 1);  // mismatched shard layouts too
    size_t distinct_new = 0;
    for (Value round = 0; round < 4; ++round) {
      for (Value i = 0; i < 600; ++i) {
        if (batch.Insert(Tuple{i % 3, i}) && i >= 10) ++distinct_new;
      }
    }
    const size_t added = r.InsertAll(batch);
    EXPECT_EQ(added, distinct_new) << "shards=" << shards;
    EXPECT_EQ(r.size(), 600u) << "shards=" << shards;

    // Membership, postings and canonical order must all agree with a
    // fresh scan after the rehash + index catch-up.
    std::vector<std::span<const uint32_t>> spans(r.num_shards());
    for (Value v = 0; v < 4; ++v) {
      EXPECT_EQ(r.EqualRowsPerShard(0, v, spans.data()), ScanCount(r, 0, v))
          << "shards=" << shards << " value " << v;
    }
    for (Value i = 0; i < 600; ++i) {
      EXPECT_TRUE(r.Contains(Tuple{i % 3, i})) << "shards=" << shards;
    }
    // Re-inserting the whole batch is pure duplicates.
    EXPECT_EQ(r.InsertAll(batch), 0u) << "shards=" << shards;
  }
}

TEST(RelationInsertAllStressTest, InterleavedGrowthKeepsIndexCurrent) {
  // Alternate index reads and bulk inserts so every EqualRowsPerShard
  // call extends the postings by exactly the suffix appended since the
  // previous call — across rehashes.
  Relation r(1, 2);
  std::vector<std::span<const uint32_t>> spans(r.num_shards());
  for (Value round = 0; round < 6; ++round) {
    Relation batch(1, 2);
    for (Value i = 0; i < 64; ++i) {
      batch.Insert(Tuple{round * 64 + i});
      batch.Insert(Tuple{round * 64 + i});  // in-batch duplicate
    }
    EXPECT_EQ(r.InsertAll(batch), 64u);
    for (Value probe = 0; probe <= round; ++probe) {
      EXPECT_EQ(r.EqualRowsPerShard(0, probe * 64, spans.data()), 1u);
    }
  }
  EXPECT_EQ(r.size(), 6u * 64u);
}

// --- Erase / tombstones ----------------------------------------------------
// (the deletion path the incremental maintainer relies on: rows die in
// place, physical ids never shift, CompactDead reclaims between runs.)

TEST(RelationEraseTest, EraseTombstonesInPlace) {
  Relation r(2);
  r.Insert(Tuple{1, 2});
  r.Insert(Tuple{3, 4});
  const uint64_t v_before = r.version();

  EXPECT_TRUE(r.Erase(Tuple{1, 2}));
  EXPECT_FALSE(r.Contains(Tuple{1, 2}));
  EXPECT_TRUE(r.Contains(Tuple{3, 4}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.ShardSize(0), 2u);  // the physical row stays put
  EXPECT_EQ(r.dead_rows(), 1u);
  EXPECT_GT(r.version(), v_before);

  // The shard view still exposes the dead row; IsLive marks it.
  const Relation::ShardView view = r.shard(0);
  ASSERT_EQ(view.size(), 2u);
  size_t live = 0;
  for (size_t row = 0; row < view.size(); ++row) {
    if (view.IsLive(row)) ++live;
  }
  EXPECT_EQ(live, 1u);

  // Erasing an absent (or already dead) tuple is a no-op.
  const uint64_t v_after = r.version();
  EXPECT_FALSE(r.Erase(Tuple{9, 9}));
  EXPECT_FALSE(r.Erase(Tuple{1, 2}));
  EXPECT_EQ(r.version(), v_after);
}

TEST(RelationEraseTest, ReinsertAfterEraseAppendsFreshRow) {
  Relation r(1);
  r.Insert(Tuple{5});
  EXPECT_TRUE(r.Erase(Tuple{5}));
  EXPECT_TRUE(r.Insert(Tuple{5}));  // was dead, so this is new again
  EXPECT_TRUE(r.Contains(Tuple{5}));
  EXPECT_EQ(r.size(), 1u);
  // The tombstoned row keeps its slot; the re-insert appends.
  EXPECT_EQ(r.ShardSize(0), 2u);
  EXPECT_EQ(r.dead_rows(), 1u);
  EXPECT_FALSE(r.Insert(Tuple{5}));  // present now: duplicate
}

TEST(RelationEraseTest, FindRefSkipsDeadAndRowLinearizesLive) {
  Relation r(1);
  for (Value i = 0; i < 5; ++i) r.Insert(Tuple{i});
  ASSERT_TRUE(r.Erase(Tuple{2}));

  Relation::RowRef ref;
  EXPECT_FALSE(r.FindRef(Tuple{2}, &ref));
  EXPECT_EQ(r.Find(Tuple{2}), -1);

  // Row(i)/Find(i) linearize the surviving rows only.
  ASSERT_EQ(r.size(), 4u);
  const Value expect[] = {0, 1, 3, 4};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.Row(i)[0], expect[i]) << "live row " << i;
    EXPECT_EQ(r.Find(Tuple{expect[i]}), static_cast<int64_t>(i));
  }
}

TEST(RelationEraseTest, PostingsDropErasedRows) {
  Relation r(2);
  r.Insert(Tuple{1, 10});
  r.Insert(Tuple{1, 11});
  r.Insert(Tuple{2, 10});
  // Built index: Erase must remove the row's ids eagerly.
  EXPECT_EQ(r.EqualRows(0, 1).size(), 2u);
  ASSERT_TRUE(r.Erase(Tuple{1, 10}));
  EXPECT_EQ(r.EqualRows(0, 1).size(), 1u);
  EXPECT_EQ(r.EqualRows(1, 10).size(), 1u);

  // Unbuilt index: a column first probed after the erase must skip the
  // dead row while catching up.
  Relation fresh(2);
  fresh.Insert(Tuple{1, 10});
  fresh.Insert(Tuple{1, 11});
  ASSERT_TRUE(fresh.Erase(Tuple{1, 10}));
  EXPECT_EQ(fresh.EqualRows(1, 10).size(), 0u);
  EXPECT_EQ(fresh.EqualRows(1, 11).size(), 1u);
}

TEST(RelationEraseTest, SetOperationsIgnoreTombstones) {
  Relation a(1), b(1);
  for (Value i = 0; i < 10; ++i) a.Insert(Tuple{i});
  for (Value i = 0; i < 5; ++i) b.Insert(Tuple{i});
  for (Value i = 5; i < 10; ++i) ASSERT_TRUE(a.Erase(Tuple{i}));

  // Equality, subset, SortedTuples and InsertAll all see only live rows.
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_EQ(a.SortedTuples(), b.SortedTuples());
  Relation dst(1);
  EXPECT_EQ(dst.InsertAll(a), 5u);
  EXPECT_EQ(dst, b);
  Relation merged(1);
  EXPECT_EQ(merged.MergeShardFrom(a, 0), 5u);
  EXPECT_EQ(merged, b);
}

TEST(RelationEraseTest, CompactDeadReclaimsRows) {
  Relation r(1, 4);
  for (Value i = 0; i < 40; ++i) r.Insert(Tuple{i});
  for (Value i = 0; i < 40; i += 2) ASSERT_TRUE(r.Erase(Tuple{i}));
  EXPECT_EQ(r.size(), 20u);
  EXPECT_EQ(r.dead_rows(), 20u);

  r.CompactDead();
  EXPECT_EQ(r.size(), 20u);
  EXPECT_EQ(r.dead_rows(), 0u);
  size_t physical = 0;
  for (size_t s = 0; s < r.num_shards(); ++s) physical += r.ShardSize(s);
  EXPECT_EQ(physical, 20u);
  for (Value i = 0; i < 40; ++i) {
    EXPECT_EQ(r.Contains(Tuple{i}), i % 2 == 1) << "value " << i;
  }
  // Postings rebuild against the compacted layout.
  std::vector<std::span<const uint32_t>> spans(r.num_shards());
  EXPECT_EQ(r.EqualRowsPerShard(0, 1, spans.data()), 1u);
  EXPECT_EQ(r.EqualRowsPerShard(0, 2, spans.data()), 0u);
}

TEST(RelationEraseTest, ShardedEraseStressAgainstScan) {
  Relation r(2, 8);
  for (Value i = 0; i < 200; ++i) r.Insert(Tuple{i % 5, i});
  for (Value i = 0; i < 200; i += 3) ASSERT_TRUE(r.Erase(Tuple{i % 5, i}));

  // Postings must match a live-row scan in every shard.
  std::vector<std::span<const uint32_t>> spans(r.num_shards());
  for (Value v = 0; v < 5; ++v) {
    size_t live_scan = 0;
    for (size_t s = 0; s < r.num_shards(); ++s) {
      const Relation::ShardView view = r.shard(s);
      for (size_t row = 0; row < view.size(); ++row) {
        if (view.IsLive(row) && view.Row(row)[0] == v) ++live_scan;
      }
    }
    EXPECT_EQ(r.EqualRowsPerShard(0, v, spans.data()), live_scan)
        << "value " << v;
  }
  // Membership and re-insertion agree with the erase pattern, across the
  // probe-chain tombstones the erases left behind.
  for (Value i = 0; i < 200; ++i) {
    EXPECT_EQ(r.Contains(Tuple{i % 5, i}), i % 3 != 0) << "row " << i;
  }
  size_t reinserted = 0;
  for (Value i = 0; i < 200; i += 3) {
    if (r.Insert(Tuple{i % 5, i})) ++reinserted;
  }
  EXPECT_EQ(reinserted, 67u);  // ceil(200 / 3)
  EXPECT_EQ(r.size(), 200u);
}

TEST(DatabaseTest, AddFactDeclaresAndFillsUniverse) {
  Database db;
  const Value a = db.symbols().Intern("a");
  const Value b = db.symbols().Intern("b");
  ASSERT_TRUE(db.AddFact("E", Tuple{a, b}).ok());
  EXPECT_TRUE(db.HasRelation("E"));
  EXPECT_TRUE(db.InUniverse(a));
  EXPECT_TRUE(db.InUniverse(b));
  EXPECT_EQ(db.universe().size(), 2u);
}

TEST(DatabaseTest, ArityMismatchRejected) {
  Database db;
  const Value a = db.symbols().Intern("a");
  ASSERT_TRUE(db.AddFact("E", Tuple{a, a}).ok());
  EXPECT_FALSE(db.AddFact("E", Tuple{a}).ok());
  EXPECT_FALSE(db.DeclareRelation("E", 3).ok());
  EXPECT_TRUE(db.DeclareRelation("E", 2).ok());  // same arity: no-op
}

TEST(DatabaseTest, GetRelationMissing) {
  Database db;
  EXPECT_FALSE(db.GetRelation("nope").ok());
  EXPECT_EQ(db.GetRelation("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, UniverseDeclarationWithoutFacts) {
  Database db;
  db.AddUniverseSymbol("lonely");
  EXPECT_EQ(db.universe().size(), 1u);
  db.AddUniverseSymbol("lonely");
  EXPECT_EQ(db.universe().size(), 1u);  // idempotent
}

TEST(DatabaseTest, SharedSymbolTable) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db(symbols);
  const Value x = symbols->Intern("x");
  ASSERT_TRUE(db.AddFact("V", Tuple{x}).ok());
  EXPECT_EQ(db.symbols().Find("x"), x);
}

}  // namespace
}  // namespace inflog
