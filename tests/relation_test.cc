// Unit tests for src/relation: symbol table, tuples, relations, built-in
// column indexes, databases.

#include <gtest/gtest.h>

#include "src/relation/database.h"
#include "src/relation/relation.h"
#include "src/relation/tuple.h"
#include "src/relation/value.h"

namespace inflog {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  const Value a = t.Intern("alpha");
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_EQ(t.Name(a), "alpha");
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, FindMissing) {
  SymbolTable t;
  EXPECT_EQ(t.Find("nope"), kNoValue);
  t.Intern("yes");
  EXPECT_NE(t.Find("yes"), kNoValue);
}

TEST(SymbolTableTest, InternIntUsesDecimal) {
  SymbolTable t;
  const Value v = t.InternInt(42);
  EXPECT_EQ(t.Name(v), "42");
  EXPECT_EQ(t.Intern("42"), v);
}

TEST(TupleTest, HashIsOrderSensitive) {
  Tuple a{1, 2}, b{2, 1};
  EXPECT_NE(HashTuple(a), HashTuple(b));
  EXPECT_EQ(HashTuple(a), HashTuple(Tuple{1, 2}));
}

TEST(TupleTest, EqComparesContents) {
  EXPECT_TRUE(TupleEq()(Tuple{1, 2}, Tuple{1, 2}));
  EXPECT_FALSE(TupleEq()(Tuple{1, 2}, Tuple{1, 3}));
  EXPECT_FALSE(TupleEq()(Tuple{1}, Tuple{1, 1}));
}

TEST(RelationTest, InsertAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Tuple{1, 2}));
  EXPECT_FALSE(r.Insert(Tuple{1, 2}));  // duplicate
  EXPECT_TRUE(r.Insert(Tuple{2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple{1, 2}));
  EXPECT_FALSE(r.Contains(Tuple{3, 3}));
}

TEST(RelationTest, FindReturnsInsertionOrderRow) {
  Relation r(1);
  r.Insert(Tuple{5});
  r.Insert(Tuple{7});
  r.Insert(Tuple{6});
  EXPECT_EQ(r.Find(Tuple{5}), 0);
  EXPECT_EQ(r.Find(Tuple{6}), 2);
  EXPECT_EQ(r.Find(Tuple{9}), -1);
}

TEST(RelationTest, ArityZero) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains(Tuple{}));
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_TRUE(r.Contains(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SetEqualityIgnoresOrder) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  a.Insert(Tuple{2});
  b.Insert(Tuple{2});
  b.Insert(Tuple{1});
  EXPECT_EQ(a, b);
  b.Insert(Tuple{3});
  EXPECT_NE(a, b);
}

TEST(RelationTest, SubsetChecks) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  b.Insert(Tuple{1});
  b.Insert(Tuple{2});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(RelationTest, InsertAllCountsNew) {
  Relation a(1), b(1);
  a.Insert(Tuple{1});
  b.Insert(Tuple{1});
  b.Insert(Tuple{2});
  b.Insert(Tuple{3});
  EXPECT_EQ(a.InsertAll(b), 2u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(RelationTest, VersionBumpsOnlyOnNewTuples) {
  Relation r(1);
  const uint64_t v0 = r.version();
  r.Insert(Tuple{1});
  const uint64_t v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert(Tuple{1});
  EXPECT_EQ(r.version(), v1);
}

TEST(RelationTest, SortedTuplesCanonical) {
  Relation r(2);
  r.Insert(Tuple{3, 1});
  r.Insert(Tuple{1, 2});
  r.Insert(Tuple{1, 1});
  auto rows = r.SortedTuples();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Tuple{1, 1}));
  EXPECT_EQ(rows[1], (Tuple{1, 2}));
  EXPECT_EQ(rows[2], (Tuple{3, 1}));
}

TEST(RelationTest, ManyTuplesStressHashing) {
  Relation r(2);
  for (Value i = 0; i < 50; ++i) {
    for (Value j = 0; j < 50; ++j) {
      EXPECT_TRUE(r.Insert(Tuple{i, j}));
    }
  }
  EXPECT_EQ(r.size(), 2500u);
  for (Value i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.Contains(Tuple{i, i}));
  }
  EXPECT_FALSE(r.Contains(Tuple{50, 0}));
}

TEST(ColumnIndexTest, EqualRowsByColumn) {
  Relation r(2);
  r.Insert(Tuple{1, 10});
  r.Insert(Tuple{1, 11});
  r.Insert(Tuple{2, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 2u);
  EXPECT_EQ(r.EqualRows(0, 2).size(), 1u);
  EXPECT_EQ(r.EqualRows(0, 3).size(), 0u);
  EXPECT_EQ(r.EqualRows(1, 10).size(), 2u);
  EXPECT_EQ(r.EqualRows(1, 11).size(), 1u);
}

TEST(ColumnIndexTest, RowIdsAreInsertionOrder) {
  Relation r(2);
  r.Insert(Tuple{7, 1});
  r.Insert(Tuple{8, 1});
  r.Insert(Tuple{7, 2});
  auto rows = r.EqualRows(0, 7);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
}

TEST(ColumnIndexTest, ExtendsAfterGrowth) {
  Relation r(2);
  r.Insert(Tuple{1, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 1u);  // builds the index
  r.Insert(Tuple{1, 11});
  r.Insert(Tuple{2, 10});
  EXPECT_EQ(r.EqualRows(0, 1).size(), 2u);  // catches up incrementally
  EXPECT_EQ(r.EqualRows(0, 2).size(), 1u);
}

TEST(ColumnIndexTest, CopyDropsIndexButKeepsRows) {
  Relation r(1);
  r.Insert(Tuple{4});
  EXPECT_EQ(r.EqualRows(0, 4).size(), 1u);
  Relation copy = r;
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_TRUE(copy.Contains(Tuple{4}));
  EXPECT_EQ(copy.EqualRows(0, 4).size(), 1u);  // rebuilt lazily
  copy.Insert(Tuple{5});
  EXPECT_EQ(copy.EqualRows(0, 5).size(), 1u);
  EXPECT_EQ(r.size(), 1u);  // original untouched
}

TEST(ColumnIndexTest, AgreesWithScanOnDenseData) {
  Relation r(2);
  for (Value i = 0; i < 40; ++i) {
    for (Value j = 0; j < 10; ++j) r.Insert(Tuple{i % 7, i * 10 + j});
  }
  for (Value v = 0; v < 8; ++v) {
    size_t scan = 0;
    for (size_t row = 0; row < r.size(); ++row) {
      if (r.Row(row)[0] == v) ++scan;
    }
    EXPECT_EQ(r.EqualRows(0, v).size(), scan) << "column value " << v;
  }
}

TEST(DatabaseTest, AddFactDeclaresAndFillsUniverse) {
  Database db;
  const Value a = db.symbols().Intern("a");
  const Value b = db.symbols().Intern("b");
  ASSERT_TRUE(db.AddFact("E", Tuple{a, b}).ok());
  EXPECT_TRUE(db.HasRelation("E"));
  EXPECT_TRUE(db.InUniverse(a));
  EXPECT_TRUE(db.InUniverse(b));
  EXPECT_EQ(db.universe().size(), 2u);
}

TEST(DatabaseTest, ArityMismatchRejected) {
  Database db;
  const Value a = db.symbols().Intern("a");
  ASSERT_TRUE(db.AddFact("E", Tuple{a, a}).ok());
  EXPECT_FALSE(db.AddFact("E", Tuple{a}).ok());
  EXPECT_FALSE(db.DeclareRelation("E", 3).ok());
  EXPECT_TRUE(db.DeclareRelation("E", 2).ok());  // same arity: no-op
}

TEST(DatabaseTest, GetRelationMissing) {
  Database db;
  EXPECT_FALSE(db.GetRelation("nope").ok());
  EXPECT_EQ(db.GetRelation("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, UniverseDeclarationWithoutFacts) {
  Database db;
  db.AddUniverseSymbol("lonely");
  EXPECT_EQ(db.universe().size(), 1u);
  db.AddUniverseSymbol("lonely");
  EXPECT_EQ(db.universe().size(), 1u);  // idempotent
}

TEST(DatabaseTest, SharedSymbolTable) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db(symbols);
  const Value x = symbols->Intern("x");
  ASSERT_TRUE(db.AddFact("V", Tuple{x}).ok());
  EXPECT_EQ(db.symbols().Find("x"), x);
}

}  // namespace
}  // namespace inflog
