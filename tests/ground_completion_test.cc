// Unit tests for the ground representation (atom/body tables) and the
// Clark-completion encoder on hand-crafted ground programs, plus the
// GL-reduct least-model helper.

#include <gtest/gtest.h>

#include "src/eval/reduct.h"
#include "src/fixpoint/completion.h"
#include "src/ground/grounder.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::MustProgram;

TEST(AtomTableTest, InternsAndFinds) {
  AtomTable table;
  const uint32_t a = table.GetOrAdd(0, Tuple{1, 2});
  const uint32_t b = table.GetOrAdd(0, Tuple{2, 1});
  EXPECT_NE(a, b);
  EXPECT_EQ(table.GetOrAdd(0, Tuple{1, 2}), a);
  EXPECT_EQ(table.Find(0, Tuple{1, 2}), a);
  EXPECT_EQ(table.Find(1, Tuple{1, 2}), -1);  // different predicate
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.atom(a).predicate, 0u);
  EXPECT_EQ(table.atom(a).args, (Tuple{1, 2}));
}

TEST(BodyTableTest, InternsCanonicalBodies) {
  BodyTable table;
  const uint32_t b1 = table.GetOrAdd(GroundBody{{1, 2}, {3}});
  const uint32_t b2 = table.GetOrAdd(GroundBody{{1, 2}, {3}});
  EXPECT_EQ(b1, b2);
  // pos/neg boundary matters: {1,2}|{3} differs from {1}|{2,3}.
  const uint32_t b3 = table.GetOrAdd(GroundBody{{1}, {2, 3}});
  EXPECT_NE(b1, b3);
  EXPECT_EQ(table.size(), 2u);
}

/// Hand-builds a tiny ground program. Atom ids: a=0, b=1, c=2.
GroundProgram TinyGround(std::vector<std::pair<int, GroundBody>> rules) {
  GroundProgram g;
  g.atoms.GetOrAdd(0, Tuple{0});  // a
  g.atoms.GetOrAdd(0, Tuple{1});  // b
  g.atoms.GetOrAdd(0, Tuple{2});  // c
  for (auto& [head, body] : rules) {
    const uint32_t body_id = g.bodies.GetOrAdd(std::move(body));
    g.rules.push_back(GroundRule{static_cast<uint32_t>(head), body_id});
  }
  g.IndexHeads();
  return g;
}

std::vector<std::vector<bool>> AllModels(const CompletionEncoding& enc,
                                         size_t num_atoms) {
  sat::Solver solver;
  solver.AddCnf(enc.cnf);
  std::vector<std::vector<bool>> models;
  while (solver.Solve() == sat::SolveResult::kSat && models.size() < 64) {
    models.push_back(enc.DecodeAtoms(solver.Model()));
    sat::Clause block;
    for (size_t a = 0; a < num_atoms; ++a) {
      if (enc.atom_vars[a] < 0) continue;
      block.push_back(models.back()[a] ? sat::Neg(enc.atom_vars[a])
                                       : sat::Pos(enc.atom_vars[a]));
    }
    if (block.empty() || !solver.AddClause(block)) break;
  }
  return models;
}

TEST(CompletionTest, FactForcesTrue) {
  // a ← . : the only supported model is {a}.
  GroundProgram g = TinyGround({{0, GroundBody{}}});
  CompletionEncoding enc = EncodeCompletion(g);
  auto models = AllModels(enc, 3);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models[0][0]);
  EXPECT_FALSE(models[0][1]);
  EXPECT_FALSE(models[0][2]);
}

TEST(CompletionTest, SelfSupportIsFree) {
  // a ← a: both ∅ and {a} are supported.
  GroundProgram g = TinyGround({{0, GroundBody{{0}, {}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  EXPECT_EQ(AllModels(enc, 3).size(), 2u);
}

TEST(CompletionTest, NegativeLoopIsUnsat) {
  // a ← ¬a: no supported model.
  GroundProgram g = TinyGround({{0, GroundBody{{}, {0}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  EXPECT_TRUE(AllModels(enc, 3).empty());
}

TEST(CompletionTest, EvenNegativeLoopHasTwoModels) {
  // a ← ¬b; b ← ¬a: exactly {a} and {b}.
  GroundProgram g = TinyGround(
      {{0, GroundBody{{}, {1}}}, {1, GroundBody{{}, {0}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  auto models = AllModels(enc, 3);
  ASSERT_EQ(models.size(), 2u);
  for (const auto& m : models) {
    EXPECT_NE(m[0], m[1]);  // exactly one of a, b
    EXPECT_FALSE(m[2]);
  }
}

TEST(CompletionTest, UnsupportedPositiveBodyPrunes) {
  // a ← b, with b never a head: body is false, so a ↔ false.
  GroundProgram g = TinyGround({{0, GroundBody{{1}, {}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  EXPECT_EQ(enc.atom_vars[1], -1);  // b has no variable
  auto models = AllModels(enc, 3);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_FALSE(models[0][0]);
}

TEST(CompletionTest, NegatedUnsupportedAtomIsVacuous) {
  // a ← ¬b with b unsupported: ¬b is true, so a ↔ true.
  GroundProgram g = TinyGround({{0, GroundBody{{}, {1}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  auto models = AllModels(enc, 3);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models[0][0]);
}

TEST(CompletionTest, SharedBodyGetsOneDefinition) {
  // a ← b,¬c ; also c... use: a ← {b}, {¬c}... two heads share a body.
  GroundBody shared{{0}, {2}};
  GroundProgram g = TinyGround({{1, shared}, {2, GroundBody{{}, {}}},
                                {0, GroundBody{{}, {}}},
                                {1, GroundBody{{0}, {2}}}});
  CompletionEncoding enc = EncodeCompletion(g);
  // The multi-literal body {a, ¬c} is interned once → ≤ 1 body var.
  EXPECT_LE(enc.num_body_vars, 1u);
}

TEST(ReductTest, PositiveProgramLeastModel) {
  // a ←; b ← a; c ← b: least model {a,b,c} regardless of assumptions.
  GroundProgram g = TinyGround({{0, GroundBody{}},
                                {1, GroundBody{{0}, {}}},
                                {2, GroundBody{{1}, {}}}});
  const std::vector<bool> none(3, false);
  auto model = LeastModelOfReduct(g, none);
  EXPECT_EQ(model, (std::vector<bool>{true, true, true}));
}

TEST(ReductTest, NegationKillsRules) {
  // a ←; b ← a, ¬c; c never supported.
  GroundProgram g = TinyGround(
      {{0, GroundBody{}}, {1, GroundBody{{0}, {2}}}});
  // Reduct w.r.t. ∅: ¬c survives, b derived.
  EXPECT_EQ(LeastModelOfReduct(g, {false, false, false}),
            (std::vector<bool>{true, true, false}));
  // Reduct w.r.t. {c}: the b-rule is deleted.
  EXPECT_EQ(LeastModelOfReduct(g, {false, false, true}),
            (std::vector<bool>{true, false, false}));
}

TEST(ReductTest, StableCheckViaReduct) {
  // a ← ¬b; b ← ¬a: both {a} and {b} are stable (LM of reduct = itself).
  GroundProgram g = TinyGround(
      {{0, GroundBody{{}, {1}}}, {1, GroundBody{{}, {0}}}});
  EXPECT_EQ(LeastModelOfReduct(g, {true, false, false}),
            (std::vector<bool>{true, false, false}));
  EXPECT_EQ(LeastModelOfReduct(g, {false, true, false}),
            (std::vector<bool>{false, true, false}));
  // But ∅ is not: LM of reduct w.r.t. ∅ derives both.
  EXPECT_EQ(LeastModelOfReduct(g, {false, false, false}),
            (std::vector<bool>{true, true, false}));
}

TEST(GroundProgramTest, ToStringRendersRules) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = DbFromGraph(PathGraph(2), symbols);
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  const std::string text = g->ToString(p);
  EXPECT_NE(text.find("T(1) :- !T(0)."), std::string::npos) << text;
}

TEST(GroundProgramTest, DecodeStateRoundTrip) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  std::vector<bool> atoms(g->atoms.size(), false);
  atoms[0] = true;
  IdbState state = g->DecodeState(p, atoms);
  EXPECT_EQ(state.relations[0].size(), 1u);
  TupleView row = state.relations[0].Row(0);
  EXPECT_EQ(Tuple(row.begin(), row.end()), g->atoms.atom(0).args);
}

}  // namespace
}  // namespace inflog
